//! Crash recovery through the write-ahead log: replaying the committed
//! operations in timestamp order rebuilds the committed state — which is
//! exactly the serialization order hybrid atomicity guarantees.

use hybrid_cc::adts::account::AccountObject;
use hybrid_cc::adts::fifo_queue::QueueObject;
use hybrid_cc::spec::Rational;
use hybrid_cc::txn::manager::TxnManager;
use hybrid_cc::txn::wal::{committed_ops, Wal, WalRecord};
use serde_json::json;
use std::path::PathBuf;

fn tmp(name: &str) -> PathBuf {
    let mut p = std::env::temp_dir();
    p.push(format!("hcc-recovery-{}-{}", std::process::id(), name));
    let _ = std::fs::remove_file(&p);
    p
}

fn money(n: i64) -> Rational {
    Rational::from_int(n)
}

/// A logged banking session: operations recorded before commit, commit
/// record carries the timestamp.
fn run_logged_session(path: &PathBuf) -> (Rational, usize) {
    let mgr = TxnManager::new();
    let wal = Wal::open(path).unwrap();
    let acct = AccountObject::hybrid("acct");
    let queue: QueueObject<i64> = QueueObject::hybrid("q");

    let run_txn = |ops: Vec<(&str, i64)>, commit: bool| {
        let t = mgr.begin();
        let id = t.id().0;
        wal.append(&WalRecord::Begin { txn: id }).unwrap();
        for (kind, v) in &ops {
            match *kind {
                "credit" => {
                    acct.credit(&t, money(*v)).unwrap();
                    wal.append(&WalRecord::Op {
                        txn: id,
                        object: "acct".into(),
                        op: json!({"credit": v}),
                    })
                    .unwrap();
                }
                "debit" => {
                    if acct.debit(&t, money(*v)).unwrap() {
                        wal.append(&WalRecord::Op {
                            txn: id,
                            object: "acct".into(),
                            op: json!({"debit": v}),
                        })
                        .unwrap();
                    }
                }
                "enq" => {
                    queue.enq(&t, *v).unwrap();
                    wal.append(&WalRecord::Op {
                        txn: id,
                        object: "q".into(),
                        op: json!({"enq": v}),
                    })
                    .unwrap();
                }
                other => panic!("unknown op {other}"),
            }
        }
        if commit {
            let ts = mgr.commit(t).unwrap();
            wal.append_sync(&WalRecord::Commit { txn: id, ts: ts.0 }).unwrap();
        } else {
            mgr.abort(t);
            wal.append_sync(&WalRecord::Abort { txn: id }).unwrap();
        }
    };

    run_txn(vec![("credit", 100), ("enq", 1)], true);
    run_txn(vec![("credit", 999)], false); // aborted: must not recover
    run_txn(vec![("debit", 30), ("enq", 2)], true);
    run_txn(vec![("credit", 5)], true);

    (acct.committed_balance(), queue.committed_len())
}

/// Rebuild fresh objects from the log.
fn recover(path: &PathBuf) -> (Rational, usize) {
    let records = Wal::replay(path).unwrap();
    let acct = AccountObject::hybrid("acct-recovered");
    let queue: QueueObject<i64> = QueueObject::hybrid("q-recovered");
    let mgr = TxnManager::new();
    for (_ts, _txn, ops) in committed_ops(&records) {
        // Each recovered transaction replays as one local transaction, in
        // timestamp order.
        let t = mgr.begin();
        for (object, op) in ops {
            match object.as_str() {
                "acct" => {
                    if let Some(v) = op.get("credit") {
                        acct.credit(&t, money(v.as_i64().unwrap())).unwrap();
                    } else if let Some(v) = op.get("debit") {
                        assert!(acct.debit(&t, money(v.as_i64().unwrap())).unwrap());
                    }
                }
                "q" => {
                    queue.enq(&t, op["enq"].as_i64().unwrap()).unwrap();
                }
                other => panic!("unknown object {other}"),
            }
        }
        mgr.commit(t).unwrap();
    }
    (acct.committed_balance(), queue.committed_len())
}

#[test]
fn recovery_rebuilds_committed_state() {
    let path = tmp("basic");
    let (balance, qlen) = run_logged_session(&path);
    assert_eq!(balance, money(75)); // 100 - 30 + 5
    assert_eq!(qlen, 2);
    let (rbalance, rqlen) = recover(&path);
    assert_eq!(rbalance, balance, "recovered balance differs");
    assert_eq!(rqlen, qlen, "recovered queue length differs");
}

#[test]
fn recovery_survives_torn_tail() {
    let path = tmp("torn");
    let (balance, qlen) = run_logged_session(&path);
    // Crash mid-append of a new record.
    {
        use std::io::Write;
        let mut f = std::fs::OpenOptions::new().append(true).open(&path).unwrap();
        f.write_all(b"{\"Op\":{\"txn\":77,\"obj").unwrap();
    }
    let (rbalance, rqlen) = recover(&path);
    assert_eq!(rbalance, balance);
    assert_eq!(rqlen, qlen);
}

#[test]
fn recovery_is_idempotent() {
    let path = tmp("idem");
    let _ = run_logged_session(&path);
    let first = recover(&path);
    let second = recover(&path);
    assert_eq!(first, second);
}

#[test]
fn uncommitted_tail_transaction_is_dropped() {
    let path = tmp("uncommitted");
    let (balance, _) = run_logged_session(&path);
    // A transaction that logged ops but crashed before its commit record.
    {
        let wal = Wal::open(&path).unwrap();
        wal.append(&WalRecord::Begin { txn: 500 }).unwrap();
        wal.append(&WalRecord::Op { txn: 500, object: "acct".into(), op: json!({"credit": 1_000}) })
            .unwrap();
        // no Commit record: the crash hit between phases.
    }
    let (rbalance, _) = recover(&path);
    assert_eq!(rbalance, balance, "uncommitted operations must not be replayed");
}
