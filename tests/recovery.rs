//! Crash recovery through the write-ahead log: replaying the committed
//! operations in timestamp order rebuilds the committed state — which is
//! exactly the serialization order hybrid atomicity guarantees.
//!
//! Two generations are covered: the original line-JSON `hcc-txn` log
//! (compatibility shim) and the `hcc-storage` durable store (segmented
//! CRC-framed WAL + checkpoints + compaction), including the randomized
//! kill-point property test.

use hybrid_cc::adts::account::AccountObject;
use hybrid_cc::adts::fifo_queue::QueueObject;
use hybrid_cc::spec::Rational;
use hybrid_cc::storage::{DurableStore, Snapshot, StorageError, StorageOptions};
use hybrid_cc::txn::manager::TxnManager;
use hybrid_cc::txn::wal::{committed_ops, Wal, WalRecord};
use hybrid_cc::workload::crash::{
    crash_point_holds, recover_and_verify, run_crash_workload, CrashScenarioOptions,
};
use serde_json::json;
use std::path::PathBuf;
use std::sync::Arc;

fn tmp(name: &str) -> PathBuf {
    let mut p = std::env::temp_dir();
    p.push(format!("hcc-recovery-{}-{}", std::process::id(), name));
    let _ = std::fs::remove_file(&p);
    let _ = std::fs::remove_dir_all(&p);
    p
}

fn money(n: i64) -> Rational {
    Rational::from_int(n)
}

/// A logged banking session: operations recorded before commit, commit
/// record carries the timestamp.
fn run_logged_session(path: &PathBuf) -> (Rational, usize) {
    let mgr = TxnManager::new();
    let wal = Wal::open(path).unwrap();
    let acct = AccountObject::hybrid("acct");
    let queue: QueueObject<i64> = QueueObject::hybrid("q");

    let run_txn = |ops: Vec<(&str, i64)>, commit: bool| {
        let t = mgr.begin();
        let id = t.id().0;
        wal.append(&WalRecord::Begin { txn: id }).unwrap();
        for (kind, v) in &ops {
            match *kind {
                "credit" => {
                    acct.credit(&t, money(*v)).unwrap();
                    wal.append(&WalRecord::Op {
                        txn: id,
                        object: "acct".into(),
                        op: json!({"credit": v}),
                    })
                    .unwrap();
                }
                "debit" => {
                    if acct.debit(&t, money(*v)).unwrap() {
                        wal.append(&WalRecord::Op {
                            txn: id,
                            object: "acct".into(),
                            op: json!({"debit": v}),
                        })
                        .unwrap();
                    }
                }
                "enq" => {
                    queue.enq(&t, *v).unwrap();
                    wal.append(&WalRecord::Op {
                        txn: id,
                        object: "q".into(),
                        op: json!({"enq": v}),
                    })
                    .unwrap();
                }
                other => panic!("unknown op {other}"),
            }
        }
        if commit {
            let ts = mgr.commit(t).unwrap();
            wal.append_sync(&WalRecord::Commit { txn: id, ts: ts.0 }).unwrap();
        } else {
            mgr.abort(t);
            wal.append_sync(&WalRecord::Abort { txn: id }).unwrap();
        }
    };

    run_txn(vec![("credit", 100), ("enq", 1)], true);
    run_txn(vec![("credit", 999)], false); // aborted: must not recover
    run_txn(vec![("debit", 30), ("enq", 2)], true);
    run_txn(vec![("credit", 5)], true);

    (acct.committed_balance(), queue.committed_len())
}

/// Rebuild fresh objects from the log.
fn recover(path: &PathBuf) -> (Rational, usize) {
    let records = Wal::replay(path).unwrap();
    let acct = AccountObject::hybrid("acct-recovered");
    let queue: QueueObject<i64> = QueueObject::hybrid("q-recovered");
    let mgr = TxnManager::new();
    for (_ts, _txn, ops) in committed_ops(&records) {
        // Each recovered transaction replays as one local transaction, in
        // timestamp order.
        let t = mgr.begin();
        for (object, op) in ops {
            match object.as_str() {
                "acct" => {
                    if let Some(v) = op.get("credit") {
                        acct.credit(&t, money(v.as_i64().unwrap())).unwrap();
                    } else if let Some(v) = op.get("debit") {
                        assert!(acct.debit(&t, money(v.as_i64().unwrap())).unwrap());
                    }
                }
                "q" => {
                    queue.enq(&t, op["enq"].as_i64().unwrap()).unwrap();
                }
                other => panic!("unknown object {other}"),
            }
        }
        mgr.commit(t).unwrap();
    }
    (acct.committed_balance(), queue.committed_len())
}

#[test]
fn recovery_rebuilds_committed_state() {
    let path = tmp("basic");
    let (balance, qlen) = run_logged_session(&path);
    assert_eq!(balance, money(75)); // 100 - 30 + 5
    assert_eq!(qlen, 2);
    let (rbalance, rqlen) = recover(&path);
    assert_eq!(rbalance, balance, "recovered balance differs");
    assert_eq!(rqlen, qlen, "recovered queue length differs");
}

#[test]
fn recovery_survives_torn_tail() {
    let path = tmp("torn");
    let (balance, qlen) = run_logged_session(&path);
    // Crash mid-append of a new record.
    {
        use std::io::Write;
        let mut f = std::fs::OpenOptions::new().append(true).open(&path).unwrap();
        f.write_all(b"{\"Op\":{\"txn\":77,\"obj").unwrap();
    }
    let (rbalance, rqlen) = recover(&path);
    assert_eq!(rbalance, balance);
    assert_eq!(rqlen, qlen);
}

#[test]
fn recovery_is_idempotent() {
    let path = tmp("idem");
    let _ = run_logged_session(&path);
    let first = recover(&path);
    let second = recover(&path);
    assert_eq!(first, second);
}

// ---- The segmented durable store (hcc-storage) -------------------------

/// Drive a manager-with-storage banking session; returns the live state.
///
/// Note what is *absent*: no logging call anywhere. The objects are built
/// with the manager's options, so every mutating operation serializes its
/// own redo record into the WAL.
fn run_durable_session(dir: &PathBuf, opts: StorageOptions) -> (Rational, usize) {
    let mgr = TxnManager::with_storage(dir, opts).unwrap();
    let acct = AccountObject::with(
        "acct",
        Arc::new(hybrid_cc::adts::account::AccountHybrid),
        mgr.object_options(),
    );
    let queue: QueueObject<i64> = QueueObject::with(
        "q",
        Arc::new(hybrid_cc::adts::fifo_queue::QueueTableII),
        mgr.object_options(),
    );

    let run = |ops: Vec<(&str, i64)>, commit: bool| {
        let t = mgr.begin();
        for (kind, v) in ops {
            match kind {
                "credit" => {
                    acct.credit(&t, money(v)).unwrap();
                }
                "debit" => {
                    acct.debit(&t, money(v)).unwrap();
                }
                "enq" => {
                    queue.enq(&t, v).unwrap();
                }
                other => panic!("unknown op {other}"),
            }
        }
        if commit {
            mgr.commit(t).unwrap();
        } else {
            mgr.abort(t);
        }
    };

    run(vec![("credit", 100), ("enq", 1)], true);
    run(vec![("credit", 999)], false); // aborted: must not recover
    run(vec![("debit", 30), ("enq", 2)], true);
    run(vec![("credit", 5)], true);
    (acct.committed_balance(), queue.committed_len())
}

#[test]
fn durable_store_recovery_rebuilds_committed_state() {
    let dir = tmp("store-basic");
    let (balance, qlen) = run_durable_session(&dir, StorageOptions::default());
    assert_eq!(balance, money(75));
    assert_eq!(qlen, 2);
    let state = recover_and_verify(&dir).unwrap();
    assert_eq!(state.balance, balance);
    assert_eq!(state.queue.len(), qlen);
}

#[test]
fn durable_store_survives_torn_final_record() {
    let dir = tmp("store-torn");
    let (balance, qlen) = run_durable_session(&dir, StorageOptions::default());
    // Crash mid-append: write half a frame at the tail of the last
    // segment of the (single) stripe.
    let stripe = &hybrid_cc::storage::wal::stripe_dirs(&dir).unwrap()[0].1;
    let segments = hybrid_cc::storage::wal::list_segments(stripe).unwrap();
    let last = &segments.last().unwrap().1;
    {
        use std::io::Write;
        let mut f = std::fs::OpenOptions::new().append(true).open(last).unwrap();
        f.write_all(&[0x20, 0x00, 0x00, 0x00, 0xAB]).unwrap(); // torn header
    }
    let state = recover_and_verify(&dir).unwrap();
    assert_eq!(state.balance, balance);
    assert_eq!(state.queue.len(), qlen);
}

#[test]
fn durable_store_reports_commit_with_missing_ops_as_incomplete() {
    let dir = tmp("store-missing");
    {
        let store = DurableStore::open(
            &dir,
            StorageOptions { segment_max_bytes: 128, ..StorageOptions::default() },
        )
        .unwrap();
        // Establish history and a checkpoint, so the registry binding for
        // "acct" survives in the checkpoint file no matter which segments
        // disappear.
        let acct = AccountObject::hybrid("acct");
        store.log_begin(1).unwrap();
        store.log_op(1, "acct", br#"{"op":"credit","v":{"den":1,"num":7}}"#).unwrap();
        store.log_commit(1, 1).unwrap();
        store.checkpoint(&[("acct", &acct)]).unwrap();
        // Txn 2's Begin/Op records land in the post-checkpoint segment...
        store.log_begin(2).unwrap();
        store.log_op(2, "acct", br#"{"op":"credit","v":{"den":1,"num":9}}"#).unwrap();
        for filler in 3..20 {
            store.log_begin(filler).unwrap();
            store.log_op(filler, "acct", &[0u8; 64]).unwrap();
            store.log_abort(filler).unwrap();
        }
        // ...and its commit record in a later one.
        store.log_commit(2, 10).unwrap();
    }
    // Delete the segment holding txn 2's Begin/Op behind the store's back
    // (simulating a pruning bug or lost file): the commit record's
    // stamped op count (1) exceeds the surviving ops (0), so recovery
    // must drop txn 2 and *report* it — never replay half of it and
    // never refuse the rest of the log (the same shape arises from an
    // honest per-stripe crash tail, which must stay recoverable).
    let stripe = &hybrid_cc::storage::wal::stripe_dirs(&dir).unwrap()[0].1;
    let segments = hybrid_cc::storage::wal::list_segments(stripe).unwrap();
    assert!(segments.len() > 1, "scenario needs several segments");
    std::fs::remove_file(&segments[0].1).unwrap();
    let recovered = DurableStore::recover(&dir).unwrap();
    assert_eq!(recovered.incomplete, vec![2], "txn 2's effects are reported lost");
    assert!(
        recovered.committed.iter().all(|t| t.txn != 2),
        "txn 2 must not replay half-recovered: {:?}",
        recovered.committed
    );
}

#[test]
fn durable_store_refuses_ops_whose_registry_binding_is_lost() {
    let dir = tmp("store-unregistered");
    {
        let store = DurableStore::open(
            &dir,
            StorageOptions { segment_max_bytes: 128, ..StorageOptions::default() },
        )
        .unwrap();
        // The Register record for "acct" lands in the first segment with
        // the first op; later segments hold ops referencing its id.
        for txn in 1..20 {
            store.log_begin(txn).unwrap();
            store.log_op(txn, "acct", &[0u8; 64]).unwrap();
            store.log_commit(txn, txn).unwrap();
        }
    }
    // Losing the first segment loses the binding (no checkpoint carried
    // it): recovery must refuse rather than guess which object the
    // surviving ops belong to.
    let stripe = &hybrid_cc::storage::wal::stripe_dirs(&dir).unwrap()[0].1;
    let segments = hybrid_cc::storage::wal::list_segments(stripe).unwrap();
    assert!(segments.len() > 1, "scenario needs several segments");
    std::fs::remove_file(&segments[0].1).unwrap();
    match DurableStore::recover(&dir) {
        Err(StorageError::UnknownObjectId { id: 1, .. }) => {}
        other => panic!("expected UnknownObjectId, got {other:?}"),
    }
}

#[test]
fn replay_orders_interleaved_transactions_by_timestamp() {
    let dir = tmp("store-interleaved");
    {
        let mgr = TxnManager::with_storage(&dir, StorageOptions::default()).unwrap();
        let acct = AccountObject::with(
            "acct",
            Arc::new(hybrid_cc::adts::account::AccountHybrid),
            mgr.object_options(),
        );
        // Two transactions with interleaved (self-logged) op records;
        // t_late begins first but commits second. Replay must apply
        // credit(10) then debit(60): debiting first would overdraft and
        // fail replay with a divergence.
        let t_late = mgr.begin();
        let t_early = mgr.begin();
        acct.credit(&t_early, money(10)).unwrap();
        acct.credit(&t_late, money(50)).unwrap();
        mgr.commit(t_early).unwrap();
        let ok = acct.debit(&t_late, money(60)).unwrap();
        assert!(ok);
        mgr.commit(t_late).unwrap();
    }
    let state = recover_and_verify(&dir).unwrap();
    assert_eq!(state.balance, money(0));
    assert_eq!(state.tail_ts.len(), 2);
    assert!(state.tail_ts[0] < state.tail_ts[1], "replay is timestamp-ordered");
}

#[test]
fn checkpoint_plus_tail_equals_full_replay() {
    let opts = CrashScenarioOptions { seed: 0xE0_0A11, ..CrashScenarioOptions::default() };
    // Same deterministic workload, once compacting every 10 commits, once
    // never compacting.
    let dir_ckpt = tmp("store-eq-ckpt");
    let w1 =
        run_crash_workload(&dir_ckpt, CrashScenarioOptions { checkpoint_every: Some(10), ..opts })
            .unwrap();
    assert!(w1.checkpoints >= 2, "checkpointing run must actually checkpoint");
    let dir_full = tmp("store-eq-full");
    let w2 = run_crash_workload(&dir_full, opts).unwrap();
    assert_eq!(w1.oracle, w2.oracle, "same seed, same committed effects");

    let from_ckpt = recover_and_verify(&dir_ckpt).unwrap();
    let from_full = recover_and_verify(&dir_full).unwrap();
    assert_eq!(from_ckpt.balance, from_full.balance);
    assert_eq!(from_ckpt.queue, from_full.queue);
    assert!(from_ckpt.checkpoint_ts > 0);
    assert_eq!(from_full.checkpoint_ts, 0);
    assert!(
        from_ckpt.tail_ts.len() < from_full.tail_ts.len(),
        "checkpointed recovery replays a strictly shorter tail"
    );
}

/// The acceptance property: randomized workloads of transactional
/// mutations — with **no explicit logging call anywhere** (the objects
/// self-log through the manager) — killed at arbitrary crash points
/// recover exactly the committed prefix, checked against the oracle and
/// `hcc-verify`'s hybrid atomicity inside `crash_point_holds`. Forgetting
/// to log is no longer expressible. `HCC_DURABILITY` (CI matrix) selects
/// the durability level.
#[test]
fn randomized_crash_points_recover_exactly_the_committed_state() {
    for seed in [1u64, 7, 42, 1234, 0xDEAD] {
        for (i, cut) in [0u64, 13, 97, 256, 911, 4096].into_iter().enumerate() {
            let dir = tmp(&format!("store-prop-{seed}-{i}"));
            for checkpoint_every in [None, Some(12)] {
                let dir = dir.join(format!("ck{}", checkpoint_every.is_some()));
                let opts = CrashScenarioOptions {
                    seed,
                    txns: 60,
                    checkpoint_every,
                    ..CrashScenarioOptions::default()
                }
                .env_overrides();
                let (committed, survived) = crash_point_holds(&dir, opts, cut).unwrap();
                assert!(survived <= committed);
                if cut == 0 && opts.durability != hybrid_cc::core::runtime::Durability::None {
                    assert_eq!(survived, committed, "no cut, no loss (seed {seed})");
                }
            }
        }
    }
}

#[test]
fn snapshot_restore_is_what_checkpoint_recovery_uses() {
    // A checkpoint taken mid-run restores into fresh objects bit-for-bit.
    let dir = tmp("store-snapshot");
    let mgr = TxnManager::with_storage(&dir, StorageOptions::default()).unwrap();
    let acct = AccountObject::with(
        "acct",
        Arc::new(hybrid_cc::adts::account::AccountHybrid),
        mgr.object_options(),
    );
    let t = mgr.begin();
    acct.credit(&t, money(123)).unwrap();
    mgr.commit(t).unwrap();
    let ckpt = mgr.checkpoint(&[("acct", &acct)]).unwrap().expect("store attached");
    let fresh = AccountObject::hybrid("fresh");
    fresh.restore(&ckpt.objects[0].1, ckpt.last_ts).unwrap();
    assert_eq!(fresh.committed_balance(), money(123));
}

#[test]
fn uncommitted_tail_transaction_is_dropped() {
    let path = tmp("uncommitted");
    let (balance, _) = run_logged_session(&path);
    // A transaction that logged ops but crashed before its commit record.
    {
        let wal = Wal::open(&path).unwrap();
        wal.append(&WalRecord::Begin { txn: 500 }).unwrap();
        wal.append(&WalRecord::Op {
            txn: 500,
            object: "acct".into(),
            op: json!({"credit": 1_000}),
        })
        .unwrap();
        // no Commit record: the crash hit between phases.
    }
    let (rbalance, _) = recover(&path);
    assert_eq!(rbalance, balance, "uncommitted operations must not be replayed");
}
