//! The self-logging discipline, end to end:
//!
//! * a **differential** proof that self-logging and the legacy manual
//!   `log_op` discipline produce byte-identical recovery state on the
//!   randomized bank/queue crash workloads;
//! * forget-to-log is **unrepresentable**: a session that never mentions
//!   logging still recovers every acknowledged commit;
//! * the recover-then-continue lifecycle through `TxnManager::recover`
//!   and the recovery `Registry` (including the checkpoint-absorption
//!   guard clearing).
//!
//! `HCC_DURABILITY` (none / buffered / fsync) overrides the durability
//! level — CI runs this suite as a matrix over all three.

use hybrid_cc::adts::account::{AccountHybrid, AccountObject};
use hybrid_cc::adts::fifo_queue::{QueueObject, QueueTableII};
use hybrid_cc::spec::Rational;
use hybrid_cc::storage::StorageOptions;
use hybrid_cc::txn::manager::TxnManager;
use hybrid_cc::txn::registry::Registry;
use hybrid_cc::workload::crash::{
    crash_point_holds, recover_and_verify, run_crash_workload, truncate_tail, CrashScenarioOptions,
    LogDiscipline,
};
use std::path::PathBuf;
use std::sync::Arc;

fn tmp(name: &str) -> PathBuf {
    let mut p = std::env::temp_dir();
    p.push(format!("hcc-selflog-{}-{}", std::process::id(), name));
    let _ = std::fs::remove_dir_all(&p);
    p
}

fn money(n: i64) -> Rational {
    Rational::from_int(n)
}

/// Differential: the same deterministic workload run once under
/// self-logging and once under the manual discipline must leave logs that
/// recover to **byte-identical** state — same balances, same queue, same
/// replayed timestamps, same serialized snapshots — at every crash point.
#[test]
fn self_logging_and_manual_log_op_recover_byte_identically() {
    for seed in [3u64, 99, 0xBEEF] {
        for cut in [0u64, 150, 1024] {
            let base =
                CrashScenarioOptions { seed, txns: 80, ..Default::default() }.env_overrides();
            let dir_self = tmp(&format!("diff-self-{seed}-{cut}"));
            let dir_manual = tmp(&format!("diff-manual-{seed}-{cut}"));

            let w_self = run_crash_workload(
                &dir_self,
                CrashScenarioOptions { discipline: LogDiscipline::SelfLogging, ..base },
            )
            .unwrap();
            let w_manual = run_crash_workload(
                &dir_manual,
                CrashScenarioOptions { discipline: LogDiscipline::Manual, ..base },
            )
            .unwrap();
            assert_eq!(
                w_self.oracle, w_manual.oracle,
                "same seed, same committed effects (seed {seed})"
            );

            truncate_tail(&dir_self, cut).unwrap();
            truncate_tail(&dir_manual, cut).unwrap();
            let s_self = recover_and_verify(&dir_self).unwrap();
            let s_manual = recover_and_verify(&dir_manual).unwrap();
            assert_eq!(
                s_self, s_manual,
                "recovery state diverged between disciplines (seed {seed}, cut {cut})"
            );
            assert_eq!(
                s_self.snapshots, s_manual.snapshots,
                "snapshot bytes diverged (seed {seed}, cut {cut})"
            );
        }
    }
}

/// Forget-to-log is unrepresentable: this session performs transactional
/// mutations with *no logging call in sight* — there is no API left to
/// forget — crashes at an arbitrary point, and still recovers exactly the
/// committed prefix (hybrid-atomic, oracle-checked inside
/// `crash_point_holds`).
#[test]
fn mutations_with_no_explicit_logging_survive_a_random_kill_point() {
    for (i, cut) in [0u64, 37, 333, 2048].into_iter().enumerate() {
        let dir = tmp(&format!("noforget-{i}"));
        let opts = CrashScenarioOptions {
            seed: 0xF0061 + i as u64,
            txns: 70,
            checkpoint_every: if i % 2 == 0 { Some(10) } else { None },
            ..Default::default()
        }
        .env_overrides();
        assert_eq!(opts.discipline, LogDiscipline::SelfLogging);
        let (committed, survived) = crash_point_holds(&dir, opts, cut).unwrap();
        assert!(survived <= committed);
    }
}

/// The recover-then-continue lifecycle: a crashed session's successor
/// opens the manager, registers fresh objects, calls
/// `TxnManager::recover`, and keeps going — new commits serialize above
/// the recovered history and checkpointing works again (the absorption
/// guard was cleared by recovery).
#[test]
fn manager_recovers_registry_and_resumes() {
    let dir = tmp("resume");
    let pre_crash_balance;
    {
        let mgr = TxnManager::with_storage(&dir, StorageOptions::default()).unwrap();
        let acct = AccountObject::with("acct", Arc::new(AccountHybrid), mgr.object_options());
        let queue: QueueObject<i64> =
            QueueObject::with("q", Arc::new(QueueTableII), mgr.object_options());
        for i in 1..=5 {
            let t = mgr.begin();
            acct.credit(&t, money(i * 10)).unwrap();
            queue.enq(&t, i).unwrap();
            mgr.commit(t).unwrap();
        }
        let t = mgr.begin();
        acct.credit(&t, money(1_000_000)).unwrap();
        mgr.abort(t); // aborted: must not resurface after recovery
        pre_crash_balance = acct.committed_balance();
        // Process "dies" here: no checkpoint, no clean handoff.
    }
    {
        let mgr = TxnManager::with_storage(&dir, StorageOptions::default()).unwrap();
        let acct =
            Arc::new(AccountObject::with("acct", Arc::new(AccountHybrid), mgr.object_options()));
        let queue: Arc<QueueObject<i64>> =
            Arc::new(QueueObject::with("q", Arc::new(QueueTableII), mgr.object_options()));
        let mut registry = Registry::new();
        registry.register(acct.clone());
        registry.register(queue.clone());
        let report = mgr.recover(&registry).unwrap();
        assert_eq!(report.replayed, 5);
        assert_eq!(acct.committed_balance(), pre_crash_balance);
        assert_eq!(queue.committed_len(), 5);

        // Continue: new commits stack on top and checkpointing is allowed
        // again (recovery attested absorption).
        let t = mgr.begin();
        acct.credit(&t, money(7)).unwrap();
        let deq = queue.deq(&t).unwrap();
        assert_eq!(deq, 1, "FIFO head survived recovery");
        mgr.commit(t).unwrap();
        let ckpt = mgr.checkpoint_registry(&registry).unwrap().expect("store attached");
        assert!(ckpt.last_ts > 0);
        assert_eq!(acct.committed_balance(), pre_crash_balance + money(7));
    }
    // Third generation recovers from the checkpoint alone.
    {
        let acct = Arc::new(AccountObject::hybrid("acct"));
        let queue: Arc<QueueObject<i64>> = Arc::new(QueueObject::hybrid("q"));
        let mut registry = Registry::new();
        registry.register(acct.clone());
        registry.register(queue.clone());
        let mgr = TxnManager::with_storage(&dir, StorageOptions::default()).unwrap();
        let report = mgr.recover(&registry).unwrap();
        assert!(report.checkpoint_ts > 0, "checkpoint restored");
        assert_eq!(report.replayed, 0, "nothing above the checkpoint");
        assert_eq!(acct.committed_balance(), pre_crash_balance + money(7));
        assert_eq!(queue.committed_len(), 4);
    }
}

/// Replay pins every logged response: a log whose effects cannot
/// reproduce (here: a successful debit whose funds are gone because the
/// credit record was lost) is rejected as divergence instead of silently
/// rewriting history.
#[test]
fn divergent_replay_is_refused() {
    use hybrid_cc::storage::DurableStore;

    let dir = tmp("diverge");
    {
        let store = DurableStore::open(&dir, StorageOptions::default()).unwrap();
        // Hand-craft a log claiming a successful debit from an empty
        // account (no prior credit): replay must refuse to "succeed" it.
        store.log_begin(1).unwrap();
        store.log_op(1, "acct", br#"{"op":"debit","v":{"den":1,"num":30},"ok":true}"#).unwrap();
        store.log_commit(1, 1).unwrap();
    }
    let recovered = DurableStore::recover(&dir).unwrap();
    let acct = Arc::new(AccountObject::hybrid("acct"));
    let mut registry = Registry::new();
    registry.register(acct.clone());
    let err = registry.restore_and_replay(&recovered).unwrap_err();
    assert!(
        matches!(err, hybrid_cc::txn::registry::RecoveryError::Replay { .. }),
        "expected replay divergence, got {err:?}"
    );
}
