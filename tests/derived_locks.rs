//! Satellite property test: for **every** built-in ADT, the conflict
//! relation *derived* from its serial specification agrees with the
//! hand-written `LockSpec` on every lock-grant decision, over a
//! randomized operation domain far larger than the derivation domain.
//!
//! This is the paper's central claim made executable end to end: the
//! hand-written relations (Tables I–V plus the extension types) encode
//! nothing the specification does not already determine. Each test draws
//! thousands of random executed-operation pairs, maps them onto the
//! formal layer with the type's `to_spec_op`, and checks the lifted
//! derived relation (`DerivedConflict` over the atoms `hcc-relations`
//! derives) against the hand-written `LockSpec` verdict — and that both
//! verdicts actually fire both ways across the run, so agreement is
//! never vacuous.

use hybrid_cc::adts::{account, counter, directory, fifo_queue, file, semiqueue, set};
use hybrid_cc::core::conflict::ConflictRelation;
use hybrid_cc::core::runtime::LockSpec;
use hybrid_cc::core::DerivedConflict;
use hybrid_cc::relations::derive::conflict_atoms;
use hybrid_cc::relations::tables::AdtConfig;
use hybrid_cc::spec::{Operation, Rational};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Lift a type's derived atoms to a full-domain conflict relation.
fn derived(cfg: AdtConfig) -> DerivedConflict {
    let classify = cfg.classify;
    let atoms = conflict_atoms(&cfg.into());
    DerivedConflict::new("derived", classify, atoms)
}

/// Drive `pairs` random pairs through both relations and demand exact
/// agreement; returns how often they (jointly) said "conflict".
fn agree<A, F>(
    rel: &DerivedConflict,
    hand: &dyn LockSpec<A>,
    mut gen: impl FnMut(&mut StdRng) -> (A::Inv, A::Res),
    to_spec: F,
    pairs: usize,
    seed: u64,
) -> usize
where
    A: hybrid_cc::core::RuntimeAdt,
    F: Fn(&A::Inv, &A::Res) -> Operation,
{
    let mut rng = StdRng::seed_from_u64(seed);
    let mut conflicts = 0;
    for _ in 0..pairs {
        let a = gen(&mut rng);
        let b = gen(&mut rng);
        let want = hand.conflicts(&a, &b);
        let got = rel.conflicts(&to_spec(&a.0, &a.1), &to_spec(&b.0, &b.1));
        assert_eq!(
            got, want,
            "derived and hand-written relations disagree on {a:?} vs {b:?} \
             (derived said {got}, hand-written said {want})"
        );
        conflicts += want as usize;
    }
    assert!(conflicts > 0, "vacuous agreement: no pair ever conflicted");
    assert!(conflicts < pairs, "vacuous agreement: every pair conflicted");
    conflicts
}

const PAIRS: usize = 4000;

#[test]
fn counter_derived_agrees_with_hand_written() {
    use counter::{CounterAdt, CounterHybrid, CounterInv, CounterRes};
    let rel = derived(AdtConfig::counter());
    let gen = |rng: &mut StdRng| -> (CounterInv, CounterRes) {
        // Deltas include 0 (the Touch class) and values far outside the
        // derivation domain {0, 1, 2}.
        let delta = rng.gen_range(-3i64..50) * i64::from(rng.gen_range(0..4u32) != 0);
        match rng.gen_range(0..3u32) {
            0 => (CounterInv::Inc(delta), CounterRes::Ok),
            1 => (CounterInv::Dec(delta), CounterRes::Ok),
            _ => (CounterInv::Read, CounterRes::Val(rng.gen_range(-100i64..100))),
        }
    };
    agree::<CounterAdt, _>(&rel, &CounterHybrid, gen, counter::to_spec_op, PAIRS, 11);
}

#[test]
fn set_derived_agrees_with_hand_written() {
    use set::{SetAdt, SetHybrid, SetInv};
    let rel = derived(AdtConfig::set());
    let gen = |rng: &mut StdRng| -> (SetInv<i64>, bool) {
        let x = rng.gen_range(0..6i64);
        let ok = rng.gen_range(0..2u32) == 0;
        match rng.gen_range(0..3u32) {
            0 => (SetInv::Add(x), ok),
            1 => (SetInv::Remove(x), ok),
            _ => (SetInv::Contains(x), ok),
        }
    };
    agree::<SetAdt<i64>, _>(&rel, &SetHybrid, gen, set::to_spec_op, PAIRS, 12);
}

#[test]
fn queue_derived_agrees_with_table_ii() {
    use fifo_queue::{QueueAdt, QueueInv, QueueRes, QueueTableII};
    let rel = derived(AdtConfig::queue());
    let gen = |rng: &mut StdRng| -> (QueueInv<i64>, QueueRes<i64>) {
        let v = rng.gen_range(0..8i64);
        if rng.gen_range(0..2u32) == 0 {
            (QueueInv::Enq(v), QueueRes::Ok)
        } else {
            (QueueInv::Deq, QueueRes::Item(v))
        }
    };
    agree::<QueueAdt<i64>, _>(&rel, &QueueTableII, gen, fifo_queue::to_spec_op, PAIRS, 13);
}

#[test]
fn semiqueue_derived_agrees_with_table_iv() {
    use semiqueue::{SemiqueueAdt, SemiqueueHybrid, SqInv, SqRes};
    let rel = derived(AdtConfig::semiqueue());
    let gen = |rng: &mut StdRng| -> (SqInv<i64>, SqRes<i64>) {
        let v = rng.gen_range(0..5i64);
        if rng.gen_range(0..2u32) == 0 {
            (SqInv::Ins(v), SqRes::Ok)
        } else {
            (SqInv::Rem, SqRes::Item(v))
        }
    };
    agree::<SemiqueueAdt<i64>, _>(&rel, &SemiqueueHybrid, gen, semiqueue::to_spec_op, PAIRS, 14);
}

#[test]
fn file_derived_agrees_with_table_i() {
    use file::{FileAdt, FileHybrid, FileInv, FileRes};
    let rel = derived(AdtConfig::file());
    let gen = |rng: &mut StdRng| -> (FileInv<i64>, FileRes<i64>) {
        let v = rng.gen_range(0..6i64);
        if rng.gen_range(0..2u32) == 0 {
            (FileInv::Write(v), FileRes::Ok)
        } else {
            (FileInv::Read, FileRes::Val(v))
        }
    };
    agree::<FileAdt<i64>, _>(&rel, &FileHybrid, gen, file::to_spec_op, PAIRS, 15);
}

#[test]
fn account_derived_agrees_with_table_v() {
    use account::{AccountAdt, AccountHybrid, AccountInv, AccountRes};
    let rel = derived(AdtConfig::account());
    let gen = |rng: &mut StdRng| -> (AccountInv, AccountRes) {
        let amt = Rational::new(rng.gen_range(1..60i64) as i128, rng.gen_range(1..4i64) as i128);
        match rng.gen_range(0..4u32) {
            0 => (AccountInv::Credit(amt), AccountRes::Ok),
            1 => (AccountInv::Post(amt), AccountRes::Ok),
            2 => (AccountInv::Debit(amt), AccountRes::Debited),
            _ => (AccountInv::Debit(amt), AccountRes::Overdraft),
        }
    };
    agree::<AccountAdt, _>(&rel, &AccountHybrid, gen, account::to_spec_op, PAIRS, 16);
}

#[test]
fn directory_derived_agrees_with_hand_written() {
    use directory::{DirInv, DirRes, DirectoryAdt, DirectoryHybrid};
    let rel = derived(AdtConfig::directory());
    let gen = |rng: &mut StdRng| -> (DirInv<String, i64>, DirRes<i64>) {
        let k = ["a", "b", "c", "d"][rng.gen_range(0..4usize)].to_string();
        let v = rng.gen_range(0..5i64);
        match rng.gen_range(0..6u32) {
            0 => (DirInv::Insert(k, v), DirRes::Inserted),
            1 => (DirInv::Insert(k, v), DirRes::Duplicate),
            2 => (DirInv::Remove(k), DirRes::Val(v)),
            3 => (DirInv::Remove(k), DirRes::Missing),
            4 => (DirInv::Lookup(k), DirRes::Val(v)),
            _ => (DirInv::Lookup(k), DirRes::Missing),
        }
    };
    agree::<DirectoryAdt<String, i64>, _>(
        &rel,
        &DirectoryHybrid,
        gen,
        directory::to_spec_op,
        PAIRS,
        17,
    );
}
