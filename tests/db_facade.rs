//! The `Db` facade, end to end: scoped transactions retry *transient*
//! failures (deadlock dooms, refused votes, lock timeouts) and apply
//! their effects exactly once; fatal failures surface immediately; and
//! `Db::open` alone — no Registry, no replay wiring — fully recovers a
//! killed session's durable state.
//!
//! `HCC_DURABILITY` / `HCC_WAL_STRIPES` override the storage axes — CI
//! runs this suite under the full durability × stripes matrix.

use hybrid_cc::adts::account::AccountObject;
use hybrid_cc::adts::counter::CounterObject;
use hybrid_cc::spec::Rational;
use hybrid_cc::storage::{CompactionPolicy, StorageError};
use hybrid_cc::workload::crash::truncate_tail;
use hybrid_cc::{Db, HccError, RetryPolicy};
use proptest::prelude::*;
use std::path::PathBuf;
use std::sync::Arc;
use std::time::Duration;

fn tmp(name: &str) -> PathBuf {
    let mut p = std::env::temp_dir();
    p.push(format!("hcc-dbfacade-{}-{}", std::process::id(), name));
    let _ = std::fs::remove_dir_all(&p);
    p
}

fn money(n: i64) -> Rational {
    Rational::from_int(n)
}

/// A commit-path transient failure (the transaction doomed as a deadlock
/// victim) is retried by the scope, and the closure's effects land
/// exactly once — not zero times, not twice.
#[test]
fn doomed_commit_is_retried_and_applies_exactly_once() {
    let db = Db::in_memory();
    let c = db.object::<CounterObject>("c").unwrap();
    let mut first = true;
    db.transact(|tx| {
        c.inc(tx, 5)?;
        if first {
            first = false;
            // Mark this attempt a deadlock victim: `commit` will refuse
            // it with `CommitError::Doomed` — classified transient.
            tx.doom();
        }
        Ok(())
    })
    .unwrap();
    assert_eq!(c.committed_value(), 5, "exactly one increment despite the retry");
    assert_eq!(db.committed_count(), 1);
    assert_eq!(db.aborted_count(), 1, "the doomed attempt was aborted, then retried");
}

/// A fatal error is surfaced on the first attempt — never retried — and
/// the transaction's effects are rolled back.
#[test]
fn fatal_storage_error_is_surfaced_not_retried() {
    let db = Db::in_memory();
    let c = db.object::<CounterObject>("c").unwrap();
    let mut attempts = 0u32;
    let res: Result<(), HccError> = db.transact(|tx| {
        attempts += 1;
        c.inc(tx, 1)?;
        Err(HccError::Storage(StorageError::Io(std::io::Error::other("disk gone"))))
    });
    match res {
        Err(HccError::Storage(_)) => {}
        other => panic!("expected the storage error verbatim, got {other:?}"),
    }
    assert_eq!(attempts, 1, "fatal errors must not burn the retry budget");
    assert_eq!(c.committed_value(), 0, "the attempt was aborted");
}

/// Exhausting the retry budget reports how hard it tried and why it
/// last failed.
#[test]
fn transient_error_past_the_budget_reports_exhaustion() {
    let db = Db::builder().retry(RetryPolicy { max_retries: 3, ..Default::default() }).in_memory();
    let mut attempts = 0u32;
    let res: Result<(), HccError> = db.transact(|tx| {
        attempts += 1;
        tx.doom();
        Ok(())
    });
    match res {
        Err(HccError::RetriesExhausted { attempts: reported, last }) => {
            assert_eq!(reported, 4, "initial try + 3 retries");
            assert!(last.is_transient(), "the final failure was still transient");
        }
        other => panic!("expected RetriesExhausted, got {other:?}"),
    }
    assert_eq!(attempts, 4);
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(8))]

    /// Exactly-once under *real* contention: four workers move money
    /// between two accounts in opposite lock orders (a classic deadlock
    /// recipe) with a short lock timeout, so attempts die of both dooms
    /// and timeouts and get retried by the scope. Every transfer must
    /// land exactly once: with equal traffic in both directions the
    /// balances return to their funding values, and money is conserved
    /// to the cent. A double-applied (or dropped) retry shifts a
    /// balance and fails the invariant.
    #[test]
    fn contended_transfers_apply_exactly_once(per_worker in 4usize..14) {
        let db = Arc::new(
            Db::builder().lock_timeout(Duration::from_millis(10)).in_memory(),
        );
        let a = db.object::<AccountObject>("a").unwrap();
        let b = db.object::<AccountObject>("b").unwrap();
        db.transact(|tx| {
            a.credit(tx, money(1000))?;
            b.credit(tx, money(1000))?;
            Ok(())
        })
        .unwrap();

        std::thread::scope(|s| {
            for w in 0..4usize {
                let db = db.clone();
                let (a, b) = (a.clone(), b.clone());
                s.spawn(move || {
                    for _ in 0..per_worker {
                        // Workers 0/2 move a→b, workers 1/3 move b→a —
                        // opposite traversal orders.
                        let (from, to) = if w % 2 == 0 { (&a, &b) } else { (&b, &a) };
                        db.transact(|tx| {
                            let ok = from.debit(tx, money(1))?;
                            assert!(ok, "both accounts stay well funded");
                            to.credit(tx, money(1))?;
                            Ok(())
                        })
                        .expect("transfers retry past transient contention");
                    }
                });
            }
        });

        // Equal counts in each direction: exactly-once application means
        // both balances are back at 1000 and the total is conserved.
        prop_assert_eq!(a.committed_balance(), money(1000));
        prop_assert_eq!(b.committed_balance(), money(1000));
        prop_assert_eq!(
            db.committed_count(),
            1 + 4 * per_worker as u64,
            "every transfer committed exactly once"
        );
    }
}

/// Satellite regression: `Db::open` alone — no manual `Registry`
/// wiring, no replay loop — fully recovers the `durable_bank` example's
/// state after a kill point. The kill is the same injection the crash
/// suite uses: truncate the WAL tails as a power failure would. The
/// recovered balance must be exactly the sum of a prefix of the
/// acknowledged commits (checkpoints folded in), and a zero-byte cut
/// must lose nothing.
#[test]
fn db_open_alone_recovers_durable_bank_state_after_a_kill_point() {
    const TXNS: i64 = 40;
    for (i, cut) in [0u64, 64, 700, 4096].into_iter().enumerate() {
        let dir = tmp(&format!("bankkill-{i}"));
        let full_balance = {
            // The durable_bank example's run phase, verbatim API.
            let db = Db::builder()
                .segment_max_bytes(2048)
                .compaction(CompactionPolicy::every_n(7))
                .env_overrides()
                .open(&dir)
                .unwrap();
            let acct = db.object::<AccountObject>("acct").unwrap();
            for n in 1..=TXNS {
                db.transact(|tx| acct.credit(tx, money(n)).map_err(Into::into)).unwrap();
                db.maybe_checkpoint().unwrap();
            }
            acct.committed_balance()
        };
        truncate_tail(&dir, cut).unwrap();

        // The recover phase: open and ask. Nothing else.
        let db = Db::builder().env_overrides().open(&dir).unwrap();
        let acct = db.object::<AccountObject>("acct").unwrap();
        let got = acct.committed_balance();

        let prefix_sums: Vec<Rational> = (0..=TXNS)
            .scan(Rational::ZERO, |acc, n| {
                *acc += money(n);
                Some(*acc)
            })
            .collect();
        assert!(
            prefix_sums.contains(&got),
            "recovered balance {got} is not any commit prefix (cut {cut})"
        );
        if cut == 0 {
            assert_eq!(got, full_balance, "clean shutdown loses nothing");
            assert!(!db.recovery_report().torn_tail);
        }
        // The checkpoint policy fired during the run; everything it
        // covered must survive every cut (the checkpoint file itself is
        // out of a WAL tail cut's reach). The sequential driver commits
        // txn n at timestamp n, so the watermark indexes the prefix sums
        // directly.
        let ckpt_ts = db.recovery_report().checkpoint_ts;
        assert!(ckpt_ts > 0, "the EveryN policy checkpointed during the run");
        assert!(ckpt_ts <= TXNS as u64);
        assert!(
            got >= prefix_sums[ckpt_ts as usize],
            "cut {cut} lost checkpoint-covered commits: balance {got} < prefix through ts {ckpt_ts}"
        );
    }
}

/// The escape hatch and the facade interoperate: transactions begun
/// manually on `db.manager()` and scoped `transact` calls land in one
/// log, and a fresh `Db::open` recovers the union.
#[test]
fn manual_escape_hatch_and_transact_share_one_log() {
    let dir = tmp("hatch");
    {
        let db = Db::builder().env_overrides().open(&dir).unwrap();
        let acct = db.object::<AccountObject>("acct").unwrap();
        db.transact(|tx| acct.credit(tx, money(10)).map_err(Into::into)).unwrap();
        // Low-level interleaving through the documented escape hatch.
        let mgr = db.manager();
        let t1 = mgr.begin();
        let t2 = mgr.begin();
        acct.credit(&t1, money(5)).unwrap();
        acct.credit(&t2, money(7)).unwrap();
        mgr.commit(t2).unwrap();
        mgr.commit(t1).unwrap();
        db.transact(|tx| acct.credit(tx, money(1)).map_err(Into::into)).unwrap();
    }
    let db = Db::builder().env_overrides().open(&dir).unwrap();
    let acct = db.object::<AccountObject>("acct").unwrap();
    assert_eq!(acct.committed_balance(), money(23));
    assert_eq!(db.recovery_report().replayed, 4);
}
