//! Differential acceptance tests for the declarative ADT surface: the
//! **ported** Counter and Set (`SpecObject<CounterDef>` /
//! `SpecObject<SetDef<i64>>`, defined only through the public `AdtDef`
//! path) against their hand-written twins (`CounterObject` /
//! `SetObject`), proving
//!
//! 1. **byte-identical WAL traces and checkpoint images**: one
//!    deterministic workload driven through both flavors produces
//!    bit-for-bit identical store directories — segments, checkpoint
//!    files, everything;
//! 2. **identical lock-grant decisions**: the derived `SpecLock` answers
//!    exactly as the hand-written hybrid relation on an exhaustive
//!    operation domain;
//! 3. **interchangeable recovery**: a log written by one flavor recovers
//!    through the other, because the bytes *are* the same format.

use hybrid_cc::adts::counter::{CounterDef, CounterHybrid, CounterInv, CounterObject, CounterRes};
use hybrid_cc::adts::set::{SetDef, SetHybrid, SetInv, SetObject};
use hybrid_cc::adts::SpecObject;
use hybrid_cc::core::runtime::{LockSpec, SpecLock};
use hybrid_cc::storage::CompactionPolicy;
use hybrid_cc::Db;
use std::collections::BTreeMap;
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, Ordering};

fn tmp(name: &str) -> PathBuf {
    static N: AtomicU64 = AtomicU64::new(0);
    let mut p = std::env::temp_dir();
    p.push(format!(
        "hcc-defined-{}-{}-{}",
        std::process::id(),
        name,
        N.fetch_add(1, Ordering::Relaxed)
    ));
    let _ = std::fs::remove_dir_all(&p);
    p
}

fn open_db(dir: &Path) -> Db {
    Db::builder()
        .segment_max_bytes(1024)
        .compaction(CompactionPolicy::never())
        .env_overrides()
        .open(dir)
        .expect("open database")
}

/// The deterministic op script both flavors run: `(round, counter inv,
/// set inv)` — covers updates, reads, no-op refusals, and a mid-run
/// checkpoint.
fn script() -> Vec<(i64, Vec<CounterInv>, Vec<SetInv<i64>>)> {
    (0..24)
        .map(|i| {
            let mut c = vec![CounterInv::Inc(i)];
            if i % 3 == 0 {
                c.push(CounterInv::Dec(2 * i));
            }
            if i % 4 == 0 {
                c.push(CounterInv::Read);
            }
            let s = vec![SetInv::Add(i % 6), SetInv::Remove((i + 2) % 7), SetInv::Contains(i % 5)];
            (i, c, s)
        })
        .collect()
}

/// The two implementation flavors under one interface, so the
/// differential runs *one* driver — any change to the script or its
/// bookkeeping applies to both sides by construction.
enum Flavor {
    Hand(std::sync::Arc<CounterObject>, std::sync::Arc<SetObject<i64>>),
    Ported(std::sync::Arc<SpecObject<CounterDef>>, std::sync::Arc<SpecObject<SetDef<i64>>>),
}

impl Flavor {
    fn open(db: &Db, ported: bool) -> Flavor {
        if ported {
            Flavor::Ported(
                db.object::<SpecObject<CounterDef>>("c").unwrap(),
                db.object::<SpecObject<SetDef<i64>>>("s").unwrap(),
            )
        } else {
            Flavor::Hand(
                db.object::<CounterObject>("c").unwrap(),
                db.object::<SetObject<i64>>("s").unwrap(),
            )
        }
    }

    fn counter(
        &self,
        tx: &std::sync::Arc<hybrid_cc::core::TxnHandle>,
        op: CounterInv,
    ) -> Result<CounterRes, hybrid_cc::core::ExecError> {
        match self {
            Flavor::Hand(c, _) => c.inner().execute(tx, op),
            Flavor::Ported(c, _) => c.execute(tx, op),
        }
    }

    fn set(
        &self,
        tx: &std::sync::Arc<hybrid_cc::core::TxnHandle>,
        op: SetInv<i64>,
    ) -> Result<bool, hybrid_cc::core::ExecError> {
        match self {
            Flavor::Hand(_, s) => s.inner().execute(tx, op),
            Flavor::Ported(_, s) => s.execute(tx, op),
        }
    }
}

/// Drive the script through one flavor; return the response transcript.
fn drive(dir: &Path, ported: bool) -> Vec<String> {
    let db = open_db(dir);
    let flavor = Flavor::open(&db, ported);
    let mut transcript = Vec::new();
    for (i, c_ops, s_ops) in script() {
        db.transact(|tx| {
            for op in &c_ops {
                let res = flavor.counter(tx, op.clone())?;
                transcript.push(format!("{op:?}->{res:?}"));
            }
            for op in &s_ops {
                let res = flavor.set(tx, op.clone())?;
                transcript.push(format!("{op:?}->{res:?}"));
            }
            Ok(())
        })
        .unwrap();
        if i == 11 {
            db.checkpoint().unwrap().expect("mid-run checkpoint");
        }
    }
    transcript
}

/// Every file under `dir`, relative path → contents.
fn dir_image(dir: &Path) -> BTreeMap<String, Vec<u8>> {
    fn walk(root: &Path, dir: &Path, out: &mut BTreeMap<String, Vec<u8>>) {
        for entry in std::fs::read_dir(dir).unwrap() {
            let path = entry.unwrap().path();
            if path.is_dir() {
                walk(root, &path, out);
            } else {
                let rel = path.strip_prefix(root).unwrap().to_string_lossy().into_owned();
                out.insert(rel, std::fs::read(&path).unwrap());
            }
        }
    }
    let mut out = BTreeMap::new();
    walk(dir, dir, &mut out);
    out
}

#[test]
fn ported_counter_and_set_write_byte_identical_wal_traces() {
    let (dir_a, dir_b) = (tmp("hand"), tmp("ported"));
    let transcript_a = drive(&dir_a, false);
    let transcript_b = drive(&dir_b, true);
    assert_eq!(transcript_a, transcript_b, "same script, same responses");

    let (image_a, image_b) = (dir_image(&dir_a), dir_image(&dir_b));
    assert_eq!(
        image_a.keys().collect::<Vec<_>>(),
        image_b.keys().collect::<Vec<_>>(),
        "same files on disk"
    );
    assert!(image_a.keys().any(|f| f.contains("seg-")), "segments were written");
    assert!(image_a.keys().any(|f| f.contains("ckpt") || f.contains("HCC")), "checkpoint saved");
    for (file, bytes_a) in &image_a {
        assert_eq!(
            bytes_a, &image_b[file],
            "file {file} differs between the hand-written and ported runs"
        );
    }
}

/// A log written by the ported flavor is *the same format*: it recovers
/// through the hand-written twin, and vice versa — plus the crash shape:
/// both dirs truncated identically recover to identical states.
#[test]
fn ported_logs_recover_interchangeably_and_after_a_crash() {
    let (dir_a, dir_b) = (tmp("hand-x"), tmp("ported-x"));
    drive(&dir_a, false);
    drive(&dir_b, true);

    // Crash both at the same point.
    for dir in [&dir_a, &dir_b] {
        hybrid_cc::workload::crash::truncate_tail(dir, 300).unwrap();
    }

    // Cross-recovery: the hand-written dir through the ported types...
    let db = open_db(&dir_a);
    let c_ported = db.object::<SpecObject<CounterDef>>("c").unwrap();
    let s_ported = db.object::<SpecObject<SetDef<i64>>>("s").unwrap();
    // ...and the ported dir through the hand-written types.
    let db_b = open_db(&dir_b);
    let c_hand = db_b.object::<CounterObject>("c").unwrap();
    let s_hand = db_b.object::<SetObject<i64>>("s").unwrap();

    assert_eq!(c_ported.committed_state(), c_hand.committed_value(), "counter states agree");
    let ported_set: Vec<i64> = s_ported.committed_state().into_iter().collect();
    let hand_set: Vec<i64> = s_hand.inner().committed_snapshot().into_iter().collect();
    assert_eq!(ported_set, hand_set, "set states agree");
    assert_eq!(
        db.recovery_report().replayed,
        db_b.recovery_report().replayed,
        "identical bytes, identical tails"
    );
}

/// Attaching a *used* `SpecObject` to a database whose log holds state
/// under that name must fail as a materialization error (and poison the
/// name, like the hand-written wrappers' failed attaches) — not panic:
/// installing a recovered version over existing history is refused by
/// `TxObject::install_version`.
#[test]
fn attaching_a_used_spec_object_fails_cleanly_instead_of_panicking() {
    use hybrid_cc::core::runtime::TxParticipant;
    use hybrid_cc::core::TxnHandle;
    use hybrid_cc::spec::TxnId;
    use hybrid_cc::HccError;
    use std::sync::Arc;

    let dir = tmp("dirty-attach");
    {
        let db = open_db(&dir);
        let c = db.object::<SpecObject<CounterDef>>("c").unwrap();
        db.transact(|tx| c.execute(tx, CounterInv::Inc(5)).map(|_| ()).map_err(Into::into))
            .unwrap();
        db.checkpoint().unwrap().expect("checkpoint so recovery restores a snapshot");
    }
    let db = open_db(&dir);
    // A standalone instance with its own committed history: not fresh.
    let dirty = Arc::new(SpecObject::<CounterDef>::new("c"));
    let t = TxnHandle::new(TxnId(1));
    dirty.execute(&t, CounterInv::Inc(1)).unwrap();
    dirty.inner().commit_at(t.id(), 1);
    let err = db.attach(dirty).err().expect("used instance must be refused");
    assert!(matches!(err, HccError::Recovery(_)), "failed materialization, not a panic: {err}");
    // The name is poisoned for further attaches...
    let fresh = Arc::new(SpecObject::<CounterDef>::new("c"));
    assert!(matches!(db.attach(fresh), Err(HccError::PoisonedRecovery { .. })));
    // ...but `Db::object` (always a fresh instance) still recovers.
    let c = db.object::<SpecObject<CounterDef>>("c").unwrap();
    assert_eq!(c.committed_state(), 5, "recovered in full despite the failed attach");
}

#[test]
fn ported_counter_lock_decisions_match_hand_written_exhaustively() {
    let derived = SpecLock::<CounterDef>::from_def();
    let hand = CounterHybrid;
    let mut domain: Vec<(CounterInv, CounterRes)> = Vec::new();
    for n in [-7i64, -1, 0, 1, 2, 9] {
        domain.push((CounterInv::Inc(n), CounterRes::Ok));
        domain.push((CounterInv::Dec(n), CounterRes::Ok));
    }
    for v in [-3i64, 0, 5] {
        domain.push((CounterInv::Read, CounterRes::Val(v)));
    }
    let mut conflicts = 0;
    for a in &domain {
        for b in &domain {
            let (got, want) = (derived.conflicts(a, b), hand.conflicts(a, b));
            assert_eq!(got, want, "lock-grant decision differs on {a:?} vs {b:?}");
            conflicts += want as usize;
        }
    }
    assert!(conflicts > 0, "vacuous agreement");
    assert_eq!(derived.name(), "hybrid-derived");
}

#[test]
fn ported_set_lock_decisions_match_hand_written_exhaustively() {
    let derived = SpecLock::<SetDef<i64>>::from_def();
    let hand = SetHybrid;
    let mut domain: Vec<(SetInv<i64>, bool)> = Vec::new();
    for x in 0..4i64 {
        for ok in [true, false] {
            domain.push((SetInv::Add(x), ok));
            domain.push((SetInv::Remove(x), ok));
            domain.push((SetInv::Contains(x), ok));
        }
    }
    let mut conflicts = 0;
    for a in &domain {
        for b in &domain {
            let (got, want) = (derived.conflicts(a, b), hand.conflicts(a, b));
            assert_eq!(got, want, "lock-grant decision differs on {a:?} vs {b:?}");
            conflicts += want as usize;
        }
    }
    assert!(conflicts > 0, "vacuous agreement");
}
