//! The wait-free read path, end to end: read-only transactions pin a
//! stable watermark, acquire **zero transactional locks**, stay
//! decoupled from writers, and observe a **consistent prefix** of the
//! commit order — checked against the `hcc-verify` hybrid-atomicity
//! oracle. Pin lifecycle (drop, panic unwind), time-travel reads, the
//! typed below-checkpoint refusal, and reads across a mid-run fuzzy
//! checkpoint are covered here too.
//!
//! `HCC_DURABILITY` / `HCC_WAL_STRIPES` override the storage axes — CI
//! runs this suite under the full durability × stripes matrix.

use hybrid_cc::adts::account::AccountObject;
use hybrid_cc::adts::counter::CounterObject;
use hybrid_cc::spec::history::HistoryBuilder;
use hybrid_cc::spec::specs::CounterSpec;
use hybrid_cc::spec::{ObjectId, Rational};
use hybrid_cc::verify::{hybrid_atomic, SystemSpecs};
use hybrid_cc::{Db, HccError};
use std::path::PathBuf;
use std::sync::Arc;

fn tmp(name: &str) -> PathBuf {
    let mut p = std::env::temp_dir();
    p.push(format!("hcc-readpath-{}-{}", std::process::id(), name));
    let _ = std::fs::remove_dir_all(&p);
    p
}

fn money(n: i64) -> Rational {
    Rational::from_int(n)
}

/// The tentpole claim, measured: a pure-read phase moves the lock
/// manager's counters by exactly zero — no grants, no refusals, no
/// waits — while the read-path counters account for every read.
#[test]
fn snapshot_reads_acquire_zero_locks() {
    let db = Db::in_memory();
    let a = db.object::<AccountObject>("a").unwrap();
    let b = db.object::<AccountObject>("b").unwrap();
    db.transact(|tx| {
        a.credit(tx, money(100))?;
        b.credit(tx, money(50))?;
        Ok(())
    })
    .unwrap();

    let before = db.stats();
    for _ in 0..64 {
        let (va, vb) = db
            .transact_read(|rtx| {
                Ok((rtx.view::<AccountObject>("a")?, rtx.view::<AccountObject>("b")?))
            })
            .unwrap();
        assert_eq!(va, money(100));
        assert_eq!(vb, money(50));
    }
    let delta = db.stats().delta(&before);
    assert_eq!(delta.sum_prefix("lock.grants"), 0, "read-only phase granted a lock");
    assert_eq!(delta.sum_prefix("lock.refusals"), 0, "read-only phase was refused a lock");
    assert_eq!(delta.sum_prefix("lock.waits"), 0, "read-only phase waited on a lock");
    assert_eq!(delta.counter("txn.read_only.begun"), 64);
    assert_eq!(delta.counter("txn.read_only.completed"), 64);
    assert_eq!(db.stats().gauge("horizon.pins"), 0, "no pin outlives its ReadTx");
}

/// Readers racing a writer observe a consistent prefix: every commit
/// increments both counters together, so any snapshot where they differ
/// would be a non-prefix (fractured) read. The observations are then
/// re-checked externally: writers and readers are assembled into one
/// formal history (readers serialized at their pinned watermark) and
/// the `hcc-verify` hybrid-atomicity oracle must accept it.
#[test]
fn concurrent_readers_observe_a_consistent_prefix_of_the_commit_order() {
    const WRITES: u64 = 40;
    const READERS: u64 = 8;
    let db = Arc::new(Db::in_memory());
    let c1 = db.object::<CounterObject>("c1").unwrap();
    let c2 = db.object::<CounterObject>("c2").unwrap();

    let writer = {
        let db = db.clone();
        let (c1, c2) = (c1.clone(), c2.clone());
        std::thread::spawn(move || {
            let mut commit_ts = Vec::with_capacity(WRITES as usize);
            for _ in 0..WRITES {
                let (_, ts) = db
                    .transact_ts(|tx| {
                        c1.inc(tx, 1)?;
                        c2.inc(tx, 1)?;
                        Ok(())
                    })
                    .unwrap();
                commit_ts.push(ts.0);
            }
            commit_ts
        })
    };
    let mut reads = Vec::new();
    while reads.len() < READERS as usize {
        let (w, v1, v2) = db
            .transact_read(|rtx| Ok((rtx.watermark(), rtx.view_of(&*c1)?, rtx.view_of(&*c2)?)))
            .unwrap();
        assert_eq!(v1, v2, "fractured read: counters diverge at watermark {w}");
        reads.push((w, v1, v2));
        std::thread::yield_now();
    }
    let commit_ts = writer.join().unwrap();

    // Every observed count equals the number of commits at or below the
    // watermark — the prefix, no more, no less.
    for &(w, v1, _) in &reads {
        let prefix = commit_ts.iter().filter(|&&ts| ts <= w).count() as i64;
        assert_eq!(v1, prefix, "watermark {w} should expose exactly {prefix} commits");
    }

    // External check: assemble the *serialized* history — every
    // transaction's events emitted in commit-timestamp order, writer
    // timestamps scaled by 10 so each reader fits strictly between its
    // watermark and the next commit. (Emitting in timestamp order
    // matters: a reader can respond before a concurrent writer with a
    // higher timestamp finishes, so appending all writers first would
    // fabricate precedes edges the execution never had.) The
    // hybrid-atomicity oracle accepts iff every read observed exactly
    // its watermark's prefix.
    // (scaled commit ts, txn id, Some(observed counter pair) for reads).
    type Entry = (u64, u64, Option<(i64, i64)>);
    let mut entries: Vec<Entry> = Vec::new();
    for (i, &ts) in commit_ts.iter().enumerate() {
        entries.push((10 * ts, i as u64 + 1, None));
    }
    for (j, &(w, v1, v2)) in reads.iter().enumerate() {
        entries.push((10 * w + 1 + j as u64, 1_000_000 + j as u64, Some((v1, v2))));
    }
    entries.sort_by_key(|&(ts, _, _)| ts);
    let mut hb = HistoryBuilder::new();
    for (ts, txn, read) in entries {
        hb = match read {
            None => hb.op(0, txn, CounterSpec::inc(1), hybrid_cc::spec::Value::Unit).op(
                1,
                txn,
                CounterSpec::inc(1),
                hybrid_cc::spec::Value::Unit,
            ),
            Some((v1, v2)) => {
                hb.op(0, txn, CounterSpec::read(), v1).op(1, txn, CounterSpec::read(), v2)
            }
        }
        .commit(0, txn, ts)
        .commit(1, txn, ts);
    }
    let history = hb.build();
    history.well_formed().expect("assembled history is well formed");
    let specs = SystemSpecs::new()
        .with(ObjectId(0), Arc::new(CounterSpec))
        .with(ObjectId(1), Arc::new(CounterSpec));
    assert!(
        hybrid_atomic(&history, &specs),
        "snapshot reads are not serializable at their watermarks:\n{history:?}"
    );
}

/// Time-travel: while a pin holds folding back, `read_at(ts)` exposes
/// each historical image — and the refusal modes are typed. Above the
/// stable watermark is the *transient* contended error; an image the
/// (eager) fold has already consumed is the *fatal* compacted error —
/// never a silently newer answer.
#[test]
fn read_at_exposes_history_and_refuses_out_of_range_timestamps() {
    let db = Db::in_memory();
    let a = db.object::<AccountObject>("a").unwrap();
    // Each read_at pins its timestamp before the next commit, so folding
    // stays below the oldest live pin and every image stays readable.
    let mut pinned = Vec::new();
    for amount in [10, 20, 30] {
        let (_, ts) = db.transact_ts(|tx| a.credit(tx, money(amount)).map_err(Into::into)).unwrap();
        pinned.push(db.read_at(ts.0).unwrap());
    }
    for (i, rtx) in pinned.iter().enumerate() {
        let total = money([10, 30, 60][i]);
        assert_eq!(rtx.view_of(&*a).unwrap(), total, "image at ts {}", rtx.watermark());
    }
    let newest = pinned.last().unwrap().watermark();
    let future = newest + 100;
    match db.read_at(future) {
        Err(e @ HccError::SnapshotContended { .. }) => {
            assert!(e.is_transient(), "above-watermark refusal must be retriable")
        }
        other => panic!("expected SnapshotContended, got {other:?}"),
    };
    // Drop the pins oldest-first and let the fold catch up: the oldest
    // image is then genuinely gone, and asking for it is the fatal,
    // typed refusal.
    let oldest = pinned.first().unwrap().watermark();
    drop(pinned);
    db.transact(|tx| a.credit(tx, money(1)).map_err(Into::into)).unwrap();
    db.transact(|tx| a.credit(tx, money(1)).map_err(Into::into)).unwrap();
    let rtx = db.read_at(oldest).expect("pinning a folded timestamp is caught at view time");
    match rtx.view_of(&*a) {
        Err(e @ HccError::SnapshotCompacted { .. }) => {
            assert!(!e.is_transient(), "the folded image never comes back")
        }
        other => panic!("expected SnapshotCompacted, got {other:?}"),
    };
}

/// Below-checkpoint reads are refused with the typed fatal error: the
/// checkpoint folded that history into its image, so no object can
/// reconstruct the older state — and must say so rather than answer
/// with a newer balance.
#[test]
fn read_at_below_the_checkpoint_watermark_is_a_typed_fatal_error() {
    let dir = tmp("below-ckpt");
    let (ts_old, ckpt_ts) = {
        let db = Db::open(&dir).unwrap();
        let a = db.object::<AccountObject>("a").unwrap();
        let (_, ts_old) = db.transact_ts(|tx| a.credit(tx, money(5)).map_err(Into::into)).unwrap();
        db.transact(|tx| a.credit(tx, money(5)).map_err(Into::into)).unwrap();
        let ckpt = db.checkpoint().unwrap().expect("durable db checkpoints");
        (ts_old.0, ckpt.last_ts)
    };
    assert!(ts_old < ckpt_ts);
    let db = Db::open(&dir).unwrap();
    let a = db.object::<AccountObject>("a").unwrap();
    assert_eq!(a.committed_balance(), money(10), "recovered from the checkpoint");
    match db.read_at(ts_old) {
        Err(e @ HccError::SnapshotCompacted { .. }) => {
            assert!(!e.is_transient(), "the folded image never comes back")
        }
        other => panic!("expected SnapshotCompacted, got {other:?}"),
    };
    let _ = std::fs::remove_dir_all(&dir);
}

/// A reader whose watermark predates a mid-run fuzzy checkpoint keeps
/// observing its pinned (ts0) image: the checkpoint proceeds at its own
/// watermark without waiting for the reader, and the reader's pin keeps
/// its snapshot exact across the checkpoint.
#[test]
fn snapshot_reads_survive_a_mid_run_fuzzy_checkpoint() {
    let dir = tmp("mid-ckpt");
    let db = Db::open(&dir).unwrap();
    let a = db.object::<AccountObject>("a").unwrap();
    db.transact(|tx| a.credit(tx, money(42)).map_err(Into::into)).unwrap();

    let rtx = db.begin_read();
    assert_eq!(rtx.view_of(&*a).unwrap(), money(42));
    for _ in 0..3 {
        db.transact(|tx| a.credit(tx, money(1)).map_err(Into::into)).unwrap();
    }
    db.checkpoint().unwrap().expect("checkpoint completes under a live reader pin");
    assert_eq!(
        rtx.view_of(&*a).unwrap(),
        money(42),
        "the pre-checkpoint reader still sees its ts0 image"
    );
    drop(rtx);
    assert_eq!(a.committed_balance(), money(45));
    let _ = std::fs::remove_dir_all(&dir);
}

/// Pin lifecycle: dropping a `ReadTx` releases its pin, and a panic
/// unwinding through a read closure releases it too — an abandoned
/// reader can never wedge compaction.
#[test]
fn dropped_and_panicked_readers_release_their_pins() {
    let db = Db::in_memory();
    let a = db.object::<AccountObject>("a").unwrap();
    db.transact(|tx| a.credit(tx, money(1)).map_err(Into::into)).unwrap();

    let rtx = db.begin_read();
    assert_eq!(db.stats().gauge("horizon.pins"), 1);
    drop(rtx);
    assert_eq!(db.stats().gauge("horizon.pins"), 0);

    let unwound = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
        let _ = db.transact_read(|rtx| {
            let _ = rtx.view_of(&*a)?;
            panic!("reader died mid-snapshot");
            #[allow(unreachable_code)]
            Ok(())
        });
    }));
    assert!(unwound.is_err(), "the panic propagates");
    assert_eq!(db.stats().gauge("horizon.pins"), 0, "unwind released the pin");
    let begun = db.stats().counter("txn.read_only.begun");
    let completed = db.stats().counter("txn.read_only.completed");
    assert_eq!(begun, completed, "every begun read completed, panics included");
}
