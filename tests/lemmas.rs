//! Bounded checks of the paper's supporting lemmas — the statements the
//! correctness proof of Section 5.2 leans on, validated exhaustively over
//! small operation sequences for the bundled types.

use hybrid_cc::relations::enumerate::legal_sequences;
use hybrid_cc::relations::invalidated_by::{invalidated_by, Bounds};
use hybrid_cc::relations::relation::InstanceRelation;
use hybrid_cc::spec::adt::{equieffective, Adt, Frontier};
use hybrid_cc::spec::specs::{AccountSpec, FileSpec, QueueSpec, SemiqueueSpec};
use hybrid_cc::spec::{legal, Operation, Value};

fn dom() -> Vec<Value> {
    vec![Value::Int(1), Value::Int(2)]
}

fn cases() -> Vec<(Box<dyn Adt>, Vec<Operation>)> {
    vec![
        (Box::new(FileSpec::default()), FileSpec::alphabet(&dom())),
        (Box::new(QueueSpec), QueueSpec::alphabet(&dom())),
        (Box::new(SemiqueueSpec), SemiqueueSpec::alphabet(&dom())),
        (Box::new(AccountSpec), AccountSpec::alphabet(&[1, 2], &[5])),
    ]
}

fn ops_of(alpha: &[Operation], ids: &[usize]) -> Vec<Operation> {
    ids.iter().map(|&i| alpha[i].clone()).collect()
}

/// Lemma 4: if `h·k₁` and `h·k₂` are legal and no operation in `k₂`
/// depends on an operation in `k₁`, then `h·k₁·k₂` is legal.
#[test]
fn lemma_4_independent_suffixes_compose() {
    for (adt, alpha) in cases() {
        let r = invalidated_by(adt.as_ref(), &alpha, Bounds::default());
        let hs = legal_sequences(adt.as_ref(), &alpha, 2);
        for h in &hs {
            // k₁ and k₂ are continuations of h, up to length 2.
            let conts = continuations(adt.as_ref(), &alpha, &h.frontier, 2);
            for k1 in &conts {
                for k2 in &conts {
                    let independent = k2.iter().all(|&q2| k1.iter().all(|&q1| !r.contains(q2, q1)));
                    if !independent {
                        continue;
                    }
                    let mut seq = ops_of(&alpha, &h.ops);
                    seq.extend(ops_of(&alpha, k1));
                    seq.extend(ops_of(&alpha, k2));
                    assert!(
                        legal(adt.as_ref(), &seq),
                        "{}: Lemma 4 violated for h={:?} k1={:?} k2={:?}",
                        adt.type_name(),
                        ops_of(&alpha, &h.ops),
                        ops_of(&alpha, k1),
                        ops_of(&alpha, k2)
                    );
                }
            }
        }
    }
}

/// All continuations (index sequences) of a frontier up to `depth`,
/// including the empty one.
fn continuations(
    adt: &dyn Adt,
    alpha: &[Operation],
    frontier: &Frontier,
    depth: usize,
) -> Vec<Vec<usize>> {
    let mut out = vec![Vec::new()];
    let mut level = vec![(Vec::new(), frontier.clone())];
    for _ in 0..depth {
        let mut next = Vec::new();
        for (ids, f) in &level {
            for (i, op) in alpha.iter().enumerate() {
                let f2 = f.advance(adt, op);
                if !f2.is_empty() {
                    let mut ids2 = ids.clone();
                    ids2.push(i);
                    out.push(ids2.clone());
                    next.push((ids2, f2));
                }
            }
        }
        level = next;
    }
    out
}

/// Lemma 7: if `g` is an R-view of `h` for `q` (an R-closed subsequence
/// containing every operation of `h` that `q` depends on), then
/// `g·q` legal implies `h·q` legal.
#[test]
fn lemma_7_r_views_suffice() {
    for (adt, alpha) in cases() {
        let r = invalidated_by(adt.as_ref(), &alpha, Bounds::default());
        for h in legal_sequences(adt.as_ref(), &alpha, 3) {
            if h.ops.is_empty() {
                continue;
            }
            for (q, q_op) in alpha.iter().enumerate() {
                // Enumerate subsequences g of h (h is short).
                let n = h.ops.len();
                'subseq: for bits in 0u32..(1 << n) {
                    let g: Vec<usize> =
                        (0..n).filter(|&i| bits & (1 << i) != 0).map(|i| h.ops[i]).collect();
                    // g must be an R-view of h for q:
                    // (a) contains every p ∈ h with (q, p) ∈ R;
                    for (i, &p) in h.ops.iter().enumerate() {
                        if r.contains(q, p) && bits & (1 << i) == 0 {
                            continue 'subseq;
                        }
                    }
                    // (b) R-closed: if g contains h[j], it contains every
                    // earlier h[i] with (h[j], h[i]) ∈ R.
                    for j in 0..n {
                        if bits & (1 << j) == 0 {
                            continue;
                        }
                        for i in 0..j {
                            if r.contains(h.ops[j], h.ops[i]) && bits & (1 << i) == 0 {
                                continue 'subseq;
                            }
                        }
                    }
                    // g must itself be legal and g·q legal.
                    let mut gq = ops_of(&alpha, &g);
                    if !legal(adt.as_ref(), &gq) {
                        continue;
                    }
                    gq.push(q_op.clone());
                    if !legal(adt.as_ref(), &gq) {
                        continue;
                    }
                    // Then h·q must be legal.
                    let mut hq = ops_of(&alpha, &h.ops);
                    hq.push(q_op.clone());
                    assert!(
                        legal(adt.as_ref(), &hq),
                        "{}: Lemma 7 violated: h={:?} g={:?} q={:?}",
                        adt.type_name(),
                        ops_of(&alpha, &h.ops),
                        ops_of(&alpha, &g),
                        q_op
                    );
                }
            }
        }
    }
}

/// Definition 25 sanity: equieffectiveness is an equivalence relation on
/// short legal sequences, and equieffective prefixes accept the same
/// continuations.
#[test]
fn equieffectiveness_laws() {
    for (adt, alpha) in cases() {
        let seqs = legal_sequences(adt.as_ref(), &alpha, 2);
        for a in &seqs {
            let a_ops = ops_of(&alpha, &a.ops);
            assert!(equieffective(adt.as_ref(), &a_ops, &a_ops), "reflexive");
            for b in &seqs {
                let b_ops = ops_of(&alpha, &b.ops);
                if !equieffective(adt.as_ref(), &a_ops, &b_ops) {
                    continue;
                }
                assert!(equieffective(adt.as_ref(), &b_ops, &a_ops), "symmetric");
                // Same continuations accepted (depth 1 suffices to
                // distinguish frontiers in these specs... but check 2).
                for cont in continuations(adt.as_ref(), &alpha, &a.frontier, 2) {
                    let mut ax = a_ops.clone();
                    ax.extend(ops_of(&alpha, &cont));
                    let mut bx = b_ops.clone();
                    bx.extend(ops_of(&alpha, &cont));
                    assert_eq!(
                        legal(adt.as_ref(), &ax),
                        legal(adt.as_ref(), &bx),
                        "{}: equieffective prefixes diverge on {:?}",
                        adt.type_name(),
                        cont
                    );
                }
            }
        }
    }
}

/// The paper's remark after Definition 3: replacing the sequence `k` by a
/// single operation would be too weak. Exhibit the queue witness: with
/// R = Table III restricted to single-step checks, the two-step
/// continuation enq(2)·deq→2 breaks after inserting enq(1).
#[test]
fn definition_3_needs_sequences_not_single_operations() {
    let q = QueueSpec;
    let alpha = QueueSpec::alphabet(&dom());
    // R′ = "deq depends on deq (same item)" only — hits every single-op
    // violation k = [q] of length 1, but is not a dependency relation.
    let mut r1 = InstanceRelation::new();
    let (e1, d1, _e2, d2) = (0usize, 1usize, 2usize, 3usize);
    r1.insert(d1, d1);
    r1.insert(d2, d2);
    // Single-op Definition-3 instances all hold...
    for h in legal_sequences(&q, &alpha, 2) {
        for (p, p_op) in alpha.iter().enumerate() {
            let hp = h.frontier.advance(&q, p_op);
            if hp.is_empty() {
                continue;
            }
            for (k, k_op) in alpha.iter().enumerate() {
                if r1.contains(k, p) {
                    continue;
                }
                if h.frontier.advance(&q, k_op).is_empty() {
                    continue;
                }
                // h·p·k must be legal for the single-op variant... find a
                // counterexample? No: single-op checks CAN fail here too;
                // what matters is the two-step witness below. Skip.
                let _ = (hp.clone(), k);
            }
        }
    }
    // ...but the two-step continuation shows R′ is not a dependency
    // relation: h = Λ, p = enq(1), k = enq(2)·deq→2.
    let enq1 = alpha[e1].clone();
    let enq2 = alpha[2].clone();
    let deq2 = alpha[d2].clone();
    assert!(legal(&q, std::slice::from_ref(&enq1)));
    assert!(legal(&q, &[enq2.clone(), deq2.clone()]));
    // No operation of k depends on p under R′ (no deq-enq pairs):
    assert!(!r1.contains(2, e1) && !r1.contains(d2, e1));
    // Yet h·p·k is illegal:
    assert!(!legal(&q, &[enq1, enq2, deq2]));
    // Confirmed by the bounded checker:
    assert!(!hybrid_cc::relations::violations::is_dependency_relation(
        &q,
        &alpha,
        &r1,
        Bounds::default()
    ));
}
