//! Acceptance tests for the observability layer: the always-on metric
//! registry every subsystem feeds (`db.stats()`), checked end to end —
//! accounting invariants at quiesce, histogram internal consistency,
//! snapshot/delta algebra through the facade, concurrent counting, and
//! the conflict-matrix contract (refusal labels are exactly the class
//! pairs of the lock's atom set).

use hybrid_cc::adts::account::AccountObject;
use hybrid_cc::adts::counter::{CounterDef, CounterInv};
use hybrid_cc::adts::SpecObject;
use hybrid_cc::core::runtime::{BlockPolicy, SpecLock};
use hybrid_cc::obs::MetricValue;
use hybrid_cc::spec::Rational;
use hybrid_cc::txn::TxnManager;
use hybrid_cc::Db;
use std::sync::Arc;
use std::time::Duration;

/// A contended in-memory workload through the facade: every transaction
/// the retry loop begins — first tries and retries alike — must end as
/// exactly one commit or one abort by the time the threads join.
#[test]
fn quiesced_txn_counters_balance() {
    let db = Db::in_memory();
    let acct = db.object::<AccountObject>("acct").expect("open account");
    db.transact(|tx| {
        acct.credit(tx, Rational::from_int(1_000))?;
        Ok(())
    })
    .unwrap();
    std::thread::scope(|s| {
        for w in 0..4 {
            let (db, acct) = (&db, &acct);
            s.spawn(move || {
                for i in 0..25u32 {
                    db.transact(|tx| {
                        if (w + i) % 2 == 0 {
                            acct.credit(tx, Rational::from_int(1))?;
                        } else {
                            acct.debit(tx, Rational::from_int(1))?;
                        }
                        Ok(())
                    })
                    .unwrap();
                }
            });
        }
    });
    let snap = db.stats();
    let (begun, committed, aborted) =
        (snap.counter("txn.begun"), snap.counter("txn.committed"), snap.counter("txn.aborted"));
    assert_eq!(begun, committed + aborted, "begun {begun} != {committed} + {aborted}");
    assert!(committed >= 101, "the 101 workload transactions all committed eventually");
    // The attempts histogram saw every transact() call exactly once.
    let attempts = snap.histogram("db.transact.attempts").expect("attempts histogram");
    assert_eq!(attempts.count, 101);
    // Commit latency was recorded per commit.
    assert_eq!(snap.histogram("txn.commit_nanos").unwrap().count, committed);
}

/// Every histogram in a live snapshot keeps its internal contract:
/// bucket counts sum to `count`, and quantiles stay within the observed
/// value's bucket bound.
#[test]
fn histogram_buckets_sum_to_count() {
    let db = Db::in_memory();
    let acct = db.object::<AccountObject>("acct").expect("open account");
    for i in 0..50 {
        db.transact(|tx| {
            acct.credit(tx, Rational::from_int(i))?;
            Ok(())
        })
        .unwrap();
    }
    let snap = db.stats();
    let mut histograms = 0;
    for (name, v) in &snap.values {
        if let MetricValue::Histogram(h) = v {
            histograms += 1;
            let bucket_total: u64 = h.buckets.iter().sum();
            assert_eq!(bucket_total, h.count, "{name}: bucket sum != count");
            if h.count > 0 {
                assert!(h.quantile(0.5) <= h.quantile(1.0), "{name}: quantiles out of order");
            }
        }
    }
    assert!(histograms >= 4, "expected the txn/db histogram families, saw {histograms}");
}

/// Snapshot/delta algebra through `db.stats()`: `later = earlier + delta`
/// for counters and histogram counts, and a delta against self is zero.
#[test]
fn snapshot_delta_round_trips_through_facade() {
    let db = Db::in_memory();
    let acct = db.object::<AccountObject>("acct").expect("open account");
    let work = |n: i64| {
        for i in 0..n {
            db.transact(|tx| {
                acct.credit(tx, Rational::from_int(i))?;
                Ok(())
            })
            .unwrap();
        }
    };
    work(10);
    let earlier = db.stats();
    work(7);
    let later = db.stats();
    let delta = later.delta(&earlier);
    assert_eq!(delta.counter("txn.committed"), 7);
    assert_eq!(
        later.counter("txn.committed"),
        earlier.counter("txn.committed") + delta.counter("txn.committed")
    );
    assert_eq!(delta.histogram("db.transact.attempts").unwrap().count, 7);
    // Delta against self: every counter and histogram count is zero.
    let zero = later.delta(&later);
    for (name, v) in &zero.values {
        match v {
            MetricValue::Counter(c) => assert_eq!(*c, 0, "{name}"),
            MetricValue::Histogram(h) => assert_eq!(h.count, 0, "{name}"),
            MetricValue::Gauge(_) => {} // levels carry over by design
        }
    }
}

/// Registry primitives under concurrency, through the facade re-export:
/// 8 threads hammering one shared counter and histogram lose nothing.
#[test]
fn concurrent_hammer_counts_exactly() {
    let reg = hybrid_cc::obs::Registry::new();
    let c = reg.counter("hammer.count");
    let h = reg.histogram("hammer.obs");
    const THREADS: u64 = 8;
    const PER: u64 = 50_000;
    std::thread::scope(|s| {
        for t in 0..THREADS {
            let (c, h) = (c.clone(), h.clone());
            s.spawn(move || {
                for i in 0..PER {
                    c.inc();
                    h.observe(t * PER + i);
                }
            });
        }
    });
    let snap = reg.snapshot();
    assert_eq!(snap.counter("hammer.count"), THREADS * PER);
    let hs = snap.histogram("hammer.obs").unwrap();
    assert_eq!(hs.count, THREADS * PER);
    assert_eq!(hs.buckets.iter().sum::<u64>(), THREADS * PER);
}

/// The conflict-matrix contract: every refusal label the runtime emits
/// for a [`SpecLock`]-governed object is a `req|held` pair whose classes
/// appear (in one direction or the other — the lock tests the symmetric
/// closure) in the very atom set the lock decides with. The metrics are
/// a live view of the paper's conflict tables, not a parallel taxonomy.
#[test]
fn refusal_labels_are_lock_atom_class_pairs() {
    let lock = SpecLock::<CounterDef>::from_def();
    let allowed: Vec<(String, String)> =
        lock.atoms().iter().map(|a| (a.row.to_string(), a.col.to_string())).collect();
    assert!(!allowed.is_empty(), "derived Counter table has atoms");

    let mgr = TxnManager::new();
    let mut opts = mgr.object_options();
    opts.block = BlockPolicy {
        wait_slice: Duration::from_micros(200),
        timeout: Some(Duration::from_millis(400)),
    };
    let obj = Arc::new(SpecObject::<CounterDef>::with_options("tally", opts));
    // Deterministic conflict: the writer holds an uncommitted Inc across
    // a barrier while the reader's Read arrives — `Read ⊦ Inc` is in the
    // derived table, so the Read is refused (and waits) until commit.
    let barrier = Arc::new(std::sync::Barrier::new(2));
    std::thread::scope(|s| {
        {
            let (mgr, obj, barrier) = (mgr.clone(), obj.clone(), barrier.clone());
            s.spawn(move || {
                let t = mgr.begin();
                obj.execute(&t, CounterInv::Inc(1)).unwrap();
                barrier.wait(); // reader now collides with the held Inc
                std::thread::sleep(Duration::from_millis(30));
                mgr.commit(t).unwrap();
            });
        }
        {
            let (mgr, obj, barrier) = (mgr.clone(), obj.clone(), barrier.clone());
            s.spawn(move || {
                barrier.wait();
                loop {
                    let t = mgr.begin();
                    if obj.execute(&t, CounterInv::Read).is_ok() && mgr.commit(t.clone()).is_ok() {
                        break;
                    }
                    mgr.abort(t);
                }
            });
        }
    });
    let snap = mgr.metrics().snapshot();
    let refusals = snap.sum_prefix("lock.refusals.");
    assert!(refusals > 0, "Read vs Inc contention must refuse at least once");
    let mut checked = 0;
    for name in snap.values.keys() {
        let Some(rest) = name.strip_prefix("lock.refusals.") else { continue };
        let (ty, pair) = rest.split_once('.').expect("refusal key has TYPE.pair");
        assert_eq!(ty, "Counter");
        let (req, held) = pair.split_once('|').expect("refusal pair is req|held");
        let hit = allowed
            .iter()
            .any(|(row, col)| (row == req && col == held) || (row == held && col == req));
        assert!(hit, "refusal pair {req}|{held} not in the lock's atom set {allowed:?}");
        checked += 1;
    }
    assert!(checked > 0);
    // And grants are labelled with single atom class names.
    let classes: Vec<&String> = allowed
        .iter()
        .flat_map(|(r, c)| [r, c])
        .collect::<std::collections::BTreeSet<_>>()
        .into_iter()
        .collect();
    for name in snap.values.keys() {
        let Some(rest) = name.strip_prefix("lock.grants.") else { continue };
        let (_ty, class) = rest.split_once('.').expect("grant key has TYPE.class");
        assert!(
            classes.iter().any(|c| c.as_str() == class),
            "grant class {class} unknown to the atom set"
        );
    }
}
