//! Differential testing: the appendix-style production runtime
//! (`TxObject`) must agree, response for response and state for state,
//! with the literal Section-5.1 state machine (`LockMachine`) under
//! identical schedules.

use hybrid_cc::adts::account::{self, AccountAdt, AccountHybrid, AccountInv};
use hybrid_cc::adts::fifo_queue::{self, QueueAdt, QueueInv, QueueTableII};
use hybrid_cc::core::machine::{LockMachine, RespondOutcome};
use hybrid_cc::core::runtime::{TryExecOutcome, TxObject, TxParticipant, TxnHandle};
use hybrid_cc::core::FnConflict;
use hybrid_cc::spec::{legal, ObjectId, Operation, Rational, Timestamp, TxnId, Value};
use proptest::prelude::*;
use std::collections::HashMap;
use std::sync::Arc;

/// One step of a schedule over up to four transactions.
#[derive(Clone, Debug)]
enum Step<I> {
    Op(u64, I),
    Commit(u64),
    Abort(u64),
}

/// Account-specific driver (invocation mapping is response-independent).
fn drive_account(steps: Vec<Step<AccountInv>>) {
    let conflict = FnConflict::new("account-hybrid", |q, p| {
        let od = |o: &Operation| o.inv.op == "debit" && o.res == Value::Bool(false);
        let ok = |o: &Operation| o.inv.op == "debit" && o.res == Value::Bool(true);
        let growth = |o: &Operation| o.inv.op == "credit" || o.inv.op == "post";
        (od(q) && growth(p)) || (ok(q) && ok(p))
    });
    let mut machine = LockMachine::new(
        ObjectId(0),
        Arc::new(hybrid_cc::spec::specs::AccountSpec),
        Arc::new(conflict),
    );
    let object = TxObject::new(
        "acct",
        AccountAdt,
        Arc::new(AccountHybrid),
        hybrid_cc::core::runtime::RuntimeOptions::default(),
    );
    let mut handles: HashMap<u64, Arc<TxnHandle>> = HashMap::new();
    let mut done: HashMap<u64, ()> = HashMap::new();
    let mut next_ts = 1u64;

    for step in steps {
        match step {
            Step::Op(t, inv) => {
                if done.contains_key(&t) {
                    continue;
                }
                let h = handles.entry(t).or_insert_with(|| TxnHandle::new(TxnId(t))).clone();
                let dyn_inv = match &inv {
                    AccountInv::Credit(a) => hybrid_cc::spec::specs::AccountSpec::credit(*a),
                    AccountInv::Post(p) => hybrid_cc::spec::specs::AccountSpec::post(*p),
                    AccountInv::Debit(a) => hybrid_cc::spec::specs::AccountSpec::debit(*a),
                };
                let m_out = machine.execute(TxnId(t), dyn_inv).unwrap();
                let r_out = object.try_execute(&h, &inv).unwrap();
                match (&m_out, &r_out) {
                    (RespondOutcome::Responded(mv), TryExecOutcome::Executed(rv)) => {
                        let mapped = account::to_spec_op(&inv, rv);
                        assert_eq!(*mv, mapped.res, "response mismatch on {inv:?}");
                    }
                    (RespondOutcome::Blocked { conflicts_with }, TryExecOutcome::Conflict(h2)) => {
                        assert_eq!(conflicts_with, h2, "blocker sets differ on {inv:?}");
                        machine.cancel_pending(TxnId(t));
                    }
                    (RespondOutcome::Undefined, TryExecOutcome::Undefined) => {
                        machine.cancel_pending(TxnId(t));
                    }
                    other => panic!("outcome mismatch on {inv:?}: {other:?}"),
                }
            }
            Step::Commit(t) => {
                if done.contains_key(&t) || !handles.contains_key(&t) {
                    continue;
                }
                let bound = machine.bound(TxnId(t)).map(|b| b.0).unwrap_or(0);
                next_ts = next_ts.max(bound + 1);
                machine.commit(TxnId(t), Timestamp(next_ts)).unwrap();
                object.commit_at(TxnId(t), next_ts);
                next_ts += 1;
                done.insert(t, ());
            }
            Step::Abort(t) => {
                if done.contains_key(&t) {
                    continue;
                }
                machine.abort(TxnId(t)).unwrap();
                object.abort_txn(TxnId(t));
                handles.entry(t).or_insert_with(|| TxnHandle::new(TxnId(t)));
                done.insert(t, ());
            }
        }
    }

    // Final committed state: replay the machine's committed view against
    // the spec and compare with the runtime's folded version.
    let view = machine.view_ops(TxnId(9999));
    assert!(legal(&hybrid_cc::spec::specs::AccountSpec, &view), "machine view must be legal");
    let mut bal = Rational::ZERO;
    for op in &view {
        match op.inv.op {
            "credit" => bal += op.inv.args[0].as_rat(),
            "post" => bal *= Rational::percent_multiplier(op.inv.args[0].as_rat()),
            "debit" if op.res == Value::Bool(true) => bal -= op.inv.args[0].as_rat(),
            _ => {}
        }
    }
    assert_eq!(bal, object.committed_snapshot(), "final balances diverge");
}

/// Queue-specific driver.
fn drive_queue(steps: Vec<Step<QueueInv<i64>>>) {
    let conflict = FnConflict::new("queue-hybrid", |q, p| match (q.inv.op, p.inv.op) {
        ("deq", "enq") => q.res != p.inv.args[0],
        ("deq", "deq") => q.res == p.res,
        _ => false,
    });
    let mut machine = LockMachine::new(
        ObjectId(0),
        Arc::new(hybrid_cc::spec::specs::QueueSpec),
        Arc::new(conflict),
    );
    let object = TxObject::new(
        "q",
        QueueAdt::<i64>::default(),
        Arc::new(QueueTableII),
        hybrid_cc::core::runtime::RuntimeOptions::default(),
    );
    let mut handles: HashMap<u64, Arc<TxnHandle>> = HashMap::new();
    let mut done: HashMap<u64, ()> = HashMap::new();
    let mut next_ts = 1u64;

    for step in steps {
        match step {
            Step::Op(t, inv) => {
                if done.contains_key(&t) {
                    continue;
                }
                let h = handles.entry(t).or_insert_with(|| TxnHandle::new(TxnId(t))).clone();
                let dyn_inv = match &inv {
                    QueueInv::Enq(v) => hybrid_cc::spec::specs::QueueSpec::enq(*v),
                    QueueInv::Deq => hybrid_cc::spec::specs::QueueSpec::deq(),
                };
                let m_out = machine.execute(TxnId(t), dyn_inv).unwrap();
                let r_out = object.try_execute(&h, &inv).unwrap();
                match (&m_out, &r_out) {
                    (RespondOutcome::Responded(mv), TryExecOutcome::Executed(rv)) => {
                        let mapped = fifo_queue::to_spec_op(&inv, rv);
                        assert_eq!(*mv, mapped.res, "response mismatch on {inv:?}");
                    }
                    (RespondOutcome::Blocked { conflicts_with }, TryExecOutcome::Conflict(h2)) => {
                        assert_eq!(conflicts_with, h2);
                        machine.cancel_pending(TxnId(t));
                    }
                    (RespondOutcome::Undefined, TryExecOutcome::Undefined) => {
                        machine.cancel_pending(TxnId(t));
                    }
                    other => panic!("outcome mismatch on {inv:?}: {other:?}"),
                }
            }
            Step::Commit(t) => {
                if done.contains_key(&t) || !handles.contains_key(&t) {
                    continue;
                }
                let bound = machine.bound(TxnId(t)).map(|b| b.0).unwrap_or(0);
                next_ts = next_ts.max(bound + 1);
                machine.commit(TxnId(t), Timestamp(next_ts)).unwrap();
                object.commit_at(TxnId(t), next_ts);
                next_ts += 1;
                done.insert(t, ());
            }
            Step::Abort(t) => {
                if done.contains_key(&t) {
                    continue;
                }
                machine.abort(TxnId(t)).unwrap();
                object.abort_txn(TxnId(t));
                handles.entry(t).or_insert_with(|| TxnHandle::new(TxnId(t)));
                done.insert(t, ());
            }
        }
    }

    // Committed queue contents must match.
    let view = machine.view_ops(TxnId(9999));
    let mut q = std::collections::VecDeque::new();
    for op in &view {
        match op.inv.op {
            "enq" => q.push_back(op.inv.args[0].as_int()),
            "deq" => {
                q.pop_front();
            }
            _ => {}
        }
    }
    assert_eq!(q, object.committed_snapshot(), "final queue contents diverge");
}

fn account_step() -> impl Strategy<Value = Step<AccountInv>> {
    let txn = 0u64..4;
    prop_oneof![
        6 => (txn.clone(), 0i64..3, 1i64..6).prop_map(|(t, kind, amt)| {
            let r = Rational::from_int(amt);
            Step::Op(t, match kind {
                0 => AccountInv::Credit(r),
                1 => AccountInv::Debit(r),
                _ => AccountInv::Post(Rational::from_int(5)),
            })
        }),
        2 => txn.clone().prop_map(Step::Commit),
        1 => txn.prop_map(Step::Abort),
    ]
}

fn queue_step() -> impl Strategy<Value = Step<QueueInv<i64>>> {
    let txn = 0u64..4;
    prop_oneof![
        6 => (txn.clone(), 0i64..2, 1i64..4).prop_map(|(t, kind, v)| {
            Step::Op(t, if kind == 0 { QueueInv::Enq(v) } else { QueueInv::Deq })
        }),
        2 => txn.clone().prop_map(Step::Commit),
        1 => txn.prop_map(Step::Abort),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    #[test]
    fn account_runtime_matches_formal_machine(steps in prop::collection::vec(account_step(), 1..40)) {
        drive_account(steps);
    }

    #[test]
    fn queue_runtime_matches_formal_machine(steps in prop::collection::vec(queue_step(), 1..40)) {
        drive_queue(steps);
    }
}

#[test]
fn deterministic_smoke() {
    drive_account(vec![
        Step::Op(0, AccountInv::Credit(Rational::from_int(5))),
        Step::Op(1, AccountInv::Debit(Rational::from_int(3))),
        Step::Commit(0),
        Step::Op(1, AccountInv::Debit(Rational::from_int(3))),
        Step::Commit(1),
    ]);
    drive_queue(vec![
        Step::Op(0, QueueInv::Enq(1)),
        Step::Op(1, QueueInv::Enq(2)),
        Step::Commit(1),
        Step::Commit(0),
        Step::Op(2, QueueInv::Deq),
        Step::Op(2, QueueInv::Deq),
        Step::Commit(2),
    ]);
}
