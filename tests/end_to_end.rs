//! End-to-end system tests: multithreaded workloads through the full
//! stack (manager + deadlock detector + objects), mixed-scheme systems
//! (Section 7's upward compatibility), and the upward-compatibility claim
//! verified on recorded histories.

use hybrid_cc::adts::account::AccountObject;
use hybrid_cc::adts::fifo_queue::QueueObject;
use hybrid_cc::baselines::AccountCommutativity;
use hybrid_cc::core::machine::{LockMachine, RespondOutcome};
use hybrid_cc::core::FnConflict;
use hybrid_cc::spec::specs::{AccountSpec, QueueSpec};
use hybrid_cc::spec::{ObjectId, Operation, Rational, Timestamp, TxnId, Value};
use hybrid_cc::verify::{hybrid_atomic, SystemSpecs};
use hybrid_cc::workload::bank::{transfers, Mix};
use hybrid_cc::workload::queue::{enqueue_only, producer_consumer};
use hybrid_cc::workload::Scheme;
use hybrid_cc::Db;
use std::sync::Arc;

fn money(n: i64) -> Rational {
    Rational::from_int(n)
}

#[test]
fn concurrent_transfers_conserve_money_under_every_scheme() {
    for scheme in Scheme::ALL {
        let r = transfers(scheme, 6, 4, 25);
        assert_eq!(r.total_balance, r.expected_balance, "{scheme}: transfers must conserve money");
        assert_eq!(r.metrics.committed, 100, "{scheme}");
    }
}

#[test]
fn pipelines_deliver_every_item_under_every_scheme() {
    for scheme in Scheme::ALL {
        let m = producer_consumer(scheme, 2, 2, 15);
        assert_eq!(m.committed, 60, "{scheme}: 30 enq txns + 30 deq txns");
    }
}

#[test]
fn hybrid_admits_more_concurrency_than_baselines_on_enqueues() {
    let hybrid = enqueue_only(Scheme::Hybrid, 4, 50, 6);
    let comm = enqueue_only(Scheme::Commutativity, 4, 50, 6);
    assert_eq!(hybrid.conflicts, 0, "hybrid enqueues never conflict");
    assert!(comm.conflicts > 0, "commutativity enqueues conflict");
}

#[test]
fn account_mix_has_no_overdraft_no_conflict_dominance() {
    // With 0% overdrafts, hybrid conflicts come only from Debit∥Debit.
    let hybrid = hybrid_cc::workload::bank::account_mix(
        Scheme::Hybrid,
        4,
        50,
        4,
        Mix { credit_pct: 90, debit_pct: 0, post_pct: 10, overdraft_pct: 0 },
    );
    assert_eq!(hybrid.conflicts, 0, "credits and posts never conflict under Table V");
}

/// Section 7: dynamic atomic (commutativity-based) and hybrid atomic
/// objects may be combined in a single system without losing atomicity.
/// Drive a two-object system — a hybrid queue and a commutativity-locked
/// account — through the LOCK machine and verify the combined history.
#[test]
fn mixed_scheme_system_is_atomic() {
    // Hybrid queue machine (Table II conflicts).
    let queue_conflict = FnConflict::new("queue-hybrid", |q, p| match (q.inv.op, p.inv.op) {
        ("deq", "enq") => q.res != p.inv.args[0],
        ("deq", "deq") => q.res == p.res,
        _ => false,
    });
    let mut queue_m = LockMachine::new(ObjectId(0), Arc::new(QueueSpec), Arc::new(queue_conflict));
    // Commutativity account machine (Table VI conflicts — a superset of
    // Table V, hence still a dependency relation).
    let acct_conflict = FnConflict::new("account-comm", |q, p| {
        let class = |o: &Operation| match (o.inv.op, &o.res) {
            ("credit", _) => 0u8,
            ("post", _) => 1,
            ("debit", Value::Bool(true)) => 2,
            _ => 3,
        };
        matches!(
            (class(q), class(p)),
            (0, 1) | (1, 0) | (0, 3) | (3, 0) | (1, 2) | (2, 1) | (1, 3) | (3, 1) | (2, 2)
        )
    });
    let mut acct_m = LockMachine::new(ObjectId(1), Arc::new(AccountSpec), Arc::new(acct_conflict));

    let (p, q, r) = (TxnId(1), TxnId(2), TxnId(3));
    // Interleave the two machines, mirroring every event into a single
    // system history in true temporal order.
    let mut system = hybrid_cc::spec::History::new();
    let (mut qc, mut ac) = (0usize, 0usize); // event cursors
    macro_rules! sync {
        () => {{
            for e in &queue_m.history().events()[qc..] {
                system.push(e.clone());
            }
            #[allow(unused_assignments)]
            {
                qc = queue_m.history().len();
            }
            for e in &acct_m.history().events()[ac..] {
                system.push(e.clone());
            }
            #[allow(unused_assignments)]
            {
                ac = acct_m.history().len();
            }
        }};
    }

    // P: fund the account and enqueue a marker.
    assert!(matches!(
        acct_m.execute(p, AccountSpec::credit(money(100))).unwrap(),
        RespondOutcome::Responded(_)
    ));
    sync!();
    queue_m.execute(p, QueueSpec::enq(1)).unwrap();
    sync!();
    // Q and R run concurrently at both objects.
    queue_m.execute(q, QueueSpec::enq(2)).unwrap();
    queue_m.execute(r, QueueSpec::enq(3)).unwrap();
    sync!();
    acct_m.commit(p, Timestamp(1)).unwrap();
    queue_m.commit(p, Timestamp(1)).unwrap();
    sync!();
    assert!(matches!(
        acct_m.execute(q, AccountSpec::debit(money(10))).unwrap(),
        RespondOutcome::Responded(_)
    ));
    sync!();
    // R's post would conflict with Q's debit under commutativity locking.
    assert!(matches!(
        acct_m.execute(r, AccountSpec::post(money(5))).unwrap(),
        RespondOutcome::Blocked { .. }
    ));
    acct_m.cancel_pending(r);
    sync!();
    acct_m.commit(q, Timestamp(3)).unwrap();
    queue_m.commit(q, Timestamp(3)).unwrap();
    sync!();
    // After Q commits, R's post proceeds.
    assert!(matches!(
        acct_m.execute(r, AccountSpec::post(money(5))).unwrap(),
        RespondOutcome::Responded(_)
    ));
    sync!();
    acct_m.commit(r, Timestamp(4)).unwrap();
    queue_m.commit(r, Timestamp(4)).unwrap();
    sync!();

    // Verify global hybrid atomicity of the merged system history.
    system.well_formed().unwrap();
    let specs = SystemSpecs::new()
        .with(ObjectId(0), Arc::new(QueueSpec))
        .with(ObjectId(1), Arc::new(AccountSpec));
    assert!(hybrid_atomic(&system, &specs), "mixed-scheme system lost atomicity");
}

/// The production runtime version of the same claim: hybrid and
/// commutativity objects in one transaction system — driven through the
/// `Db` facade, with the non-default conflict relation joining via
/// `attach`.
#[test]
fn mixed_scheme_runtime_transactions() {
    let db = Db::in_memory();
    let q = db.object::<QueueObject<i64>>("audit").unwrap();
    let acct = db
        .attach(Arc::new(AccountObject::with(
            "acct",
            Arc::new(AccountCommutativity),
            db.object_options(),
        )))
        .unwrap();
    // Fund.
    db.transact(|tx| acct.credit(tx, money(100)).map_err(Into::into)).unwrap();
    // Two transactions touch both objects.
    for amount in [25i64, 30] {
        db.transact(|tx| {
            assert!(acct.debit(tx, money(amount))?);
            q.enq(tx, amount)?;
            Ok(())
        })
        .unwrap();
    }

    assert_eq!(acct.committed_balance(), money(45));
    db.transact(|tx| {
        assert_eq!(q.deq(tx)?, 25);
        assert_eq!(q.deq(tx)?, 30);
        Ok(())
    })
    .unwrap();
}

#[test]
fn deadlock_prone_transfers_make_progress() {
    // Many workers, few accounts: plenty of lock cycles; everything must
    // still complete and conserve money.
    let r = transfers(Scheme::Hybrid, 2, 6, 20);
    assert_eq!(r.total_balance, r.expected_balance);
    assert_eq!(r.metrics.committed, 120);
}
