//! Striped-WAL recovery properties:
//!
//! * **routing invariance** — the same workload trace recovers to
//!   byte-identical state at stripes=1 and stripes=8 (the ticket merge
//!   makes replay independent of where records landed);
//! * **torn tail per stripe** — every stripe independently truncates its
//!   torn final record, and the merged replay stays prefix-consistent
//!   per object;
//! * **fuzzy checkpoints** — a checkpoint taken while commits are in
//!   full flight loses nothing, stalls commits only for the no-I/O gate
//!   instant, and recovers equivalently to an uncheckpointed log.
//!
//! `HCC_DURABILITY` / `HCC_WAL_STRIPES` (the CI matrix axes) are
//! deliberately **not** applied to the fixed-stripe-count comparisons
//! here — the point is to compare counts — but the randomized property
//! at the end honors both.

use hybrid_cc::workload::crash::{
    crash_point_holds, recover_and_verify, run_crash_workload, CrashScenarioOptions,
};
use std::io::Write;
use std::path::PathBuf;

fn tmp(name: &str) -> PathBuf {
    let mut p = std::env::temp_dir();
    p.push(format!("hcc-striped-{}-{}", std::process::id(), name));
    let _ = std::fs::remove_dir_all(&p);
    p
}

/// The acceptance property: the same deterministic workload trace,
/// logged once through a single-stripe WAL and once through eight
/// stripes, recovers to **byte-equivalent** final state — same balances,
/// same queue, same replayed timestamps, same serialized snapshots.
#[test]
fn striped_recovery_is_byte_equivalent_to_single_stripe() {
    for seed in [11u64, 0xABCD] {
        let base = CrashScenarioOptions { seed, txns: 90, ..Default::default() };
        let dir1 = tmp(&format!("equiv-1-{seed}"));
        let dir8 = tmp(&format!("equiv-8-{seed}"));
        let w1 = run_crash_workload(&dir1, CrashScenarioOptions { stripes: 1, ..base }).unwrap();
        let w8 = run_crash_workload(&dir8, CrashScenarioOptions { stripes: 8, ..base }).unwrap();
        assert_eq!(w1.oracle, w8.oracle, "same seed, same committed effects");

        let s1 = recover_and_verify(&dir1).unwrap();
        let s8 = recover_and_verify(&dir8).unwrap();
        assert_eq!(s1, s8, "recovery state diverged between stripe counts (seed {seed})");
        assert_eq!(s1.snapshots, s8.snapshots, "snapshot bytes diverged (seed {seed})");
    }
}

/// Torn-tail-per-stripe: garbage appended to **every** stripe's final
/// segment is trimmed independently, and the merged replay loses nothing
/// that was cleanly framed.
#[test]
fn torn_tail_on_every_stripe_is_repaired_independently() {
    let dir = tmp("torn-all");
    let opts = CrashScenarioOptions { seed: 77, txns: 80, stripes: 4, ..Default::default() };
    let _ = run_crash_workload(&dir, opts).unwrap();
    let clean = recover_and_verify(&dir).unwrap();

    let stripes = hybrid_cc::storage::wal::stripe_dirs(&dir).unwrap();
    assert!(stripes.len() >= 4, "workload used {} stripes", stripes.len());
    for (_, sdir) in &stripes {
        let segments = hybrid_cc::storage::wal::list_segments(sdir).unwrap();
        let Some((_, last)) = segments.last() else { continue };
        let mut f = std::fs::OpenOptions::new().append(true).open(last).unwrap();
        f.write_all(&[0x5A; 11]).unwrap(); // torn garbage on every stripe
    }
    let torn = recover_and_verify(&dir).unwrap();
    assert_eq!(clean, torn, "per-stripe torn tails must not cost any framed record");
}

/// Real byte loss spread over the stripes: each stripe loses a *suffix*,
/// and `crash_point_holds` verifies the per-object-prefix consistency of
/// whatever survives (oracle fold + response-pinned replay +
/// hybrid-atomicity of the recovered history).
#[test]
fn per_stripe_suffix_loss_recovers_consistently() {
    for (i, cut) in [60u64, 300, 1500].into_iter().enumerate() {
        let dir = tmp(&format!("cut-{i}"));
        let opts = CrashScenarioOptions {
            seed: 0x5EED + i as u64,
            txns: 70,
            stripes: 4,
            ..Default::default()
        };
        let (committed, survived) = crash_point_holds(&dir, opts, cut).unwrap();
        assert!(survived <= committed);
    }
}

/// Fuzzy checkpoints under randomized crash points: checkpointing every
/// few commits while striped, then cutting tails, still recovers exactly
/// a consistent committed subset.
#[test]
fn striped_fuzzy_checkpoints_survive_random_crash_points() {
    for (i, cut) in [0u64, 40, 512].into_iter().enumerate() {
        let dir = tmp(&format!("ckpt-cut-{i}"));
        let opts = CrashScenarioOptions {
            seed: 0xF0F0 + i as u64,
            txns: 80,
            checkpoint_every: Some(12),
            stripes: 4,
            ..Default::default()
        }
        .env_overrides();
        let (committed, survived) = crash_point_holds(&dir, opts, cut).unwrap();
        assert!(survived <= committed);
        if cut == 0 && opts.durability != hybrid_cc::core::runtime::Durability::None {
            assert_eq!(survived, committed, "no cut, no loss");
        }
    }
}
