//! The multi-site randomized crash workload as an integration property:
//! distributed transactions over per-site WALs with kill points injected
//! into the coordinator (crash after the decision fsync) and into two
//! participant sites per faulty round (crash between yes-vote and
//! phase 2), healed by `recover_site` + bounded `retry_phase2` — every
//! seed must converge, live and from-scratch.

use hybrid_cc::workload::multisite::{multisite_crash_converges, MultisiteOptions};
use std::path::PathBuf;

fn tmp(name: &str) -> PathBuf {
    let mut p = std::env::temp_dir();
    p.push(format!("hcc-ms-{}-{}", std::process::id(), name));
    let _ = std::fs::remove_dir_all(&p);
    p
}

#[test]
fn multisite_randomized_crashes_converge_across_seeds() {
    let mut site_kills = 0;
    let mut coord_kills = 0;
    let mut healed = 0;
    for seed in [2u64, 19, 0xFEED] {
        let dir = tmp(&format!("seed-{seed}"));
        let report = multisite_crash_converges(
            &dir,
            MultisiteOptions { seed, sites: 4, rounds: 20, ..Default::default() },
        );
        site_kills += report.site_kill_rounds;
        coord_kills += report.coordinator_kill_rounds;
        healed += report.healed_partials;
        assert_eq!(report.decided + report.aborted, 20, "every round reached a verdict");
    }
    // Across the seeds, both kill classes and the healing path must have
    // actually fired — otherwise the property tested nothing.
    assert!(site_kills > 0, "no site kills were injected");
    assert!(coord_kills > 0, "no coordinator kills were injected");
    assert!(healed > 0, "no partial commit was healed");
}
