//! Derive the paper's conflict tables from nothing but the serial
//! specifications, including the extension types (Counter, Set,
//! Directory) the paper never analyzed.
//!
//! ```text
//! cargo run --release --example derive_tables
//! ```

use hybrid_cc::relations::minimal::minimal_dependency_relations;
use hybrid_cc::relations::tables::AdtConfig;

fn main() {
    println!("Dependency relations derived from serial specifications\n");
    for (cfg, title) in [
        (AdtConfig::file(), "File (paper Table I)"),
        (AdtConfig::queue(), "FIFO Queue (paper Table II)"),
        (AdtConfig::semiqueue(), "Semiqueue (paper Table IV)"),
        (AdtConfig::account(), "Account (paper Table V)"),
        (AdtConfig::counter(), "Counter (extension)"),
        (AdtConfig::set(), "Set (extension)"),
        (AdtConfig::directory(), "Directory (extension)"),
    ] {
        println!("{}", cfg.derive_invalidated_by(format!("invalidated-by: {title}")).render());
    }

    println!("failure-to-commute for Account (paper Table VI):");
    println!(
        "{}",
        AdtConfig::account().derive_failure_to_commute("failure-to-commute: Account").render()
    );

    println!("All minimal dependency relations of the FIFO queue:");
    let cfg = AdtConfig::queue();
    for (i, atoms) in
        minimal_dependency_relations(cfg.adt.as_ref(), &cfg.alphabet, &cfg.classify, cfg.bounds)
            .iter()
            .enumerate()
    {
        println!("  relation #{}: {:?}", i + 1, atoms.iter().collect::<Vec<_>>());
    }
    println!("\nExactly two — the paper's Tables II and III, found by minimal hitting sets");
    println!("over the Definition-3 violation structure.");
}
