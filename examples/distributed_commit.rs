//! Distributed two-phase commitment over simulated sites.
//!
//! The paper's model is distributed: a transaction must not commit at some
//! objects and abort at others, and the commit timestamp must reach every
//! object. This example runs the message-passing simulation: two sites
//! hosting an account and a queue, a coordinator, and a site crash
//! exercising the abort path.
//!
//! ```text
//! cargo run --example distributed_commit
//! ```

use hybrid_cc::adts::account::AccountObject;
use hybrid_cc::adts::fifo_queue::QueueObject;
use hybrid_cc::core::runtime::TxnHandle;
use hybrid_cc::spec::{Rational, TxnId};
use hybrid_cc::txn::clock::LogicalClock;
use hybrid_cc::txn::sim::{CommitOutcome, Coordinator, Site};
use std::sync::Arc;
use std::time::Duration;

fn main() {
    let account = Arc::new(AccountObject::hybrid("savings"));
    let queue: Arc<QueueObject<String>> = Arc::new(QueueObject::hybrid("audit-log"));

    // Two sites, each hosting one object; a shared logical clock stands in
    // for timestamp piggybacking on the commit protocol.
    let site_a = Site::spawn("bank-site", vec![account.inner().clone()]);
    let site_b = Site::spawn("audit-site", vec![queue.inner().clone()]);
    let clock = Arc::new(LogicalClock::new());
    let coordinator = Coordinator::new(clock.clone());

    // A distributed transaction touching both sites.
    let t1 = TxnHandle::new(TxnId(1));
    account.credit(&t1, Rational::from_int(100)).unwrap();
    queue.enq(&t1, "credit 100".into()).unwrap();
    match coordinator.commit(&t1, &[site_a, site_b]) {
        CommitOutcome::Committed(ts) => {
            println!("T1 committed at both sites with timestamp {ts}")
        }
        CommitOutcome::Aborted { site } => panic!("unexpected abort at {site}"),
    }
    wait_settle();
    println!("  savings balance: {}", account.committed_balance());
    println!("  audit entries:   {}", queue.committed_len());

    // Second round: the audit site crashes before voting — the
    // coordinator's vote timeout fires and the transaction aborts
    // everywhere (all-or-nothing).
    let site_a = Site::spawn("bank-site", vec![account.inner().clone()]);
    let site_b = Site::spawn("audit-site", vec![queue.inner().clone()]);
    let coordinator = Coordinator::new(clock).with_vote_timeout(Duration::from_millis(100));
    let t2 = TxnHandle::new(TxnId(2));
    account.credit(&t2, Rational::from_int(999)).unwrap();
    queue.enq(&t2, "credit 999".into()).unwrap();
    site_b.crash();
    println!("\naudit site crashed before voting...");
    match coordinator.commit(&t2, &[site_a, site_b]) {
        CommitOutcome::Aborted { site } => {
            println!("T2 aborted (caused by {site}) — at *every* site")
        }
        CommitOutcome::Committed(_) => panic!("must not commit past a crash"),
    }
    wait_settle();
    println!("  savings balance unchanged: {}", account.committed_balance());
    assert_eq!(account.committed_balance(), Rational::from_int(100));
    assert_eq!(queue.committed_len(), 1);
}

fn wait_settle() {
    // Site threads apply phase-2 messages asynchronously.
    std::thread::sleep(Duration::from_millis(50));
}
