//! Distributed two-phase commitment over simulated sites.
//!
//! The paper's model is distributed: a transaction must not commit at some
//! objects and abort at others, and the commit timestamp must reach every
//! object. This example runs the message-passing simulation in three
//! acts: a clean distributed commit, a site crash before voting (abort
//! everywhere), and a site crash *between* its yes-vote and the phase-2
//! message — detected as a partial commit and healed from the site's own
//! WAL plus the coordinator's decision log.
//!
//! ```text
//! cargo run --example distributed_commit
//! ```

use hybrid_cc::adts::account::AccountObject;
use hybrid_cc::adts::fifo_queue::QueueObject;
use hybrid_cc::core::runtime::{RuntimeOptions, TxnHandle};
use hybrid_cc::spec::{Rational, TxnId};
use hybrid_cc::storage::{DurableStore, StorageOptions};
use hybrid_cc::txn::clock::LogicalClock;
use hybrid_cc::txn::sim::{coordinator_decisions, CommitOutcome, Coordinator, Site, SiteWal};
use hybrid_cc::Db;
use std::sync::Arc;
use std::time::Duration;

fn main() {
    let account = Arc::new(AccountObject::hybrid("savings"));
    let queue: Arc<QueueObject<String>> = Arc::new(QueueObject::hybrid("audit-log"));

    // Two sites, each hosting one object; a shared logical clock stands in
    // for timestamp piggybacking on the commit protocol.
    let site_a = Site::spawn("bank-site", vec![account.inner().clone()]);
    let site_b = Site::spawn("audit-site", vec![queue.inner().clone()]);
    let clock = Arc::new(LogicalClock::new());
    let coordinator = Coordinator::new(clock.clone());

    // A distributed transaction touching both sites.
    let t1 = TxnHandle::new(TxnId(1));
    account.credit(&t1, Rational::from_int(100)).unwrap();
    queue.enq(&t1, "credit 100".into()).unwrap();
    match coordinator.commit(&t1, &[site_a, site_b]) {
        CommitOutcome::Committed(ts) => {
            println!("T1 committed at both sites with timestamp {ts}")
        }
        other => panic!("unexpected outcome {other:?}"),
    }
    wait_settle();
    println!("  savings balance: {}", account.committed_balance());
    println!("  audit entries:   {}", queue.committed_len());

    // Second round: the audit site crashes before voting — the
    // coordinator's vote timeout fires and the transaction aborts
    // everywhere (all-or-nothing).
    let site_a = Site::spawn("bank-site", vec![account.inner().clone()]);
    let site_b = Site::spawn("audit-site", vec![queue.inner().clone()]);
    let coordinator = Coordinator::new(clock.clone()).with_vote_timeout(Duration::from_millis(100));
    let t2 = TxnHandle::new(TxnId(2));
    account.credit(&t2, Rational::from_int(999)).unwrap();
    queue.enq(&t2, "credit 999".into()).unwrap();
    site_b.crash();
    println!("\naudit site crashed before voting...");
    match coordinator.commit(&t2, &[site_a, site_b]) {
        CommitOutcome::Aborted { site } => {
            println!("T2 aborted (caused by {site}) — at *every* site")
        }
        other => panic!("must not commit past a crash: {other:?}"),
    }
    wait_settle();
    println!("  savings balance unchanged: {}", account.committed_balance());
    assert_eq!(account.committed_balance(), Rational::from_int(100));
    assert_eq!(queue.committed_len(), 1);

    // Third round: a *durable* site crashes between its yes-vote and the
    // phase-2 message. The coordinator reports the partial delivery
    // instead of swallowing it, and the site heals from its own WAL (the
    // self-logged operations) plus the coordinator's decision log.
    let dir_site = std::env::temp_dir().join(format!("hcc-dist-site-{}", std::process::id()));
    let dir_coord = std::env::temp_dir().join(format!("hcc-dist-coord-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir_site);
    let _ = std::fs::remove_dir_all(&dir_coord);
    let decided_ts;
    {
        let store = DurableStore::open(&dir_site, StorageOptions::default()).unwrap();
        let wal = SiteWal::new(store);
        let ledger = Arc::new(AccountObject::with(
            "ledger",
            Arc::new(hybrid_cc::adts::account::AccountHybrid),
            RuntimeOptions::default().with_redo(wal.clone()),
        ));
        let site = Site::spawn_durable("ledger-site", vec![ledger.inner().clone()], wal);
        let coordinator = Coordinator::new(clock)
            .with_vote_timeout(Duration::from_millis(100))
            .with_decision_log(DurableStore::open(&dir_coord, StorageOptions::default()).unwrap());

        let t3 = TxnHandle::new(TxnId(3));
        ledger.credit(&t3, Rational::from_int(250)).unwrap(); // self-logs to the site WAL
        site.crash_after_prepare();
        println!("\nledger site crashed between its yes-vote and phase 2...");
        match coordinator.commit(&t3, &[site]) {
            CommitOutcome::CommittedPartial { ts, missed } => {
                println!("T3 decided at ts {ts}, but not acknowledged by {missed:?}");
                decided_ts = ts;
            }
            other => panic!("expected a partial commit, got {other:?}"),
        }
        assert_eq!(ledger.committed_balance(), Rational::from_int(0));
    }
    // The site restarts through the `Db` facade: opening the database
    // with the coordinator's recovered decisions resolves the in-doubt
    // transaction, and the typed handle arrives already healed — no
    // Registry wiring, no replay loop.
    let decisions = coordinator_decisions(&dir_coord).unwrap();
    assert_eq!(decisions.get(&3), Some(&decided_ts));
    let db = Db::builder().decisions(decisions).open(&dir_site).unwrap();
    let ledger = db.object::<AccountObject>("ledger").unwrap();
    println!(
        "ledger site recovered: {} in-doubt commit(s) healed, balance {}",
        db.recovery_report().replayed,
        ledger.committed_balance()
    );
    assert_eq!(ledger.committed_balance(), Rational::from_int(250));
}

fn wait_settle() {
    // Site threads apply phase-2 messages asynchronously.
    std::thread::sleep(Duration::from_millis(50));
}
