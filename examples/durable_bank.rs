//! The durable storage subsystem end to end, with a *real* crash.
//!
//! ```text
//! cargo run --release --example durable_bank -- run <dir> <txns>
//!     run a banking workload with group-committed fsync durability,
//!     checkpointing on the EveryN policy, then print the final state
//! cargo run --release --example durable_bank -- crash <dir> <txns> <abort_after>
//!     same, but call std::process::abort() after <abort_after> commits —
//!     a real SIGABRT mid-stream, no cleanup, no Drop
//! cargo run --release --example durable_bank -- recover <dir>
//!     recover from checkpoint + WAL tail and print the rebuilt state
//! ```
//!
//! After a crash, `recover` must print exactly the state of the commits
//! that were acknowledged before the abort — that is what `Fsync`
//! durability promises.

use hybrid_cc::adts::account::AccountObject;
use hybrid_cc::spec::Rational;
use hybrid_cc::storage::{CompactionPolicy, DurableStore, Snapshot, StorageOptions};
use hybrid_cc::txn::manager::TxnManager;
use serde_json::json;

fn run(dir: &str, txns: u64, abort_after: Option<u64>) {
    // Absorb whatever a previous session left behind: restore the latest
    // checkpoint and replay the committed tail into the live account, so
    // this session *continues* the log instead of shadowing it. (The store
    // refuses to checkpoint until this has happened.)
    let prior = DurableStore::recover(dir).expect("recover prior state");
    let opts = StorageOptions {
        segment_max_bytes: 2048,
        policy: CompactionPolicy::every_n(25),
        ..StorageOptions::default()
    };
    let mgr = TxnManager::with_storage(dir, opts).expect("open store");
    let acct = AccountObject::hybrid("acct");
    if let Some(ckpt) = &prior.checkpoint {
        for (name, data) in &ckpt.objects {
            assert_eq!(name, "acct");
            acct.restore(data, ckpt.last_ts).expect("restore snapshot");
        }
    }
    let replay_mgr = TxnManager::new();
    for txn in &prior.committed {
        let t = replay_mgr.begin();
        for (_, op) in &txn.ops {
            let op: serde_json::Value = serde_json::from_slice(op).unwrap();
            acct.credit(&t, Rational::from_int(op["v"].as_i64().unwrap())).unwrap();
        }
        replay_mgr.commit(t).unwrap();
    }
    if !prior.committed.is_empty() || prior.checkpoint.is_some() {
        println!("resumed with balance {:?} from prior sessions", acct.committed_balance());
    }
    mgr.storage().unwrap().mark_state_absorbed();
    for i in 1..=txns {
        let t = mgr.begin();
        acct.credit(&t, Rational::from_int(i as i64)).unwrap();
        mgr.log_op(&t, "acct", &json!({"op": "credit", "v": (i as i64)})).unwrap();
        mgr.commit(t).unwrap();
        println!("committed txn {i}: balance {:?}", acct.committed_balance());
        mgr.maybe_checkpoint(&[("acct", &acct)]).unwrap();
        if abort_after == Some(i) {
            eprintln!("== simulating power failure: abort() after {i} acknowledged commits ==");
            std::process::abort();
        }
    }
    let ckpts = mgr.storage().map(|s| s.checkpoints_taken()).unwrap_or(0);
    println!(
        "final balance {:?} after {txns} txns ({ckpts} checkpoints)",
        acct.committed_balance()
    );
}

fn recover(dir: &str) {
    let recovered = DurableStore::recover(dir).expect("recover");
    let acct = AccountObject::hybrid("acct");
    let mut from_ckpt = 0u64;
    if let Some(ckpt) = &recovered.checkpoint {
        for (name, data) in &ckpt.objects {
            assert_eq!(name, "acct");
            acct.restore(data, ckpt.last_ts).expect("restore snapshot");
        }
        from_ckpt = ckpt.last_ts;
    }
    let replay_mgr = TxnManager::new();
    for txn in &recovered.committed {
        let t = replay_mgr.begin();
        for (_, op) in &txn.ops {
            let op: serde_json::Value = serde_json::from_slice(op).unwrap();
            acct.credit(&t, Rational::from_int(op["v"].as_i64().unwrap())).unwrap();
        }
        replay_mgr.commit(t).unwrap();
    }
    println!(
        "recovered balance {:?} (checkpoint through ts {from_ckpt}, {} tail commits, torn tail: {})",
        acct.committed_balance(),
        recovered.committed.len(),
        recovered.torn_tail
    );
}

fn main() {
    let args: Vec<String> = std::env::args().collect();
    match args.get(1).map(String::as_str) {
        Some("run") => run(&args[2], args[3].parse().unwrap(), None),
        Some("crash") => run(&args[2], args[3].parse().unwrap(), Some(args[4].parse().unwrap())),
        Some("recover") => recover(&args[2]),
        _ => {
            eprintln!("usage: durable_bank run <dir> <txns> | crash <dir> <txns> <abort_after> | recover <dir>");
            std::process::exit(2);
        }
    }
}
