//! The durable storage subsystem end to end, with a *real* crash —
//! driven entirely through the [`Db`] facade.
//!
//! ```text
//! cargo run --release --example durable_bank -- run <dir> <txns>
//!     run a banking workload with group-committed fsync durability,
//!     checkpointing on the EveryN policy, then print the final state
//! cargo run --release --example durable_bank -- crash <dir> <txns> <abort_after>
//!     same, but call std::process::abort() after <abort_after> commits —
//!     a real SIGABRT mid-stream, no cleanup, no Drop
//! cargo run --release --example durable_bank -- recover <dir>
//!     recover from checkpoint + WAL tail and print the rebuilt state
//! cargo run --release --example durable_bank -- read <dir> <reads>
//!     open the store and take <reads> wait-free snapshot reads, then
//!     prove the whole phase moved no lock-manager counter
//! ```
//!
//! Note what the workload below never does: log, register, or wire
//! recovery. `Db::open` constructs the store and scans the log;
//! `db.object` hands back the account *with its recovered state already
//! installed* (a second session resumes where the first stopped, even
//! one that died by SIGABRT); every credit inside `transact` serializes
//! its own redo record (self-logging). After a crash, `recover` must
//! print exactly the state of the commits acknowledged before the abort
//! — that is what `Fsync` durability promises.

use hybrid_cc::adts::account::AccountObject;
use hybrid_cc::spec::Rational;
use hybrid_cc::storage::CompactionPolicy;
use hybrid_cc::Db;

fn run(dir: &str, txns: u64, abort_after: Option<u64>) {
    // HCC_WAL_STRIPES / HCC_DURABILITY pick the CI matrix axes.
    let db = Db::builder()
        .segment_max_bytes(2048)
        .compaction(CompactionPolicy::every_n(25))
        .env_overrides()
        .open(dir)
        .expect("open database");
    // The typed handle arrives holding whatever previous sessions
    // committed: this session *continues* the log instead of shadowing it.
    let acct = db.object::<AccountObject>("acct").expect("open account");
    let report = db.recovery_report();
    if report.replayed > 0 || report.checkpoint_ts > 0 {
        println!("resumed with balance {:?} from prior sessions", acct.committed_balance());
    }
    for i in 1..=txns {
        db.transact(|tx| {
            acct.credit(tx, Rational::from_int(i as i64))?; // self-logs
            Ok(())
        })
        .expect("commit");
        println!("committed txn {i}: balance {:?}", acct.committed_balance());
        db.maybe_checkpoint().unwrap();
        if abort_after == Some(i) {
            eprintln!("== simulating power failure: abort() after {i} acknowledged commits ==");
            std::process::abort();
        }
    }
    let ckpts = db.storage().map(|s| s.checkpoints_taken()).unwrap_or(0);
    println!(
        "final balance {:?} after {txns} txns ({ckpts} checkpoints)",
        acct.committed_balance()
    );
}

fn recover(dir: &str) {
    // Recovery is nothing but opening the database and asking for the
    // object: no Registry, no replay loop, no wiring to forget.
    let db = Db::builder().env_overrides().open(dir).expect("open database");
    // Snapshot right after open: everything counted so far is recovery
    // work, and the delta against a later snapshot isolates the session.
    let at_open = db.stats();
    let acct = db.object::<AccountObject>("acct").expect("open account");
    let report = db.recovery_report();
    println!(
        "recovered balance {:?} (checkpoint through ts {}, {} tail commits, torn tail: {})",
        acct.committed_balance(),
        report.checkpoint_ts,
        report.replayed,
        report.torn_tail
    );
    for key in [
        "recovery.segments_scanned",
        "recovery.commits_replayed",
        "recovery.records_replayed",
        "recovery.commits_dropped",
        "recovery.commits_in_doubt",
        "recovery.torn_tails_repaired",
    ] {
        println!("  {key} = {}", at_open.counter(key));
    }
    // What this session itself did (nothing yet): the delta is all
    // zeros, which is exactly the point — recovery cost is all at open.
    let session = db.stats().delta(&at_open);
    let moved = session
        .values
        .iter()
        .filter(|(_, v)| match v {
            hybrid_cc::obs::MetricValue::Counter(c) => *c != 0,
            hybrid_cc::obs::MetricValue::Gauge(_) => false, // a level, not a flow
            hybrid_cc::obs::MetricValue::Histogram(h) => h.count != 0,
        })
        .count();
    println!("  session delta since open: {moved} non-zero metric(s)");
}

fn read(dir: &str, reads: u64) {
    let db = Db::builder().env_overrides().open(dir).expect("open database");
    let before = db.stats();
    let mut balance = Rational::from_int(0);
    for _ in 0..reads {
        balance = db.transact_read(|rtx| rtx.view::<AccountObject>("acct")).expect("snapshot read");
    }
    let watermark = db.begin_read().watermark();
    let delta = db.stats().delta(&before);
    let locks = delta.sum_prefix("lock.grants")
        + delta.sum_prefix("lock.refusals")
        + delta.sum_prefix("lock.waits");
    println!("read balance {balance:?} {reads} times at watermark {watermark}");
    println!("  lock-manager counter delta across the read phase: {locks}");
    assert_eq!(locks, 0, "read-only phase touched the lock manager");
}

fn main() {
    let args: Vec<String> = std::env::args().collect();
    match args.get(1).map(String::as_str) {
        Some("run") => run(&args[2], args[3].parse().unwrap(), None),
        Some("crash") => run(&args[2], args[3].parse().unwrap(), Some(args[4].parse().unwrap())),
        Some("recover") => recover(&args[2]),
        Some("read") => read(&args[2], args[3].parse().unwrap()),
        _ => {
            eprintln!("usage: durable_bank run <dir> <txns> | crash <dir> <txns> <abort_after> | recover <dir> | read <dir> <reads>");
            std::process::exit(2);
        }
    }
}
