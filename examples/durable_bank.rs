//! The durable storage subsystem end to end, with a *real* crash.
//!
//! ```text
//! cargo run --release --example durable_bank -- run <dir> <txns>
//!     run a banking workload with group-committed fsync durability,
//!     checkpointing on the EveryN policy, then print the final state
//! cargo run --release --example durable_bank -- crash <dir> <txns> <abort_after>
//!     same, but call std::process::abort() after <abort_after> commits —
//!     a real SIGABRT mid-stream, no cleanup, no Drop
//! cargo run --release --example durable_bank -- recover <dir>
//!     recover from checkpoint + WAL tail and print the rebuilt state
//! ```
//!
//! Note what the workload below never does: log. The account is built
//! with the manager's options, so every credit serializes its own redo
//! record into the WAL (self-logging) — there is no logging call to
//! forget. After a crash, `recover` must print exactly the state of the
//! commits that were acknowledged before the abort — that is what `Fsync`
//! durability promises.

use hybrid_cc::adts::account::{AccountHybrid, AccountObject};
use hybrid_cc::spec::Rational;
use hybrid_cc::storage::{CompactionPolicy, StorageOptions};
use hybrid_cc::txn::manager::TxnManager;
use hybrid_cc::txn::registry::Registry;
use std::sync::Arc;

fn run(dir: &str, txns: u64, abort_after: Option<u64>) {
    // HCC_WAL_STRIPES picks the stripe count, like the CI matrix.
    let opts = StorageOptions {
        segment_max_bytes: 2048,
        policy: CompactionPolicy::every_n(25),
        ..StorageOptions::default()
    }
    .stripes_from_env();
    let mgr = TxnManager::with_storage(dir, opts).expect("open store");
    let acct = Arc::new(AccountObject::with("acct", Arc::new(AccountHybrid), mgr.object_options()));
    let mut registry = Registry::new();
    registry.register(acct.clone());
    // Absorb whatever a previous session left behind: the manager restores
    // the latest checkpoint and replays the committed tail into the
    // registered objects, so this session *continues* the log instead of
    // shadowing it. (The store refuses to checkpoint until this happens.)
    let report = mgr.recover(&registry).expect("recover prior state");
    if report.replayed > 0 || report.checkpoint_ts > 0 {
        println!("resumed with balance {:?} from prior sessions", acct.committed_balance());
    }
    for i in 1..=txns {
        let t = mgr.begin();
        acct.credit(&t, Rational::from_int(i as i64)).unwrap(); // self-logs
        mgr.commit(t).unwrap();
        println!("committed txn {i}: balance {:?}", acct.committed_balance());
        mgr.maybe_checkpoint_registry(&registry).unwrap();
        if abort_after == Some(i) {
            eprintln!("== simulating power failure: abort() after {i} acknowledged commits ==");
            std::process::abort();
        }
    }
    let ckpts = mgr.storage().map(|s| s.checkpoints_taken()).unwrap_or(0);
    println!(
        "final balance {:?} after {txns} txns ({ckpts} checkpoints)",
        acct.committed_balance()
    );
}

fn recover(dir: &str) {
    let acct = Arc::new(AccountObject::hybrid("acct"));
    let mut registry = Registry::new();
    registry.register(acct.clone());
    let mgr = TxnManager::with_storage(dir, StorageOptions::default().stripes_from_env())
        .expect("open store");
    let report = mgr.recover(&registry).expect("recover");
    println!(
        "recovered balance {:?} (checkpoint through ts {}, {} tail commits, torn tail: {})",
        acct.committed_balance(),
        report.checkpoint_ts,
        report.replayed,
        report.torn_tail
    );
}

fn main() {
    let args: Vec<String> = std::env::args().collect();
    match args.get(1).map(String::as_str) {
        Some("run") => run(&args[2], args[3].parse().unwrap(), None),
        Some("crash") => run(&args[2], args[3].parse().unwrap(), Some(args[4].parse().unwrap())),
        Some("recover") => recover(&args[2]),
        _ => {
            eprintln!("usage: durable_bank run <dir> <txns> | crash <dir> <txns> <abort_after> | recover <dir>");
            std::process::exit(2);
        }
    }
}
