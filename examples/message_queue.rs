//! The paper's headline example: concurrent enqueues on a FIFO queue.
//!
//! Enqueues do not commute, so commutativity-based locking serializes
//! producers. Hybrid concurrency control lets them run concurrently and
//! uses *commit timestamps* to decide the dequeue order of
//! concurrently-enqueued items.
//!
//! ```text
//! cargo run --example message_queue
//! ```

use hybrid_cc::adts::fifo_queue::QueueObject;
use hybrid_cc::Db;
use std::sync::Arc;

fn main() {
    let db = Arc::new(Db::in_memory());
    let queue = db.object::<QueueObject<String>>("mailbox").unwrap();

    // Three producers enqueue from three threads — their transactions are
    // simultaneously active, holding Enq locks that do not conflict, and
    // each commit timestamp fixes that message's place in the dequeue
    // order.
    let mut commits: Vec<(u64, String)> = Vec::new();
    std::thread::scope(|s| {
        let handles: Vec<_> = ["alice: hello", "bob: hi there", "carol: hey"]
            .into_iter()
            .map(|msg| {
                let db = db.clone();
                let queue = queue.clone();
                s.spawn(move || {
                    let (_, ts) = db
                        .transact_ts(|tx| {
                            queue.enq(tx, msg.to_string())?;
                            Ok(())
                        })
                        .unwrap();
                    (ts.0, msg.to_string())
                })
            })
            .collect();
        for h in handles {
            commits.push(h.join().unwrap());
        }
    });
    commits.sort();
    println!("producers committed concurrently, in timestamp order:");
    for (ts, msg) in &commits {
        println!("  @{ts}  {msg}");
    }

    // A consumer dequeues everything in one transaction: the order is
    // exactly the commit-timestamp order, whatever interleaving the
    // threads produced.
    let received = db
        .transact(|tx| {
            let mut got = Vec::new();
            for _ in 0..3 {
                got.push(queue.deq(tx)?);
            }
            Ok(got)
        })
        .unwrap();
    println!("consumer received:");
    for msg in &received {
        println!("  {msg}");
    }
    let expected: Vec<String> = commits.iter().map(|(_, m)| m.clone()).collect();
    assert_eq!(received, expected, "dequeue order follows commit timestamps");

    // A producer/consumer pipeline across threads: the consumer blocks on
    // the empty queue (Deq is a *partial* operation) until a producer
    // commits.
    let consumer_db = db.clone();
    let consumer_q = queue.clone();
    let consumer = std::thread::spawn(move || {
        consumer_db.transact(|tx| consumer_q.deq(tx).map_err(Into::into)).unwrap()
    });
    std::thread::sleep(std::time::Duration::from_millis(20));
    db.transact(|tx| queue.enq(tx, "dave: am I late?".into()).map_err(Into::into)).unwrap();
    let msg = consumer.join().unwrap();
    println!("blocked consumer woke up with: {msg}");
}
