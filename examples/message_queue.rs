//! The paper's headline example: concurrent enqueues on a FIFO queue.
//!
//! Enqueues do not commute, so commutativity-based locking serializes
//! producers. Hybrid concurrency control lets them run concurrently and
//! uses *commit timestamps* to decide the dequeue order of
//! concurrently-enqueued items.
//!
//! ```text
//! cargo run --example message_queue
//! ```

use hybrid_cc::adts::fifo_queue::QueueObject;
use hybrid_cc::txn::manager::TxnManager;
use std::sync::Arc;

fn main() {
    let mgr = TxnManager::new();
    let queue: Arc<QueueObject<String>> = Arc::new(QueueObject::hybrid("mailbox"));

    // Three producers enqueue concurrently — all three transactions are
    // simultaneously active, holding Enq locks that do not conflict.
    let t_alice = mgr.begin();
    let t_bob = mgr.begin();
    let t_carol = mgr.begin();
    queue.enq(&t_alice, "alice: hello".into()).unwrap();
    queue.enq(&t_bob, "bob: hi there".into()).unwrap();
    queue.enq(&t_carol, "carol: hey".into()).unwrap();
    println!("three producers hold enq locks concurrently — no conflicts");

    // They commit in a different order than they executed; the commit
    // timestamps fix the serialization.
    let ts_carol = mgr.commit(t_carol).unwrap();
    let ts_alice = mgr.commit(t_alice).unwrap();
    let ts_bob = mgr.commit(t_bob).unwrap();
    println!("commit order: carol {ts_carol}, alice {ts_alice}, bob {ts_bob}");

    // A consumer dequeues everything in commit-timestamp order.
    let t_consumer = mgr.begin();
    let mut received = Vec::new();
    for _ in 0..3 {
        received.push(queue.deq(&t_consumer).unwrap());
    }
    mgr.commit(t_consumer).unwrap();

    println!("consumer received:");
    for msg in &received {
        println!("  {msg}");
    }
    assert_eq!(
        received,
        vec!["carol: hey".to_string(), "alice: hello".to_string(), "bob: hi there".to_string()],
        "dequeue order follows commit timestamps"
    );

    // A producer/consumer pipeline across threads: the consumer blocks on
    // the empty queue (Deq is a *partial* operation) until a producer
    // commits.
    let consumer_q = queue.clone();
    let consumer_mgr = mgr.clone();
    let consumer = std::thread::spawn(move || {
        let t = consumer_mgr.begin();
        let msg = consumer_q.deq(&t).unwrap();
        consumer_mgr.commit(t).unwrap();
        msg
    });
    std::thread::sleep(std::time::Duration::from_millis(20));
    let t = mgr.begin();
    queue.enq(&t, "dave: am I late?".into()).unwrap();
    mgr.commit(t).unwrap();
    let msg = consumer.join().unwrap();
    println!("blocked consumer woke up with: {msg}");
}
