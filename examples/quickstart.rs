//! Quickstart: scoped transactions over a hybrid-atomic bank account,
//! through the [`Db`] session facade.
//!
//! ```text
//! cargo run --example quickstart
//! ```

use hybrid_cc::adts::account::AccountObject;
use hybrid_cc::spec::Rational;
use hybrid_cc::{Db, HccError};

fn money(n: i64) -> Rational {
    Rational::from_int(n)
}

fn main() {
    // One `Db` per system: it owns the transaction manager (timestamps,
    // two-phase commitment, deadlock handling) and hands out typed object
    // handles. `Db::open(dir)` gives the identical API with a durable WAL
    // underneath; in-memory matches the paper's model.
    let db = Db::in_memory();

    // An account under the paper's hybrid (Table V) conflict relation,
    // constructed and registered in one call.
    let checking = db.object::<AccountObject>("checking").unwrap();

    // T1 deposits a salary. The closure is the transaction: `Ok` commits,
    // `Err` aborts, and transient failures (deadlock victims, refused
    // prepare votes) are retried with bounded backoff automatically.
    let ts1 = db
        .transact_ts(|tx| {
            checking.credit(tx, money(2500))?;
            Ok(())
        })
        .unwrap()
        .1;
    println!("T1 committed at {ts1}: +2500");

    // T2 and T3 run concurrently from two threads. A credit and a
    // successful debit do not conflict under Table V, so neither waits
    // for the other.
    std::thread::scope(|s| {
        let debit = s.spawn(|| {
            db.transact_ts(|tx| {
                let ok = checking.debit(tx, money(300))?;
                assert!(ok, "funds are there");
                Ok(())
            })
            .unwrap()
            .1
        });
        let credit = s.spawn(|| {
            db.transact_ts(|tx| {
                checking.credit(tx, money(40))?;
                Ok(())
            })
            .unwrap()
            .1
        });
        let ts2 = debit.join().unwrap();
        let ts3 = credit.join().unwrap();
        println!("T2 committed at {ts2}: -300 (ran concurrently with T3)");
        println!("T3 committed at {ts3}: +40");
    });

    // T4 attempts an overdraft: the response signals failure and leaves
    // the balance unchanged; the transaction still commits (committing a
    // refusal is perfectly serializable).
    let ok = db.transact(|tx| checking.debit(tx, money(1_000_000)).map_err(Into::into)).unwrap();
    assert!(!ok, "overdraft refused");
    println!("T4 committed: overdraft refused, balance untouched");

    // T5 aborts: returning `Err` from the closure rolls everything back.
    let aborted: Result<(), HccError> = db.transact(|tx| {
        checking.credit(tx, money(999))?;
        Err(HccError::rollback("user cancelled the deposit"))
    });
    assert!(aborted.is_err());
    println!("T5 aborted: +999 discarded");

    let balance = checking.committed_balance();
    println!("final committed balance: {balance}");
    assert_eq!(balance, money(2240));
}
