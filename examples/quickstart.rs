//! Quickstart: transactions over a hybrid-atomic bank account.
//!
//! ```text
//! cargo run --example quickstart
//! ```

use hybrid_cc::adts::account::AccountObject;
use hybrid_cc::spec::Rational;
use hybrid_cc::txn::manager::TxnManager;

fn money(n: i64) -> Rational {
    Rational::from_int(n)
}

fn main() {
    // One transaction manager per system: it issues transaction handles,
    // generates commit timestamps consistent with each object's history,
    // and runs two-phase atomic commitment over every object touched.
    let mgr = TxnManager::new();

    // An account under the paper's hybrid (Table V) conflict relation.
    let checking = AccountObject::hybrid("checking");

    // T1 deposits a salary.
    let t1 = mgr.begin();
    checking.credit(&t1, money(2500)).unwrap();
    let ts1 = mgr.commit(t1).unwrap();
    println!("T1 committed at {ts1}: +2500");

    // T2 and T3 run concurrently. A credit and a successful debit do not
    // conflict under Table V, so neither waits for the other.
    let t2 = mgr.begin();
    let t3 = mgr.begin();
    let debited = checking.debit(&t2, money(300)).unwrap();
    checking.credit(&t3, money(40)).unwrap();
    assert!(debited);
    let ts2 = mgr.commit(t2).unwrap();
    let ts3 = mgr.commit(t3).unwrap();
    println!("T2 committed at {ts2}: -300 (ran concurrently with T3)");
    println!("T3 committed at {ts3}: +40");

    // T4 attempts an overdraft: the response signals failure and leaves
    // the balance unchanged; the transaction still commits (committing a
    // refusal is perfectly serializable).
    let t4 = mgr.begin();
    let ok = checking.debit(&t4, money(1_000_000)).unwrap();
    assert!(!ok, "overdraft refused");
    mgr.commit(t4).unwrap();
    println!("T4 committed: overdraft refused, balance untouched");

    // T5 aborts: its deposit leaves no trace.
    let t5 = mgr.begin();
    checking.credit(&t5, money(999)).unwrap();
    mgr.abort(t5);
    println!("T5 aborted: +999 discarded");

    let balance = checking.committed_balance();
    println!("final committed balance: {balance}");
    assert_eq!(balance, money(2240));
}
