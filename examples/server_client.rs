//! The network front door end to end, with a *real* crash: an
//! `hcc-server` process serving a durable [`Db`], client processes
//! speaking the `hcc-wire` protocol, a SIGABRT mid-load, reconnection
//! through an address file, and log-vs-ack verification.
//!
//! ```text
//! cargo run --release --example server_client -- serve <dir> <addr_file> [abort_after]
//!     open <dir> durably (compaction off) and serve it on an
//!     OS-chosen port, publishing host:port to <addr_file>; with
//!     [abort_after], call std::process::abort() once that many
//!     transactions have committed — a real SIGABRT under live load.
//!     Without it, exit by draining when a client sends Shutdown.
//! cargo run --release --example server_client -- drive <addr_file> <txns> <seed> <report>
//!     run one randomized socket client (reconnecting through
//!     <addr_file> as needed) and write its ack record to <report>
//! cargo run --release --example server_client -- verify <dir> <report>...
//!     recover <dir>, check the history hybrid atomic, and hold the
//!     log against every client's ack record (HCC_DURABILITY=fsync
//!     forbids losing any acked commit)
//! cargo run --release --example server_client -- demo <dir>
//!     one-process tour: in-process server, three client threads,
//!     graceful drain, then full verification
//! cargo run --release --example server_client -- crash <dir>
//!     the whole story as separate processes: serve with an abort
//!     fuse, three drivers, SIGABRT mid-load, a healed server on a
//!     fresh port, client reconnection, a clean drain via Shutdown,
//!     then verification
//! ```
//!
//! What the verifier proves is the network rendition of the paper's
//! recovery claim: every commit a client was *acked* either survives
//! in the recovered log with exactly the acked effects, or (under
//! buffered durability only) was lost wholesale with the crashed tail
//! — never applied twice, never applied differently.

use std::path::{Path, PathBuf};
use std::process::Command;
use std::sync::Arc;
use std::time::{Duration, Instant};

use hybrid_cc::server::{serve_with, ServerOptions};
use hybrid_cc::storage::CompactionPolicy;
use hybrid_cc::workload::socket::{
    connect_via, publish_addr, read_report, run_socket_client, verify_socket_recovery,
    write_report, SocketClientOptions,
};
use hybrid_cc::Db;

fn open_db(dir: &str) -> Arc<Db> {
    // Compaction stays off so the log remains the complete history the
    // verifier folds; HCC_DURABILITY / HCC_WAL_STRIPES still pick the
    // CI matrix axes.
    Arc::new(
        Db::builder()
            .segment_max_bytes(4096)
            .compaction(CompactionPolicy::never())
            .env_overrides()
            .open(dir)
            .expect("open database"),
    )
}

fn serve(dir: &str, addr_file: &str, abort_after: Option<u64>) {
    let db = open_db(dir);
    let handle =
        serve_with(db.clone(), "127.0.0.1:0", ServerOptions::default()).expect("bind server");
    publish_addr(Path::new(addr_file), &handle.local_addr().to_string()).expect("publish addr");
    eprintln!(
        "serving {dir} on {} ({} tail commits recovered{})",
        handle.local_addr(),
        db.recovery_report().replayed,
        match abort_after {
            Some(n) => format!(", abort fuse at {n}"),
            None => String::new(),
        }
    );
    if let Some(fuse) = abort_after {
        // `committed_count` counts this session's commits, so the fuse
        // blows under *live* load, never on replayed history. No
        // cleanup, no Drop, no flush — whatever the OS has is what
        // recovery gets.
        std::thread::spawn(move || loop {
            if db.committed_count() >= fuse {
                eprintln!("== abort fuse blown: SIGABRT after {fuse} new commits ==");
                std::process::abort();
            }
            std::thread::sleep(Duration::from_millis(2));
        });
    }
    handle.wait_for_shutdown_request();
    eprintln!("shutdown requested; draining");
    handle.drain();
}

fn drive(addr_file: &str, txns: usize, seed: u64, report_path: &str) {
    let opts = SocketClientOptions { seed, txns, deadline: Duration::from_secs(120) };
    let report = run_socket_client(Path::new(addr_file), opts).expect("socket client run");
    write_report(Path::new(report_path), &report).expect("write report");
    eprintln!(
        "driver seed={seed}: acked={} unknown={} aborted={} reconnects={}",
        report.acked.len(),
        report.unknown,
        report.aborted,
        report.reconnects
    );
}

fn require_all_acked() -> bool {
    std::env::var("HCC_DURABILITY").map(|d| d.eq_ignore_ascii_case("fsync")).unwrap_or(false)
}

fn verify(dir: &str, report_paths: &[String]) {
    let reports: Vec<_> =
        report_paths.iter().map(|p| read_report(Path::new(p)).expect("read report")).collect();
    let strict = require_all_acked();
    let verdict =
        verify_socket_recovery(Path::new(dir), &reports, strict).expect("verify recovery");
    println!(
        "verified: {} recovered commits, {} acked ({} survived, {} lost{})",
        verdict.recovered,
        verdict.acked,
        verdict.survived,
        verdict.lost,
        if strict { "; fsync: losses forbidden" } else { "" }
    );
}

fn demo(dir: &str) {
    let addr_file = format!("{dir}.addr");
    let db = open_db(dir);
    let handle =
        serve_with(db.clone(), "127.0.0.1:0", ServerOptions::default()).expect("bind server");
    publish_addr(Path::new(&addr_file), &handle.local_addr().to_string()).expect("publish addr");
    println!("demo server on {}", handle.local_addr());

    let drivers: Vec<_> = (0..3u64)
        .map(|i| {
            let addr_file = addr_file.clone();
            std::thread::spawn(move || {
                run_socket_client(
                    Path::new(&addr_file),
                    SocketClientOptions { seed: 0xD0_D0 + i, txns: 30, ..Default::default() },
                )
                .expect("driver run")
            })
        })
        .collect();
    let reports: Vec<_> = drivers.into_iter().map(|d| d.join().expect("join")).collect();
    handle.drain();
    drop(db);

    let acks: Vec<_> = reports.iter().map(|r| r.acked.clone()).collect();
    // A graceful drain answers everything it admitted and closes the
    // store in order: nothing acked may be missing, at any durability.
    let verdict = verify_socket_recovery(Path::new(dir), &acks, true).expect("verify recovery");
    assert_eq!(verdict.lost, 0, "clean drain loses nothing");
    println!(
        "demo verified: {} commits recovered, all {} acked commits present",
        verdict.recovered, verdict.acked
    );
    let _ = std::fs::remove_file(&addr_file);
}

fn crash(dir: &str) {
    let exe = std::env::current_exe().expect("current exe");
    let addr_file = format!("{dir}.addr");
    let _ = std::fs::remove_file(&addr_file);

    let spawn_serve = |fuse: Option<u64>| {
        let mut cmd = Command::new(&exe);
        cmd.arg("serve").arg(dir).arg(&addr_file);
        if let Some(n) = fuse {
            cmd.arg(n.to_string());
        }
        cmd.spawn().expect("spawn server")
    };
    let mut server = spawn_serve(Some(40));

    let report_paths: Vec<PathBuf> =
        (0..3).map(|i| PathBuf::from(format!("{dir}.report{i}"))).collect();
    let mut drivers: Vec<_> = report_paths
        .iter()
        .enumerate()
        .map(|(i, report)| {
            Command::new(&exe)
                .arg("drive")
                .arg(&addr_file)
                .arg("50")
                .arg((0xCAFE + i as u64).to_string())
                .arg(report)
                .spawn()
                .expect("spawn driver")
        })
        .collect();

    // Phase 1: the fuse blows under live load — the server must die by
    // SIGABRT, never exit(0).
    let died = server.wait().expect("wait server");
    assert!(!died.success(), "server must die by SIGABRT, got {died:?}");
    eprintln!("server died mid-load ({died:?}); healing on a fresh port");

    // Phase 2: heal. Same store, new process, new port, same address
    // file — the drivers find it and resume without resending anything
    // whose outcome they don't know.
    let mut server = spawn_serve(None);
    for d in &mut drivers {
        assert!(d.wait().expect("wait driver").success(), "driver failed");
    }

    // Phase 3: a clean exit to hand the verifier a closed store — any
    // authenticated session may request the drain.
    let mut shutdown = connect_via(Path::new(&addr_file), Instant::now(), Duration::from_secs(30))
        .expect("connect for shutdown");
    shutdown.shutdown_server().expect("request shutdown");
    assert!(server.wait().expect("wait healed server").success(), "drain exits cleanly");

    // Phase 4: hold the recovered log against every driver's acks.
    let reports: Vec<_> =
        report_paths.iter().map(|p| read_report(p).expect("read report")).collect();
    let strict = require_all_acked();
    let verdict =
        verify_socket_recovery(Path::new(dir), &reports, strict).expect("verify recovery");
    assert!(verdict.acked > 0, "drivers acked something");
    assert!(verdict.survived > 0, "a surviving prefix exists");
    println!(
        "crash cycle verified: {} commits recovered, {} acked, {} survived, {} lost{}",
        verdict.recovered,
        verdict.acked,
        verdict.survived,
        verdict.lost,
        if strict { " (fsync: zero tolerated)" } else { "" }
    );
    let _ = std::fs::remove_file(&addr_file);
}

fn main() {
    let args: Vec<String> = std::env::args().collect();
    match args.get(1).map(String::as_str) {
        Some("serve") => serve(&args[2], &args[3], args.get(4).map(|n| n.parse().unwrap())),
        Some("drive") => {
            drive(&args[2], args[3].parse().unwrap(), args[4].parse().unwrap(), &args[5])
        }
        Some("verify") => verify(&args[2], &args[3..]),
        Some("demo") => demo(&args[2]),
        Some("crash") => crash(&args[2]),
        _ => {
            eprintln!(
                "usage: server_client serve <dir> <addr_file> [abort_after] \
                 | drive <addr_file> <txns> <seed> <report> \
                 | verify <dir> <report>... | demo <dir> | crash <dir>"
            );
            std::process::exit(2);
        }
    }
}
