//! Log-shipping replication end to end in one process: a durable
//! primary served over TCP with its embedded WAL shipper, a follower
//! converging off the stream, replica-first snapshot reads over the
//! wire, and promote-on-failure.
//!
//! ```text
//! cargo run --release --example repl_demo [dir]
//! ```
//!
//! The tour:
//!
//! 1. serve a durable [`Db`] with `repl_listen` set — the server tails
//!    its own WAL and ships raw frames to whoever connects;
//! 2. a [`Follower`] appends the stream into its own replica log and
//!    applies commits through the recovery replay path (there is no
//!    second apply path to diverge);
//! 3. a client commits over the wire, polls the cheap inline `Stats`
//!    probe, then attaches the follower (served as a read replica) and
//!    routes a snapshot read there — consistent at the follower's
//!    replicated watermark;
//! 4. the primary goes away; the follower is **promoted** by ordinary
//!    recovery over its replica log and keeps taking writes.
//!
//! Run with `HCC_METRICS=json` to get machine-readable dumps at every
//! `Db` drop; CI pipes them through `obscheck`, which holds the
//! `repl.*` gauges to their invariants (lag never negative, acked ≤
//! shipped, final follower lag 0).

use std::sync::Arc;
use std::time::{Duration, Instant};

use hybrid_cc::adts::counter::CounterObject;
use hybrid_cc::client::{Client, ClientOptions};
use hybrid_cc::repl::{Follower, FollowerOptions, ObjectResolver};
use hybrid_cc::server::{serve_with, ServerOptions};
use hybrid_cc::storage::{CompactionPolicy, DurableObject};
use hybrid_cc::wire::msg::{TypeTag, View, WireOp};
use hybrid_cc::Db;

const COUNTER: &str = "hits";

fn counter_resolver() -> ObjectResolver {
    Arc::new(|db: &Db, name: &str| {
        let obj = db.object::<CounterObject>(name).map_err(|e| e.to_string())?;
        Ok(obj as Arc<dyn DurableObject>)
    })
}

fn await_convergence(db: &Db, follower: &Follower) {
    let deadline = Instant::now() + Duration::from_secs(30);
    loop {
        let target = db.storage().expect("durable primary").last_issued_ticket();
        if follower.durable_ticket() >= target
            && follower.lag() == 0
            && follower.watermark() >= db.manager().stable_watermark()
        {
            return;
        }
        assert!(!follower.poisoned(), "follower poisoned while converging");
        assert!(Instant::now() < deadline, "follower never converged");
        std::thread::sleep(Duration::from_millis(5));
    }
}

fn main() {
    let dir = std::env::args()
        .nth(1)
        .map(std::path::PathBuf::from)
        .unwrap_or_else(|| std::env::temp_dir().join(format!("repl-demo-{}", std::process::id())));
    let pdir = dir.join("primary");
    let rdir = dir.join("replica");
    let _ = std::fs::remove_dir_all(&dir);

    // 1. The primary: a durable Db served over TCP, with the embedded
    //    shipper listening for followers on its own port. Compaction
    //    stays off — the shipper tails the log files themselves, so the
    //    replicated store must keep its whole history.
    let db = Arc::new(
        Db::builder()
            .segment_max_bytes(16 << 10)
            .compaction(CompactionPolicy::never())
            .open(&pdir)
            .expect("open primary"),
    );
    let server = serve_with(
        db.clone(),
        "127.0.0.1:0",
        ServerOptions { repl_listen: Some("127.0.0.1:0".into()), ..ServerOptions::default() },
    )
    .expect("serve primary");
    let repl_addr = server.repl_addr().expect("repl listener").to_string();
    println!("primary serving on {}, shipping WAL on {repl_addr}", server.local_addr());

    // 2. The follower: its replica log is byte-compatible with a
    //    primary WAL, and every commit is applied through the recovery
    //    replay path at its original ticket position.
    let follower = Follower::start(
        &rdir,
        &repl_addr,
        counter_resolver(),
        FollowerOptions { segment_max_bytes: 16 << 10, ..FollowerOptions::default() },
    )
    .expect("start follower");

    // 3. A client commits over the wire and watches the watermark move
    //    through the inline Stats probe.
    let mut client = Client::connect(&server.local_addr().to_string()).expect("connect");
    client.open(TypeTag::Counter, COUNTER).expect("open counter");
    for _ in 0..50 {
        client
            .transact(vec![WireOp::Inc { name: COUNTER.into(), delta: 1 }])
            .expect("remote transact");
    }
    let stats = client.stats().expect("stats");
    println!(
        "primary: committed={} watermark={} (inline Stats probe)",
        stats.committed, stats.watermark
    );

    db.storage().expect("durable").sync().expect("sync");
    await_convergence(&db, &follower);
    println!(
        "follower: converged — durable ticket {}, lag 0, watermark {}",
        follower.durable_ticket(),
        follower.watermark()
    );

    // The follower doubles as a read replica: serve its Db and route
    // the client's snapshot reads there first.
    let replica_server = serve_with(follower.db().clone(), "127.0.0.1:0", ServerOptions::default())
        .expect("serve replica");
    client
        .attach_read_replica(&replica_server.local_addr().to_string(), ClientOptions::default())
        .expect("attach replica");
    let (wm, views) =
        client.read(None, vec![(TypeTag::Counter, COUNTER.into())]).expect("replica read");
    assert_eq!(views, vec![View::Count(50)], "replica read sees every replicated commit");
    println!("replica read: count 50 at watermark {wm} (served by the follower, zero locks)");

    client.goodbye().expect("goodbye");
    replica_server.drain();

    // 4. The primary goes away; promotion is ordinary recovery over the
    //    replica directory. Every acked commit the follower converged
    //    on survives, and the promoted node takes new writes.
    server.drain();
    drop(db);
    let promoted = follower
        .promote_with(
            Db::builder().segment_max_bytes(16 << 10).compaction(CompactionPolicy::never()),
        )
        .expect("promote");
    let counter = promoted.object::<CounterObject>(COUNTER).expect("recovered counter");
    assert_eq!(counter.committed_value(), 50, "all 50 replicated commits survived promotion");
    promoted
        .transact(|tx| {
            counter.inc(tx, 5)?;
            Ok(())
        })
        .expect("write on promoted node");
    assert_eq!(counter.committed_value(), 55);
    println!("promoted: 50 replicated commits recovered, new writes accepted (counter now 55)");

    drop(promoted);
    let _ = std::fs::remove_dir_all(&dir);
    println!("repl_demo: OK");
}
