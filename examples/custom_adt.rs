//! Define your own transactional ADT — an **inventory** (a type the
//! paper never analyzed) stated once through `define_adt!`, and run
//! durably under crash recovery with zero hand-written runtime code: no
//! `RuntimeAdt`, no `LockSpec`, no `Snapshot`, no `DbObject`.
//!
//! ```text
//! cargo run --release --example custom_adt -- tables
//!     derive and print the inventory's conflict relation from its
//!     serial specification
//! cargo run --release --example custom_adt -- run <dir> <txns>
//!     run a restock/take workload with fsync durability + checkpoints
//! cargo run --release --example custom_adt -- crash <dir> <txns> <abort_after>
//!     same, but std::process::abort() after <abort_after> commits
//! cargo run --release --example custom_adt -- recover <dir>
//!     Db::open + one typed handle = the recovered inventory
//! ```
//!
//! The derived relation is the paper's thesis at work: `restock`s
//! commute with everything except same-item reads and refusals
//! (concurrent suppliers never block each other), successful `take`s of
//! one item conflict (they compete for stock), refused takes are
//! invalidated by a restock of that item, and `check` reads conflict
//! with same-item stock changes. Nobody wrote that table — the bounded
//! invalidated-by search found it in the specification.

use hybrid_cc::adts::define::{Bounds, ConflictSpec, DeriveSpec, OpClass, SpecLock, SpecObject};
use hybrid_cc::adts::define_adt;
use hybrid_cc::spec::adt::{Adt, SpecState};
use hybrid_cc::spec::{Inv, Operation, Value};
use hybrid_cc::storage::CompactionPolicy;
use hybrid_cc::Db;
use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;
use std::sync::Arc;

// ---- 1. the serial specification (the only "semantics" you write) -----

/// Inventory as a dynamic state machine over `item → stock` tables.
struct InventorySpec;

fn entries(state: &SpecState) -> Vec<(String, i64)> {
    match &state.0 {
        Value::List(es) => es
            .iter()
            .map(|e| match e {
                Value::Pair(k, v) => (k.as_str().to_string(), v.as_int()),
                other => unreachable!("inventory entries are pairs, got {other:?}"),
            })
            .collect(),
        other => unreachable!("inventory state is a list, got {other:?}"),
    }
}

fn state_of(mut es: Vec<(String, i64)>) -> SpecState {
    es.retain(|(_, n)| *n > 0);
    es.sort();
    SpecState(Value::List(
        es.into_iter()
            .map(|(k, n)| Value::Pair(Box::new(Value::Str(k)), Box::new(Value::Int(n))))
            .collect(),
    ))
}

impl Adt for InventorySpec {
    fn initial(&self) -> SpecState {
        SpecState(Value::List(Vec::new()))
    }

    fn step(&self, state: &SpecState, inv: &Inv) -> Vec<(Value, SpecState)> {
        let mut es = entries(state);
        let item = inv.args[0].as_str().to_string();
        let stock = es.iter().find(|(k, _)| *k == item).map(|(_, n)| *n).unwrap_or(0);
        match inv.op {
            "restock" => {
                let n = inv.args[1].as_int();
                es.retain(|(k, _)| *k != item);
                es.push((item, stock + n));
                vec![(Value::Unit, state_of(es))]
            }
            "take" => {
                let n = inv.args[1].as_int();
                if stock >= n {
                    es.retain(|(k, _)| *k != item);
                    es.push((item, stock - n));
                    vec![(Value::Bool(true), state_of(es))]
                } else {
                    vec![(Value::Bool(false), state.clone())]
                }
            }
            "check" => vec![(Value::Int(stock), state.clone())],
            _ => vec![],
        }
    }

    fn type_name(&self) -> &'static str {
        "Inventory"
    }
}

// ---- 2. the typed definition ------------------------------------------

/// Inventory invocations.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub enum InvOp {
    /// Add `n` units of `item`.
    Restock(String, i64),
    /// Take `n` units; responds whether the stock sufficed.
    Take(String, i64),
    /// Read an item's stock level.
    Check(String),
}

/// Inventory responses.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub enum InvRes {
    /// Restock acknowledgement.
    Ok,
    /// Did the take succeed?
    Taken(bool),
    /// The stock level read.
    Level(i64),
}

fn classify(op: &Operation) -> OpClass {
    OpClass::new(match (op.inv.op, &op.res) {
        ("restock", _) => "Restock",
        ("take", Value::Bool(true)) => "Take-Ok",
        ("take", _) => "Take-Out",
        _ => "Check",
    })
}

fn alphabet() -> Vec<Operation> {
    let mut ops = Vec::new();
    for item in ["a", "b"] {
        for n in [1i64, 2] {
            ops.push(Operation::new(Inv::binary("restock", item, n), Value::Unit));
            ops.push(Operation::new(Inv::binary("take", item, n), true));
            ops.push(Operation::new(Inv::binary("take", item, n), false));
        }
        for level in [0i64, 1, 2] {
            ops.push(Operation::new(Inv::unary("check", item), level));
        }
    }
    ops
}

define_adt! {
    /// The whole runtime definition: state + ops + executable semantics
    /// + the spec to derive locking from. Codec and `Default` are
    /// macro-generated from the serde derives above.
    pub struct InventoryDef {
        name: "Inventory",
        state: BTreeMap<String, i64>,
        op: InvOp,
        res: InvRes,
        initial: BTreeMap::new,
        respond: |state: &BTreeMap<String, i64>, op: &InvOp| {
            let stock = |item: &String| state.get(item).copied().unwrap_or(0);
            match op {
                InvOp::Restock(..) => vec![InvRes::Ok],
                InvOp::Take(item, n) => vec![InvRes::Taken(stock(item) >= *n)],
                InvOp::Check(item) => vec![InvRes::Level(stock(item))],
            }
        },
        apply: |state: &mut BTreeMap<String, i64>, op: &InvOp, res: &InvRes| match (op, res) {
            (InvOp::Restock(item, n), _) => {
                *state.entry(item.clone()).or_insert(0) += n;
            }
            (InvOp::Take(item, n), InvRes::Taken(true)) => {
                let left = state.get(item).copied().unwrap_or(0) - n;
                if left > 0 {
                    state.insert(item.clone(), left);
                } else {
                    state.remove(item);
                }
            }
            _ => {}
        },
        read: |op: &InvOp, _res: &InvRes| matches!(op, InvOp::Check(_)),
        spec_op: |op: &InvOp, res: &InvRes| match (op, res) {
            (InvOp::Restock(item, n), _) => {
                Operation::new(Inv::binary("restock", item.as_str(), *n), Value::Unit)
            }
            (InvOp::Take(item, n), InvRes::Taken(ok)) => {
                Operation::new(Inv::binary("take", item.as_str(), *n), *ok)
            }
            (InvOp::Check(item), InvRes::Level(v)) => {
                Operation::new(Inv::unary("check", item.as_str()), *v)
            }
            other => unreachable!("ill-typed inventory op {other:?}"),
        },
        conflicts: || ConflictSpec::Derived(DeriveSpec {
            adt: Arc::new(InventorySpec),
            alphabet: alphabet(),
            classify,
            bounds: Bounds { max_h1: 2, max_h2: 2 },
        }),
    }
}

/// The typed handle: everything below this line is plain application
/// code against the `Db` facade.
type Inventory = SpecObject<InventoryDef>;

// ---- 3. the durable application ---------------------------------------

const ITEMS: [&str; 4] = ["anvil", "bolt", "cog", "dynamo"];

fn run(dir: &str, txns: u64, abort_after: Option<u64>) {
    let db = Db::builder()
        .segment_max_bytes(2048)
        .compaction(CompactionPolicy::every_n(20))
        .env_overrides()
        .open(dir)
        .expect("open database");
    let store = db.object::<Inventory>("warehouse").expect("open inventory");
    let report = db.recovery_report();
    if report.replayed > 0 || report.checkpoint_ts > 0 {
        println!("resumed with stock {:?} from prior sessions", store.committed_state());
    }
    for i in 1..=txns {
        let item = ITEMS[(i as usize) % ITEMS.len()].to_string();
        db.transact(|tx| {
            store.execute(tx, InvOp::Restock(item.clone(), 3))?;
            let took = store.execute(tx, InvOp::Take(item.clone(), (i % 5) as i64 + 1))?;
            if took == InvRes::Taken(false) {
                // Refusals are legal outcomes: they log, replay, and
                // verify like the account's overdrafts.
                store.execute(tx, InvOp::Check(item.clone()))?;
            }
            Ok(())
        })
        .expect("commit");
        println!("committed txn {i}: stock {:?}", store.committed_state());
        db.maybe_checkpoint().unwrap();
        if abort_after == Some(i) {
            eprintln!("== simulating power failure: abort() after {i} acknowledged commits ==");
            std::process::abort();
        }
    }
    let ckpts = db.storage().map(|s| s.checkpoints_taken()).unwrap_or(0);
    println!("final stock {:?} after {txns} txns ({ckpts} checkpoints)", store.committed_state());
}

fn recover(dir: &str) {
    let db = Db::builder().env_overrides().open(dir).expect("open database");
    let store = db.object::<Inventory>("warehouse").expect("open inventory");
    let report = db.recovery_report();
    println!(
        "recovered stock {:?} (checkpoint through ts {}, {} tail commits, torn tail: {})",
        store.committed_state(),
        report.checkpoint_ts,
        report.replayed,
        report.torn_tail
    );
}

fn tables() {
    let lock = SpecLock::<InventoryDef>::from_def();
    println!("Inventory conflict relation, derived from its serial specification");
    println!("(symmetric closure applied at lock time; conditions compare the item):\n");
    for atom in lock.atoms() {
        println!("  {atom:?}");
    }
    println!(
        "\nRestocks never conflict with each other: concurrent suppliers\n\
         proceed in parallel, exactly like the paper's concurrent enqueuers."
    );
}

fn main() {
    let args: Vec<String> = std::env::args().collect();
    match args.get(1).map(String::as_str) {
        Some("tables") => tables(),
        Some("run") => run(&args[2], args[3].parse().unwrap(), None),
        Some("crash") => run(&args[2], args[3].parse().unwrap(), Some(args[4].parse().unwrap())),
        Some("recover") => recover(&args[2]),
        _ => {
            eprintln!(
                "usage: custom_adt tables | run <dir> <txns> | crash <dir> <txns> <abort_after> | recover <dir>"
            );
            std::process::exit(2);
        }
    }
}
