//! Scheme comparison on banking workloads: hybrid vs commutativity vs
//! read/write 2PL, on a shared account and on multi-account transfers —
//! plus the same deadlock-prone transfer pattern written against the
//! `Db` facade, where `transact` absorbs the deadlock victims.
//!
//! ```text
//! cargo run --release --example banking
//! ```

use hybrid_cc::adts::account::AccountObject;
use hybrid_cc::spec::Rational;
use hybrid_cc::workload::bank::{account_mix, transfers, Mix};
use hybrid_cc::workload::{Metrics, Scheme};
use hybrid_cc::Db;
use std::sync::Arc;

fn main() {
    println!("single shared account, 4 workers x 200 txns x 4 ops, 5% overdraft attempts\n");
    println!("{}", Metrics::header());
    for scheme in Scheme::ALL {
        let m = account_mix(scheme, 4, 200, 4, Mix::standard());
        println!("{}", m.row());
    }

    println!("\n8 accounts, 4 workers x 100 transfer txns (deadlock-prone access pattern)\n");
    println!("{}", Metrics::header());
    for scheme in Scheme::ALL {
        let r = transfers(scheme, 8, 4, 100);
        println!("{}", r.metrics.row());
        assert_eq!(r.total_balance, r.expected_balance, "transfers must conserve money");
        println!(
            "    money conserved ({} total), deadlock victims: {}",
            r.total_balance, r.deadlock_victims
        );
    }

    println!("\nTable V in action: the hybrid scheme admits Credit∥Post, Credit∥Debit-Ok and");
    println!("Post∥Debit-Ok, which commutativity (Table VI) refuses — hence fewer conflicts");
    println!("and higher committed throughput above.");

    // The same deadlock-prone transfer pattern through `Db::transact`:
    // every worker's closure just moves the money; doomed victims and
    // timeouts are classified transient and retried by the scope, so no
    // worker writes a retry loop and every transfer lands exactly once.
    let db = Arc::new(Db::in_memory());
    let accounts: Vec<_> =
        (0..4).map(|i| db.object::<AccountObject>(&format!("acct-{i}")).unwrap()).collect();
    db.transact(|tx| {
        for a in &accounts {
            a.credit(tx, Rational::from_int(100))?;
        }
        Ok(())
    })
    .unwrap();
    std::thread::scope(|s| {
        for w in 0..4 {
            let db = db.clone();
            let accounts = accounts.clone();
            s.spawn(move || {
                for i in 0..50 {
                    // Opposite traversal orders: a classic deadlock recipe.
                    let (from, to) = if w % 2 == 0 {
                        (&accounts[(w + i) % 4], &accounts[(w + i + 1) % 4])
                    } else {
                        (&accounts[(w + i + 1) % 4], &accounts[(w + i) % 4])
                    };
                    db.transact(|tx| {
                        if from.debit(tx, Rational::from_int(1))? {
                            to.credit(tx, Rational::from_int(1))?;
                        }
                        Ok(())
                    })
                    .unwrap();
                }
            });
        }
    });
    let total: Rational =
        accounts.iter().map(|a| a.committed_balance()).fold(Rational::ZERO, |s, b| s + b);
    let victims = db.manager().detector().victims();
    println!("\nDb::transact transfers: money conserved ({total} total across 4 accounts),");
    println!("deadlock victims retried transparently: {victims}");
    assert_eq!(total, Rational::from_int(400));
}
