//! Scheme comparison on banking workloads: hybrid vs commutativity vs
//! read/write 2PL, on a shared account and on multi-account transfers.
//!
//! ```text
//! cargo run --release --example banking
//! ```

use hybrid_cc::workload::bank::{account_mix, transfers, Mix};
use hybrid_cc::workload::{Metrics, Scheme};

fn main() {
    println!("single shared account, 4 workers x 200 txns x 4 ops, 5% overdraft attempts\n");
    println!("{}", Metrics::header());
    for scheme in Scheme::ALL {
        let m = account_mix(scheme, 4, 200, 4, Mix::standard());
        println!("{}", m.row());
    }

    println!("\n8 accounts, 4 workers x 100 transfer txns (deadlock-prone access pattern)\n");
    println!("{}", Metrics::header());
    for scheme in Scheme::ALL {
        let r = transfers(scheme, 8, 4, 100);
        println!("{}", r.metrics.row());
        assert_eq!(r.total_balance, r.expected_balance, "transfers must conserve money");
        println!(
            "    money conserved ({} total), deadlock victims: {}",
            r.total_balance, r.deadlock_victims
        );
    }

    println!("\nTable V in action: the hybrid scheme admits Credit∥Post, Credit∥Debit-Ok and");
    println!("Post∥Debit-Ok, which commutativity (Table VI) refuses — hence fewer conflicts");
    println!("and higher committed throughput above.");
}
