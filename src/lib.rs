//! # hybrid-cc — Hybrid Concurrency Control for Abstract Data Types
//!
//! A Rust reproduction of Herlihy & Weihl, *Hybrid Concurrency Control for
//! Abstract Data Types* (PODS 1988; JCSS 43, 1991). This facade crate
//! re-exports the workspace so that examples and downstream users need a
//! single dependency:
//!
//! * [`spec`] — events, histories, well-formedness, serial specifications
//!   and the example data types (paper Sections 2–3).
//! * [`relations`] — dependency relations, invalidated-by and
//!   failure-to-commute derivation, minimal-relation enumeration, and the
//!   paper's Tables I–VI (Sections 4 and 7).
//! * [`core`] — the LOCK state machine and the Avalon-style threaded object
//!   runtime with horizon compaction (Sections 5–6, appendix).
//! * [`adts`] — production object implementations (Account, FIFO queue,
//!   Semiqueue, File, Counter, Set, Directory).
//! * [`storage`] — the durable storage subsystem: segmented CRC-framed
//!   write-ahead log, checkpoints, compaction policies, and group commit.
//! * [`txn`] — logical clocks, the transaction manager, two-phase commit,
//!   deadlock detection and the write-ahead log.
//! * [`baselines`] — commutativity-based 2PL and read/write strict 2PL.
//! * [`verify`] — serializability / hybrid-atomicity / online checkers.
//! * [`workload`] — workload generation and the multithreaded driver.
//!
//! ## Quickstart
//!
//! ```
//! use hybrid_cc::adts::account::AccountObject;
//! use hybrid_cc::txn::manager::TxnManager;
//! use std::sync::Arc;
//!
//! let mgr = TxnManager::new();
//! let acct = Arc::new(AccountObject::hybrid("checking"));
//!
//! // Credit in one transaction...
//! let t1 = mgr.begin();
//! acct.credit(&t1, 100.into()).unwrap();
//! mgr.commit(t1).unwrap();
//!
//! // ...then debit in another.
//! let t2 = mgr.begin();
//! assert!(acct.debit(&t2, 30.into()).unwrap());
//! mgr.commit(t2).unwrap();
//! ```

pub use hcc_adts as adts;
pub use hcc_baselines as baselines;
pub use hcc_core as core;
pub use hcc_relations as relations;
pub use hcc_spec as spec;
pub use hcc_storage as storage;
pub use hcc_txn as txn;
pub use hcc_verify as verify;
pub use hcc_workload as workload;
