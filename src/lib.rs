//! # hybrid-cc — Hybrid Concurrency Control for Abstract Data Types
//!
//! A Rust reproduction of Herlihy & Weihl, *Hybrid Concurrency Control for
//! Abstract Data Types* (PODS 1988; JCSS 43, 1991). This facade crate
//! re-exports the workspace so that examples and downstream users need a
//! single dependency:
//!
//! * [`db`] — **the front door**: the [`Db`] session facade — typed
//!   durable handles, scoped retrying transactions, the unified
//!   [`HccError`] taxonomy (see `docs/API.md`).
//! * [`spec`] — events, histories, well-formedness, serial specifications
//!   and the example data types (paper Sections 2–3).
//! * [`relations`] — dependency relations, invalidated-by and
//!   failure-to-commute derivation, minimal-relation enumeration, and the
//!   paper's Tables I–VI (Sections 4 and 7).
//! * [`core`] — the LOCK state machine and the Avalon-style threaded object
//!   runtime with horizon compaction (Sections 5–6, appendix).
//! * [`adts`] — production object implementations (Account, FIFO queue,
//!   Semiqueue, File, Counter, Set, Directory), plus the **declarative
//!   ADT surface** (`adts::define`, `define_adt!`): state a type's
//!   serial specification once and get locking (derived), logging,
//!   recovery, and typed [`Db`] handles generically — see
//!   `docs/API.md`, "Defining your own ADT".
//! * [`storage`] — the durable storage subsystem: segmented CRC-framed
//!   write-ahead log, checkpoints, compaction policies, and group commit.
//! * [`txn`] — logical clocks, the transaction manager, two-phase commit,
//!   deadlock detection and the write-ahead log (the low-level escape
//!   hatch under [`Db`]).
//! * [`baselines`] — commutativity-based 2PL and read/write strict 2PL.
//! * [`obs`] — dependency-free metric primitives behind `db.stats()`:
//!   sharded counters/gauges, log-scale histograms, snapshots and deltas,
//!   the `HCC_METRICS` dump hook and the `HCC_TRACE` flight recorder
//!   (see `docs/OBSERVABILITY.md`).
//! * [`verify`] — serializability / hybrid-atomicity / online checkers.
//! * [`check`] — the static auditor: bounded soundness verification of
//!   conflict tables against the hybrid-atomicity oracle, conservatism
//!   reporting, deadlock-potential analysis, and the `adtcheck` /
//!   `repolint` CI binaries (see `docs/CHECKING.md`).
//! * [`workload`] — workload generation and the multithreaded driver.
//! * [`wire`] / [`server`] / [`client`] — the network front door: the
//!   length-prefixed CRC-framed TCP protocol (sharing the WAL's frame
//!   envelope), the session/worker-pool server with bounded admission
//!   control and graceful drain, and the reconnecting synchronous
//!   client with the local error taxonomy (see `docs/NETWORK.md`).
//! * [`repl`] — log-shipping replication: the primary-side shipper
//!   tailing the striped WAL in global ticket order, followers serving
//!   watermark-bounded consistent-prefix snapshot reads while lagging,
//!   and promote-on-failure via ordinary recovery (see
//!   `docs/REPLICATION.md`).
//!
//! ## Quickstart
//!
//! ```
//! use hybrid_cc::adts::account::AccountObject;
//! use hybrid_cc::Db;
//!
//! // One `Db` per system. `Db::open(dir)` gives the same API durably
//! // (WAL + checkpoints + recovery); in-memory matches the paper's model.
//! let db = Db::in_memory();
//!
//! // Typed handles construct, register, and (when durable) recover the
//! // object in one call — reopening "checking" later returns this same
//! // instance, never a blank twin.
//! let checking = db.object::<AccountObject>("checking").unwrap();
//!
//! // Scoped transactions: commit on Ok, abort on Err; transient failures
//! // (deadlock victims, refused prepare votes) retry with bounded
//! // backoff, applying effects exactly once.
//! db.transact(|tx| {
//!     checking.credit(tx, 100.into())?;
//!     Ok(())
//! })
//! .unwrap();
//!
//! let debited = db
//!     .transact(|tx| {
//!         let ok = checking.debit(tx, 30.into())?;
//!         Ok(ok)
//!     })
//!     .unwrap();
//! assert!(debited);
//! assert_eq!(checking.committed_balance(), 70.into());
//! ```

pub use hcc_adts as adts;
pub use hcc_baselines as baselines;
pub use hcc_check as check;
pub use hcc_client as client;
pub use hcc_core as core;
pub use hcc_db as db;
pub use hcc_obs as obs;
pub use hcc_relations as relations;
pub use hcc_repl as repl;
pub use hcc_server as server;
pub use hcc_spec as spec;
pub use hcc_storage as storage;
pub use hcc_txn as txn;
pub use hcc_verify as verify;
pub use hcc_wire as wire;
pub use hcc_workload as workload;

pub use hcc_db::{Db, DbBuilder, DbObject, HccError, ReadObject, ReadTx, RetryPolicy, Tx};
