//! Differential pin of the on-disk frame format.
//!
//! The `len|crc|seq|payload` envelope is shared between the WAL
//! (`hcc-storage::record`) and the network protocol (`hcc-wire`): one
//! framing implementation, two consumers. This test pins the WAL's byte
//! output to a golden image captured **before** the framing was
//! extracted into `hcc-wire`, so the extraction (and any future change
//! to the shared encoder) cannot silently re-format logs that existing
//! stores must keep replaying.

use hcc_storage::record::{decode_all, encode, encode_into, LogRecord};

fn sample() -> Vec<LogRecord> {
    vec![
        LogRecord::Register { id: 1, name: "acct".into() },
        LogRecord::Begin { txn: 1 },
        LogRecord::Op { txn: 1, obj: 1, op: br#"{"credit":5}"#.to_vec() },
        LogRecord::Commit { txn: 1, ts: 42, ops: 1, prev: 0 },
        LogRecord::Abort { txn: 2 },
    ]
}

/// The exact bytes the pre-extraction encoder produced for `sample()`
/// with tickets 1..=5 (captured from the seed implementation).
const GOLDEN_HEX: &str = "1100000038857b4201000000000000000501000000000000000400\
                          00006163637409000000a77502c6020000000000000001010000000\
                          00000002100000017f4483303000000000000000201000000000000\
                          0001000000000000000c0000007b22637265646974223a357d1d000\
                          000f003733804000000000000000301000000000000002a00000000\
                          00000001000000000000000000000009000000404b8822050000000\
                          0000000040200000000000000";

fn golden() -> Vec<u8> {
    let hex: String = GOLDEN_HEX.chars().filter(|c| !c.is_whitespace()).collect();
    (0..hex.len())
        .step_by(2)
        .map(|i| u8::from_str_radix(&hex[i..i + 2], 16).expect("valid hex"))
        .collect()
}

#[test]
fn wal_encoding_is_byte_identical_to_the_golden_image() {
    let mut buf = Vec::new();
    for (i, rec) in sample().iter().enumerate() {
        encode_into(rec, i as u64 + 1, &mut buf);
    }
    assert_eq!(
        buf,
        golden(),
        "the WAL frame encoding changed — existing logs would no longer replay \
         byte-for-byte (shared framing lives in hcc-wire::frame)"
    );
}

#[test]
fn golden_image_decodes_to_the_sample_records() {
    let (recs, err) = decode_all(&golden());
    assert_eq!(err, None);
    let seqs: Vec<u64> = recs.iter().map(|(s, _)| *s).collect();
    assert_eq!(seqs, vec![1, 2, 3, 4, 5]);
    let records: Vec<LogRecord> = recs.into_iter().map(|(_, r)| r).collect();
    assert_eq!(records, sample());
}

/// `encode` and `encode_into` stay the same encoder.
#[test]
fn encode_matches_encode_into() {
    for (i, rec) in sample().iter().enumerate() {
        let mut via_into = Vec::new();
        encode_into(rec, i as u64 + 9, &mut via_into);
        assert_eq!(encode(rec, i as u64 + 9), via_into);
    }
}
