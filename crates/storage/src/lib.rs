//! # hcc-storage — the durable storage subsystem
//!
//! The paper's recovery story is intentions lists: aborted transactions'
//! effects are never merged into the committed state, and replaying the
//! committed operations in commit-timestamp order — exactly the
//! serialization order hybrid atomicity guarantees — rebuilds every
//! object. This crate makes that story production-shaped:
//!
//! * [`record`] — length-prefixed, CRC32-protected binary log records with
//!   torn-tail detection; op records carry compact object **registry
//!   ids**, bound to names by durable `Register` records;
//! * [`wal`] — a segmented write-ahead log with rotation and leader-based
//!   **group commit**: concurrent committers share one fsync per batch;
//! * [`checkpoint`] — durable snapshots of the committed frontier, so
//!   recovery starts from the newest checkpoint and replays only the tail
//!   instead of the whole history;
//! * [`policy`] — the [`CompactMode`] state machine (Never / EveryN /
//!   GrowthFactor / GrowthSize, AND-composed with a record-count floor)
//!   deciding when to checkpoint and delete dead segments;
//! * [`snapshot`] — the [`Snapshot`] trait every ADT implements, and
//!   [`DurableObject`], the named/replayable view the recovery registry
//!   dispatches through;
//! * [`store`] — [`DurableStore`], the façade `hcc-txn`'s manager logs
//!   through, plus [`DurableStore::recover`];
//! * [`tail`] — [`WalTailer`], an incremental ticket-ordered reader over
//!   a live striped WAL (the replication shipper's source);
//! * [`replica`] — [`ReplicaLog`], the follower's striped append log,
//!   byte-compatible with a primary WAL so promotion is plain recovery.
//!
//! The durability knob ([`Durability`]: None / Buffered / Fsync) is defined
//! in `hcc-core`'s `RuntimeOptions` and re-exported here; see
//! `docs/DURABILITY.md` at the workspace root for the format and protocol
//! descriptions.

pub mod checkpoint;
pub mod policy;
pub mod record;
pub mod replica;
pub mod snapshot;
pub mod store;
pub mod tail;
pub mod wal;

pub use checkpoint::Checkpoint;
pub use hcc_core::runtime::Durability;
pub use policy::{CompactMode, CompactionPolicy, LogStats};
pub use record::LogRecord;
pub use replica::{ReplicaLog, ReplicaOptions};
pub use snapshot::{DurableObject, Snapshot, SnapshotError};
pub use store::{
    durability_env_override, stripes_env_override, CheckpointCursor, CommittedTxn, DurableStore,
    InDoubtTxn, Recovered, StorageOptions,
};
pub use tail::{TailOptions, WalTailer};
pub use wal::{SegmentedWal, WalOptions};

/// Anything that can go wrong in the storage layer.
#[derive(Debug)]
pub enum StorageError {
    /// An I/O failure.
    Io(std::io::Error),
    /// A non-final segment contains an undecodable frame.
    Corrupt {
        /// The damaged segment's index.
        segment: u64,
        /// What failed to decode.
        detail: String,
    },
    /// Two different transactions logged commit records with the same
    /// timestamp. Timestamps are the replay order; recovering either one
    /// silently would drop the other's acknowledged effects.
    TimestampCollision {
        /// The colliding timestamp.
        ts: u64,
        /// The first transaction seen with it.
        first: u64,
        /// The second transaction seen with it.
        second: u64,
    },
    /// A checkpoint was requested over a store opened on a log with prior
    /// commits that the registered objects have not absorbed (no
    /// `mark_state_absorbed` after recovery): taking it would claim
    /// coverage of history the snapshots do not contain, then prune it.
    UnabsorbedHistory {
        /// The watermark the snapshots would wrongly claim to cover.
        last_ts: u64,
    },
    /// An op record references a registry id with no surviving `Register`
    /// binding — the log lost the id→name mapping it needed.
    UnknownObjectId {
        /// The unresolvable registry id.
        id: u64,
        /// The transaction whose op used it.
        txn: u64,
    },
    /// A snapshot payload could not be installed.
    Snapshot(snapshot::SnapshotError),
}

impl std::fmt::Display for StorageError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            StorageError::Io(e) => write!(f, "storage I/O error: {e}"),
            StorageError::Corrupt { segment, detail } => {
                write!(f, "segment {segment} is corrupt: {detail}")
            }
            StorageError::TimestampCollision { ts, first, second } => {
                write!(f, "transactions {first} and {second} both committed at ts {ts}")
            }
            StorageError::UnabsorbedHistory { last_ts } => {
                write!(
                    f,
                    "checkpoint refused: the log holds commits through ts {last_ts} that the \
                     registered objects have not absorbed (recover first, then \
                     mark_state_absorbed)"
                )
            }
            StorageError::UnknownObjectId { id, txn } => {
                write!(f, "op record of txn {txn} references unregistered object id {id}")
            }
            StorageError::Snapshot(e) => write!(f, "{e}"),
        }
    }
}

impl std::error::Error for StorageError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            StorageError::Io(e) => Some(e),
            StorageError::Snapshot(e) => Some(e),
            _ => None,
        }
    }
}

impl From<std::io::Error> for StorageError {
    fn from(e: std::io::Error) -> StorageError {
        StorageError::Io(e)
    }
}

impl From<snapshot::SnapshotError> for StorageError {
    fn from(e: snapshot::SnapshotError) -> StorageError {
        StorageError::Snapshot(e)
    }
}
