//! The durable store: ties the segmented WAL, the checkpoint manager, and
//! the compaction policy into one object the transaction layer can own.
//!
//! ## Checkpoint protocol
//!
//! 1. The caller quiesces commits (no commit may be logged while snapshots
//!    are taken — `hcc-txn`'s manager holds its commit gate).
//! 2. `checkpoint()` rotates the WAL: every record so far is in finished,
//!    fsynced segments; new appends go to the fresh segment `R`.
//! 3. Every registered object's committed frontier is serialized and the
//!    checkpoint file `{last_ts, resume_seg = R, snapshots}` is written
//!    durably (temp + fsync + rename).
//! 4. Segments below `R` are deleted — except any still holding records of
//!    transactions that were live at checkpoint time, which stay until a
//!    later checkpoint finds them complete.
//!
//! ## Recovery
//!
//! `recover()` loads the newest valid checkpoint, scans every surviving
//! segment (tolerating a torn tail in the last one), and returns the
//! committed transactions with timestamp above the checkpoint, in
//! timestamp order, each with its logged operations. A commit record whose
//! transaction has no Begin/Op records in the surviving log is reported as
//! [`StorageError::MissingOps`] — the log pruned something it needed.

use crate::checkpoint::Checkpoint;
use crate::policy::{CompactionPolicy, LogStats};
use crate::record::LogRecord;
use crate::snapshot::Snapshot;
use crate::wal::{read_records, SegmentedWal, WalOptions};
use crate::StorageError;
use hcc_core::runtime::Durability;
use std::collections::{BTreeMap, HashMap, HashSet};
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

/// Construction options for a [`DurableStore`].
#[derive(Clone, Copy, Debug)]
pub struct StorageOptions {
    /// Segment rotation threshold.
    pub segment_max_bytes: u64,
    /// Durability of completion records.
    pub durability: Durability,
    /// Batch concurrent commit fsyncs.
    pub group_commit: bool,
    /// When to checkpoint and delete dead segments.
    pub policy: CompactionPolicy,
}

impl Default for StorageOptions {
    fn default() -> Self {
        StorageOptions {
            segment_max_bytes: 4 * 1024 * 1024,
            durability: Durability::Fsync,
            group_commit: true,
            policy: CompactionPolicy::default(),
        }
    }
}

/// One recovered committed transaction.
#[derive(Clone, Debug, PartialEq)]
pub struct CommittedTxn {
    /// Commit timestamp.
    pub ts: u64,
    /// Transaction id.
    pub txn: u64,
    /// Logged operations in execution order: `(object, opaque op bytes)`
    /// (registry ids already translated back to names).
    pub ops: Vec<(String, Vec<u8>)>,
}

/// A transaction whose operations survived but whose outcome did not: no
/// commit and no abort record. A single-site log simply drops these
/// (recovery never replays uncommitted transactions); a 2PC *participant*
/// consults the coordinator's decision log to resolve them — the classic
/// in-doubt case of a site crashed between its yes-vote and the phase-2
/// commit message.
#[derive(Clone, Debug, PartialEq)]
pub struct InDoubtTxn {
    /// Transaction id.
    pub txn: u64,
    /// Logged operations in execution order.
    pub ops: Vec<(String, Vec<u8>)>,
}

/// Everything recovery learned from disk.
#[derive(Clone, Debug, Default)]
pub struct Recovered {
    /// The newest valid checkpoint, if any.
    pub checkpoint: Option<Checkpoint>,
    /// Committed transactions above the checkpoint, in timestamp order.
    pub committed: Vec<CommittedTxn>,
    /// Transactions with operations but no completion record, by id.
    pub in_doubt: Vec<InDoubtTxn>,
    /// Was a torn tail dropped from the final segment?
    pub torn_tail: bool,
}

/// A WAL + checkpoint store + compaction policy rooted at one directory.
pub struct DurableStore {
    dir: PathBuf,
    wal: SegmentedWal,
    opts: StorageOptions,
    /// Highest commit timestamp logged through this store (seeded from the
    /// checkpoint *and* the WAL tail on open, so a resumed session's clock
    /// can be re-anchored above everything already durable).
    last_commit_ts: AtomicU64,
    /// Highest transaction id seen in the surviving log on open. A resumed
    /// session must allocate above this, or its records would merge with a
    /// dead transaction's under the same id at recovery.
    max_txn_seen: u64,
    /// Set when the store was opened over a log with prior commits (or a
    /// checkpoint) that the caller's live objects have not absorbed.
    /// Checkpointing in this state would claim coverage of history the
    /// snapshots do not contain — and then prune it. Cleared by
    /// [`DurableStore::mark_state_absorbed`].
    unabsorbed_history: std::sync::atomic::AtomicBool,
    /// Number of checkpoints taken by this instance.
    checkpoints_taken: AtomicU64,
    /// The object registry: name → compact id used by `Op` records. Seeded
    /// from the surviving `Register` records on open; grows as new names
    /// are logged against.
    registry: std::sync::Mutex<ObjectRegistry>,
}

#[derive(Default)]
struct ObjectRegistry {
    by_name: HashMap<String, u64>,
    next_id: u64,
}

impl DurableStore {
    /// Open (or create) the store rooted at `dir`.
    pub fn open(
        dir: impl AsRef<Path>,
        opts: StorageOptions,
    ) -> Result<Arc<DurableStore>, StorageError> {
        let dir = dir.as_ref().to_path_buf();
        let wal = SegmentedWal::open(
            &dir,
            WalOptions {
                segment_max_bytes: opts.segment_max_bytes,
                durability: opts.durability,
                group_commit: opts.group_commit,
            },
        )?;
        let ckpt = Checkpoint::load_latest(&dir)?;
        let ckpt_ts = ckpt.as_ref().map(|c| c.last_ts).unwrap_or(0);
        // One metadata-only pass over the surviving segments (bounded by
        // compaction): resuming a log must not reuse timestamps,
        // transaction ids, or registry ids that are already durable below
        // the recovery watermarks. Registry bindings come from the
        // checkpoint (whose segments compaction deleted) plus the
        // surviving Register records.
        let scan = crate::wal::scan_watermarks(&dir)?;
        let last_ts = ckpt_ts.max(scan.last_ts);
        let mut registry = ObjectRegistry::default();
        let ckpt_bindings = ckpt.map(|c| c.registry).unwrap_or_default();
        for (id, name) in ckpt_bindings.into_iter().chain(scan.registrations) {
            registry.next_id = registry.next_id.max(id);
            registry.by_name.insert(name, id);
        }
        Ok(Arc::new(DurableStore {
            dir,
            wal,
            opts,
            last_commit_ts: AtomicU64::new(last_ts),
            max_txn_seen: scan.max_txn,
            unabsorbed_history: std::sync::atomic::AtomicBool::new(last_ts > 0),
            checkpoints_taken: AtomicU64::new(0),
            registry: std::sync::Mutex::new(registry),
        }))
    }

    /// Attest that the caller's live objects reflect every commit at or
    /// below [`DurableStore::last_commit_ts`] — i.e. recovery (checkpoint
    /// restore + tail replay) has been applied to the objects that will be
    /// registered with [`DurableStore::checkpoint`]. Until this is called
    /// on a store opened over prior history, checkpointing is refused.
    pub fn mark_state_absorbed(&self) {
        self.unabsorbed_history.store(false, Ordering::Release);
    }

    /// The highest commit timestamp known durable (checkpoint + WAL tail
    /// at open time, plus everything logged since). A resumed session's
    /// clock must issue strictly above this.
    pub fn last_commit_ts(&self) -> u64 {
        self.last_commit_ts.load(Ordering::Relaxed)
    }

    /// The highest transaction id in the log when the store was opened. A
    /// resumed session must allocate ids strictly above this.
    pub fn max_txn_seen(&self) -> u64 {
        self.max_txn_seen
    }

    /// The store's root directory.
    pub fn dir(&self) -> &Path {
        &self.dir
    }

    /// The configured durability level.
    pub fn durability(&self) -> Durability {
        self.opts.durability
    }

    /// Log that `txn` began.
    pub fn log_begin(&self, txn: u64) -> Result<(), StorageError> {
        self.wal.append(&LogRecord::Begin { txn })
    }

    /// Log one executed operation. The object name is translated to its
    /// compact registry id; a first-seen name durably appends its
    /// `Register` binding before the op record.
    pub fn log_op(&self, txn: u64, object: &str, op: &[u8]) -> Result<(), StorageError> {
        let obj = self.object_id(object)?;
        self.wal.append(&LogRecord::Op { txn, obj, op: op.to_vec() })
    }

    /// The registry id for `object`, assigning (and durably registering)
    /// one on first use.
    pub fn object_id(&self, object: &str) -> Result<u64, StorageError> {
        let mut reg = self.registry.lock().unwrap_or_else(std::sync::PoisonError::into_inner);
        if let Some(&id) = reg.by_name.get(object) {
            return Ok(id);
        }
        // Reserve the id *before* the append, and never recycle it: a
        // failed append may still leave the Register frame in the WAL
        // buffer, where a later unrelated flush can make it durable —
        // reusing the id for a different name would then durably bind two
        // names to one id. A retried registration simply burns a fresh id
        // (two ids resolving to one name is harmless; one id resolving to
        // two names is corruption).
        let id = reg.next_id + 1;
        reg.next_id = id;
        // The binding is cached only once the append succeeded, so the
        // next attempt re-registers instead of logging ops against an id
        // recovery might never learn.
        self.wal.append(&LogRecord::Register { id, name: object.to_string() })?;
        reg.by_name.insert(object.to_string(), id);
        Ok(id)
    }

    /// Durably log that `txn` committed at `ts` (group-committed under
    /// `Durability::Fsync`). Returns only once the record is as durable as
    /// the configured level requires.
    pub fn log_commit(&self, txn: u64, ts: u64) -> Result<(), StorageError> {
        self.wal.commit(&LogRecord::Commit { txn, ts })?;
        self.last_commit_ts.fetch_max(ts, Ordering::Relaxed);
        Ok(())
    }

    /// Log that `txn` aborted (buffered like an op record — recovery never
    /// replays uncommitted transactions, so ordinary aborts need no fsync;
    /// they only unpin segments for compaction).
    pub fn log_abort(&self, txn: u64) -> Result<(), StorageError> {
        self.wal.append(&LogRecord::Abort { txn })
    }

    /// Durably log that `txn` aborted. Used when a commit record may
    /// already be on disk but was never acknowledged (its fsync failed):
    /// recovery's abort-wins rule needs this record to survive.
    pub fn log_abort_durable(&self, txn: u64) -> Result<(), StorageError> {
        self.wal.commit(&LogRecord::Abort { txn })
    }

    /// Force everything appended so far onto disk (flush + fsync),
    /// regardless of the configured durability level. A 2PC participant
    /// calls this before voting yes: its op records must survive a crash
    /// once the coordinator may decide commit.
    pub fn sync(&self) -> Result<(), StorageError> {
        self.wal.sync()
    }

    /// Current log statistics.
    pub fn stats(&self) -> LogStats {
        self.wal.stats()
    }

    /// Does the compaction policy want a checkpoint now?
    pub fn should_checkpoint(&self) -> bool {
        self.opts.policy.should_compact(&self.wal.stats())
    }

    /// Checkpoints taken by this store instance.
    pub fn checkpoints_taken(&self) -> u64 {
        self.checkpoints_taken.load(Ordering::Relaxed)
    }

    /// Take a checkpoint of `objects` and delete dead segments.
    ///
    /// The caller must guarantee no commit is logged concurrently (the
    /// manager's commit gate does this); the snapshots must reflect every
    /// commit logged so far.
    pub fn checkpoint(
        &self,
        objects: &[(&str, &dyn Snapshot)],
    ) -> Result<Checkpoint, StorageError> {
        if self.unabsorbed_history.load(Ordering::Acquire) {
            return Err(StorageError::UnabsorbedHistory {
                last_ts: self.last_commit_ts.load(Ordering::Relaxed),
            });
        }
        // Finish the current segment so the checkpoint covers exactly the
        // records below `resume_seg`.
        let resume_seg = self.wal.rotate()?;
        // The checkpoint carries the registry bindings: pruning deletes the
        // segments holding the original Register records, while pinned
        // segments may keep op records that still reference the ids — and
        // the checkpoint file (temp + fsync + rename) is the one artifact
        // a torn tail can never reach.
        let registry: Vec<(u64, String)> = {
            let reg = self.registry.lock().unwrap_or_else(std::sync::PoisonError::into_inner);
            reg.by_name.iter().map(|(name, &id)| (id, name.clone())).collect()
        };
        let ckpt = Checkpoint {
            last_ts: self.last_commit_ts.load(Ordering::Relaxed),
            resume_seg,
            objects: objects
                .iter()
                .map(|(name, snap)| (name.to_string(), snap.snapshot()))
                .collect(),
            registry,
        };
        ckpt.save(&self.dir)?;
        self.wal.mark_checkpoint();
        self.wal.prune_segments(resume_seg)?;
        Checkpoint::prune_older(&self.dir, ckpt.last_ts)?;
        self.checkpoints_taken.fetch_add(1, Ordering::Relaxed);
        Ok(ckpt)
    }

    /// Convenience: checkpoint iff the policy fires.
    pub fn maybe_checkpoint(
        &self,
        objects: &[(&str, &dyn Snapshot)],
    ) -> Result<Option<Checkpoint>, StorageError> {
        if self.should_checkpoint() {
            self.checkpoint(objects).map(Some)
        } else {
            Ok(None)
        }
    }

    /// Read the durable state under `dir`: newest checkpoint plus the
    /// committed tail, in timestamp order. Static — recovery happens before
    /// any appender is opened.
    pub fn recover(dir: impl AsRef<Path>) -> Result<Recovered, StorageError> {
        let dir = dir.as_ref();
        let checkpoint = Checkpoint::load_latest(dir)?;
        let ckpt_ts = checkpoint.as_ref().map(|c| c.last_ts).unwrap_or(0);
        let (records, torn_tail) = read_records(dir)?;

        // The id→name registry: seeded from the checkpoint (which carries
        // the bindings of every id pruned segments may still reference),
        // then extended by the surviving Register records — built in a
        // first pass so record order never matters.
        let mut names: HashMap<u64, String> = HashMap::new();
        if let Some(ckpt) = &checkpoint {
            for (id, name) in &ckpt.registry {
                names.insert(*id, name.clone());
            }
        }
        for rec in &records {
            if let LogRecord::Register { id, name } = rec {
                names.insert(*id, name.clone());
            }
        }

        let mut ops: HashMap<u64, Vec<(String, Vec<u8>)>> = HashMap::new();
        let mut begun: HashSet<u64> = HashSet::new();
        let mut aborted: HashSet<u64> = HashSet::new();
        let mut completed: HashSet<u64> = HashSet::new();
        let mut commits: BTreeMap<u64, u64> = BTreeMap::new(); // ts -> txn
        for rec in records {
            match rec {
                LogRecord::Begin { txn } => {
                    begun.insert(txn);
                }
                LogRecord::Op { txn, obj, op } => {
                    begun.insert(txn);
                    let object = names
                        .get(&obj)
                        .cloned()
                        .ok_or(StorageError::UnknownObjectId { id: obj, txn })?;
                    ops.entry(txn).or_default().push((object, op));
                }
                LogRecord::Commit { txn, ts } => {
                    completed.insert(txn);
                    if ts > ckpt_ts {
                        if let Some(prev) = commits.insert(ts, txn) {
                            if prev != txn {
                                // Silently keeping either transaction would
                                // drop the other's acknowledged effects.
                                return Err(StorageError::TimestampCollision {
                                    ts,
                                    first: prev,
                                    second: txn,
                                });
                            }
                        }
                    }
                }
                LogRecord::Abort { txn } => {
                    ops.remove(&txn);
                    aborted.insert(txn);
                    completed.insert(txn);
                }
                LogRecord::Register { .. } => {}
            }
        }

        let mut committed = Vec::with_capacity(commits.len());
        for (ts, txn) in commits {
            if aborted.contains(&txn) {
                // Both a Commit and an Abort record survived. The manager
                // writes an abort only when the commit was never
                // acknowledged (its fsync failed), so the abort wins —
                // reporting the transaction as committed-with-no-ops would
                // resurrect effects the live system told its client were
                // rolled back.
                continue;
            }
            if !begun.contains(&txn) {
                // The commit record survived but the transaction's Begin/Op
                // records did not: the log lost something it needed.
                return Err(StorageError::MissingOps { txn, ts });
            }
            committed.push(CommittedTxn { ts, txn, ops: ops.remove(&txn).unwrap_or_default() });
        }
        // Ops with no completion record at all: in-doubt. A 2PC site log
        // resolves these against the coordinator's decision log; a
        // single-site recovery just ignores them.
        let mut in_doubt: Vec<InDoubtTxn> = ops
            .into_iter()
            .filter(|(txn, _)| !completed.contains(txn))
            .map(|(txn, ops)| InDoubtTxn { txn, ops })
            .collect();
        in_doubt.sort_by_key(|t| t.txn);
        Ok(Recovered { checkpoint, committed, in_doubt, torn_tail })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::snapshot::SnapshotError;
    use std::sync::Mutex;

    fn tmp(name: &str) -> PathBuf {
        static N: AtomicU64 = AtomicU64::new(0);
        let mut p = std::env::temp_dir();
        p.push(format!(
            "hcc-store-{}-{}-{}",
            std::process::id(),
            name,
            N.fetch_add(1, Ordering::Relaxed)
        ));
        let _ = std::fs::remove_dir_all(&p);
        p
    }

    /// A toy snapshotable counter for store-level tests.
    #[derive(Default)]
    struct Cell(Mutex<i64>);

    impl Cell {
        fn add(&self, v: i64) {
            *self.0.lock().unwrap() += v;
        }
        fn get(&self) -> i64 {
            *self.0.lock().unwrap()
        }
    }

    impl Snapshot for Cell {
        fn snapshot(&self) -> Vec<u8> {
            self.get().to_le_bytes().to_vec()
        }
        fn restore(&self, bytes: &[u8], _ts: u64) -> Result<(), SnapshotError> {
            let arr: [u8; 8] =
                bytes.try_into().map_err(|_| SnapshotError::new("bad cell snapshot"))?;
            *self.0.lock().unwrap() = i64::from_le_bytes(arr);
            Ok(())
        }
    }

    fn small_opts() -> StorageOptions {
        StorageOptions {
            segment_max_bytes: 256,
            policy: CompactionPolicy::never(),
            ..StorageOptions::default()
        }
    }

    fn run_txn(store: &DurableStore, cell: &Cell, txn: u64, ts: u64, v: i64) {
        store.log_begin(txn).unwrap();
        store.log_op(txn, "cell", &v.to_le_bytes()).unwrap();
        cell.add(v);
        store.log_commit(txn, ts).unwrap();
    }

    fn replay(recovered: &Recovered, cell: &Cell) {
        if let Some(ckpt) = &recovered.checkpoint {
            for (name, data) in &ckpt.objects {
                assert_eq!(name, "cell");
                cell.restore(data, ckpt.last_ts).unwrap();
            }
        }
        for txn in &recovered.committed {
            for (obj, op) in &txn.ops {
                assert_eq!(obj, "cell");
                cell.add(i64::from_le_bytes(op.as_slice().try_into().unwrap()));
            }
        }
    }

    #[test]
    fn recover_without_checkpoint_replays_everything() {
        let dir = tmp("plain");
        let cell = Cell::default();
        {
            let store = DurableStore::open(&dir, small_opts()).unwrap();
            for i in 1..=10 {
                run_txn(&store, &cell, i, i, i as i64);
            }
            // An aborted transaction must not replay.
            store.log_begin(99).unwrap();
            store.log_op(99, "cell", &1000i64.to_le_bytes()).unwrap();
            store.log_abort(99).unwrap();
        }
        let recovered = DurableStore::recover(&dir).unwrap();
        assert!(recovered.checkpoint.is_none());
        assert_eq!(recovered.committed.len(), 10);
        let fresh = Cell::default();
        replay(&recovered, &fresh);
        assert_eq!(fresh.get(), cell.get());
    }

    #[test]
    fn checkpoint_then_tail_equals_full_replay() {
        let dir = tmp("ckpt");
        let cell = Cell::default();
        {
            let store = DurableStore::open(&dir, small_opts()).unwrap();
            for i in 1..=20 {
                run_txn(&store, &cell, i, i, i as i64);
            }
            store.checkpoint(&[("cell", &cell)]).unwrap();
            for i in 21..=30 {
                run_txn(&store, &cell, i, i, i as i64);
            }
        }
        let recovered = DurableStore::recover(&dir).unwrap();
        let ckpt = recovered.checkpoint.as_ref().expect("checkpoint present");
        assert_eq!(ckpt.last_ts, 20);
        assert_eq!(recovered.committed.len(), 10, "only the tail replays");
        assert!(recovered.committed.iter().all(|t| t.ts > 20));
        let fresh = Cell::default();
        replay(&recovered, &fresh);
        assert_eq!(fresh.get(), (1..=30).sum::<i64>());
    }

    #[test]
    fn checkpoint_prunes_dead_segments() {
        let dir = tmp("prune");
        let cell = Cell::default();
        let store = DurableStore::open(&dir, small_opts()).unwrap();
        for i in 1..=50 {
            run_txn(&store, &cell, i, i, 1);
        }
        let before = crate::wal::list_segments(&dir).unwrap().len();
        assert!(before > 2);
        store.checkpoint(&[("cell", &cell)]).unwrap();
        let after = crate::wal::list_segments(&dir).unwrap().len();
        assert!(after <= 2, "dead segments survived: {after}");
        assert_eq!(store.checkpoints_taken(), 1);
    }

    #[test]
    fn policy_drives_maybe_checkpoint() {
        let dir = tmp("policy");
        let cell = Cell::default();
        let store = DurableStore::open(
            &dir,
            StorageOptions {
                segment_max_bytes: 256,
                policy: CompactionPolicy::every_n(10),
                ..StorageOptions::default()
            },
        )
        .unwrap();
        let mut taken = 0;
        for i in 1..=35 {
            run_txn(&store, &cell, i, i, 1);
            if store.maybe_checkpoint(&[("cell", &cell)]).unwrap().is_some() {
                taken += 1;
            }
        }
        assert_eq!(taken, 3, "EveryN(10) over 35 commits");
    }

    #[test]
    fn registry_ids_are_stable_across_reopen_and_checkpoint_pruning() {
        let dir = tmp("registry");
        let cell = Cell::default();
        let id_first;
        {
            let store = DurableStore::open(&dir, small_opts()).unwrap();
            id_first = store.object_id("cell").unwrap();
            assert_eq!(store.object_id("cell").unwrap(), id_first, "idempotent");
            for i in 1..=30 {
                run_txn(&store, &cell, i, i, 1);
            }
            // Checkpoint prunes the segments holding the original Register
            // record; the binding survives in the checkpoint file's table.
            store.checkpoint(&[("cell", &cell)]).unwrap();
            for i in 31..=35 {
                run_txn(&store, &cell, i, i, 1);
            }
        }
        {
            let store = DurableStore::open(&dir, small_opts()).unwrap();
            assert_eq!(
                store.object_id("cell").unwrap(),
                id_first,
                "reopen must resolve the same id from the surviving log"
            );
            let other = store.object_id("other").unwrap();
            assert!(other > id_first, "fresh names allocate above survivors");
        }
        let recovered = DurableStore::recover(&dir).unwrap();
        assert_eq!(recovered.committed.len(), 5, "tail above the checkpoint");
        assert!(recovered.committed.iter().all(|t| t.ops.iter().all(|(name, _)| name == "cell")));
    }

    #[test]
    fn in_doubt_transactions_are_reported() {
        let dir = tmp("in-doubt");
        {
            let store = DurableStore::open(&dir, small_opts()).unwrap();
            store.log_begin(1).unwrap();
            store.log_op(1, "cell", &5i64.to_le_bytes()).unwrap();
            store.log_commit(1, 1).unwrap();
            // Txn 2 voted yes somewhere and crashed before the decision
            // arrived: ops, no completion record.
            store.log_begin(2).unwrap();
            store.log_op(2, "cell", &7i64.to_le_bytes()).unwrap();
        }
        let recovered = DurableStore::recover(&dir).unwrap();
        assert_eq!(recovered.committed.len(), 1);
        assert_eq!(recovered.in_doubt.len(), 1);
        assert_eq!(recovered.in_doubt[0].txn, 2);
        assert_eq!(recovered.in_doubt[0].ops[0].0, "cell");
    }

    #[test]
    fn abort_record_overrides_unacknowledged_commit() {
        let dir = tmp("commit-then-abort");
        {
            let store = DurableStore::open(&dir, small_opts()).unwrap();
            // The ambiguous-failure shape: a commit frame reached disk but
            // its fsync failed, so the manager aborted and told the client
            // the commit did not happen.
            store.log_begin(5).unwrap();
            store.log_op(5, "cell", &7i64.to_le_bytes()).unwrap();
            store.log_commit(5, 9).unwrap();
            store.log_abort(5).unwrap();
        }
        let recovered = DurableStore::recover(&dir).unwrap();
        assert!(
            recovered.committed.is_empty(),
            "an aborted transaction must not recover as committed: {recovered:?}"
        );
    }

    #[test]
    fn missing_ops_is_detected() {
        let dir = tmp("missing");
        {
            let store = DurableStore::open(&dir, small_opts()).unwrap();
            // A commit record with no Begin/Op in the log (simulates a
            // wrongly pruned segment).
            store.log_commit(7, 3).unwrap();
        }
        match DurableStore::recover(&dir) {
            Err(StorageError::MissingOps { txn: 7, ts: 3 }) => {}
            other => panic!("expected MissingOps, got {other:?}"),
        }
    }

    #[test]
    fn reopen_after_checkpoint_keeps_timestamps_monotone() {
        let dir = tmp("reopen");
        let cell = Cell::default();
        {
            let store = DurableStore::open(&dir, small_opts()).unwrap();
            for i in 1..=5 {
                run_txn(&store, &cell, i, i, 1);
            }
            store.checkpoint(&[("cell", &cell)]).unwrap();
        }
        {
            // A reopened store learns the checkpoint's watermark, so a new
            // checkpoint without fresh commits keeps last_ts = 5. Until the
            // caller attests its objects absorbed the prior history,
            // checkpointing is refused — the same `cell` carried the state
            // across the reopen here, so the attestation is truthful.
            let store = DurableStore::open(&dir, small_opts()).unwrap();
            match store.checkpoint(&[("cell", &cell)]) {
                Err(StorageError::UnabsorbedHistory { last_ts: 5 }) => {}
                other => panic!("expected UnabsorbedHistory, got {other:?}"),
            }
            store.mark_state_absorbed();
            let ckpt = store.checkpoint(&[("cell", &cell)]).unwrap();
            assert_eq!(ckpt.last_ts, 5);
        }
    }
}
