//! The durable store: ties the striped WAL, the checkpoint manager, and
//! the compaction policy into one object the transaction layer can own.
//!
//! ## Fuzzy checkpoint protocol
//!
//! Checkpoints no longer stop the world. The protocol splits into a brief
//! *begin* (under the caller's exclusive commit gate — microseconds, no
//! I/O) and a lazy *finish* (commits flow concurrently):
//!
//! 1. **Begin** (`checkpoint_begin`, gate held): record the watermark
//!    `ts0 = last_commit_ts`, the global ticket watermark, and each
//!    stripe's cut — its active segment index clamped below any segment
//!    pinned by a live transaction. The caller pins every object's fold
//!    horizon at `ts0` before releasing the gate.
//! 2. **Snapshot** (gate released): each object serializes its committed
//!    frontier *at* `ts0` under its own lock (`Snapshot::snapshot_at`);
//!    commits with `ts > ts0` proceed concurrently and are simply not in
//!    the image.
//! 3. **Finish** (`checkpoint_finish`): the `HCCKPT03` file
//!    `{ts0, ticket, stripe_lows, snapshots, registry}` is written
//!    durably (temp + fsync + rename), segments below each stripe's cut
//!    are deleted, and older checkpoints pruned. Every record of a commit
//!    above `ts0` is either at/above its stripe's cut (logged after
//!    begin) or in a segment pinned by its then-live transaction — so
//!    pruning can never eat a record the fuzzy image is missing.
//!
//! ## Recovery
//!
//! `recover()` loads the newest valid checkpoint, merges every stripe's
//! surviving records into ticket order (tolerating a torn tail per
//! stripe), and returns the committed transactions with timestamp above
//! the watermark, in timestamp order, each with its logged operations.
//! Commit records are **self-certifying**: they carry their op count and
//! chain link, so recovery needs no Begin record to trust them (Begin
//! records are buffered on the transaction's home stripe and may not
//! survive a crash that the fsynced commit did). A commit whose op count
//! exceeds the surviving ops lost part of a stripe tail in the crash; it
//! was never acknowledged at `Fsync` durability, so it is *dropped* as
//! incompletely durable (`Recovered::incomplete`) rather than
//! half-replayed — and because ops of one object always share a stripe,
//! dropping it can never orphan a surviving transaction that depended on
//! it. The same reporting covers a wrongly pruned middle segment.

use crate::checkpoint::Checkpoint;
use crate::policy::{CompactionPolicy, LogStats};
use crate::record::LogRecord;
use crate::snapshot::Snapshot;
use crate::wal::{read_records, SegmentedWal, WalOptions};
use crate::StorageError;
use hcc_core::runtime::Durability;
use hcc_obs::Registry;
use std::collections::{BTreeMap, HashMap, HashSet};
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

/// Construction options for a [`DurableStore`].
#[derive(Clone, Copy, Debug)]
pub struct StorageOptions {
    /// Segment rotation threshold.
    pub segment_max_bytes: u64,
    /// Durability of completion records.
    pub durability: Durability,
    /// Batch concurrent commit fsyncs.
    pub group_commit: bool,
    /// Number of WAL append stripes (1 = the legacy single-stream log).
    pub stripes: usize,
    /// When to checkpoint and delete dead segments.
    pub policy: CompactionPolicy,
}

impl Default for StorageOptions {
    fn default() -> Self {
        StorageOptions {
            segment_max_bytes: 4 * 1024 * 1024,
            durability: Durability::Fsync,
            group_commit: true,
            stripes: 1,
            policy: CompactionPolicy::default(),
        }
    }
}

/// The `HCC_WAL_STRIPES` environment override (the CI striping axis),
/// shared by every options type that carries a stripe count: `Some(n)`
/// for a parsable value ≥ 1, `None` otherwise.
pub fn stripes_env_override() -> Option<usize> {
    std::env::var("HCC_WAL_STRIPES").ok()?.trim().parse::<usize>().ok().filter(|&n| n >= 1)
}

/// The `HCC_DURABILITY` environment override (`none` / `buffered` /
/// `fsync`, case-insensitive) — the CI durability axis, shared by every
/// options type that carries a durability level. `None` when unset or
/// unrecognized.
pub fn durability_env_override() -> Option<Durability> {
    match std::env::var("HCC_DURABILITY").ok()?.trim().to_ascii_lowercase().as_str() {
        "none" => Some(Durability::None),
        "buffered" => Some(Durability::Buffered),
        "fsync" => Some(Durability::Fsync),
        _ => None,
    }
}

impl StorageOptions {
    /// Override the stripe count from `HCC_WAL_STRIPES` — how CI runs
    /// the recovery suite as a striping matrix. Unset or unparsable
    /// values keep the current count.
    pub fn stripes_from_env(mut self) -> Self {
        if let Some(n) = stripes_env_override() {
            self.stripes = n;
        }
        self
    }

    /// Override the durability level from `HCC_DURABILITY`. Unset or
    /// unrecognized values keep the current level.
    pub fn durability_from_env(mut self) -> Self {
        if let Some(d) = durability_env_override() {
            self.durability = d;
        }
        self
    }

    /// Apply every environment override (`HCC_DURABILITY`,
    /// `HCC_WAL_STRIPES`).
    pub fn env_overrides(self) -> Self {
        self.durability_from_env().stripes_from_env()
    }
}

/// One recovered committed transaction.
#[derive(Clone, Debug, PartialEq)]
pub struct CommittedTxn {
    /// Commit timestamp.
    pub ts: u64,
    /// Transaction id.
    pub txn: u64,
    /// Logged operations in execution (ticket) order: `(object, opaque op
    /// bytes)` (registry ids already translated back to names).
    pub ops: Vec<(String, Vec<u8>)>,
}

/// A transaction whose operations survived but whose outcome did not: no
/// commit and no abort record. A single-site log simply drops these
/// (recovery never replays uncommitted transactions); a 2PC *participant*
/// consults the coordinator's decision log to resolve them — the classic
/// in-doubt case of a site crashed between its yes-vote and the phase-2
/// commit message.
#[derive(Clone, Debug, PartialEq)]
pub struct InDoubtTxn {
    /// Transaction id.
    pub txn: u64,
    /// Logged operations in execution order.
    pub ops: Vec<(String, Vec<u8>)>,
}

/// Everything recovery learned from disk.
#[derive(Clone, Debug, Default)]
pub struct Recovered {
    /// The newest valid checkpoint, if any.
    pub checkpoint: Option<Checkpoint>,
    /// Committed transactions above the checkpoint, in timestamp order.
    pub committed: Vec<CommittedTxn>,
    /// Transactions with operations but no completion record, by id.
    pub in_doubt: Vec<InDoubtTxn>,
    /// Transactions whose commit record survived but some op records did
    /// not (a stripe's crash tail took them): never acknowledged durable,
    /// dropped from replay.
    pub incomplete: Vec<u64>,
    /// Did any stripe drop a torn tail from its final segment?
    pub torn_tail: bool,
}

/// What [`DurableStore::checkpoint_begin`] captured under the commit
/// gate: everything `checkpoint_finish` needs, frozen at the watermark.
#[derive(Clone, Debug)]
pub struct CheckpointCursor {
    /// The commit-timestamp watermark (`ts0`): every commit at or below
    /// it is fully logged and applied; the snapshots are taken at it.
    pub last_ts: u64,
    /// The global ticket watermark at begin time.
    pub last_ticket: u64,
    /// The commit-chain watermark at begin time (no commit is mid-chain:
    /// the caller holds its commit gate exclusively).
    pub commit_chain: u64,
    /// Per-stripe prune bounds (active segment clamped by live pins).
    pub stripe_cuts: Vec<u64>,
}

/// A WAL + checkpoint store + compaction policy rooted at one directory.
pub struct DurableStore {
    dir: PathBuf,
    wal: SegmentedWal,
    opts: StorageOptions,
    /// Highest commit timestamp logged through this store (seeded from the
    /// checkpoint *and* the WAL tail on open, so a resumed session's clock
    /// can be re-anchored above everything already durable).
    last_commit_ts: AtomicU64,
    /// Highest transaction id seen in the surviving log on open. A resumed
    /// session must allocate above this, or its records would merge with a
    /// dead transaction's under the same id at recovery.
    max_txn_seen: u64,
    /// Set when the store was opened over a log with prior commits (or a
    /// checkpoint) that the caller's live objects have not absorbed.
    /// Checkpointing in this state would claim coverage of history the
    /// snapshots do not contain — and then prune it. Cleared by
    /// [`DurableStore::mark_state_absorbed`].
    unabsorbed_history: std::sync::atomic::AtomicBool,
    /// The recovery image the single open-time disk pass produced: the
    /// checkpoint loaded at open plus the WAL's fully decoded surviving
    /// records. Claimed (once) by [`DurableStore::take_recovered`] so
    /// recovery never re-reads what open just read; dropped on
    /// absorption, and on the first append (recovery runs before
    /// transactions, so an append signals no materialization is coming),
    /// so the memory is never held for a recovery that will not run.
    open_image: std::sync::Mutex<Option<OpenImage>>,
    /// Cheap guard for [`DurableStore::release_image_on_append`]: true
    /// while a non-empty open image is retained.
    open_image_present: std::sync::atomic::AtomicBool,
    /// Number of checkpoints taken by this instance.
    checkpoints_taken: AtomicU64,
    /// The object registry: name → compact id used by `Op` records. Seeded
    /// from the surviving `Register` records on open; grows as new names
    /// are logged against. Reads (the per-op fast path) take the lock
    /// shared so the registry cannot become a serial point across stripes.
    registry: std::sync::RwLock<ObjectRegistry>,
    /// The system-wide metric registry. Created here (the store is the
    /// bottom of the stack) and adopted upward by the transaction manager
    /// and the `Db` facade, so every layer's instruments land in one
    /// snapshot. The WAL's stripe instruments are resolved from it at
    /// open.
    metrics: Arc<Registry>,
}

#[derive(Default)]
struct ObjectRegistry {
    by_name: HashMap<String, u64>,
    next_id: u64,
}

/// What the open-time pass read off disk, retained verbatim: assembly
/// into a [`Recovered`] is deferred to [`DurableStore::take_recovered`]
/// so that opening a store stays permissive (a log whose tail recovery
/// would refuse — a timestamp collision, an unknown object id — still
/// opens; the refusal surfaces where recovery is actually requested,
/// exactly as it did when recovery re-read the disk).
struct OpenImage {
    checkpoint: Option<Checkpoint>,
    records: Vec<(u64, crate::record::LogRecord)>,
    torn_tail: bool,
}

impl DurableStore {
    /// Open (or create) the store rooted at `dir`.
    pub fn open(
        dir: impl AsRef<Path>,
        opts: StorageOptions,
    ) -> Result<Arc<DurableStore>, StorageError> {
        let dir = dir.as_ref().to_path_buf();
        let metrics = Arc::new(Registry::new());
        let wal = SegmentedWal::open_with_metrics(
            &dir,
            WalOptions {
                segment_max_bytes: opts.segment_max_bytes,
                durability: opts.durability,
                group_commit: opts.group_commit,
                stripes: opts.stripes,
            },
            &metrics,
        )?;
        let ckpt = Checkpoint::load_latest(&dir)?;
        let ckpt_ts = ckpt.as_ref().map(|c| c.last_ts).unwrap_or(0);
        // The WAL made one full pass over the surviving segments when it
        // opened (tail repair + ticket/chain anchors + decoded records);
        // reuse its scan: resuming a log must not reuse timestamps,
        // transaction ids, tickets, or registry ids that are already
        // durable below the recovery watermarks. Registry bindings come
        // from the checkpoint (whose segments compaction deleted) plus the
        // surviving Register records.
        let scan = wal.open_scan().clone();
        let last_ts = ckpt_ts.max(scan.last_ts);
        // Compaction may have deleted the segments holding the highest
        // tickets (and the chain link below the watermark); the
        // checkpoint remembers both.
        wal.witness_ticket(ckpt.as_ref().map(|c| c.last_ticket + 1).unwrap_or(0));
        wal.witness_chain(ckpt.as_ref().map(|c| c.commit_chain).unwrap_or(0));
        let mut registry = ObjectRegistry::default();
        let ckpt_bindings: Vec<(u64, String)> =
            ckpt.as_ref().map(|c| c.registry.clone()).unwrap_or_default();
        for (id, name) in ckpt_bindings.into_iter().chain(scan.registrations) {
            registry.next_id = registry.next_id.max(id);
            registry.by_name.insert(name, id);
        }
        // Retain the pass's full product — checkpoint + decoded records
        // — as the recovery image, so `take_recovered` serves the
        // materialization from memory instead of re-reading every
        // segment (the ROADMAP's "double log scan at open").
        let open_image = wal.take_open_image().map(|(records, torn_tail)| OpenImage {
            checkpoint: ckpt,
            records,
            torn_tail,
        });
        let has_image = open_image.as_ref().is_some_and(|img| !img.records.is_empty());
        Ok(Arc::new(DurableStore {
            dir,
            wal,
            opts,
            last_commit_ts: AtomicU64::new(last_ts),
            max_txn_seen: scan.max_txn,
            unabsorbed_history: std::sync::atomic::AtomicBool::new(last_ts > 0),
            checkpoints_taken: AtomicU64::new(0),
            registry: std::sync::RwLock::new(registry),
            open_image: std::sync::Mutex::new(open_image),
            open_image_present: std::sync::atomic::AtomicBool::new(has_image),
            metrics,
        }))
    }

    /// The system-wide metric registry rooted at this store. The
    /// transaction manager (and through it every object) adopts this
    /// registry, so one snapshot covers locks, transactions, the WAL,
    /// checkpoints, and recovery.
    pub fn metrics(&self) -> &Arc<Registry> {
        &self.metrics
    }

    /// Release the retained open image on the first append: a caller
    /// that starts logging without having taken it signaled that no
    /// recovery materialization is coming (recovery always runs before
    /// transactions), so an append-only store — a 2PC coordinator's
    /// decision log, a pure workload driver — does not pin a decoded
    /// copy of its whole history in memory for its lifetime. One relaxed
    /// atomic load on the hot path; the image (if any) is taken once.
    fn release_image_on_append(&self) {
        if self.open_image_present.load(Ordering::Relaxed) {
            self.open_image_present.store(false, Ordering::Relaxed);
            self.open_image.lock().unwrap_or_else(std::sync::PoisonError::into_inner).take();
        }
    }

    /// The durable state this store's open-time pass read: newest
    /// checkpoint plus the committed tail, in timestamp order —
    /// identical to [`DurableStore::recover`] on the same directory, but
    /// served from the image the open already decoded, so the log is
    /// scanned once, not twice. Returns `Some` exactly once; `None`
    /// after it was claimed or after [`DurableStore::mark_state_absorbed`]
    /// dropped it (callers then fall back to the static re-read).
    pub fn take_recovered(&self) -> Result<Option<Recovered>, StorageError> {
        self.open_image_present.store(false, Ordering::Relaxed);
        let image =
            self.open_image.lock().unwrap_or_else(std::sync::PoisonError::into_inner).take();
        match image {
            Some(img) => {
                self.metrics.counter("recovery.segments_scanned").add(self.wal.stats().segments);
                assemble_recovered(img.checkpoint, img.records, img.torn_tail, Some(&self.metrics))
                    .map(Some)
            }
            None => Ok(None),
        }
    }

    /// Re-read the durable state from disk through this instance —
    /// byte-equal to the static [`DurableStore::recover`], but the
    /// recovery totals (`recovery.*`) land in this store's metric
    /// registry. The fallback when the open-time image was already
    /// claimed or released.
    pub fn reread_recovered(&self) -> Result<Recovered, StorageError> {
        let checkpoint = Checkpoint::load_latest(&self.dir)?;
        let (records, torn_tail) = read_records(&self.dir)?;
        self.metrics.counter("recovery.segments_scanned").add(self.wal.stats().segments);
        assemble_recovered(checkpoint, records, torn_tail, Some(&self.metrics))
    }

    /// Attest that the caller's live objects reflect every commit at or
    /// below [`DurableStore::last_commit_ts`] — i.e. recovery (checkpoint
    /// restore + tail replay) has been applied to the objects that will be
    /// registered with [`DurableStore::checkpoint`]. Until this is called
    /// on a store opened over prior history, checkpointing is refused.
    pub fn mark_state_absorbed(&self) {
        self.unabsorbed_history.store(false, Ordering::Release);
        // Absorption means nobody will materialize from the open image
        // anymore; release its memory.
        self.open_image_present.store(false, Ordering::Relaxed);
        self.open_image.lock().unwrap_or_else(std::sync::PoisonError::into_inner).take();
    }

    /// The highest commit timestamp known durable (checkpoint + WAL tail
    /// at open time, plus everything logged since). A resumed session's
    /// clock must issue strictly above this.
    pub fn last_commit_ts(&self) -> u64 {
        self.last_commit_ts.load(Ordering::Relaxed)
    }

    /// The highest transaction id in the log when the store was opened. A
    /// resumed session must allocate ids strictly above this.
    pub fn max_txn_seen(&self) -> u64 {
        self.max_txn_seen
    }

    /// The store's root directory.
    pub fn dir(&self) -> &Path {
        &self.dir
    }

    /// The configured durability level.
    pub fn durability(&self) -> Durability {
        self.opts.durability
    }

    /// The number of WAL append stripes.
    pub fn stripes(&self) -> usize {
        self.wal.stripe_count()
    }

    /// Reserve the next global order ticket. The two-phase redo path
    /// calls this *under the executing object's lock* — that is the whole
    /// trick: the ticket order of one object's ops equals their execution
    /// order, while the append itself (`publish_op`) happens outside the
    /// lock and can never stall the object behind a rotation fsync.
    pub fn reserve_ticket(&self) -> u64 {
        self.wal.reserve()
    }

    /// The last global order ticket issued so far (0 = none). Replication
    /// samples this *after* reading the stable watermark: every commit at
    /// or below that watermark has already retired, so its commit record
    /// is ticketed at or below the value read here — the pair bounds what
    /// a follower must apply before exposing the watermark to readers.
    pub fn last_issued_ticket(&self) -> u64 {
        self.wal.current_ticket().saturating_sub(1)
    }

    /// Log that `txn` began.
    pub fn log_begin(&self, txn: u64) -> Result<(), StorageError> {
        self.release_image_on_append();
        self.wal.append_begin(txn)
    }

    /// Append one executed operation under a pre-reserved ticket. The
    /// object name is translated to its compact registry id; a first-seen
    /// name durably appends its `Register` binding (on the same stripe)
    /// before the op record.
    pub fn publish_op(
        &self,
        ticket: u64,
        txn: u64,
        object: &str,
        op: &[u8],
    ) -> Result<(), StorageError> {
        self.release_image_on_append();
        let obj = self.object_id(object)?;
        self.wal.append_op(ticket, txn, obj, op)
    }

    /// Log one executed operation, reserving its ticket at append time
    /// (single-phase; callers that executed under an object lock should
    /// use [`DurableStore::reserve_ticket`] + [`DurableStore::publish_op`]
    /// instead so the ticket order matches the execution order).
    pub fn log_op(&self, txn: u64, object: &str, op: &[u8]) -> Result<(), StorageError> {
        self.publish_op(self.wal.reserve(), txn, object, op)
    }

    /// The registry id for `object`, assigning (and durably registering)
    /// one on first use.
    pub fn object_id(&self, object: &str) -> Result<u64, StorageError> {
        {
            let reg = self.registry.read().unwrap_or_else(std::sync::PoisonError::into_inner);
            if let Some(&id) = reg.by_name.get(object) {
                return Ok(id);
            }
        }
        let mut reg = self.registry.write().unwrap_or_else(std::sync::PoisonError::into_inner);
        if let Some(&id) = reg.by_name.get(object) {
            return Ok(id); // lost the upgrade race: someone registered it
        }
        // Reserve the id *before* the append, and never recycle it: a
        // failed append may still leave the Register frame in the WAL
        // buffer, where a later unrelated flush can make it durable —
        // reusing the id for a different name would then durably bind two
        // names to one id. A retried registration simply burns a fresh id
        // (two ids resolving to one name is harmless; one id resolving to
        // two names is corruption).
        let id = reg.next_id + 1;
        reg.next_id = id;
        // The binding is cached only once the append succeeded, so the
        // next attempt re-registers instead of logging ops against an id
        // recovery might never learn.
        self.wal.append_register(id, object)?;
        reg.by_name.insert(object.to_string(), id);
        Ok(id)
    }

    /// Durably log that `txn` committed at `ts` (group-committed per
    /// stripe under `Durability::Fsync`; the transaction's other op
    /// stripes are settled first). Returns only once the record is as
    /// durable as the configured level requires.
    pub fn log_commit(&self, txn: u64, ts: u64) -> Result<(), StorageError> {
        self.release_image_on_append();
        self.wal.commit_txn(txn, ts)?;
        self.last_commit_ts.fetch_max(ts, Ordering::Relaxed);
        Ok(())
    }

    /// Log that `txn` aborted (buffered like an op record — recovery never
    /// replays uncommitted transactions, so ordinary aborts need no fsync;
    /// they only unpin segments for compaction).
    pub fn log_abort(&self, txn: u64) -> Result<(), StorageError> {
        self.release_image_on_append();
        self.wal.append_abort(txn)
    }

    /// Durably log that `txn` aborted. Used when a commit record may
    /// already be on disk but was never acknowledged (its fsync failed):
    /// recovery's abort-wins rule needs this record to survive.
    pub fn log_abort_durable(&self, txn: u64) -> Result<(), StorageError> {
        self.release_image_on_append();
        self.wal.commit_abort(txn)
    }

    /// Force everything appended so far onto disk (flush + fsync on every
    /// stripe), regardless of the configured durability level. A 2PC
    /// participant calls this before voting yes: its op records must
    /// survive a crash once the coordinator may decide commit.
    pub fn sync(&self) -> Result<(), StorageError> {
        self.wal.sync()
    }

    /// Current log statistics.
    pub fn stats(&self) -> LogStats {
        self.wal.stats()
    }

    /// Does the compaction policy want a checkpoint now?
    pub fn should_checkpoint(&self) -> bool {
        self.opts.policy.should_compact(&self.wal.stats())
    }

    /// Checkpoints taken by this store instance.
    pub fn checkpoints_taken(&self) -> u64 {
        self.checkpoints_taken.load(Ordering::Relaxed)
    }

    /// Phase 1 of a fuzzy checkpoint. The caller must hold its commit
    /// gate exclusively across this call (and across pinning its objects'
    /// horizons at the returned watermark) — microseconds of stall, no
    /// I/O — and must then release the gate before snapshotting.
    pub fn checkpoint_begin(&self) -> Result<CheckpointCursor, StorageError> {
        if self.unabsorbed_history.load(Ordering::Acquire) {
            return Err(StorageError::UnabsorbedHistory {
                last_ts: self.last_commit_ts.load(Ordering::Relaxed),
            });
        }
        Ok(CheckpointCursor {
            last_ts: self.last_commit_ts.load(Ordering::Relaxed),
            last_ticket: self.wal.current_ticket(),
            commit_chain: self.wal.commit_chain(),
            stripe_cuts: self.wal.checkpoint_cuts(),
        })
    }

    /// Phase 2 of a fuzzy checkpoint: persist the snapshots (taken at
    /// `cursor.last_ts` via [`Snapshot::snapshot_at`]) and compact.
    /// Commits may be running concurrently.
    pub fn checkpoint_finish(
        &self,
        cursor: &CheckpointCursor,
        objects: Vec<(String, Vec<u8>)>,
    ) -> Result<Checkpoint, StorageError> {
        // The checkpoint carries the registry bindings: pruning deletes the
        // segments holding the original Register records, while pinned
        // segments may keep op records that still reference the ids — and
        // the checkpoint file (temp + fsync + rename) is the one artifact
        // a torn tail can never reach.
        let mut registry: Vec<(u64, String)> = {
            let reg = self.registry.read().unwrap_or_else(std::sync::PoisonError::into_inner);
            reg.by_name.iter().map(|(name, &id)| (id, name.clone())).collect()
        };
        // Sorted (by id), so checkpoint bytes are a deterministic function
        // of the logged history — identical runs produce identical files.
        registry.sort();
        let ckpt = Checkpoint {
            last_ts: cursor.last_ts,
            last_ticket: cursor.last_ticket,
            commit_chain: cursor.commit_chain,
            stripe_lows: cursor.stripe_cuts.clone(),
            objects,
            registry,
        };
        ckpt.save(&self.dir)?;
        self.wal.mark_checkpoint();
        let pruned = self.wal.prune_segments(&cursor.stripe_cuts)?;
        Checkpoint::prune_older(&self.dir, ckpt.last_ts)?;
        self.checkpoints_taken.fetch_add(1, Ordering::Relaxed);
        self.metrics.counter("ckpt.count").inc();
        self.metrics
            .counter("ckpt.bytes")
            .add(ckpt.objects.iter().map(|(_, b)| b.len() as u64).sum());
        self.metrics.counter("ckpt.segments_pruned").add(pruned);
        Ok(ckpt)
    }

    /// Take a checkpoint of `objects` and delete dead segments, assuming
    /// a **quiesced** caller: no commit may be logged between the begin
    /// and the snapshots (the transaction manager's fuzzy path pins
    /// horizons and snapshots at the watermark instead — see
    /// `hcc-txn::TxnManager::checkpoint`).
    pub fn checkpoint(
        &self,
        objects: &[(&str, &dyn Snapshot)],
    ) -> Result<Checkpoint, StorageError> {
        let cursor = self.checkpoint_begin()?;
        let snaps = objects
            .iter()
            .map(|(name, snap)| (name.to_string(), snap.snapshot_at(cursor.last_ts)))
            .collect();
        self.checkpoint_finish(&cursor, snaps)
    }

    /// Convenience: checkpoint iff the policy fires.
    pub fn maybe_checkpoint(
        &self,
        objects: &[(&str, &dyn Snapshot)],
    ) -> Result<Option<Checkpoint>, StorageError> {
        if self.should_checkpoint() {
            self.checkpoint(objects).map(Some)
        } else {
            Ok(None)
        }
    }

    /// Read the durable state under `dir`: newest checkpoint plus the
    /// committed tail, in timestamp order. Static — recovery happens before
    /// any appender is opened. (A store opened over the same directory
    /// serves the identical image from its open-time pass via
    /// [`DurableStore::take_recovered`] without re-reading the disk.)
    pub fn recover(dir: impl AsRef<Path>) -> Result<Recovered, StorageError> {
        let dir = dir.as_ref();
        let checkpoint = Checkpoint::load_latest(dir)?;
        // Records arrive merged into global ticket order — the
        // deterministic stripe merge.
        let (records, torn_tail) = read_records(dir)?;
        assemble_recovered(checkpoint, records, torn_tail, None)
    }
}

/// Turn a raw log image — checkpoint + ticket-ordered surviving records —
/// into the replayable [`Recovered`] state: registry resolution, the
/// commit-chain walk, op-count certification, abort-wins, and in-doubt
/// collection. Shared by the static [`DurableStore::recover`] (re-reads
/// the disk) and [`DurableStore::take_recovered`] (consumes the open-time
/// pass's image).
fn assemble_recovered(
    checkpoint: Option<Checkpoint>,
    records: Vec<(u64, LogRecord)>,
    torn_tail: bool,
    metrics: Option<&Registry>,
) -> Result<Recovered, StorageError> {
    let ckpt_ts = checkpoint.as_ref().map(|c| c.last_ts).unwrap_or(0);
    // The id→name registry: seeded from the checkpoint (which carries
    // the bindings of every id pruned segments may still reference),
    // then extended by the surviving Register records — built in a
    // first pass so record order never matters.
    let mut names: HashMap<u64, String> = HashMap::new();
    if let Some(ckpt) = &checkpoint {
        for (id, name) in &ckpt.registry {
            names.insert(*id, name.clone());
        }
    }
    for (_, rec) in &records {
        if let LogRecord::Register { id, name } = rec {
            names.insert(*id, name.clone());
        }
    }

    let mut ops: HashMap<u64, Vec<(String, Vec<u8>)>> = HashMap::new();
    let mut aborted: HashSet<u64> = HashSet::new();
    let mut completed: HashSet<u64> = HashSet::new();
    let mut op_counts: HashMap<u64, u32> = HashMap::new();
    // Commit records in ticket (chain) order, plus the tickets of
    // abort records (a compensating abort reuses a failed commit's
    // chain ticket, keeping the chain linkable through it).
    let mut commit_nodes: Vec<(u64, u64, u64, u64)> = Vec::new(); // (seq, txn, ts, prev)
    let mut abort_tickets: HashSet<u64> = HashSet::new();
    for (seq, rec) in records {
        match rec {
            LogRecord::Begin { .. } => {}
            LogRecord::Op { txn, obj, op } => {
                let object = names
                    .get(&obj)
                    .cloned()
                    .ok_or(StorageError::UnknownObjectId { id: obj, txn })?;
                ops.entry(txn).or_default().push((object, op));
            }
            LogRecord::Commit { txn, ts, ops: n, prev } => {
                completed.insert(txn);
                // Duplicate commit records of one txn (a retried 2PC
                // phase-2 delivery) may disagree on the count — the
                // retry is logged after the tracking entry was
                // cleared. The max is the true count; any duplicate
                // below it carries no new obligation.
                let c = op_counts.entry(txn).or_insert(0);
                *c = (*c).max(n);
                commit_nodes.push((seq, txn, ts, prev));
            }
            LogRecord::Abort { txn } => {
                ops.remove(&txn);
                aborted.insert(txn);
                completed.insert(txn);
                abort_tickets.insert(seq);
            }
            LogRecord::Register { .. } => {}
        }
    }

    // The commit-chain walk: a commit is *durably linked* when its
    // `prev` pointer resolves — to the checkpoint's chain watermark,
    // to another linked commit, or to an abort that reused a failed
    // commit's ticket. A hole means a stripe's crash tail took an
    // earlier commit record than one that survived elsewhere; the
    // unlinked commit (and transitively everything chained past the
    // hole) was never acknowledged-and-depended-on consistently, so
    // it is dropped — exactly the "a tail cut removes a suffix"
    // semantics of a single-stream log, reconstructed across stripes.
    let chain_floor = checkpoint.as_ref().map(|c| c.commit_chain).unwrap_or(0);
    let mut linked: HashSet<u64> = HashSet::new();
    let mut commits: BTreeMap<u64, u64> = BTreeMap::new(); // ts -> txn
    let mut incomplete = Vec::new();
    for &(seq, txn, ts, prev) in &commit_nodes {
        if seq <= chain_floor {
            // Pinned pre-checkpoint record: absorbed in the
            // snapshots, never replayed; not part of the walk.
            continue;
        }
        let ok = prev <= chain_floor || linked.contains(&prev) || abort_tickets.contains(&prev);
        if !ok {
            incomplete.push(txn);
            continue;
        }
        linked.insert(seq);
        if ts > ckpt_ts {
            if let Some(first) = commits.insert(ts, txn) {
                if first != txn {
                    // Silently keeping either transaction would drop
                    // the other's acknowledged effects.
                    return Err(StorageError::TimestampCollision { ts, first, second: txn });
                }
            }
        }
    }

    let mut committed = Vec::with_capacity(commits.len());
    for (ts, txn) in commits {
        if aborted.contains(&txn) {
            // Both a Commit and an Abort record survived. The manager
            // writes an abort only when the commit was never
            // acknowledged (its fsync failed), so the abort wins —
            // reporting the transaction as committed-with-no-ops would
            // resurrect effects the live system told its client were
            // rolled back.
            continue;
        }
        let survivors = ops.remove(&txn).unwrap_or_default();
        let want = op_counts.get(&txn).copied().unwrap_or(0) as usize;
        if survivors.len() < want {
            // Part of the transaction's ops went down with a stripe's
            // crash tail while its commit record (on another stripe)
            // survived. The commit was never acknowledged at `Fsync`
            // durability — the op stripes settle before the commit
            // record syncs — so dropping it is exactly the
            // crashed-before-acknowledge outcome. Per-object stripe
            // affinity guarantees no *surviving* transaction observed
            // its effects: any later op on the same object sat behind
            // the lost one in the same stripe and is lost too.
            incomplete.push(txn);
            continue;
        }
        committed.push(CommittedTxn { ts, txn, ops: survivors });
    }
    // Ops with no completion record at all: in-doubt. A 2PC site log
    // resolves these against the coordinator's decision log; a
    // single-site recovery just ignores them.
    let mut in_doubt: Vec<InDoubtTxn> = ops
        .into_iter()
        .filter(|(txn, _)| !completed.contains(txn))
        .map(|(txn, ops)| InDoubtTxn { txn, ops })
        .collect();
    in_doubt.sort_by_key(|t| t.txn);
    // Recovery totals, when an owning store's registry is at hand (the
    // static path has none to write into).
    if let Some(m) = metrics {
        m.counter("recovery.commits_replayed").add(committed.len() as u64);
        m.counter("recovery.records_replayed")
            .add(committed.iter().map(|t| t.ops.len() as u64).sum());
        m.counter("recovery.commits_dropped").add(incomplete.len() as u64);
        m.counter("recovery.commits_in_doubt").add(in_doubt.len() as u64);
        if torn_tail {
            m.counter("recovery.torn_tails_repaired").inc();
        }
    }
    Ok(Recovered { checkpoint, committed, in_doubt, incomplete, torn_tail })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::snapshot::SnapshotError;
    use std::sync::Mutex;

    fn tmp(name: &str) -> PathBuf {
        static N: AtomicU64 = AtomicU64::new(0);
        let mut p = std::env::temp_dir();
        p.push(format!(
            "hcc-store-{}-{}-{}",
            std::process::id(),
            name,
            N.fetch_add(1, Ordering::Relaxed)
        ));
        let _ = std::fs::remove_dir_all(&p);
        p
    }

    /// A toy snapshotable counter for store-level tests.
    #[derive(Default)]
    struct Cell(Mutex<i64>);

    impl Cell {
        fn add(&self, v: i64) {
            *self.0.lock().unwrap() += v;
        }
        fn get(&self) -> i64 {
            *self.0.lock().unwrap()
        }
    }

    impl Snapshot for Cell {
        fn snapshot(&self) -> Vec<u8> {
            self.get().to_le_bytes().to_vec()
        }
        fn restore(&self, bytes: &[u8], _ts: u64) -> Result<(), SnapshotError> {
            let arr: [u8; 8] =
                bytes.try_into().map_err(|_| SnapshotError::new("bad cell snapshot"))?;
            *self.0.lock().unwrap() = i64::from_le_bytes(arr);
            Ok(())
        }
    }

    fn small_opts() -> StorageOptions {
        StorageOptions {
            segment_max_bytes: 256,
            policy: CompactionPolicy::never(),
            ..StorageOptions::default()
        }
    }

    fn striped_opts(n: usize) -> StorageOptions {
        StorageOptions { stripes: n, ..small_opts() }
    }

    fn run_txn(store: &DurableStore, cell: &Cell, txn: u64, ts: u64, v: i64) {
        store.log_begin(txn).unwrap();
        store.log_op(txn, "cell", &v.to_le_bytes()).unwrap();
        cell.add(v);
        store.log_commit(txn, ts).unwrap();
    }

    fn replay(recovered: &Recovered, cell: &Cell) {
        if let Some(ckpt) = &recovered.checkpoint {
            for (name, data) in &ckpt.objects {
                assert_eq!(name, "cell");
                cell.restore(data, ckpt.last_ts).unwrap();
            }
        }
        for txn in &recovered.committed {
            for (obj, op) in &txn.ops {
                assert_eq!(obj, "cell");
                cell.add(i64::from_le_bytes(op.as_slice().try_into().unwrap()));
            }
        }
    }

    #[test]
    fn recover_without_checkpoint_replays_everything() {
        let dir = tmp("plain");
        let cell = Cell::default();
        {
            let store = DurableStore::open(&dir, small_opts()).unwrap();
            for i in 1..=10 {
                run_txn(&store, &cell, i, i, i as i64);
            }
            // An aborted transaction must not replay.
            store.log_begin(99).unwrap();
            store.log_op(99, "cell", &1000i64.to_le_bytes()).unwrap();
            store.log_abort(99).unwrap();
        }
        let recovered = DurableStore::recover(&dir).unwrap();
        assert!(recovered.checkpoint.is_none());
        assert_eq!(recovered.committed.len(), 10);
        let fresh = Cell::default();
        replay(&recovered, &fresh);
        assert_eq!(fresh.get(), cell.get());
    }

    #[test]
    fn checkpoint_then_tail_equals_full_replay() {
        let dir = tmp("ckpt");
        let cell = Cell::default();
        {
            let store = DurableStore::open(&dir, small_opts()).unwrap();
            for i in 1..=20 {
                run_txn(&store, &cell, i, i, i as i64);
            }
            store.checkpoint(&[("cell", &cell)]).unwrap();
            for i in 21..=30 {
                run_txn(&store, &cell, i, i, i as i64);
            }
        }
        let recovered = DurableStore::recover(&dir).unwrap();
        let ckpt = recovered.checkpoint.as_ref().expect("checkpoint present");
        assert_eq!(ckpt.last_ts, 20);
        assert_eq!(recovered.committed.len(), 10, "only the tail replays");
        assert!(recovered.committed.iter().all(|t| t.ts > 20));
        let fresh = Cell::default();
        replay(&recovered, &fresh);
        assert_eq!(fresh.get(), (1..=30).sum::<i64>());
    }

    #[test]
    fn checkpoint_prunes_dead_segments() {
        let dir = tmp("prune");
        let cell = Cell::default();
        let store = DurableStore::open(&dir, small_opts()).unwrap();
        for i in 1..=50 {
            run_txn(&store, &cell, i, i, 1);
        }
        let stripe = &crate::wal::stripe_dirs(&dir).unwrap()[0].1;
        let before = crate::wal::list_segments(stripe).unwrap().len();
        assert!(before > 2);
        store.checkpoint(&[("cell", &cell)]).unwrap();
        let after = crate::wal::list_segments(stripe).unwrap().len();
        assert!(after <= 2, "dead segments survived: {after}");
        assert_eq!(store.checkpoints_taken(), 1);
    }

    #[test]
    fn striped_store_recovers_identically_to_single_stripe() {
        let dir1 = tmp("stripes-1");
        let dir8 = tmp("stripes-8");
        let drive = |dir: &PathBuf, stripes: usize| {
            let store = DurableStore::open(dir, striped_opts(stripes)).unwrap();
            // Several objects so striping actually spreads the records.
            for i in 1..=40u64 {
                let name = format!("cell-{}", i % 5);
                store.log_begin(i).unwrap();
                store.log_op(i, &name, &(i as i64).to_le_bytes()).unwrap();
                store.log_commit(i, i).unwrap();
            }
        };
        drive(&dir1, 1);
        drive(&dir8, 8);
        let r1 = DurableStore::recover(&dir1).unwrap();
        let r8 = DurableStore::recover(&dir8).unwrap();
        assert_eq!(r1.committed, r8.committed, "merged replay is routing-invariant");
        assert!(crate::wal::stripe_dirs(&dir8).unwrap().len() > 1);
    }

    #[test]
    fn policy_drives_maybe_checkpoint() {
        let dir = tmp("policy");
        let cell = Cell::default();
        let store = DurableStore::open(
            &dir,
            StorageOptions {
                segment_max_bytes: 256,
                policy: CompactionPolicy::every_n(10),
                ..StorageOptions::default()
            },
        )
        .unwrap();
        let mut taken = 0;
        for i in 1..=35 {
            run_txn(&store, &cell, i, i, 1);
            if store.maybe_checkpoint(&[("cell", &cell)]).unwrap().is_some() {
                taken += 1;
            }
        }
        assert_eq!(taken, 3, "EveryN(10) over 35 commits");
    }

    #[test]
    fn registry_ids_are_stable_across_reopen_and_checkpoint_pruning() {
        let dir = tmp("registry");
        let cell = Cell::default();
        let id_first;
        {
            let store = DurableStore::open(&dir, small_opts()).unwrap();
            id_first = store.object_id("cell").unwrap();
            assert_eq!(store.object_id("cell").unwrap(), id_first, "idempotent");
            for i in 1..=30 {
                run_txn(&store, &cell, i, i, 1);
            }
            // Checkpoint prunes the segments holding the original Register
            // record; the binding survives in the checkpoint file's table.
            store.checkpoint(&[("cell", &cell)]).unwrap();
            for i in 31..=35 {
                run_txn(&store, &cell, i, i, 1);
            }
        }
        {
            let store = DurableStore::open(&dir, small_opts()).unwrap();
            assert_eq!(
                store.object_id("cell").unwrap(),
                id_first,
                "reopen must resolve the same id from the surviving log"
            );
            let other = store.object_id("other").unwrap();
            assert!(other > id_first, "fresh names allocate above survivors");
        }
        let recovered = DurableStore::recover(&dir).unwrap();
        assert_eq!(recovered.committed.len(), 5, "tail above the checkpoint");
        assert!(recovered.committed.iter().all(|t| t.ops.iter().all(|(name, _)| name == "cell")));
    }

    #[test]
    fn in_doubt_transactions_are_reported() {
        let dir = tmp("in-doubt");
        {
            let store = DurableStore::open(&dir, small_opts()).unwrap();
            store.log_begin(1).unwrap();
            store.log_op(1, "cell", &5i64.to_le_bytes()).unwrap();
            store.log_commit(1, 1).unwrap();
            // Txn 2 voted yes somewhere and crashed before the decision
            // arrived: ops, no completion record.
            store.log_begin(2).unwrap();
            store.log_op(2, "cell", &7i64.to_le_bytes()).unwrap();
        }
        let recovered = DurableStore::recover(&dir).unwrap();
        assert_eq!(recovered.committed.len(), 1);
        assert_eq!(recovered.in_doubt.len(), 1);
        assert_eq!(recovered.in_doubt[0].txn, 2);
        assert_eq!(recovered.in_doubt[0].ops[0].0, "cell");
    }

    #[test]
    fn abort_record_overrides_unacknowledged_commit() {
        let dir = tmp("commit-then-abort");
        {
            let store = DurableStore::open(&dir, small_opts()).unwrap();
            // The ambiguous-failure shape: a commit frame reached disk but
            // its fsync failed, so the manager aborted and told the client
            // the commit did not happen.
            store.log_begin(5).unwrap();
            store.log_op(5, "cell", &7i64.to_le_bytes()).unwrap();
            store.log_commit(5, 9).unwrap();
            store.log_abort(5).unwrap();
        }
        let recovered = DurableStore::recover(&dir).unwrap();
        assert!(
            recovered.committed.is_empty(),
            "an aborted transaction must not recover as committed: {recovered:?}"
        );
    }

    /// Commit records are self-certifying: a zero-op commit replays as an
    /// empty transaction even with no Begin record anywhere (a crash can
    /// fsync the commit while the buffered Begin on another stripe is
    /// lost), and a commit whose stamped op count exceeds the surviving
    /// ops is reported as incomplete rather than refusing the log.
    #[test]
    fn commits_are_self_certifying_without_begin_records() {
        let dir = tmp("self-certify");
        {
            let store = DurableStore::open(&dir, small_opts()).unwrap();
            store.log_commit(7, 3).unwrap(); // no Begin, no ops: count = 0
        }
        let recovered = DurableStore::recover(&dir).unwrap();
        assert_eq!(recovered.committed.len(), 1);
        assert_eq!(recovered.committed[0].txn, 7);
        assert!(recovered.committed[0].ops.is_empty());
        assert!(recovered.incomplete.is_empty());
    }

    /// The striped crash shape: a stripe's tail takes a transaction's op
    /// records while its commit record (op count stamped in) survives on
    /// another stripe. The transaction was never acknowledged; recovery
    /// drops it as incomplete instead of refusing the whole log or
    /// replaying half of it.
    #[test]
    fn commit_with_partially_lost_ops_is_dropped_as_incomplete() {
        let dir = tmp("incomplete");
        {
            let store = DurableStore::open(
                &dir,
                StorageOptions { segment_max_bytes: 1 << 20, ..striped_opts(2) },
            )
            .unwrap();
            // cell-a gets registry id 1 (stripe 1), cell-b id 2 (stripe
            // 0). txn 3's home stripe is 1, so its multi-stripe commit
            // lands on stripe 1 while its cell-b op sits alone at stripe
            // 0's tail.
            store.log_begin(3).unwrap();
            store.log_op(3, "cell-a", &1i64.to_le_bytes()).unwrap();
            store.log_op(3, "cell-b", &2i64.to_le_bytes()).unwrap();
            store.log_commit(3, 1).unwrap();
            store.log_begin(5).unwrap();
            store.log_op(5, "cell-a", &3i64.to_le_bytes()).unwrap();
            store.log_commit(5, 2).unwrap();
        }
        // Chop cell-b's op off stripe 0's tail; stripe 1 (commit record,
        // op count 2) is untouched.
        let sdir = &crate::wal::stripe_dirs(&dir).unwrap()[0].1;
        let last = crate::wal::list_segments(sdir).unwrap().pop().unwrap().1;
        let len = std::fs::metadata(&last).unwrap().len();
        std::fs::OpenOptions::new().write(true).open(&last).unwrap().set_len(len - 10).unwrap();

        let recovered = DurableStore::recover(&dir).unwrap();
        assert_eq!(recovered.incomplete, vec![3], "txn 3 lost an op record");
        assert_eq!(recovered.committed.len(), 1, "txn 5 is intact");
        assert_eq!(recovered.committed[0].txn, 5);
    }

    /// The commit-chain rule: a stripe's crash tail takes an *earlier*
    /// commit record while a later, possibly dependent commit survives on
    /// another stripe. Without the chain, replay would keep the later
    /// transaction over state missing its predecessor; with it, the hole
    /// unlinks the later commit and everything chained past it.
    #[test]
    fn chain_hole_drops_commits_past_a_lost_predecessor() {
        let dir = tmp("chain");
        {
            let store = DurableStore::open(
                &dir,
                StorageOptions { segment_max_bytes: 1 << 20, ..striped_opts(2) },
            )
            .unwrap();
            // txn 3 (home stripe 1) touches both objects → commit on its
            // home stripe 1. txn 4 touches only cell-b (stripe 0) → its
            // commit lands on stripe 0 with its op.
            store.log_begin(3).unwrap();
            store.log_op(3, "cell-a", &1i64.to_le_bytes()).unwrap(); // id 1 → stripe 1
            store.log_op(3, "cell-b", &2i64.to_le_bytes()).unwrap(); // id 2 → stripe 0
            store.log_commit(3, 1).unwrap();
            store.log_begin(4).unwrap();
            store.log_op(4, "cell-b", &3i64.to_le_bytes()).unwrap();
            store.log_commit(4, 2).unwrap();
        }
        // Cut stripe 1's tail: txn 3 loses its commit record (and its
        // cell-a op); stripe 0 keeps txn 4's op + commit intact.
        let sdir = &crate::wal::stripe_dirs(&dir).unwrap()[1].1;
        let last = crate::wal::list_segments(sdir).unwrap().pop().unwrap().1;
        let len = std::fs::metadata(&last).unwrap().len();
        std::fs::OpenOptions::new().write(true).open(&last).unwrap().set_len(len - 40).unwrap();

        let recovered = DurableStore::recover(&dir).unwrap();
        assert!(
            recovered.committed.is_empty(),
            "txn 4's chain predecessor (txn 3's commit) is gone — it must not replay: {:?}",
            recovered.committed
        );
        assert_eq!(recovered.incomplete, vec![4], "txn 4 is beyond the durable horizon");
        assert_eq!(recovered.in_doubt.len(), 1, "txn 3 reverts to in-doubt (ops, no outcome)");
        assert_eq!(recovered.in_doubt[0].txn, 3);
    }

    /// The single-scan open: a reopened store hands its open-time image
    /// back as the recovery state — byte-equal to what a fresh disk read
    /// produces — exactly once; absorption drops an unclaimed image.
    #[test]
    fn open_retains_the_recovery_image_for_a_single_scan() {
        let dir = tmp("single-scan");
        let cell = Cell::default();
        {
            let store = DurableStore::open(&dir, small_opts()).unwrap();
            for i in 1..=12 {
                run_txn(&store, &cell, i, i, i as i64);
            }
            store.checkpoint(&[("cell", &cell)]).unwrap();
            for i in 13..=20 {
                run_txn(&store, &cell, i, i, i as i64);
            }
        }
        let from_disk = DurableStore::recover(&dir).unwrap();
        {
            let store = DurableStore::open(&dir, small_opts()).unwrap();
            let retained = store.take_recovered().unwrap().expect("open retained the image");
            assert_eq!(retained.checkpoint, from_disk.checkpoint);
            assert_eq!(retained.committed, from_disk.committed);
            assert_eq!(retained.incomplete, from_disk.incomplete);
            assert!(store.take_recovered().unwrap().is_none(), "claimed exactly once");
        }
        {
            // Absorption without a take drops the retained image.
            let store = DurableStore::open(&dir, small_opts()).unwrap();
            store.mark_state_absorbed();
            assert!(store.take_recovered().unwrap().is_none(), "absorbed image is released");
        }
        {
            // Appending without a take drops it too: recovery runs
            // before transactions, so the first append means no
            // materialization is coming — an append-only store (a 2PC
            // decision log) must not pin its decoded history forever.
            let store = DurableStore::open(&dir, small_opts()).unwrap();
            store.log_begin(999).unwrap();
            assert!(store.take_recovered().unwrap().is_none(), "first append released the image");
        }
    }

    #[test]
    fn reopen_after_checkpoint_keeps_timestamps_monotone() {
        let dir = tmp("reopen");
        let cell = Cell::default();
        {
            let store = DurableStore::open(&dir, small_opts()).unwrap();
            for i in 1..=5 {
                run_txn(&store, &cell, i, i, 1);
            }
            store.checkpoint(&[("cell", &cell)]).unwrap();
        }
        {
            // A reopened store learns the checkpoint's watermark, so a new
            // checkpoint without fresh commits keeps last_ts = 5. Until the
            // caller attests its objects absorbed the prior history,
            // checkpointing is refused — the same `cell` carried the state
            // across the reopen here, so the attestation is truthful.
            let store = DurableStore::open(&dir, small_opts()).unwrap();
            match store.checkpoint(&[("cell", &cell)]) {
                Err(StorageError::UnabsorbedHistory { last_ts: 5 }) => {}
                other => panic!("expected UnabsorbedHistory, got {other:?}"),
            }
            store.mark_state_absorbed();
            let ckpt = store.checkpoint(&[("cell", &cell)]).unwrap();
            assert_eq!(ckpt.last_ts, 5);
        }
    }

    #[test]
    fn tickets_resume_above_checkpoint_watermark_after_full_pruning() {
        let dir = tmp("ticket-floor");
        let cell = Cell::default();
        let ticket_at_ckpt;
        {
            let store = DurableStore::open(&dir, small_opts()).unwrap();
            for i in 1..=30 {
                run_txn(&store, &cell, i, i, 1);
            }
            let ckpt = store.checkpoint(&[("cell", &cell)]).unwrap();
            ticket_at_ckpt = ckpt.last_ticket;
            assert!(ticket_at_ckpt > 60);
        }
        {
            // Compaction deleted the old segments; the surviving log may
            // hold no high tickets at all. The reopened store must still
            // allocate above the checkpoint watermark.
            let store = DurableStore::open(&dir, small_opts()).unwrap();
            assert!(
                store.reserve_ticket() > ticket_at_ckpt,
                "tickets must not restart below the checkpoint watermark"
            );
        }
    }
}
