//! When to checkpoint and compact: a policy state machine in the style of
//! ATE's chain-compaction `CompactMode`, composed with a record-count
//! trigger.
//!
//! The policy is consulted after every committed transaction with the log's
//! current [`LogStats`]; when it fires, the owner takes a checkpoint and
//! deletes dead segments. All modes are AND-composed with `min_records`
//! so that tiny logs are never compacted no matter how fast they grow
//! proportionally.

/// Aggregate statistics about the log, fed to the policy.
#[derive(Clone, Copy, Debug, Default, PartialEq)]
pub struct LogStats {
    /// Commits appended since the last checkpoint.
    pub commits_since_checkpoint: u64,
    /// Records of any kind appended since the last checkpoint.
    pub records_since_checkpoint: u64,
    /// Bytes appended since the last checkpoint.
    pub bytes_since_checkpoint: u64,
    /// Total log size (bytes) at the moment of the last checkpoint.
    pub bytes_at_last_checkpoint: u64,
    /// Total log size now (live segments only).
    pub total_bytes: u64,
    /// Number of live segments.
    pub segments: u64,
}

/// When a compaction (checkpoint + dead-segment deletion) should occur.
#[derive(Clone, Copy, Debug, PartialEq)]
pub enum CompactMode {
    /// Never compact: the log is append-only forever (replay is O(history)).
    Never,
    /// Compact after every `n` committed transactions.
    EveryN(u64),
    /// Compact when the log has grown past `factor` × its size at the last
    /// checkpoint (e.g. `2.0` = every doubling).
    GrowthFactor(f64),
    /// Compact when the log has grown by this many bytes since the last
    /// checkpoint.
    GrowthSize(u64),
}

/// The full policy: a [`CompactMode`] AND a record-count floor.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct CompactionPolicy {
    /// The growth condition.
    pub mode: CompactMode,
    /// Records that must have accumulated since the last checkpoint before
    /// any mode may fire (suppresses churn on near-empty logs).
    pub min_records: u64,
}

impl Default for CompactionPolicy {
    fn default() -> Self {
        // Doubling-triggered compaction with a modest floor: bounded replay
        // without checkpoint storms.
        CompactionPolicy { mode: CompactMode::GrowthFactor(2.0), min_records: 1024 }
    }
}

impl CompactionPolicy {
    /// A policy that never compacts.
    pub fn never() -> CompactionPolicy {
        CompactionPolicy { mode: CompactMode::Never, min_records: 0 }
    }

    /// Compact every `n` commits (floor still applies if set).
    pub fn every_n(n: u64) -> CompactionPolicy {
        CompactionPolicy { mode: CompactMode::EveryN(n), min_records: 0 }
    }

    /// Compact on `factor`× growth over the last checkpoint.
    pub fn growth_factor(factor: f64) -> CompactionPolicy {
        CompactionPolicy { mode: CompactMode::GrowthFactor(factor), min_records: 0 }
    }

    /// Compact after `bytes` of new log data.
    pub fn growth_size(bytes: u64) -> CompactionPolicy {
        CompactionPolicy { mode: CompactMode::GrowthSize(bytes), min_records: 0 }
    }

    /// The same policy with a record-count floor.
    pub fn with_min_records(mut self, min_records: u64) -> CompactionPolicy {
        self.min_records = min_records;
        self
    }

    /// Should the owner checkpoint now?
    pub fn should_compact(&self, stats: &LogStats) -> bool {
        if stats.records_since_checkpoint < self.min_records {
            return false;
        }
        match self.mode {
            CompactMode::Never => false,
            CompactMode::EveryN(n) => n > 0 && stats.commits_since_checkpoint >= n,
            CompactMode::GrowthFactor(factor) => {
                // Before any checkpoint exists, treat the baseline as one
                // segment's worth of data so the first checkpoint still
                // happens.
                let base = stats.bytes_at_last_checkpoint.max(1) as f64;
                stats.total_bytes as f64 >= base * factor
            }
            CompactMode::GrowthSize(bytes) => stats.bytes_since_checkpoint >= bytes,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn stats(commits: u64, records: u64, bytes_since: u64, at_last: u64, total: u64) -> LogStats {
        LogStats {
            commits_since_checkpoint: commits,
            records_since_checkpoint: records,
            bytes_since_checkpoint: bytes_since,
            bytes_at_last_checkpoint: at_last,
            total_bytes: total,
            segments: 1,
        }
    }

    #[test]
    fn never_never_fires() {
        let p = CompactionPolicy::never();
        assert!(!p.should_compact(&stats(u64::MAX, u64::MAX, u64::MAX, 0, u64::MAX)));
    }

    #[test]
    fn every_n_counts_commits() {
        let p = CompactionPolicy::every_n(10);
        assert!(!p.should_compact(&stats(9, 100, 0, 0, 0)));
        assert!(p.should_compact(&stats(10, 100, 0, 0, 0)));
    }

    #[test]
    fn growth_factor_compares_to_last_checkpoint() {
        let p = CompactionPolicy::growth_factor(2.0);
        assert!(!p.should_compact(&stats(5, 5, 999, 1000, 1999)));
        assert!(p.should_compact(&stats(5, 5, 1000, 1000, 2000)));
    }

    #[test]
    fn growth_size_counts_new_bytes() {
        let p = CompactionPolicy::growth_size(4096);
        assert!(!p.should_compact(&stats(5, 5, 4095, 0, 4095)));
        assert!(p.should_compact(&stats(5, 5, 4096, 0, 4096)));
    }

    #[test]
    fn min_records_floor_gates_every_mode() {
        for mode in
            [CompactMode::EveryN(1), CompactMode::GrowthFactor(1.01), CompactMode::GrowthSize(1)]
        {
            let p = CompactionPolicy { mode, min_records: 100 };
            assert!(
                !p.should_compact(&stats(50, 99, 1 << 20, 1, 1 << 21)),
                "{mode:?} fired below the record floor"
            );
            assert!(
                p.should_compact(&stats(50, 100, 1 << 20, 1, 1 << 21)),
                "{mode:?} failed to fire above the record floor"
            );
        }
    }
}
