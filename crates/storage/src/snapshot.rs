//! The [`Snapshot`] trait: how a live object exposes its committed
//! frontier to the checkpoint manager, and how recovery installs one —
//! plus [`DurableObject`], the registry-facing view recovery replays
//! through.

use hcc_core::runtime::{ReplayError, TxnHandle};
use std::sync::Arc;

/// An object whose committed state can be serialized into a checkpoint and
/// restored from one. Implemented by every ADT wrapper in `hcc-adts`.
///
/// `snapshot` must capture exactly the committed frontier — effects of
/// active (uncommitted) transactions are excluded, which the runtime's
/// version/intent split makes natural. `restore` installs the snapshot
/// into a *fresh* object as one committed transaction at timestamp `ts`
/// (the checkpoint's `last_ts`), so subsequent tail replay at higher
/// timestamps observes a correctly-ordered history.
///
/// The three watermark methods are what makes **fuzzy checkpoints**
/// possible: the checkpointer establishes a commit-timestamp watermark
/// `w` under a brief exclusive gate, pins every object's fold horizon at
/// `w` (so commits above `w` can never be compacted into the base
/// version), releases the gate, and then calls `snapshot_at(w)` on each
/// object under that object's own lock while new commits keep flowing.
/// The defaults make every `Snapshot` implementation correct for a
/// *quiesced* caller (no commits during the checkpoint): `snapshot_at`
/// falls back to `snapshot()` and the pins are no-ops.
///
/// **Warning:** an implementation that keeps the defaults is *only*
/// safe quiesced. Handing it to `hcc-txn`'s `TxnManager::checkpoint`
/// (which snapshots while commits flow) would capture commits above the
/// watermark that recovery then replays again. Every ADT wrapper in
/// `hcc-adts` overrides all three methods; custom durable objects used
/// with the fuzzy checkpointer must too.
pub trait Snapshot {
    /// Serialize the committed frontier.
    fn snapshot(&self) -> Vec<u8>;

    /// Serialize the committed frontier **as of commit-timestamp
    /// `watermark`**: exactly the commits with `ts ≤ watermark`, no
    /// matter what commits land while the checkpoint is in flight. Only
    /// meaningful between `pin_horizon(watermark)` and `unpin_horizon`
    /// (or with commits quiesced, where the default fallback is exact).
    fn snapshot_at(&self, watermark: u64) -> Vec<u8> {
        let _ = watermark;
        self.snapshot()
    }

    /// Forbid compacting commits with `ts > watermark` into the base
    /// version until [`Snapshot::unpin_horizon`] — the fuzzy
    /// checkpointer's guarantee that `snapshot_at(watermark)` can still
    /// separate them out.
    fn pin_horizon(&self, watermark: u64) {
        let _ = watermark;
    }

    /// Release the pin installed by [`Snapshot::pin_horizon`].
    fn unpin_horizon(&self) {}

    /// Install `bytes` into this (fresh) object as a committed transaction
    /// at timestamp `ts`.
    fn restore(&self, bytes: &[u8], ts: u64) -> Result<(), SnapshotError>;
}

/// A self-logging object as the recovery registry sees it: named,
/// checkpointable, and able to replay its own redo payloads.
///
/// Implemented by every ADT wrapper in `hcc-adts`. `hcc-txn`'s `Registry`
/// collects these so recovery can restore checkpoints and replay the WAL
/// tail *by object name*, with each object decoding its own payloads —
/// the inverse of the self-logging write path, with no caller-side
/// dispatch to get wrong.
pub trait DurableObject: Snapshot + Send + Sync {
    /// The object's name (the WAL registry key).
    fn object_name(&self) -> &str;

    /// Replay one redo payload under `txn` (a replay handle), reproducing
    /// the logged response or failing with divergence.
    fn replay_op(&self, txn: &Arc<TxnHandle>, op: &[u8]) -> Result<(), ReplayError>;
}

/// A malformed or inapplicable snapshot payload.
#[derive(Clone, Debug, PartialEq)]
pub struct SnapshotError(pub String);

impl SnapshotError {
    /// Construct an error.
    pub fn new(msg: impl Into<String>) -> SnapshotError {
        SnapshotError(msg.into())
    }
}

impl std::fmt::Display for SnapshotError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "snapshot error: {}", self.0)
    }
}

impl std::error::Error for SnapshotError {}
