//! The [`Snapshot`] trait: how a live object exposes its committed
//! frontier to the checkpoint manager, and how recovery installs one —
//! plus [`DurableObject`], the registry-facing view recovery replays
//! through.

use hcc_core::runtime::{ReplayError, TxnHandle};
use std::sync::Arc;

/// An object whose committed state can be serialized into a checkpoint and
/// restored from one. Implemented by every ADT wrapper in `hcc-adts`.
///
/// `snapshot` must capture exactly the committed frontier — effects of
/// active (uncommitted) transactions are excluded, which the runtime's
/// version/intent split makes natural. `restore` installs the snapshot
/// into a *fresh* object as one committed transaction at timestamp `ts`
/// (the checkpoint's `last_ts`), so subsequent tail replay at higher
/// timestamps observes a correctly-ordered history.
pub trait Snapshot {
    /// Serialize the committed frontier.
    fn snapshot(&self) -> Vec<u8>;

    /// Install `bytes` into this (fresh) object as a committed transaction
    /// at timestamp `ts`.
    fn restore(&self, bytes: &[u8], ts: u64) -> Result<(), SnapshotError>;
}

/// A self-logging object as the recovery registry sees it: named,
/// checkpointable, and able to replay its own redo payloads.
///
/// Implemented by every ADT wrapper in `hcc-adts`. `hcc-txn`'s `Registry`
/// collects these so recovery can restore checkpoints and replay the WAL
/// tail *by object name*, with each object decoding its own payloads —
/// the inverse of the self-logging write path, with no caller-side
/// dispatch to get wrong.
pub trait DurableObject: Snapshot + Send + Sync {
    /// The object's name (the WAL registry key).
    fn object_name(&self) -> &str;

    /// Replay one redo payload under `txn` (a replay handle), reproducing
    /// the logged response or failing with divergence.
    fn replay_op(&self, txn: &Arc<TxnHandle>, op: &[u8]) -> Result<(), ReplayError>;
}

/// A malformed or inapplicable snapshot payload.
#[derive(Clone, Debug, PartialEq)]
pub struct SnapshotError(pub String);

impl SnapshotError {
    /// Construct an error.
    pub fn new(msg: impl Into<String>) -> SnapshotError {
        SnapshotError(msg.into())
    }
}

impl std::fmt::Display for SnapshotError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "snapshot error: {}", self.0)
    }
}

impl std::error::Error for SnapshotError {}
