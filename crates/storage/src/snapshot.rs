//! The [`Snapshot`] trait: how a live object exposes its committed
//! frontier to the checkpoint manager, and how recovery installs one.

/// An object whose committed state can be serialized into a checkpoint and
/// restored from one. Implemented by every ADT wrapper in `hcc-adts`.
///
/// `snapshot` must capture exactly the committed frontier — effects of
/// active (uncommitted) transactions are excluded, which the runtime's
/// version/intent split makes natural. `restore` installs the snapshot
/// into a *fresh* object as one committed transaction at timestamp `ts`
/// (the checkpoint's `last_ts`), so subsequent tail replay at higher
/// timestamps observes a correctly-ordered history.
pub trait Snapshot {
    /// Serialize the committed frontier.
    fn snapshot(&self) -> Vec<u8>;

    /// Install `bytes` into this (fresh) object as a committed transaction
    /// at timestamp `ts`.
    fn restore(&self, bytes: &[u8], ts: u64) -> Result<(), SnapshotError>;
}

/// A malformed or inapplicable snapshot payload.
#[derive(Clone, Debug, PartialEq)]
pub struct SnapshotError(pub String);

impl SnapshotError {
    /// Construct an error.
    pub fn new(msg: impl Into<String>) -> SnapshotError {
        SnapshotError(msg.into())
    }
}

impl std::fmt::Display for SnapshotError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "snapshot error: {}", self.0)
    }
}

impl std::error::Error for SnapshotError {}
