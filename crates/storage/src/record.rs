//! The on-disk record format: length-prefixed, CRC32-protected binary
//! frames, each stamped with a **global sequence ticket**.
//!
//! ```text
//! ┌──────────┬──────────┬──────────┬───────────────┐
//! │ len: u32 │ crc: u32 │ seq: u64 │ payload bytes │  (integers little-endian)
//! └──────────┴──────────┴──────────┴───────────────┘
//! payload := tag: u8, fields...
//!   1 Begin    { txn: u64 }
//!   2 Op       { txn: u64, obj: u64, op: len-prefixed bytes }
//!   3 Commit   { txn: u64, ts: u64, ops: u32, prev: u64 }
//!   4 Abort    { txn: u64 }
//!   5 Register { id: u64, name: len-prefixed utf8 }
//! ```
//!
//! The `seq` ticket is allocated from one process-wide monotone counter no
//! matter which **append stripe** the record lands on, so recovery can
//! merge the stripes back into a single deterministic order by sorting on
//! it. Tickets are reserved *under the owning object's lock* for op
//! records (see `hcc-core`'s `RedoSink::reserve`), which is what keeps
//! each object's ticket order identical to its execution order even
//! though the physical append happens outside the lock and may interleave
//! arbitrarily within a stripe.
//!
//! Commit records carry the number of op records their transaction logged
//! (`ops`). With the log spread over stripes, a crash can lose one
//! stripe's tail while another stripe keeps the commit record; the count
//! lets recovery detect the txn as *incompletely durable* and drop it
//! (it was never acknowledged — see `store::recover`) instead of
//! replaying half a transaction.
//!
//! Commit records also carry `prev` — the ticket of the commit record
//! appended just before them, store-wide: the **commit chain**. Striping
//! spreads commit records over stripes, so losing one stripe's tail
//! could otherwise silently drop an *earlier acknowledged* commit while
//! keeping a later one that observed its effects. Recovery walks the
//! chain from the checkpoint's watermark and accepts only commits whose
//! every predecessor survives (an abort record that reused a failed
//! commit's ticket also links) — restoring exactly the global
//! durable-prefix property a single-stream log has.
//!
//! Op records reference objects by **registry id** — a compact u64 the
//! store assigns the first time a name is logged against — instead of
//! repeating the name string per operation. The id→name binding is itself
//! a durable `Register` record routed to the *same stripe* as the ops
//! using the id (so a torn tail that keeps an op always keeps its
//! binding); checkpoints additionally carry the full binding table in
//! their own file.
//!
//! The CRC covers the seq plus the payload; a frame whose length field,
//! CRC, or tag is implausible is treated as a torn tail when it is the
//! last thing in a stripe's last segment, and as corruption anywhere else.
//!
//! The frame envelope itself (CRC32, header layout, torn-tail detection)
//! lives in `hcc-wire::frame`, shared with the network protocol; this
//! module owns only the record payload encoding on top of it. The byte
//! format is pinned by `tests/framing_golden.rs`.

pub use hcc_wire::frame::{crc32, frame_crc, FrameError, HEADER_BYTES, MAX_PAYLOAD};

use hcc_wire::frame::{encode_frame_into, frame_at};

/// One durable log record. The `op` payload is opaque to the storage layer;
/// callers serialize operations however they like (the workspace uses
/// compact JSON).
#[derive(Clone, Debug, PartialEq)]
pub enum LogRecord {
    /// A transaction began.
    Begin {
        /// Transaction id.
        txn: u64,
    },
    /// A transaction executed an operation at an object.
    Op {
        /// Transaction id.
        txn: u64,
        /// The object's registry id (bound to a name by a `Register`
        /// record).
        obj: u64,
        /// Serialized operation (opaque bytes).
        op: Vec<u8>,
    },
    /// The transaction committed with this timestamp.
    Commit {
        /// Transaction id.
        txn: u64,
        /// Commit timestamp.
        ts: u64,
        /// Number of op records the transaction logged. Recovery refuses
        /// to replay the transaction with fewer surviving ops.
        ops: u32,
        /// Ticket of the commit record appended just before this one
        /// (store-wide, any stripe); 0 = the first commit ever. The
        /// commit chain recovery walks to reject holes.
        prev: u64,
    },
    /// The transaction aborted.
    Abort {
        /// Transaction id.
        txn: u64,
    },
    /// An object name was bound to a registry id (not transaction-scoped).
    Register {
        /// The registry id.
        id: u64,
        /// The object's name.
        name: String,
    },
}

impl LogRecord {
    /// The transaction this record belongs to (0 for `Register` records,
    /// which are not transaction-scoped; real transaction ids start at 1).
    pub fn txn(&self) -> u64 {
        match self {
            LogRecord::Begin { txn }
            | LogRecord::Op { txn, .. }
            | LogRecord::Commit { txn, .. }
            | LogRecord::Abort { txn } => *txn,
            LogRecord::Register { .. } => 0,
        }
    }

    /// Is this a completion (commit/abort) record?
    pub fn is_completion(&self) -> bool {
        matches!(self, LogRecord::Commit { .. } | LogRecord::Abort { .. })
    }
}

// ---- Encoding ----------------------------------------------------------

fn put_u32(out: &mut Vec<u8>, v: u32) {
    out.extend_from_slice(&v.to_le_bytes());
}

fn put_u64(out: &mut Vec<u8>, v: u64) {
    out.extend_from_slice(&v.to_le_bytes());
}

fn put_bytes(out: &mut Vec<u8>, bytes: &[u8]) {
    put_u32(out, bytes.len() as u32);
    out.extend_from_slice(bytes);
}

/// Append the framed encoding of `rec`, stamped with ticket `seq`, to
/// `out`.
pub fn encode_into(rec: &LogRecord, seq: u64, out: &mut Vec<u8>) {
    let mut payload = Vec::with_capacity(32);
    match rec {
        LogRecord::Begin { txn } => {
            payload.push(1);
            put_u64(&mut payload, *txn);
        }
        LogRecord::Op { txn, obj, op } => {
            payload.push(2);
            put_u64(&mut payload, *txn);
            put_u64(&mut payload, *obj);
            put_bytes(&mut payload, op);
        }
        LogRecord::Commit { txn, ts, ops, prev } => {
            payload.push(3);
            put_u64(&mut payload, *txn);
            put_u64(&mut payload, *ts);
            put_u32(&mut payload, *ops);
            put_u64(&mut payload, *prev);
        }
        LogRecord::Abort { txn } => {
            payload.push(4);
            put_u64(&mut payload, *txn);
        }
        LogRecord::Register { id, name } => {
            payload.push(5);
            put_u64(&mut payload, *id);
            put_bytes(&mut payload, name.as_bytes());
        }
    }
    encode_frame_into(seq, &payload, out);
}

/// The framed encoding of `rec` with ticket `seq`.
pub fn encode(rec: &LogRecord, seq: u64) -> Vec<u8> {
    let mut out = Vec::with_capacity(48);
    encode_into(rec, seq, &mut out);
    out
}

// ---- Decoding ----------------------------------------------------------

struct Cursor<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Cursor<'a> {
    fn take(&mut self, n: usize) -> Option<&'a [u8]> {
        let end = self.pos.checked_add(n)?;
        if end > self.bytes.len() {
            return None;
        }
        let s = &self.bytes[self.pos..end];
        self.pos = end;
        Some(s)
    }

    fn u32(&mut self) -> Option<u32> {
        self.take(4).map(|b| u32::from_le_bytes(b.try_into().unwrap()))
    }

    fn u64(&mut self) -> Option<u64> {
        self.take(8).map(|b| u64::from_le_bytes(b.try_into().unwrap()))
    }

    fn len_bytes(&mut self) -> Option<&'a [u8]> {
        let n = self.u32()?;
        if n > MAX_PAYLOAD {
            return None;
        }
        self.take(n as usize)
    }
}

fn decode_payload(payload: &[u8]) -> Option<LogRecord> {
    let mut c = Cursor { bytes: payload, pos: 0 };
    let tag = *c.take(1)?.first()?;
    let rec = match tag {
        1 => LogRecord::Begin { txn: c.u64()? },
        2 => {
            let txn = c.u64()?;
            let obj = c.u64()?;
            let op = c.len_bytes()?.to_vec();
            LogRecord::Op { txn, obj, op }
        }
        3 => LogRecord::Commit { txn: c.u64()?, ts: c.u64()?, ops: c.u32()?, prev: c.u64()? },
        4 => LogRecord::Abort { txn: c.u64()? },
        5 => {
            let id = c.u64()?;
            let name = String::from_utf8(c.len_bytes()?.to_vec()).ok()?;
            LogRecord::Register { id, name }
        }
        _ => return None,
    };
    if c.pos != payload.len() {
        return None; // trailing junk inside the frame
    }
    Some(rec)
}

/// Decode one frame at `bytes[offset..]`, returning its ticket, the
/// record, and the offset just past it.
pub fn decode_at(bytes: &[u8], offset: usize) -> Result<(u64, LogRecord, usize), FrameError> {
    let (seq, payload, next) = frame_at(bytes, offset)?;
    match decode_payload(payload) {
        Some(rec) => Ok((seq, rec, next)),
        None => Err(FrameError::Malformed),
    }
}

/// A record's metadata, decodable without materializing object names or
/// op payloads — for cheap watermark scans over large logs.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct RecordMeta {
    /// The record's global sequence ticket.
    pub seq: u64,
    /// The transaction the record belongs to (0 for `Register` records).
    pub txn: u64,
    /// `Some(ts)` for commit records.
    pub commit_ts: Option<u64>,
    /// Is this a `Register` record? (Callers needing the binding do a full
    /// decode of just that frame — registrations are rare.)
    pub register: bool,
}

/// Allocation-free mirror of [`decode_payload`]: accepts exactly the
/// payloads the full decoder accepts (field lengths and UTF-8 included),
/// so a frame that passes a metadata scan can never fail a record scan.
fn meta_from_payload(seq: u64, payload: &[u8]) -> Option<RecordMeta> {
    if payload.len() < 9 {
        return None;
    }
    let txn = u64::from_le_bytes(payload[1..9].try_into().unwrap());
    let get_len = |at: usize| -> Option<usize> {
        payload.get(at..at + 4).map(|b| u32::from_le_bytes(b.try_into().unwrap()) as usize)
    };
    match payload[0] {
        1 | 4 if payload.len() == 9 => {
            Some(RecordMeta { seq, txn, commit_ts: None, register: false })
        }
        2 => {
            let op_len = get_len(17)?;
            (payload.len() == 21 + op_len).then_some(RecordMeta {
                seq,
                txn,
                commit_ts: None,
                register: false,
            })
        }
        3 if payload.len() == 29 => {
            let ts = u64::from_le_bytes(payload[9..17].try_into().unwrap());
            Some(RecordMeta { seq, txn, commit_ts: Some(ts), register: false })
        }
        5 => {
            let name_len = get_len(9)?;
            let name = payload.get(13..13 + name_len)?;
            std::str::from_utf8(name).ok()?;
            (payload.len() == 13 + name_len).then_some(RecordMeta {
                seq,
                txn: 0,
                commit_ts: None,
                register: true,
            })
        }
        _ => None,
    }
}

/// Decode one frame's metadata at `bytes[offset..]` (CRC and payload shape
/// still fully verified), returning it and the offset just past the frame.
pub fn decode_meta_at(bytes: &[u8], offset: usize) -> Result<(RecordMeta, usize), FrameError> {
    let (seq, payload, next) = frame_at(bytes, offset)?;
    match meta_from_payload(seq, payload) {
        Some(meta) => Ok((meta, next)),
        None => Err(FrameError::Malformed),
    }
}

/// Decode every complete frame in `bytes`. Returns `(seq, record)` pairs
/// plus the error that stopped the scan, if any (`None` means the buffer
/// ended exactly on a frame boundary).
pub fn decode_all(bytes: &[u8]) -> (Vec<(u64, LogRecord)>, Option<FrameError>) {
    let mut out = Vec::new();
    let mut pos = 0;
    while pos < bytes.len() {
        match decode_at(bytes, pos) {
            Ok((seq, rec, next)) => {
                out.push((seq, rec));
                pos = next;
            }
            Err(e) => return (out, Some(e)),
        }
    }
    (out, None)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Vec<LogRecord> {
        vec![
            LogRecord::Register { id: 1, name: "acct".into() },
            LogRecord::Begin { txn: 1 },
            LogRecord::Op { txn: 1, obj: 1, op: br#"{"credit":5}"#.to_vec() },
            LogRecord::Commit { txn: 1, ts: 42, ops: 1, prev: 0 },
            LogRecord::Abort { txn: 2 },
        ]
    }

    fn encode_sample() -> (Vec<u8>, Vec<usize>) {
        let mut buf = Vec::new();
        let mut boundaries = vec![0usize];
        for (i, r) in sample().iter().enumerate() {
            encode_into(r, i as u64 + 1, &mut buf);
            boundaries.push(buf.len());
        }
        (buf, boundaries)
    }

    #[test]
    fn crc32_known_vectors() {
        assert_eq!(crc32(b""), 0x0000_0000);
        assert_eq!(crc32(b"123456789"), 0xCBF4_3926);
        assert_eq!(crc32(b"The quick brown fox jumps over the lazy dog"), 0x414F_A339);
    }

    #[test]
    fn roundtrip_preserves_records_and_tickets() {
        let (buf, _) = encode_sample();
        let (recs, err) = decode_all(&buf);
        assert_eq!(err, None);
        let seqs: Vec<u64> = recs.iter().map(|(s, _)| *s).collect();
        assert_eq!(seqs, vec![1, 2, 3, 4, 5]);
        let records: Vec<LogRecord> = recs.into_iter().map(|(_, r)| r).collect();
        assert_eq!(records, sample());
    }

    #[test]
    fn torn_tail_detected() {
        let (buf, boundaries) = encode_sample();
        for cut in 1..buf.len() {
            let len = buf.len() - cut;
            let (recs, err) = decode_all(&buf[..len]);
            if let Some(whole) = boundaries.iter().position(|&b| b == len) {
                // A cut on a frame boundary is a clean, shorter log.
                assert_eq!(recs.len(), whole, "cut {cut} on boundary");
                assert_eq!(err, None, "cut {cut} on boundary");
            } else {
                // Mid-frame cuts lose exactly the torn frame and are flagged.
                assert!(err.is_some(), "cut {cut} must be flagged");
                let whole = boundaries.iter().filter(|&&b| b <= len).count() - 1;
                assert_eq!(recs.len(), whole, "cut {cut} record count");
            }
        }
    }

    #[test]
    fn flipped_bit_fails_crc() {
        let mut buf = encode(&LogRecord::Commit { txn: 9, ts: 7, ops: 0, prev: 0 }, 3);
        let last = buf.len() - 1;
        buf[last] ^= 0x01;
        let (recs, err) = decode_all(&buf);
        assert!(recs.is_empty());
        assert_eq!(err, Some(FrameError::BadCrc));
    }

    /// The CRC covers the seq field too: a flipped ticket bit cannot
    /// silently reorder the merged replay.
    #[test]
    fn flipped_seq_bit_fails_crc() {
        let mut buf = encode(&LogRecord::Begin { txn: 1 }, 77);
        buf[8] ^= 0x01; // low byte of the seq field
        let (_, err) = decode_all(&buf);
        assert_eq!(err, Some(FrameError::BadCrc));
    }

    #[test]
    fn garbage_length_rejected_without_allocation() {
        let mut buf = Vec::new();
        buf.extend_from_slice(&u32::MAX.to_le_bytes());
        buf.extend_from_slice(&0u32.to_le_bytes());
        buf.extend_from_slice(&0u64.to_le_bytes());
        let (recs, err) = decode_all(&buf);
        assert!(recs.is_empty());
        assert_eq!(err, Some(FrameError::BadLength(u32::MAX)));
    }

    /// The metadata decoder must accept and reject exactly what the full
    /// decoder does — a frame that survives an open-time tail-repair scan
    /// can never be refused by recovery.
    #[test]
    fn meta_decoder_agrees_with_full_decoder() {
        let mut cases: Vec<Vec<u8>> = sample()
            .iter()
            .map(|r| {
                let e = encode(r, 9);
                e[HEADER_BYTES..].to_vec() // payload only
            })
            .collect();
        // Payloads with trailing junk, short fields, bad UTF-8, bad tags.
        for base in cases.clone() {
            let mut longer = base.clone();
            longer.push(0);
            cases.push(longer);
            if base.len() > 9 {
                cases.push(base[..base.len() - 1].to_vec());
            }
        }
        cases.push(vec![5, 1, 0, 0, 0, 0, 0, 0, 0, 1, 0, 0, 0, 0xFF]); // bad UTF-8 name
        cases.push(vec![2, 0, 0, 0, 0, 0, 0, 0, 0, 1, 0, 0, 0, 0xFF, 0, 0, 0, 0]); // short Op
        cases.push(vec![99, 0, 0, 0, 0, 0, 0, 0, 0]);
        for payload in cases {
            let seq = 9u64;
            let mut frame = Vec::new();
            frame.extend_from_slice(&(payload.len() as u32).to_le_bytes());
            frame.extend_from_slice(&frame_crc(seq, &payload).to_le_bytes());
            frame.extend_from_slice(&seq.to_le_bytes());
            frame.extend_from_slice(&payload);
            let full = decode_at(&frame, 0);
            let meta = decode_meta_at(&frame, 0);
            assert_eq!(
                full.is_ok(),
                meta.is_ok(),
                "decoders disagree on payload {payload:?}: full={full:?} meta={meta:?}"
            );
            if let (Ok((fseq, rec, a)), Ok((m, b))) = (&full, &meta) {
                assert_eq!(a, b);
                assert_eq!(m.seq, *fseq);
                assert_eq!(m.txn, rec.txn());
                let ts = match rec {
                    LogRecord::Commit { ts, .. } => Some(*ts),
                    _ => None,
                };
                assert_eq!(m.commit_ts, ts);
            }
        }
    }

    #[test]
    fn unknown_tag_is_malformed() {
        let payload = [99u8, 0, 0, 0, 0, 0, 0, 0, 0];
        let mut buf = Vec::new();
        buf.extend_from_slice(&(payload.len() as u32).to_le_bytes());
        buf.extend_from_slice(&frame_crc(4, &payload).to_le_bytes());
        buf.extend_from_slice(&4u64.to_le_bytes());
        buf.extend_from_slice(&payload);
        let (_, err) = decode_all(&buf);
        assert_eq!(err, Some(FrameError::Malformed));
    }
}
