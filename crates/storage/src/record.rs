//! The on-disk record format: length-prefixed, CRC32-protected binary
//! frames.
//!
//! ```text
//! ┌──────────┬──────────┬───────────────┐
//! │ len: u32 │ crc: u32 │ payload bytes │   (all integers little-endian)
//! └──────────┴──────────┴───────────────┘
//! payload := tag: u8, fields...
//!   1 Begin    { txn: u64 }
//!   2 Op       { txn: u64, obj: u64, op: len-prefixed bytes }
//!   3 Commit   { txn: u64, ts: u64 }
//!   4 Abort    { txn: u64 }
//!   5 Register { id: u64, name: len-prefixed utf8 }
//! ```
//!
//! Op records reference objects by **registry id** — a compact u64 the
//! store assigns the first time a name is logged against — instead of
//! repeating the name string per operation. The id→name binding is itself
//! a durable `Register` record, appended immediately before the first op
//! using the id; checkpoints additionally carry the full binding table in
//! their own file, so pruning the segments that held the original
//! `Register` records can never orphan an id.
//!
//! The CRC covers the payload only; a frame whose length field, CRC, or tag
//! is implausible is treated as a torn tail when it is the last thing in
//! the last segment, and as corruption anywhere else.

/// Upper bound on one record's payload (guards against reading a garbage
/// length field as an allocation size).
pub const MAX_PAYLOAD: u32 = 1 << 30;

/// One durable log record. The `op` payload is opaque to the storage layer;
/// callers serialize operations however they like (the workspace uses
/// compact JSON).
#[derive(Clone, Debug, PartialEq)]
pub enum LogRecord {
    /// A transaction began.
    Begin {
        /// Transaction id.
        txn: u64,
    },
    /// A transaction executed an operation at an object.
    Op {
        /// Transaction id.
        txn: u64,
        /// The object's registry id (bound to a name by a `Register`
        /// record).
        obj: u64,
        /// Serialized operation (opaque bytes).
        op: Vec<u8>,
    },
    /// The transaction committed with this timestamp.
    Commit {
        /// Transaction id.
        txn: u64,
        /// Commit timestamp.
        ts: u64,
    },
    /// The transaction aborted.
    Abort {
        /// Transaction id.
        txn: u64,
    },
    /// An object name was bound to a registry id (not transaction-scoped).
    Register {
        /// The registry id.
        id: u64,
        /// The object's name.
        name: String,
    },
}

impl LogRecord {
    /// The transaction this record belongs to (0 for `Register` records,
    /// which are not transaction-scoped; real transaction ids start at 1).
    pub fn txn(&self) -> u64 {
        match self {
            LogRecord::Begin { txn }
            | LogRecord::Op { txn, .. }
            | LogRecord::Commit { txn, .. }
            | LogRecord::Abort { txn } => *txn,
            LogRecord::Register { .. } => 0,
        }
    }

    /// Is this a completion (commit/abort) record?
    pub fn is_completion(&self) -> bool {
        matches!(self, LogRecord::Commit { .. } | LogRecord::Abort { .. })
    }
}

// ---- CRC32 (IEEE 802.3, the zlib polynomial) ---------------------------

fn crc32_table() -> &'static [u32; 256] {
    use std::sync::OnceLock;
    static TABLE: OnceLock<[u32; 256]> = OnceLock::new();
    TABLE.get_or_init(|| {
        let mut table = [0u32; 256];
        for (i, entry) in table.iter_mut().enumerate() {
            let mut c = i as u32;
            for _ in 0..8 {
                c = if c & 1 != 0 { 0xEDB8_8320 ^ (c >> 1) } else { c >> 1 };
            }
            *entry = c;
        }
        table
    })
}

/// IEEE CRC32 of `bytes`.
pub fn crc32(bytes: &[u8]) -> u32 {
    let table = crc32_table();
    let mut c = 0xFFFF_FFFFu32;
    for &b in bytes {
        c = table[((c ^ b as u32) & 0xFF) as usize] ^ (c >> 8);
    }
    c ^ 0xFFFF_FFFF
}

// ---- Encoding ----------------------------------------------------------

fn put_u32(out: &mut Vec<u8>, v: u32) {
    out.extend_from_slice(&v.to_le_bytes());
}

fn put_u64(out: &mut Vec<u8>, v: u64) {
    out.extend_from_slice(&v.to_le_bytes());
}

fn put_bytes(out: &mut Vec<u8>, bytes: &[u8]) {
    put_u32(out, bytes.len() as u32);
    out.extend_from_slice(bytes);
}

/// Append the framed encoding of `rec` to `out`.
pub fn encode_into(rec: &LogRecord, out: &mut Vec<u8>) {
    let mut payload = Vec::with_capacity(32);
    match rec {
        LogRecord::Begin { txn } => {
            payload.push(1);
            put_u64(&mut payload, *txn);
        }
        LogRecord::Op { txn, obj, op } => {
            payload.push(2);
            put_u64(&mut payload, *txn);
            put_u64(&mut payload, *obj);
            put_bytes(&mut payload, op);
        }
        LogRecord::Commit { txn, ts } => {
            payload.push(3);
            put_u64(&mut payload, *txn);
            put_u64(&mut payload, *ts);
        }
        LogRecord::Abort { txn } => {
            payload.push(4);
            put_u64(&mut payload, *txn);
        }
        LogRecord::Register { id, name } => {
            payload.push(5);
            put_u64(&mut payload, *id);
            put_bytes(&mut payload, name.as_bytes());
        }
    }
    put_u32(out, payload.len() as u32);
    put_u32(out, crc32(&payload));
    out.extend_from_slice(&payload);
}

/// The framed encoding of `rec`.
pub fn encode(rec: &LogRecord) -> Vec<u8> {
    let mut out = Vec::with_capacity(40);
    encode_into(rec, &mut out);
    out
}

// ---- Decoding ----------------------------------------------------------

/// Why a frame could not be decoded at some offset.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum FrameError {
    /// Fewer bytes remain than a header needs — clean EOF when 0 remain,
    /// torn header otherwise.
    Truncated,
    /// The length field exceeds [`MAX_PAYLOAD`] (garbage header).
    BadLength(u32),
    /// The payload's CRC does not match the header.
    BadCrc,
    /// The payload's tag byte is unknown or its fields are malformed.
    Malformed,
}

struct Cursor<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Cursor<'a> {
    fn take(&mut self, n: usize) -> Option<&'a [u8]> {
        let end = self.pos.checked_add(n)?;
        if end > self.bytes.len() {
            return None;
        }
        let s = &self.bytes[self.pos..end];
        self.pos = end;
        Some(s)
    }

    fn u32(&mut self) -> Option<u32> {
        self.take(4).map(|b| u32::from_le_bytes(b.try_into().unwrap()))
    }

    fn u64(&mut self) -> Option<u64> {
        self.take(8).map(|b| u64::from_le_bytes(b.try_into().unwrap()))
    }

    fn len_bytes(&mut self) -> Option<&'a [u8]> {
        let n = self.u32()?;
        if n > MAX_PAYLOAD {
            return None;
        }
        self.take(n as usize)
    }
}

fn decode_payload(payload: &[u8]) -> Option<LogRecord> {
    let mut c = Cursor { bytes: payload, pos: 0 };
    let tag = *c.take(1)?.first()?;
    let rec = match tag {
        1 => LogRecord::Begin { txn: c.u64()? },
        2 => {
            let txn = c.u64()?;
            let obj = c.u64()?;
            let op = c.len_bytes()?.to_vec();
            LogRecord::Op { txn, obj, op }
        }
        3 => LogRecord::Commit { txn: c.u64()?, ts: c.u64()? },
        4 => LogRecord::Abort { txn: c.u64()? },
        5 => {
            let id = c.u64()?;
            let name = String::from_utf8(c.len_bytes()?.to_vec()).ok()?;
            LogRecord::Register { id, name }
        }
        _ => return None,
    };
    if c.pos != payload.len() {
        return None; // trailing junk inside the frame
    }
    Some(rec)
}

/// Extract one frame's CRC-verified payload at `bytes[offset..]`, plus the
/// offset just past the frame. Shared by the full and metadata decoders so
/// they can never diverge on what counts as a valid frame envelope.
fn frame_at(bytes: &[u8], offset: usize) -> Result<(&[u8], usize), FrameError> {
    let remaining = &bytes[offset.min(bytes.len())..];
    if remaining.len() < 8 {
        return Err(FrameError::Truncated);
    }
    let len = u32::from_le_bytes(remaining[0..4].try_into().unwrap());
    if len > MAX_PAYLOAD {
        return Err(FrameError::BadLength(len));
    }
    let crc = u32::from_le_bytes(remaining[4..8].try_into().unwrap());
    let end = 8usize + len as usize;
    if remaining.len() < end {
        return Err(FrameError::Truncated);
    }
    let payload = &remaining[8..end];
    if crc32(payload) != crc {
        return Err(FrameError::BadCrc);
    }
    Ok((payload, offset + end))
}

/// Decode one frame at `bytes[offset..]`, returning the record and the
/// offset just past it.
pub fn decode_at(bytes: &[u8], offset: usize) -> Result<(LogRecord, usize), FrameError> {
    let (payload, next) = frame_at(bytes, offset)?;
    match decode_payload(payload) {
        Some(rec) => Ok((rec, next)),
        None => Err(FrameError::Malformed),
    }
}

/// A record's metadata, decodable without materializing object names or
/// op payloads — for cheap watermark scans over large logs.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct RecordMeta {
    /// The transaction the record belongs to (0 for `Register` records).
    pub txn: u64,
    /// `Some(ts)` for commit records.
    pub commit_ts: Option<u64>,
    /// Is this a `Register` record? (Callers needing the binding do a full
    /// decode of just that frame — registrations are rare.)
    pub register: bool,
}

/// Allocation-free mirror of [`decode_payload`]: accepts exactly the
/// payloads the full decoder accepts (field lengths and UTF-8 included),
/// so a frame that passes a metadata scan can never fail a record scan.
fn meta_from_payload(payload: &[u8]) -> Option<RecordMeta> {
    if payload.len() < 9 {
        return None;
    }
    let txn = u64::from_le_bytes(payload[1..9].try_into().unwrap());
    let get_len = |at: usize| -> Option<usize> {
        payload.get(at..at + 4).map(|b| u32::from_le_bytes(b.try_into().unwrap()) as usize)
    };
    match payload[0] {
        1 | 4 if payload.len() == 9 => Some(RecordMeta { txn, commit_ts: None, register: false }),
        2 => {
            let op_len = get_len(17)?;
            (payload.len() == 21 + op_len).then_some(RecordMeta {
                txn,
                commit_ts: None,
                register: false,
            })
        }
        3 if payload.len() == 17 => {
            let ts = u64::from_le_bytes(payload[9..17].try_into().unwrap());
            Some(RecordMeta { txn, commit_ts: Some(ts), register: false })
        }
        5 => {
            let name_len = get_len(9)?;
            let name = payload.get(13..13 + name_len)?;
            std::str::from_utf8(name).ok()?;
            (payload.len() == 13 + name_len).then_some(RecordMeta {
                txn: 0,
                commit_ts: None,
                register: true,
            })
        }
        _ => None,
    }
}

/// Decode one frame's metadata at `bytes[offset..]` (CRC and payload shape
/// still fully verified), returning it and the offset just past the frame.
pub fn decode_meta_at(bytes: &[u8], offset: usize) -> Result<(RecordMeta, usize), FrameError> {
    let (payload, next) = frame_at(bytes, offset)?;
    match meta_from_payload(payload) {
        Some(meta) => Ok((meta, next)),
        None => Err(FrameError::Malformed),
    }
}

/// Decode every complete frame in `bytes`. Returns the records plus the
/// error that stopped the scan, if any (`None` means the buffer ended
/// exactly on a frame boundary).
pub fn decode_all(bytes: &[u8]) -> (Vec<LogRecord>, Option<FrameError>) {
    let mut out = Vec::new();
    let mut pos = 0;
    while pos < bytes.len() {
        match decode_at(bytes, pos) {
            Ok((rec, next)) => {
                out.push(rec);
                pos = next;
            }
            Err(e) => return (out, Some(e)),
        }
    }
    (out, None)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Vec<LogRecord> {
        vec![
            LogRecord::Register { id: 1, name: "acct".into() },
            LogRecord::Begin { txn: 1 },
            LogRecord::Op { txn: 1, obj: 1, op: br#"{"credit":5}"#.to_vec() },
            LogRecord::Commit { txn: 1, ts: 42 },
            LogRecord::Abort { txn: 2 },
        ]
    }

    #[test]
    fn crc32_known_vectors() {
        assert_eq!(crc32(b""), 0x0000_0000);
        assert_eq!(crc32(b"123456789"), 0xCBF4_3926);
        assert_eq!(crc32(b"The quick brown fox jumps over the lazy dog"), 0x414F_A339);
    }

    #[test]
    fn roundtrip() {
        let mut buf = Vec::new();
        for r in sample() {
            encode_into(&r, &mut buf);
        }
        let (recs, err) = decode_all(&buf);
        assert_eq!(recs, sample());
        assert_eq!(err, None);
    }

    #[test]
    fn torn_tail_detected() {
        let mut buf = Vec::new();
        let mut boundaries = vec![0usize];
        for r in sample() {
            encode_into(&r, &mut buf);
            boundaries.push(buf.len());
        }
        for cut in 1..buf.len() {
            let len = buf.len() - cut;
            let (recs, err) = decode_all(&buf[..len]);
            if let Some(whole) = boundaries.iter().position(|&b| b == len) {
                // A cut on a frame boundary is a clean, shorter log.
                assert_eq!(recs.len(), whole, "cut {cut} on boundary");
                assert_eq!(err, None, "cut {cut} on boundary");
            } else {
                // Mid-frame cuts lose exactly the torn frame and are flagged.
                assert!(err.is_some(), "cut {cut} must be flagged");
                let whole = boundaries.iter().filter(|&&b| b <= len).count() - 1;
                assert_eq!(recs.len(), whole, "cut {cut} record count");
            }
        }
    }

    #[test]
    fn flipped_bit_fails_crc() {
        let mut buf = encode(&LogRecord::Commit { txn: 9, ts: 7 });
        let last = buf.len() - 1;
        buf[last] ^= 0x01;
        let (recs, err) = decode_all(&buf);
        assert!(recs.is_empty());
        assert_eq!(err, Some(FrameError::BadCrc));
    }

    #[test]
    fn garbage_length_rejected_without_allocation() {
        let mut buf = Vec::new();
        buf.extend_from_slice(&u32::MAX.to_le_bytes());
        buf.extend_from_slice(&0u32.to_le_bytes());
        let (recs, err) = decode_all(&buf);
        assert!(recs.is_empty());
        assert_eq!(err, Some(FrameError::BadLength(u32::MAX)));
    }

    /// The metadata decoder must accept and reject exactly what the full
    /// decoder does — a frame that survives an open-time tail-repair scan
    /// can never be refused by recovery.
    #[test]
    fn meta_decoder_agrees_with_full_decoder() {
        let mut cases: Vec<Vec<u8>> = sample()
            .iter()
            .map(|r| {
                let e = encode(r);
                e[8..].to_vec() // payload only
            })
            .collect();
        // Payloads with trailing junk, short fields, bad UTF-8, bad tags.
        for base in cases.clone() {
            let mut longer = base.clone();
            longer.push(0);
            cases.push(longer);
            if base.len() > 9 {
                cases.push(base[..base.len() - 1].to_vec());
            }
        }
        cases.push(vec![5, 1, 0, 0, 0, 0, 0, 0, 0, 1, 0, 0, 0, 0xFF]); // bad UTF-8 name
        cases.push(vec![2, 0, 0, 0, 0, 0, 0, 0, 0, 1, 0, 0, 0, 0xFF, 0, 0, 0, 0]); // short Op
        cases.push(vec![99, 0, 0, 0, 0, 0, 0, 0, 0]);
        for payload in cases {
            let mut frame = Vec::new();
            frame.extend_from_slice(&(payload.len() as u32).to_le_bytes());
            frame.extend_from_slice(&crc32(&payload).to_le_bytes());
            frame.extend_from_slice(&payload);
            let full = decode_at(&frame, 0);
            let meta = decode_meta_at(&frame, 0);
            assert_eq!(
                full.is_ok(),
                meta.is_ok(),
                "decoders disagree on payload {payload:?}: full={full:?} meta={meta:?}"
            );
            if let (Ok((rec, a)), Ok((m, b))) = (&full, &meta) {
                assert_eq!(a, b);
                assert_eq!(m.txn, rec.txn());
                let ts = match rec {
                    LogRecord::Commit { ts, .. } => Some(*ts),
                    _ => None,
                };
                assert_eq!(m.commit_ts, ts);
            }
        }
    }

    #[test]
    fn unknown_tag_is_malformed() {
        let payload = [99u8, 0, 0, 0, 0, 0, 0, 0, 0];
        let mut buf = Vec::new();
        buf.extend_from_slice(&(payload.len() as u32).to_le_bytes());
        buf.extend_from_slice(&crc32(&payload).to_le_bytes());
        buf.extend_from_slice(&payload);
        let (_, err) = decode_all(&buf);
        assert_eq!(err, Some(FrameError::Malformed));
    }
}
