//! The striped, segmented write-ahead log: ticketed appends over N
//! object-affine stripes, per-stripe leader-based group commit, segment
//! rotation, and torn-tail-tolerant scanning.
//!
//! ## Stripes and tickets
//!
//! The log is split into `stripes` independent append streams, each its
//! own directory of segment files with its own mutex, buffer, and group
//! -commit leader — the classic lock-decomposition answer to the single
//! append mutex becoming the bottleneck ahead of the fsync. Routing is
//! **object-affine**: an op (and the `Register` record binding its id)
//! always lands on the stripe `object_id % stripes`, so one object's
//! records never spread over stripes and their within-stripe order is a
//! superset of nothing — every per-object ordering obligation lives in
//! one file. Begin/abort records route by transaction id; a commit record
//! routes to the transaction's **single op stripe** when it touched only
//! one (the common case — its ops are physically earlier in the same
//! file, so one fsync covers both), falling back to the transaction's
//! stripe otherwise.
//!
//! Every record is stamped with a ticket from one global monotone counter
//! ([`SegmentedWal::reserve`]); recovery merges the stripes back into a
//! deterministic total order by sorting on it. Callers that must
//! preserve an execution order reserve the ticket while holding the lock
//! that defines that order (the object lock, for redo records) and
//! append outside it — the physical append order within a stripe may
//! then disagree with ticket order, and that is fine: the merge sorts.
//!
//! ## Group commit
//!
//! Per stripe, concurrent committers do not each pay an fsync. A
//! committer appends its completion record, then joins the stripe's sync
//! protocol: if a sync is already running it waits; otherwise it becomes
//! the *leader*, snapshots the stripe's highest flushed position, fsyncs
//! once, publishes the new durable position, and wakes everyone. Commits
//! that arrive while a sync is in flight batch up behind it — one fsync
//! per batch per stripe, and stripes sync in parallel.
//!
//! Before its commit record may become durable, a transaction's op
//! records must be durable on every stripe they landed on; the commit
//! path pre-syncs the other dirty stripes first. Losing cross-stripe
//! write-ahead ordering under `Durability::None` is tolerated by
//! recovery: commit records carry their op count, and a commit with
//! missing ops is dropped as incompletely durable.
//!
//! ## Rotation
//!
//! A segment that exceeds `segment_max_bytes` is finished: flushed,
//! fsynced (so earlier records can never be less durable than later
//! ones), and a new segment file is opened. Whole dead segments are
//! deleted by checkpointing (see `store`).

use crate::record::{self, FrameError, LogRecord};
use crate::StorageError;
use hcc_core::runtime::Durability;
use hcc_obs::{Counter, Histogram, Registry};
use std::collections::HashMap;
use std::fs::{self, File, OpenOptions};
use std::io::Write;
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Condvar, Mutex};

/// Flush threshold for `Durability::None` (bounds process-buffer growth).
const NONE_FLUSH_BYTES: usize = 64 * 1024;

/// Upper bound on the stripe count (dirty-stripe sets are u64 bitmasks).
pub const MAX_STRIPES: usize = 64;

/// Construction options for [`SegmentedWal`].
#[derive(Clone, Copy, Debug)]
pub struct WalOptions {
    /// Rotate to a fresh segment once the active one exceeds this size.
    pub segment_max_bytes: u64,
    /// How durable completion records must be before `commit` returns.
    pub durability: Durability,
    /// Batch concurrent fsyncs (leader-based group commit). Disabling this
    /// gives the classical one-fsync-per-commit discipline — kept for
    /// comparison benchmarks.
    pub group_commit: bool,
    /// Number of append stripes (clamped to `1..=64`). `1` is
    /// byte-for-byte the pre-striping log modulo the directory layout.
    pub stripes: usize,
}

impl Default for WalOptions {
    fn default() -> Self {
        WalOptions {
            segment_max_bytes: 4 * 1024 * 1024,
            durability: Durability::Fsync,
            group_commit: true,
            stripes: 1,
        }
    }
}

struct Inner {
    file: std::sync::Arc<File>,
    seg_index: u64,
    seg_bytes: u64,
    /// Process-local buffer of encoded-but-unwritten records.
    buf: Vec<u8>,
    /// Physical append position (records appended to this stripe so far).
    /// Distinct from the global ticket: this is what the stripe's sync
    /// protocol tracks, and it is strictly monotone in *append* order.
    next_pos: u64,
    /// Lowest segment holding records of each incomplete transaction.
    live_low: HashMap<u64, u64>,
    // ---- statistics for the compaction policy -------------------------
    commits_since_ckpt: u64,
    records_since_ckpt: u64,
    bytes_since_ckpt: u64,
    bytes_at_last_ckpt: u64,
    total_bytes: u64,
    segments: u64,
}

struct SyncState {
    /// Highest append position known durable.
    synced_pos: u64,
    /// Is a leader currently fsyncing?
    sync_running: bool,
    /// Highest position any committer is waiting on. The leader stays hot
    /// — fsyncing round after round — until it has covered this, so no
    /// fsync-to-fsync handoff latency is paid while commits queue.
    max_requested: u64,
}

/// The metric handles one stripe bumps on its hot paths, resolved once at
/// open so appends never touch the registry's name map. The per-stripe
/// append counter is distinct per stripe (`wal.appends.stripeNN`); the
/// rotation counter and the fsync/batch histograms are shared across
/// stripes (stripes sync in parallel, the histograms are sharded).
struct StripeInstruments {
    appends: std::sync::Arc<Counter>,
    rotations: std::sync::Arc<Counter>,
    fsync_nanos: std::sync::Arc<Histogram>,
    batch: std::sync::Arc<Histogram>,
}

impl StripeInstruments {
    fn resolve(metrics: &Registry, stripe: usize) -> StripeInstruments {
        StripeInstruments {
            appends: metrics.counter(&format!("wal.appends.stripe{stripe:02}")),
            rotations: metrics.counter("wal.rotations"),
            fsync_nanos: metrics.histogram("wal.fsync_nanos"),
            batch: metrics.histogram("wal.group_commit.batch"),
        }
    }
}

/// One append stripe: its own segment directory, buffer, and group-commit
/// protocol.
struct Stripe {
    dir: PathBuf,
    inner: Mutex<Inner>,
    sync_state: Mutex<SyncState>,
    sync_cv: Condvar,
    ins: StripeInstruments,
}

/// Per-live-transaction bookkeeping at the striped level.
#[derive(Clone, Copy, Default)]
struct TxnTrack {
    /// Bitmask of stripes holding this transaction's op records.
    op_stripes: u64,
    /// Op records appended for this transaction (stamped into its commit
    /// record so recovery can detect a partially lost transaction).
    ops: u32,
}

/// The decoded record image of an open-time scan: the surviving records
/// in merged ticket order, and whether any stripe dropped a torn tail.
pub type OpenRecords = (Vec<(u64, LogRecord)>, bool);

/// A striped, segmented, CRC-framed, group-committing write-ahead log.
pub struct SegmentedWal {
    dir: PathBuf,
    opts: WalOptions,
    stripes: Vec<Stripe>,
    /// The global ticket counter: the *next* ticket to hand out.
    ticket: AtomicU64,
    /// Live transactions' dirty-stripe masks and op counts.
    txns: Mutex<HashMap<u64, TxnTrack>>,
    /// What the open-time scan learned (watermarks + registry bindings)
    /// — the store reads this instead of re-scanning the segments it
    /// just opened.
    open_scan: OpenScan,
    /// The fully decoded records of that same open-time scan, in merged
    /// ticket order, plus the torn-tail flag — retained so the *one*
    /// pass over the surviving segments serves both clock/id seeding and
    /// recovery materialization. Taken (once) by the store's recovery
    /// path; dropped when the caller attests absorption.
    open_image: Mutex<Option<OpenRecords>>,
    /// The commit chain: ticket of the most recently reserved commit
    /// record (any stripe). Each commit record carries its predecessor's
    /// ticket so recovery can reject chain holes — the cross-stripe
    /// analogue of "a tail cut only removes a suffix".
    chain: Mutex<u64>,
    /// Commit records whose append failed after their chain ticket was
    /// reserved: the compensating durable abort reuses the ticket, so the
    /// chain stays linkable for every later commit.
    failed_commits: Mutex<HashMap<u64, u64>>,
    /// Highest chain ticket whose durability is *settled* (synced to the
    /// configured level, or declared dead by a failed append). Advances
    /// strictly in chain order — each commit settles only after its
    /// predecessor has — and commits are acknowledged only once settled,
    /// so acknowledgement order equals chain order. That is what entitles
    /// recovery to read a chain hole as "this commit and everything
    /// chained after it was never acknowledged".
    chain_settled: Mutex<u64>,
    chain_settled_cv: Condvar,
}

/// `stripe-03`
pub(crate) fn stripe_dir(dir: &Path, stripe: usize) -> PathBuf {
    dir.join(format!("stripe-{stripe:02}"))
}

/// `seg-00000042.wal`
pub(crate) fn segment_path(dir: &Path, index: u64) -> PathBuf {
    dir.join(format!("seg-{index:08}.wal"))
}

/// Fsync a directory, making freshly created (or renamed) files durable
/// *as directory entries*. Without this, a crash after segment
/// creation/rotation can lose the new file entirely — the records inside
/// were fsynced, but the name pointing at them was not — which recovery
/// sees as a hole in the log (checkpoint files already get the same
/// treatment from `Checkpoint::save`).
pub(crate) fn sync_dir(dir: &Path) -> std::io::Result<()> {
    File::open(dir)?.sync_all()
}

/// All stripe directories under `dir` (`stripe-NN`), sorted by index.
/// Reads whatever is on disk, regardless of the stripe count the log is
/// currently opened with — recovery is stripe-count-agnostic because the
/// merge order comes from tickets, not from routing.
pub fn stripe_dirs(dir: &Path) -> std::io::Result<Vec<(usize, PathBuf)>> {
    let mut out = Vec::new();
    let entries = match fs::read_dir(dir) {
        Ok(e) => e,
        Err(e) if e.kind() == std::io::ErrorKind::NotFound => return Ok(out),
        Err(e) => return Err(e),
    };
    for entry in entries {
        let entry = entry?;
        let name = entry.file_name();
        let name = name.to_string_lossy();
        if let Some(idx) = name.strip_prefix("stripe-") {
            if let Ok(index) = idx.parse::<usize>() {
                out.push((index, entry.path()));
            }
        }
    }
    out.sort();
    Ok(out)
}

/// All segment files under one stripe directory, sorted by index.
pub fn list_segments(dir: &Path) -> std::io::Result<Vec<(u64, PathBuf)>> {
    let mut out = Vec::new();
    let entries = match fs::read_dir(dir) {
        Ok(e) => e,
        Err(e) if e.kind() == std::io::ErrorKind::NotFound => return Ok(out),
        Err(e) => return Err(e),
    };
    for entry in entries {
        let entry = entry?;
        let name = entry.file_name();
        let name = name.to_string_lossy();
        if let Some(idx) = name.strip_prefix("seg-").and_then(|s| s.strip_suffix(".wal")) {
            if let Ok(index) = idx.parse::<u64>() {
                out.push((index, entry.path()));
            }
        }
    }
    out.sort();
    Ok(out)
}

impl Stripe {
    /// Open one stripe (created if missing), truncating a torn tail off
    /// its active segment. The ticket/chain anchor scan over the repaired
    /// segments happens afterwards in [`SegmentedWal::open`].
    fn open(dir: PathBuf, ins: StripeInstruments) -> Result<Stripe, StorageError> {
        fs::create_dir_all(&dir)?;
        let segments = list_segments(&dir)?;
        let mut total_bytes: u64 =
            segments.iter().map(|(_, p)| fs::metadata(p).map(|m| m.len()).unwrap_or(0)).sum();
        let (seg_index, seg_bytes) = match segments.last() {
            Some((idx, path)) => {
                // A crash can leave half a frame at the tail. Appending
                // after it would orphan every subsequent record (scans stop
                // at the first bad frame), losing acknowledged commits — so
                // truncate the active segment back to the last valid frame
                // boundary before appending.
                let bytes = fs::read(path)?;
                let mut valid = 0usize;
                while valid < bytes.len() {
                    match record::decode_meta_at(&bytes, valid) {
                        Ok((_, next)) => valid = next,
                        Err(_) => break,
                    }
                }
                if valid < bytes.len() {
                    let f = OpenOptions::new().write(true).open(path)?;
                    f.set_len(valid as u64)?;
                    f.sync_data()?;
                    total_bytes -= (bytes.len() - valid) as u64;
                }
                (*idx, valid as u64)
            }
            None => (1, 0),
        };
        let seg_file = segment_path(&dir, seg_index);
        let created = !seg_file.exists();
        let file = OpenOptions::new().create(true).append(true).open(&seg_file)?;
        if created {
            sync_dir(&dir)?;
        }
        let n_segments = segments.len().max(1) as u64;
        Ok(Stripe {
            dir,
            inner: Mutex::new(Inner {
                file: std::sync::Arc::new(file),
                seg_index,
                seg_bytes,
                buf: Vec::new(),
                next_pos: 1,
                live_low: HashMap::new(),
                commits_since_ckpt: 0,
                records_since_ckpt: 0,
                bytes_since_ckpt: 0,
                bytes_at_last_ckpt: total_bytes,
                total_bytes: total_bytes.max(seg_bytes),
                segments: n_segments,
            }),
            sync_state: Mutex::new(SyncState {
                synced_pos: 0,
                sync_running: false,
                max_requested: 0,
            }),
            sync_cv: Condvar::new(),
            ins,
        })
    }

    fn lock_inner(&self) -> std::sync::MutexGuard<'_, Inner> {
        self.inner.lock().unwrap_or_else(std::sync::PoisonError::into_inner)
    }

    fn lock_sync(&self) -> std::sync::MutexGuard<'_, SyncState> {
        self.sync_state.lock().unwrap_or_else(std::sync::PoisonError::into_inner)
    }

    /// Write the process buffer to the OS.
    fn flush_locked(inner: &mut Inner) -> std::io::Result<()> {
        if !inner.buf.is_empty() {
            (&*inner.file).write_all(&inner.buf)?;
            inner.buf.clear();
        }
        Ok(())
    }

    /// Finish the active segment (flush + fsync) and open the next one.
    /// Everything written so far becomes durable, so `synced_pos` advances.
    fn rotate_locked(&self, inner: &mut Inner) -> std::io::Result<()> {
        Self::flush_locked(inner)?;
        inner.file.sync_data()?;
        self.ins.rotations.inc();
        let durable_pos = inner.next_pos - 1;
        inner.seg_index += 1;
        inner.segments += 1;
        inner.seg_bytes = 0;
        inner.file = std::sync::Arc::new(
            OpenOptions::new()
                .create(true)
                .append(true)
                .open(segment_path(&self.dir, inner.seg_index))?,
        );
        // The new segment file must survive a crash as a directory entry,
        // or recovery finds records referencing a segment that vanished.
        sync_dir(&self.dir)?;
        let mut s = self.lock_sync();
        s.synced_pos = s.synced_pos.max(durable_pos);
        drop(s);
        self.sync_cv.notify_all();
        Ok(())
    }

    /// Encode and append one ticketed record; returns its append position.
    fn append_locked(
        &self,
        inner: &mut Inner,
        rec: &LogRecord,
        seq: u64,
        segment_max_bytes: u64,
    ) -> std::io::Result<u64> {
        if inner.seg_bytes >= segment_max_bytes {
            self.rotate_locked(inner)?;
        }
        self.ins.appends.inc();
        let pos = inner.next_pos;
        inner.next_pos += 1;
        let before = inner.buf.len();
        record::encode_into(rec, seq, &mut inner.buf);
        let encoded = (inner.buf.len() - before) as u64;
        inner.seg_bytes += encoded;
        inner.total_bytes += encoded;
        inner.bytes_since_ckpt += encoded;
        inner.records_since_ckpt += 1;
        match rec {
            LogRecord::Begin { txn } | LogRecord::Op { txn, .. } => {
                let seg = inner.seg_index;
                inner.live_low.entry(*txn).or_insert(seg);
            }
            LogRecord::Commit { txn, .. } => {
                inner.commits_since_ckpt += 1;
                inner.live_low.remove(txn);
            }
            LogRecord::Abort { txn } => {
                inner.live_low.remove(txn);
            }
            LogRecord::Register { .. } => {}
        }
        Ok(pos)
    }

    /// Append a non-completion record, buffered per the durability level.
    fn append(&self, rec: &LogRecord, seq: u64, opts: &WalOptions) -> Result<(), StorageError> {
        let mut inner = self.lock_inner();
        self.append_locked(&mut inner, rec, seq, opts.segment_max_bytes)?;
        match opts.durability {
            Durability::None => {
                if inner.buf.len() >= NONE_FLUSH_BYTES {
                    Self::flush_locked(&mut inner)?;
                }
            }
            // Under group commit, op records ride in the process buffer:
            // the sync leader flushes everything before any fsync, so they
            // never need their own write syscall. The classical
            // (non-group) discipline flushes every record, like the
            // legacy line-JSON log.
            Durability::Fsync if opts.group_commit => {
                if inner.buf.len() >= NONE_FLUSH_BYTES {
                    Self::flush_locked(&mut inner)?;
                }
            }
            Durability::Buffered | Durability::Fsync => Self::flush_locked(&mut inner)?,
        }
        Ok(())
    }

    /// Append a completion record with the configured durability: under
    /// `Fsync` this blocks until the record is on disk — one fsync per
    /// concurrent batch per stripe when group commit is enabled.
    fn commit(&self, rec: &LogRecord, seq: u64, opts: &WalOptions) -> Result<(), StorageError> {
        debug_assert!(rec.is_completion());
        let mut inner = self.lock_inner();
        let pos = self.append_locked(&mut inner, rec, seq, opts.segment_max_bytes)?;
        match opts.durability {
            Durability::None => Ok(()),
            Durability::Buffered => {
                Self::flush_locked(&mut inner)?;
                Ok(())
            }
            Durability::Fsync => {
                if opts.group_commit {
                    // No flush here: the sync leader flushes the shared
                    // buffer under the stripe lock before it snapshots the
                    // high-water mark, so this record is covered by
                    // whichever fsync it waits for.
                    drop(inner);
                    self.group_sync(pos)
                } else {
                    Self::flush_locked(&mut inner)?;
                    // Classical discipline (the legacy `Wal::append_sync`):
                    // the stripe lock is held across the fsync, serializing
                    // one durable commit at a time.
                    let started = std::time::Instant::now();
                    inner.file.sync_data()?;
                    self.ins.fsync_nanos.observe_duration(started.elapsed());
                    self.ins.batch.observe(1);
                    Ok(())
                }
            }
        }
    }

    /// Make everything appended to this stripe so far as durable as
    /// `level` requires — the cross-stripe write-ahead step a commit
    /// takes for each stripe holding its op records.
    fn settle(&self, level: Durability, group_commit: bool) -> Result<(), StorageError> {
        match level {
            Durability::None => Ok(()),
            Durability::Buffered => {
                let mut inner = self.lock_inner();
                Self::flush_locked(&mut inner)?;
                Ok(())
            }
            Durability::Fsync if group_commit => {
                let pos = self.lock_inner().next_pos - 1;
                self.group_sync(pos)
            }
            Durability::Fsync => {
                let mut inner = self.lock_inner();
                Self::flush_locked(&mut inner)?;
                inner.file.sync_data()?;
                Ok(())
            }
        }
    }

    /// Wait until append position `my_pos` is durable, fsyncing as leader
    /// when no sync is in flight. The leader stays hot: as long as some
    /// committer is waiting on a higher position it runs another flush +
    /// fsync round itself, rather than paying a wake-up handoff between
    /// every batch.
    fn group_sync(&self, my_pos: u64) -> Result<(), StorageError> {
        let mut s = self.lock_sync();
        s.max_requested = s.max_requested.max(my_pos);
        loop {
            if s.synced_pos >= my_pos {
                return Ok(());
            }
            if s.sync_running {
                s = self.sync_cv.wait(s).unwrap_or_else(std::sync::PoisonError::into_inner);
                continue;
            }
            // Become the leader.
            s.sync_running = true;
            while s.synced_pos < s.max_requested {
                drop(s);
                // One scheduling breath before snapshotting the high-water
                // mark: committers racing toward the log get into this
                // batch instead of waiting out a whole fsync.
                std::thread::yield_now();
                let outcome: std::io::Result<u64> = (|| {
                    let (high, file) = {
                        let mut inner = self.lock_inner();
                        Self::flush_locked(&mut inner)?;
                        (inner.next_pos - 1, inner.file.clone())
                    };
                    let started = std::time::Instant::now();
                    file.sync_data()?;
                    self.ins.fsync_nanos.observe_duration(started.elapsed());
                    Ok(high)
                })();
                s = self.lock_sync();
                match outcome {
                    Ok(high) => {
                        // Batch size: append positions this one fsync made
                        // durable (clamped at 1 — a leader can re-sync a
                        // position another rotation already covered).
                        self.ins.batch.observe(high.saturating_sub(s.synced_pos).max(1));
                        s.synced_pos = s.synced_pos.max(high);
                    }
                    Err(e) => {
                        s.sync_running = false;
                        drop(s);
                        self.sync_cv.notify_all();
                        return Err(e.into());
                    }
                }
                self.sync_cv.notify_all();
            }
            s.sync_running = false;
            drop(s);
            self.sync_cv.notify_all();
            return Ok(());
        }
    }
}

impl SegmentedWal {
    /// Open the log in `dir` (created if missing). Each stripe appends to
    /// its highest existing segment or starts segment 1; the global
    /// ticket counter is re-anchored above every ticket surviving on disk
    /// (and the caller should raise it further with
    /// [`SegmentedWal::witness_ticket`] when a checkpoint recorded a
    /// higher watermark — pruning may have deleted the segments that held
    /// the highest tickets).
    pub fn open(dir: impl AsRef<Path>, opts: WalOptions) -> Result<SegmentedWal, StorageError> {
        Self::open_with_metrics(dir, opts, &Registry::new())
    }

    /// [`SegmentedWal::open`] with the owning system's metric registry:
    /// per-stripe append counters, rotation counts, and the group-commit
    /// batch/fsync histograms are resolved from it once, at open (the
    /// plain `open` uses a private throwaway registry).
    pub fn open_with_metrics(
        dir: impl AsRef<Path>,
        opts: WalOptions,
        metrics: &Registry,
    ) -> Result<SegmentedWal, StorageError> {
        let dir = dir.as_ref().to_path_buf();
        let mut opts = opts;
        opts.stripes = opts.stripes.clamp(1, MAX_STRIPES);
        fs::create_dir_all(&dir)?;
        // Open every stripe present on disk plus every stripe the options
        // ask for: reopening with a different stripe count only changes
        // where *new* records route; old stripes keep being read, pruned,
        // and (for low indexes) appended to.
        let on_disk = stripe_dirs(&dir)?;
        let count = opts.stripes.max(on_disk.iter().map(|(i, _)| i + 1).max().unwrap_or(0));
        let count = count.clamp(1, MAX_STRIPES);
        let mut stripes = Vec::with_capacity(count);
        for i in 0..count {
            stripes
                .push(Stripe::open(stripe_dir(&dir, i), StripeInstruments::resolve(metrics, i))?);
        }
        // One full pass over every surviving (tail-repaired) segment:
        // re-anchors the ticket counter (reusing a ticket would make the
        // recovery merge ambiguous, exactly like reusing a transaction
        // id) and the commit chain (the next commit links to the highest
        // surviving commit ticket), collects the watermarks + registry
        // bindings the store needs, **and retains the decoded records**
        // so the recovery path materializes from this same pass instead
        // of re-reading every segment — opening a store reads each
        // segment exactly once, recovery included.
        let (records, torn) = read_records(&dir)?;
        let scan = OpenScan::from_records(&records);
        let wal = SegmentedWal {
            dir,
            opts,
            stripes,
            ticket: AtomicU64::new(scan.max_seq + 1),
            txns: Mutex::new(HashMap::new()),
            chain: Mutex::new(scan.max_commit_seq),
            failed_commits: Mutex::new(HashMap::new()),
            chain_settled: Mutex::new(scan.max_commit_seq),
            chain_settled_cv: Condvar::new(),
            open_scan: scan,
            open_image: Mutex::new(Some((records, torn))),
        };
        Ok(wal)
    }

    /// What the open-time metadata pass learned: recovery watermarks and
    /// registry bindings of the surviving log.
    pub fn open_scan(&self) -> &OpenScan {
        &self.open_scan
    }

    /// Take the decoded record image of the open-time scan (merged
    /// ticket order, plus the torn-tail flag). `Some` exactly once: the
    /// store claims it right after opening so one disk pass serves both
    /// open seeding and recovery materialization; later calls get `None`
    /// and must re-read.
    pub fn take_open_image(&self) -> Option<OpenRecords> {
        self.open_image.lock().unwrap_or_else(std::sync::PoisonError::into_inner).take()
    }

    /// The log directory.
    pub fn dir(&self) -> &Path {
        &self.dir
    }

    /// The number of stripes this log routes over.
    pub fn stripe_count(&self) -> usize {
        // Routing uses the configured count; extra on-disk stripes are
        // read/pruned but receive no new records.
        self.opts.stripes
    }

    /// Raise the ticket counter so the next reserved ticket is at least
    /// `floor` — called by the store with the checkpoint's recorded
    /// watermark, since compaction may have deleted the segments that
    /// held the highest tickets.
    pub fn witness_ticket(&self, floor: u64) {
        self.ticket.fetch_max(floor, Ordering::Relaxed);
    }

    /// Raise the commit-chain anchor to at least `floor` (the
    /// checkpoint's recorded chain watermark — the chain link below it
    /// may have been pruned).
    pub fn witness_chain(&self, floor: u64) {
        let mut chain = self.chain.lock().unwrap_or_else(std::sync::PoisonError::into_inner);
        *chain = (*chain).max(floor);
        drop(chain);
        let mut settled =
            self.chain_settled.lock().unwrap_or_else(std::sync::PoisonError::into_inner);
        *settled = (*settled).max(floor);
    }

    /// The ticket of the most recently chained commit record — the
    /// commit-chain watermark a fuzzy checkpoint records. Taken under
    /// the caller's exclusive commit gate, so no commit is mid-chain.
    pub fn commit_chain(&self) -> u64 {
        *self.chain.lock().unwrap_or_else(std::sync::PoisonError::into_inner)
    }

    /// Reserve the next global ticket. Callers that need a ticket order
    /// to match an execution order must call this while holding the lock
    /// that defines that order; the append itself can happen later,
    /// outside the lock.
    pub fn reserve(&self) -> u64 {
        self.ticket.fetch_add(1, Ordering::Relaxed)
    }

    /// The next ticket that would be handed out (checkpoint watermark).
    pub fn current_ticket(&self) -> u64 {
        self.ticket.load(Ordering::Relaxed)
    }

    fn stripe_for_object(&self, obj: u64) -> usize {
        (obj % self.opts.stripes as u64) as usize
    }

    fn stripe_for_txn(&self, txn: u64) -> usize {
        (txn % self.opts.stripes as u64) as usize
    }

    fn lock_txns(&self) -> std::sync::MutexGuard<'_, HashMap<u64, TxnTrack>> {
        self.txns.lock().unwrap_or_else(std::sync::PoisonError::into_inner)
    }

    /// Append a Begin record (buffered; routed by transaction id).
    pub fn append_begin(&self, txn: u64) -> Result<(), StorageError> {
        let seq = self.reserve();
        let s = self.stripe_for_txn(txn);
        self.stripes[s].append(&LogRecord::Begin { txn }, seq, &self.opts)
    }

    /// Append a Register record (buffered; routed by registry id, the
    /// same stripe the id's op records will land on — a torn tail that
    /// keeps an op always keeps its binding).
    pub fn append_register(&self, id: u64, name: &str) -> Result<(), StorageError> {
        let seq = self.reserve();
        let s = self.stripe_for_object(id);
        self.stripes[s].append(&LogRecord::Register { id, name: name.to_string() }, seq, &self.opts)
    }

    /// Append one op record under a pre-reserved ticket (buffered; routed
    /// by object id). The write-ahead discipline only requires op records
    /// to reach disk before the *commit* record does, which the commit
    /// path's cross-stripe settle guarantees.
    pub fn append_op(&self, seq: u64, txn: u64, obj: u64, op: &[u8]) -> Result<(), StorageError> {
        let s = self.stripe_for_object(obj);
        self.stripes[s].append(&LogRecord::Op { txn, obj, op: op.to_vec() }, seq, &self.opts)?;
        // Count only after a successful append: the commit record's op
        // count must equal what is actually in the log (a failed append
        // retried by the caller increments exactly once, on the retry).
        let mut txns = self.lock_txns();
        let track = txns.entry(txn).or_default();
        track.op_stripes |= 1 << s;
        track.ops += 1;
        Ok(())
    }

    /// Append an ordinary Abort record (buffered — recovery never replays
    /// uncommitted transactions, so it only unpins segments). Never
    /// reuses a failed commit's chain ticket: a chain-repair record must
    /// be at least as durable as the commits chained past it, which only
    /// the durable [`SegmentedWal::commit_abort`] path guarantees.
    pub fn append_abort(&self, txn: u64) -> Result<(), StorageError> {
        let (home, mask) = self.finish_txn(txn);
        let seq = self.reserve();
        self.stripes[home].append(&LogRecord::Abort { txn }, seq, &self.opts)?;
        self.unpin_live(txn, mask | (1 << home));
        Ok(())
    }

    /// Durably append an Abort record (the compensating record written
    /// when a commit fsync failed: recovery's abort-wins rule needs it to
    /// survive).
    pub fn commit_abort(&self, txn: u64) -> Result<(), StorageError> {
        let (home, mask) = self.finish_txn(txn);
        let (seq, reused) = self.abort_ticket(txn);
        self.stripes[home].commit(&LogRecord::Abort { txn }, seq, &self.opts)?;
        self.consume_failed_commit(txn, reused);
        self.unpin_live(txn, mask | (1 << home));
        Ok(())
    }

    /// The ticket for an abort record of `txn`: a fresh one, unless a
    /// commit append for `txn` failed after chaining — then the abort
    /// reuses that ticket, filling the chain hole the failed commit left
    /// (recovery treats an abort at a `prev` link as a valid, dead link).
    /// The `failed_commits` entry is only consumed once the abort record
    /// actually appended ([`SegmentedWal::consume_failed_commit`]): a
    /// failed compensating abort leaves the entry for the next attempt,
    /// instead of leaving a permanent chain hole.
    fn abort_ticket(&self, txn: u64) -> (u64, bool) {
        let reused = self
            .failed_commits
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner)
            .get(&txn)
            .copied();
        match reused {
            Some(seq) => (seq, true),
            None => (self.reserve(), false),
        }
    }

    /// Clear a reused failed-commit ticket after its repair record hit
    /// the log.
    fn consume_failed_commit(&self, txn: u64, reused: bool) {
        if reused {
            self.failed_commits
                .lock()
                .unwrap_or_else(std::sync::PoisonError::into_inner)
                .remove(&txn);
        }
    }

    /// The ack barrier: block until every chain predecessor of the commit
    /// reserved as `(prev → seq)` is settled, then settle `seq` itself.
    /// Called after the commit record reached its configured durability
    /// (or after its append failed — a dead ticket settles too, so
    /// successors never hang). This is what aligns *acknowledgement*
    /// order with chain order: without it, a commit on a fast stripe
    /// could be acknowledged while its chain predecessor on a slow
    /// stripe was still buffered, and a crash in that window would make
    /// recovery's chain walk discard an acknowledged commit.
    fn settle_chain(&self, prev: u64, seq: u64) {
        let mut settled =
            self.chain_settled.lock().unwrap_or_else(std::sync::PoisonError::into_inner);
        while *settled < prev {
            settled = self
                .chain_settled_cv
                .wait(settled)
                .unwrap_or_else(std::sync::PoisonError::into_inner);
        }
        *settled = (*settled).max(seq);
        drop(settled);
        self.chain_settled_cv.notify_all();
    }

    /// Durably log that `txn` committed at `ts`: the transaction's op
    /// stripes are settled first (write-ahead across stripes), then the
    /// commit record — carrying the op count — is appended and synced per
    /// the configured durability, group-committed per stripe under
    /// `Fsync`. Returns only once the record is as durable as the level
    /// requires.
    pub fn commit_txn(&self, txn: u64, ts: u64) -> Result<(), StorageError> {
        let track = self.lock_txns().remove(&txn).unwrap_or_default();
        // A single-op-stripe transaction commits *on its op stripe*: the
        // ops are physically earlier in the same file, so the one group
        // sync covers both and no cross-stripe settle is needed.
        let home = if track.op_stripes.count_ones() == 1 {
            track.op_stripes.trailing_zeros() as usize
        } else {
            self.stripe_for_txn(txn)
        };
        let mut settle_mask = track.op_stripes & !(1 << home);
        while settle_mask != 0 {
            let s = settle_mask.trailing_zeros() as usize;
            settle_mask &= settle_mask - 1;
            if let Err(e) = self.stripes[s].settle(self.opts.durability, self.opts.group_commit) {
                // No chain ticket was reserved yet; just restore the
                // tracking entry so the caller's compensating abort can
                // unpin the op stripes (a lost pin would clamp compaction
                // on those stripes forever).
                self.lock_txns().insert(txn, track);
                return Err(e);
            }
        }
        // Reserve the ticket and link the chain in one atomic step: the
        // chain order is the ack-dependency order (a commit acknowledged
        // before another executed is chained before it), which is what
        // lets recovery treat a chain hole as "discard this and every
        // later commit".
        let (seq, prev) = {
            let mut chain = self.chain.lock().unwrap_or_else(std::sync::PoisonError::into_inner);
            let seq = self.reserve();
            let prev = *chain;
            *chain = seq;
            (seq, prev)
        };
        let rec = LogRecord::Commit { txn, ts, ops: track.ops, prev };
        if let Err(e) = self.stripes[home].commit(&rec, seq, &self.opts) {
            // The chain now names a ticket that may never reach disk.
            // Before settling it (successors ack once their predecessors
            // are settled), repair the slot *durably*: a dead link must be
            // at least as durable as the commits that will chain past it,
            // or a crash could open a hole under acknowledged successors.
            // If even the repair fails, remember the ticket for the
            // caller's compensating durable abort and settle anyway —
            // blocking every later commit on a sick stripe helps nobody,
            // and the caller reports the outcome as indeterminate.
            let repair = LogRecord::Abort { txn };
            if self.stripes[home].commit(&repair, seq, &self.opts).is_err() {
                self.failed_commits
                    .lock()
                    .unwrap_or_else(std::sync::PoisonError::into_inner)
                    .insert(txn, seq);
            }
            self.lock_txns().insert(txn, track);
            self.settle_chain(prev, seq);
            return Err(e);
        }
        // Acknowledge only in chain order: our record is durable, but the
        // ack must additionally wait for every chained predecessor (its
        // fsync runs concurrently on its own stripe), or a crash after
        // this return could lose a predecessor recovery needs to accept
        // this commit.
        self.settle_chain(prev, seq);
        let home_bit = 1u64 << home;
        let begin_bit = 1u64 << self.stripe_for_txn(txn);
        self.unpin_live(txn, (track.op_stripes | home_bit | begin_bit) & !home_bit);
        Ok(())
    }

    /// Pop a transaction's tracking entry, returning its home stripe and
    /// dirty mask (for completion records that are not commits).
    fn finish_txn(&self, txn: u64) -> (usize, u64) {
        let track = self.lock_txns().remove(&txn).unwrap_or_default();
        (self.stripe_for_txn(txn), track.op_stripes)
    }

    /// Remove `txn`'s live-low pins on every stripe in `mask` (the stripe
    /// that appended the completion record already removed its own).
    fn unpin_live(&self, txn: u64, mut mask: u64) {
        while mask != 0 {
            let s = mask.trailing_zeros() as usize;
            mask &= mask - 1;
            if let Some(stripe) = self.stripes.get(s) {
                stripe.lock_inner().live_low.remove(&txn);
            }
        }
    }

    /// Flush every stripe's buffer and fsync its active segment.
    pub fn sync(&self) -> Result<(), StorageError> {
        for stripe in &self.stripes {
            let file = {
                let mut inner = stripe.lock_inner();
                Stripe::flush_locked(&mut inner)?;
                inner.file.clone()
            };
            file.sync_data()?;
        }
        Ok(())
    }

    /// The active segment index of one stripe.
    pub fn current_segment(&self, stripe: usize) -> u64 {
        self.stripes[stripe].lock_inner().seg_index
    }

    /// The fuzzy-checkpoint cut vector: for each stripe, the highest
    /// segment index that may be pruned up to (exclusive) once the
    /// checkpoint's snapshots are durable — the active segment, clamped
    /// below any segment still holding records of an incomplete
    /// transaction. Must be taken while commits are quiesced (the
    /// manager's brief exclusive gate): every commit at or below the
    /// checkpoint watermark is then fully appended, and every record of a
    /// *later* commit is either pinned here (its transaction is still
    /// live) or will be appended at or above the cut.
    pub fn checkpoint_cuts(&self) -> Vec<u64> {
        self.stripes
            .iter()
            .map(|s| {
                let inner = s.lock_inner();
                let pin = inner.live_low.values().min().copied().unwrap_or(u64::MAX);
                inner.seg_index.min(pin)
            })
            .collect()
    }

    /// Current aggregate statistics for the compaction policy.
    pub fn stats(&self) -> crate::policy::LogStats {
        let mut out = crate::policy::LogStats::default();
        for stripe in &self.stripes {
            let inner = stripe.lock_inner();
            out.commits_since_checkpoint += inner.commits_since_ckpt;
            out.records_since_checkpoint += inner.records_since_ckpt;
            out.bytes_since_checkpoint += inner.bytes_since_ckpt;
            out.bytes_at_last_checkpoint += inner.bytes_at_last_ckpt;
            out.total_bytes += inner.total_bytes;
            out.segments += inner.segments;
        }
        out
    }

    /// Reset the policy counters after a checkpoint.
    pub fn mark_checkpoint(&self) {
        for stripe in &self.stripes {
            let mut inner = stripe.lock_inner();
            inner.commits_since_ckpt = 0;
            inner.records_since_ckpt = 0;
            inner.bytes_since_ckpt = 0;
            inner.bytes_at_last_ckpt = inner.total_bytes;
        }
    }

    /// Delete, per stripe, every segment with index `< cuts[stripe]`,
    /// clamped so segments still referenced by incomplete transactions
    /// survive. Returns the number of segments deleted.
    pub fn prune_segments(&self, cuts: &[u64]) -> Result<u64, StorageError> {
        let mut deleted = 0;
        for (i, stripe) in self.stripes.iter().enumerate() {
            let upto = cuts.get(i).copied().unwrap_or(0);
            let mut inner = stripe.lock_inner();
            let bound = inner.live_low.values().min().copied().unwrap_or(u64::MAX).min(upto);
            for (idx, path) in list_segments(&stripe.dir)? {
                if idx >= bound || idx == inner.seg_index {
                    continue;
                }
                let len = fs::metadata(&path).map(|m| m.len()).unwrap_or(0);
                fs::remove_file(&path)?;
                inner.total_bytes = inner.total_bytes.saturating_sub(len);
                inner.segments = inner.segments.saturating_sub(1);
                deleted += 1;
            }
        }
        Ok(deleted)
    }
}

impl Drop for SegmentedWal {
    /// Orderly close: push every stripe's buffer to the OS so only a real
    /// crash — not a clean shutdown — can lose `Durability::None` records.
    fn drop(&mut self) {
        for stripe in &self.stripes {
            let mut inner = stripe.lock_inner();
            let _ = Stripe::flush_locked(&mut inner);
        }
    }
}

/// What a reopening store learns from its cheap metadata scan.
#[derive(Clone, Debug, Default)]
pub struct OpenScan {
    /// Highest commit timestamp in the surviving log.
    pub last_ts: u64,
    /// Highest transaction id in the surviving log.
    pub max_txn: u64,
    /// Highest ticket in the surviving log.
    pub max_seq: u64,
    /// Highest ticket carried by a commit record (the chain anchor).
    pub max_commit_seq: u64,
    /// Object registry bindings (`id`, `name`), in ticket order.
    pub registrations: Vec<(u64, String)>,
}

impl OpenScan {
    /// Fold the recovery watermarks (highest commit timestamp,
    /// transaction id, and ticket) and the object registry bindings out
    /// of an already-decoded, ticket-sorted record image — the seeding
    /// half of the single open-time pass ([`read_records`] is the read
    /// half; the image itself is retained for recovery).
    pub fn from_records(records: &[(u64, LogRecord)]) -> OpenScan {
        let mut scan = OpenScan::default();
        for (seq, rec) in records {
            scan.max_seq = scan.max_seq.max(*seq);
            match rec {
                LogRecord::Begin { txn } | LogRecord::Abort { txn } | LogRecord::Op { txn, .. } => {
                    scan.max_txn = scan.max_txn.max(*txn);
                }
                LogRecord::Commit { txn, ts, .. } => {
                    scan.max_txn = scan.max_txn.max(*txn);
                    scan.last_ts = scan.last_ts.max(*ts);
                    scan.max_commit_seq = scan.max_commit_seq.max(*seq);
                }
                LogRecord::Register { id, name } => {
                    // Records arrive ticket-sorted, so bindings land in
                    // ticket order.
                    scan.registrations.push((*id, name.clone()));
                }
            }
        }
        scan
    }
}

/// Read every record from every stripe under `dir`, merged into the
/// global ticket order. A torn or corrupt frame in a stripe's **final**
/// segment truncates that stripe's scan there (crash tail); the same
/// anywhere else is reported as corruption. Returns `(seq, record)`
/// pairs, ticket-sorted, and whether any stripe dropped a torn tail.
pub fn read_records(dir: &Path) -> Result<(Vec<(u64, LogRecord)>, bool), StorageError> {
    let mut out = Vec::new();
    let mut torn = false;
    for (_, sdir) in stripe_dirs(dir)? {
        let segments = list_segments(&sdir)?;
        let last_index = segments.last().map(|(i, _)| *i);
        for (index, path) in &segments {
            let bytes = fs::read(path)?;
            let (records, err) = record::decode_all(&bytes);
            out.extend(records);
            match err {
                None => {}
                Some(FrameError::Truncated) if bytes.is_empty() => {}
                Some(e) => {
                    if Some(*index) == last_index {
                        torn = true;
                    } else {
                        return Err(StorageError::Corrupt {
                            segment: *index,
                            detail: format!("{e:?} in non-final segment"),
                        });
                    }
                }
            }
        }
    }
    // The deterministic merge: tickets are globally unique and allocated
    // in execution order wherever an order matters (per object, per
    // transaction), so sorting on them reconstructs one replayable
    // history no matter how appends interleaved across stripes.
    out.sort_by_key(|(seq, _)| *seq);
    Ok((out, torn))
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    fn tmp(name: &str) -> PathBuf {
        static N: AtomicU64 = AtomicU64::new(0);
        let mut p = std::env::temp_dir();
        p.push(format!(
            "hcc-wal-{}-{}-{}",
            std::process::id(),
            name,
            N.fetch_add(1, Ordering::Relaxed)
        ));
        let _ = fs::remove_dir_all(&p);
        p
    }

    fn opts() -> WalOptions {
        WalOptions {
            segment_max_bytes: 256,
            durability: Durability::Fsync,
            group_commit: true,
            stripes: 1,
        }
    }

    fn striped(n: usize) -> WalOptions {
        WalOptions { stripes: n, ..opts() }
    }

    fn plain_records(dir: &Path) -> Vec<LogRecord> {
        read_records(dir).unwrap().0.into_iter().map(|(_, r)| r).collect()
    }

    #[test]
    fn append_commit_read_roundtrip() {
        let dir = tmp("roundtrip");
        let wal = SegmentedWal::open(&dir, opts()).unwrap();
        wal.append_begin(1).unwrap();
        wal.append_op(wal.reserve(), 1, 1, &[1, 2, 3]).unwrap();
        wal.commit_txn(1, 9).unwrap();
        drop(wal);
        let (recs, torn) = read_records(&dir).unwrap();
        assert!(!torn);
        assert_eq!(recs.len(), 3);
        assert!(matches!(recs[2].1, LogRecord::Commit { txn: 1, ts: 9, ops: 1, .. }));
    }

    #[test]
    fn rotation_spreads_records_over_segments() {
        let dir = tmp("rotate");
        let wal = SegmentedWal::open(&dir, opts()).unwrap();
        for i in 0..100 {
            wal.append_op(wal.reserve(), i, 1, &[0u8; 32]).unwrap();
            wal.commit_txn(i, i + 1).unwrap();
        }
        let segments = list_segments(&stripe_dirs(&dir).unwrap()[0].1).unwrap();
        assert!(segments.len() > 2, "expected rotation, got {} segments", segments.len());
        let (recs, _) = read_records(&dir).unwrap();
        assert_eq!(recs.len(), 200, "no records lost across rotations");
    }

    #[test]
    fn striped_appends_route_by_object_and_merge_by_ticket() {
        let dir = tmp("striped");
        let wal = SegmentedWal::open(&dir, striped(4)).unwrap();
        // Ops on four objects, interleaved; each object sticks to one
        // stripe, and the merged read reconstructs global ticket order.
        for i in 0..40u64 {
            let obj = i % 4 + 1;
            wal.append_op(wal.reserve(), i + 1, obj, &[i as u8; 8]).unwrap();
            wal.commit_txn(i + 1, i + 1).unwrap();
        }
        drop(wal);
        let dirs = stripe_dirs(&dir).unwrap();
        assert_eq!(dirs.len(), 4);
        for (_, sdir) in &dirs {
            assert!(!list_segments(sdir).unwrap().is_empty(), "every stripe got records");
        }
        let (recs, torn) = read_records(&dir).unwrap();
        assert!(!torn);
        let seqs: Vec<u64> = recs.iter().map(|(s, _)| *s).collect();
        let mut sorted = seqs.clone();
        sorted.sort();
        assert_eq!(seqs, sorted, "merge is ticket-ordered");
        assert_eq!(recs.len(), 80);
    }

    #[test]
    fn single_op_stripe_commit_lands_with_its_ops() {
        let dir = tmp("affine-commit");
        let wal = SegmentedWal::open(&dir, striped(4)).unwrap();
        // txn 1 (home stripe 1) touches only object 3 (stripe 3): the
        // commit record must land on stripe 3 so one fsync covers both.
        wal.append_op(wal.reserve(), 1, 3, &[7; 4]).unwrap();
        wal.commit_txn(1, 5).unwrap();
        drop(wal);
        let sdir = stripe_dir(&dir, 3);
        let bytes = fs::read(&list_segments(&sdir).unwrap()[0].1).unwrap();
        let (recs, err) = record::decode_all(&bytes);
        assert_eq!(err, None);
        let kinds: Vec<&LogRecord> = recs.iter().map(|(_, r)| r).collect();
        assert!(matches!(kinds[0], LogRecord::Op { txn: 1, obj: 3, .. }));
        assert!(matches!(kinds[1], LogRecord::Commit { txn: 1, ts: 5, ops: 1, .. }));
    }

    #[test]
    fn torn_tail_in_final_segment_is_tolerated() {
        let dir = tmp("torn");
        let wal = SegmentedWal::open(&dir, opts()).unwrap();
        wal.commit_txn(1, 1).unwrap();
        let seg = wal.current_segment(0);
        drop(wal);
        let sdir = stripe_dir(&dir, 0);
        let mut f = OpenOptions::new().append(true).open(segment_path(&sdir, seg)).unwrap();
        f.write_all(&[0x55; 7]).unwrap(); // half a header
        drop(f);
        let (recs, torn) = read_records(&dir).unwrap();
        assert!(torn);
        assert!(matches!(
            recs.into_iter().map(|(_, r)| r).collect::<Vec<_>>()[..],
            [LogRecord::Commit { txn: 1, ts: 1, ops: 0, .. }]
        ));
    }

    #[test]
    fn each_stripe_truncates_its_own_torn_tail() {
        let dir = tmp("torn-striped");
        let wal = SegmentedWal::open(&dir, striped(3)).unwrap();
        for obj in 1..=3u64 {
            wal.append_op(wal.reserve(), obj, obj, &[obj as u8; 8]).unwrap();
            wal.commit_txn(obj, obj).unwrap();
        }
        drop(wal);
        // Garbage on the tail of every stripe.
        for (_, sdir) in stripe_dirs(&dir).unwrap() {
            let last = list_segments(&sdir).unwrap().pop().unwrap().1;
            let mut f = OpenOptions::new().append(true).open(&last).unwrap();
            f.write_all(&[0xAA; 9]).unwrap();
        }
        let (recs, torn) = read_records(&dir).unwrap();
        assert!(torn);
        assert_eq!(recs.len(), 6, "all real records survive, all garbage dropped");
        // Reopening repairs every stripe so new commits are not orphaned.
        let wal = SegmentedWal::open(&dir, striped(3)).unwrap();
        wal.commit_txn(9, 9).unwrap();
        drop(wal);
        let (recs, torn) = read_records(&dir).unwrap();
        assert!(!torn, "open() must have repaired every stripe");
        assert_eq!(recs.len(), 7);
    }

    #[test]
    fn corruption_in_middle_segment_is_an_error() {
        let dir = tmp("corrupt-mid");
        let wal = SegmentedWal::open(&dir, opts()).unwrap();
        for i in 0..50 {
            wal.append_op(wal.reserve(), i, 1, &[0u8; 32]).unwrap();
            wal.commit_txn(i, i + 1).unwrap();
        }
        drop(wal);
        let sdir = stripe_dir(&dir, 0);
        let segments = list_segments(&sdir).unwrap();
        assert!(segments.len() >= 3);
        // Damage a byte in the middle of the first segment.
        let victim = &segments[0].1;
        let mut bytes = fs::read(victim).unwrap();
        let mid = bytes.len() / 2;
        bytes[mid] ^= 0xFF;
        fs::write(victim, &bytes).unwrap();
        match read_records(&dir) {
            Err(StorageError::Corrupt { segment, .. }) => assert_eq!(segment, segments[0].0),
            other => panic!("expected corruption error, got {other:?}"),
        }
    }

    #[test]
    fn reopen_truncates_torn_tail_so_new_commits_survive() {
        let dir = tmp("reopen-torn");
        {
            let wal = SegmentedWal::open(&dir, opts()).unwrap();
            wal.commit_txn(1, 1).unwrap();
        }
        // Crash tail: half a frame after the acknowledged commit.
        let sdir = stripe_dir(&dir, 0);
        let last = list_segments(&sdir).unwrap().pop().unwrap().1;
        {
            let mut f = OpenOptions::new().append(true).open(&last).unwrap();
            f.write_all(&[0x55; 5]).unwrap();
        }
        // Reopen and acknowledge another commit: it must not be appended
        // after the garbage (recovery would stop at the tear and lose it).
        {
            let wal = SegmentedWal::open(&dir, opts()).unwrap();
            wal.commit_txn(2, 2).unwrap();
        }
        let (recs, torn) = read_records(&dir).unwrap();
        assert!(!torn, "open() must have repaired the tear");
        let plain: Vec<LogRecord> = recs.into_iter().map(|(_, r)| r).collect();
        assert!(
            matches!(
                plain[..],
                [
                    LogRecord::Commit { txn: 1, ts: 1, ops: 0, .. },
                    LogRecord::Commit { txn: 2, ts: 2, ops: 0, prev: 1 }
                ]
            ),
            "both acknowledged commits must survive, chained: {plain:?}"
        );
    }

    #[test]
    fn reopen_reanchors_tickets_above_survivors() {
        let dir = tmp("reopen-ticket");
        {
            let wal = SegmentedWal::open(&dir, striped(2)).unwrap();
            for i in 1..=10u64 {
                wal.append_op(wal.reserve(), i, i % 2, &[1; 4]).unwrap();
                wal.commit_txn(i, i).unwrap();
            }
        }
        let wal = SegmentedWal::open(&dir, striped(2)).unwrap();
        let next = wal.reserve();
        assert!(next > 20, "tickets resume above every surviving record, got {next}");
    }

    #[test]
    fn reopen_appends_after_existing_segments() {
        let dir = tmp("reopen");
        {
            let wal = SegmentedWal::open(&dir, opts()).unwrap();
            wal.commit_txn(1, 1).unwrap();
        }
        {
            let wal = SegmentedWal::open(&dir, opts()).unwrap();
            wal.commit_txn(2, 2).unwrap();
        }
        let (recs, _) = read_records(&dir).unwrap();
        assert_eq!(recs.len(), 2);
    }

    #[test]
    fn group_commit_from_many_threads_loses_nothing() {
        for stripes in [1usize, 4] {
            let dir = tmp("group");
            let wal = Arc::new(
                SegmentedWal::open(
                    &dir,
                    WalOptions { segment_max_bytes: 1 << 20, ..striped(stripes) },
                )
                .unwrap(),
            );
            let threads = 8;
            let per = 50;
            let mut joins = Vec::new();
            for t in 0..threads {
                let wal = wal.clone();
                joins.push(std::thread::spawn(move || {
                    for i in 0..per {
                        let txn = t * per + i + 1;
                        wal.append_begin(txn).unwrap();
                        wal.append_op(wal.reserve(), txn, txn % 7, &[3; 16]).unwrap();
                        wal.commit_txn(txn, txn).unwrap();
                    }
                }));
            }
            for j in joins {
                j.join().unwrap();
            }
            drop(wal);
            let (recs, torn) = read_records(&dir).unwrap();
            assert!(!torn);
            let commits =
                recs.iter().filter(|(_, r)| matches!(r, LogRecord::Commit { .. })).count();
            assert_eq!(commits as u64, threads * per, "stripes={stripes}");
        }
    }

    #[test]
    fn prune_respects_live_transactions() {
        let dir = tmp("prune");
        let wal = SegmentedWal::open(&dir, opts()).unwrap();
        // Txn 999 begins early and stays incomplete.
        wal.append_begin(999).unwrap();
        wal.append_op(wal.reserve(), 999, 1, &[0; 16]).unwrap();
        for i in 0..50 {
            wal.append_op(wal.reserve(), i, 1, &[0u8; 32]).unwrap();
            wal.commit_txn(i, i + 1).unwrap();
        }
        let current = wal.current_segment(0);
        assert!(current > 2);
        let sdir = stripe_dir(&dir, 0);
        // Pruning everything below the current segment must keep segment 1
        // (txn 999's records live there).
        wal.prune_segments(&[current]).unwrap();
        let remaining = list_segments(&sdir).unwrap();
        assert_eq!(remaining.first().unwrap().0, 1, "live txn pinned segment 1");
        // Completing the transaction unpins it.
        wal.append_abort(999).unwrap();
        wal.prune_segments(&[current]).unwrap();
        let remaining = list_segments(&sdir).unwrap();
        assert!(remaining.first().unwrap().0 >= current.min(wal.current_segment(0)));
    }

    #[test]
    fn checkpoint_cuts_pin_live_transactions_per_stripe() {
        let dir = tmp("cuts");
        let wal = SegmentedWal::open(&dir, striped(2)).unwrap();
        // A live txn on stripe 0 (object 0); churn on stripe 1 (object 1).
        wal.append_op(wal.reserve(), 77, 0, &[0; 32]).unwrap();
        for i in 0..40 {
            wal.append_op(wal.reserve(), i + 100, 1, &[0u8; 32]).unwrap();
            wal.commit_txn(i + 100, i + 1).unwrap();
        }
        let cuts = wal.checkpoint_cuts();
        assert_eq!(cuts.len(), 2);
        assert_eq!(cuts[0], 1, "live txn pins stripe 0's cut to its first segment");
        assert!(cuts[1] > 1, "stripe 1's cut advanced with its churn");
    }

    #[test]
    fn stats_track_appends_and_checkpoint_reset() {
        let dir = tmp("stats");
        let wal = SegmentedWal::open(&dir, opts()).unwrap();
        wal.append_begin(1).unwrap();
        wal.commit_txn(1, 1).unwrap();
        let s = wal.stats();
        assert_eq!(s.records_since_checkpoint, 2);
        assert_eq!(s.commits_since_checkpoint, 1);
        assert!(s.bytes_since_checkpoint > 0);
        wal.mark_checkpoint();
        let s = wal.stats();
        assert_eq!(s.records_since_checkpoint, 0);
        assert_eq!(s.bytes_at_last_checkpoint, s.total_bytes);
    }

    /// Cutting one stripe's unflushed tail loses a *suffix* of that
    /// stripe only; the merged read keeps every record of the other
    /// stripes — the per-object prefix property striped recovery relies
    /// on.
    #[test]
    fn tail_cut_on_one_stripe_is_a_per_stripe_suffix_loss() {
        let dir = tmp("suffix");
        let wal = SegmentedWal::open(&dir, WalOptions { segment_max_bytes: 1 << 20, ..striped(2) })
            .unwrap();
        for i in 1..=10u64 {
            wal.append_op(wal.reserve(), i, i % 2, &[9; 8]).unwrap();
            wal.commit_txn(i, i).unwrap();
        }
        drop(wal);
        // Chop bytes off stripe 1's tail only.
        let sdir = stripe_dir(&dir, 1);
        let last = list_segments(&sdir).unwrap().pop().unwrap().1;
        let len = fs::metadata(&last).unwrap().len();
        // Deep enough to take whole frames off stripe 1, not just tear
        // the final one.
        OpenOptions::new().write(true).open(&last).unwrap().set_len(len - 100).unwrap();
        let (recs, _) = read_records(&dir).unwrap();
        let stripe0: Vec<&LogRecord> = recs
            .iter()
            .filter(|(_, r)| matches!(r, LogRecord::Op { obj, .. } if obj % 2 == 0))
            .map(|(_, r)| r)
            .collect();
        assert_eq!(stripe0.len(), 5, "stripe 0 lost nothing");
        let plain = plain_records(&dir);
        let odd_ops =
            plain.iter().filter(|r| matches!(r, LogRecord::Op { obj, .. } if obj % 2 == 1)).count();
        assert!(odd_ops < 5, "stripe 1 lost a suffix");
    }
}
