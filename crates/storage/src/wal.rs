//! The segmented write-ahead log: append path, durability levels, leader-
//! based group commit, segment rotation, and torn-tail-tolerant scanning.
//!
//! ## Group commit
//!
//! Concurrent committers do not each pay an fsync. A committer appends and
//! flushes its completion record (sequence number `S`), then joins the sync
//! protocol: if a sync is already running it waits; otherwise it becomes
//! the *leader*, snapshots the highest flushed sequence number `H`, fsyncs
//! once, publishes `synced ≥ H`, and wakes everyone. Commits that arrive
//! while a sync is in flight batch up behind it and are covered by the next
//! leader — one fsync per *batch*, not per commit, with no timer and no
//! added latency on an idle log.
//!
//! ## Rotation
//!
//! A segment that exceeds `segment_max_bytes` is finished: flushed, fsynced
//! (so earlier records can never be less durable than later ones), and a
//! new segment file is opened. Whole dead segments are deleted by
//! checkpointing (see `store`).

use crate::record::{self, FrameError, LogRecord};
use crate::StorageError;
use hcc_core::runtime::Durability;
use std::collections::HashMap;
use std::fs::{self, File, OpenOptions};
use std::io::Write;
use std::path::{Path, PathBuf};
use std::sync::{Arc, Condvar, Mutex};

/// Flush threshold for `Durability::None` (bounds process-buffer growth).
const NONE_FLUSH_BYTES: usize = 64 * 1024;

/// Construction options for [`SegmentedWal`].
#[derive(Clone, Copy, Debug)]
pub struct WalOptions {
    /// Rotate to a fresh segment once the active one exceeds this size.
    pub segment_max_bytes: u64,
    /// How durable completion records must be before `commit` returns.
    pub durability: Durability,
    /// Batch concurrent fsyncs (leader-based group commit). Disabling this
    /// gives the classical one-fsync-per-commit discipline — kept for
    /// comparison benchmarks.
    pub group_commit: bool,
}

impl Default for WalOptions {
    fn default() -> Self {
        WalOptions {
            segment_max_bytes: 4 * 1024 * 1024,
            durability: Durability::Fsync,
            group_commit: true,
        }
    }
}

struct Inner {
    file: Arc<File>,
    seg_index: u64,
    seg_bytes: u64,
    /// Process-local buffer of encoded-but-unwritten records.
    buf: Vec<u8>,
    /// Sequence number of the next record to append (strictly monotone,
    /// never reset by rotation).
    next_seq: u64,
    /// Lowest segment holding records of each incomplete transaction.
    live_low: HashMap<u64, u64>,
    // ---- statistics for the compaction policy -------------------------
    commits_since_ckpt: u64,
    records_since_ckpt: u64,
    bytes_since_ckpt: u64,
    bytes_at_last_ckpt: u64,
    total_bytes: u64,
    segments: u64,
}

struct SyncState {
    /// Highest sequence number known durable.
    synced_seq: u64,
    /// Is a leader currently fsyncing?
    sync_running: bool,
    /// Highest sequence number any committer is waiting on. The leader
    /// stays hot — fsyncing round after round — until it has covered this,
    /// so no fsync-to-fsync handoff latency is paid while commits queue.
    max_requested: u64,
}

/// A segmented, CRC-framed, group-committing write-ahead log.
pub struct SegmentedWal {
    dir: PathBuf,
    opts: WalOptions,
    inner: Mutex<Inner>,
    sync_state: Mutex<SyncState>,
    sync_cv: Condvar,
}

/// `seg-00000042.wal`
fn segment_path(dir: &Path, index: u64) -> PathBuf {
    dir.join(format!("seg-{index:08}.wal"))
}

/// Fsync the log directory itself, making freshly created (or renamed)
/// segment files durable *as directory entries*. Without this, a crash
/// after segment creation/rotation can lose the new file entirely — the
/// records inside were fsynced, but the name pointing at them was not —
/// which recovery sees as a hole in the log (checkpoint files already get
/// the same treatment from `Checkpoint::save`).
fn sync_dir(dir: &Path) -> std::io::Result<()> {
    File::open(dir)?.sync_all()
}

/// All segment files under `dir`, sorted by index.
pub fn list_segments(dir: &Path) -> std::io::Result<Vec<(u64, PathBuf)>> {
    let mut out = Vec::new();
    let entries = match fs::read_dir(dir) {
        Ok(e) => e,
        Err(e) if e.kind() == std::io::ErrorKind::NotFound => return Ok(out),
        Err(e) => return Err(e),
    };
    for entry in entries {
        let entry = entry?;
        let name = entry.file_name();
        let name = name.to_string_lossy();
        if let Some(idx) = name.strip_prefix("seg-").and_then(|s| s.strip_suffix(".wal")) {
            if let Ok(index) = idx.parse::<u64>() {
                out.push((index, entry.path()));
            }
        }
    }
    out.sort();
    Ok(out)
}

impl SegmentedWal {
    /// Open the log in `dir` (created if missing), appending to the highest
    /// existing segment or starting segment 1.
    pub fn open(dir: impl AsRef<Path>, opts: WalOptions) -> Result<SegmentedWal, StorageError> {
        let dir = dir.as_ref().to_path_buf();
        fs::create_dir_all(&dir)?;
        let segments = list_segments(&dir)?;
        let mut total_bytes: u64 =
            segments.iter().map(|(_, p)| fs::metadata(p).map(|m| m.len()).unwrap_or(0)).sum();
        let (seg_index, seg_bytes) = match segments.last() {
            Some((idx, path)) => {
                // A crash can leave half a frame at the tail. Appending
                // after it would orphan every subsequent record (scans stop
                // at the first bad frame), losing acknowledged commits — so
                // truncate the active segment back to the last valid frame
                // boundary before appending.
                let bytes = fs::read(path)?;
                let mut valid = 0usize;
                while valid < bytes.len() {
                    match record::decode_meta_at(&bytes, valid) {
                        Ok((_, next)) => valid = next,
                        Err(_) => break,
                    }
                }
                if valid < bytes.len() {
                    let f = OpenOptions::new().write(true).open(path)?;
                    f.set_len(valid as u64)?;
                    f.sync_data()?;
                    total_bytes -= (bytes.len() - valid) as u64;
                }
                (*idx, valid as u64)
            }
            None => (1, 0),
        };
        let seg_file = segment_path(&dir, seg_index);
        let created = !seg_file.exists();
        let file = OpenOptions::new().create(true).append(true).open(&seg_file)?;
        if created {
            sync_dir(&dir)?;
        }
        let n_segments = segments.len().max(1) as u64;
        Ok(SegmentedWal {
            dir,
            opts,
            inner: Mutex::new(Inner {
                file: Arc::new(file),
                seg_index,
                seg_bytes,
                buf: Vec::new(),
                next_seq: 1,
                live_low: HashMap::new(),
                commits_since_ckpt: 0,
                records_since_ckpt: 0,
                bytes_since_ckpt: 0,
                bytes_at_last_ckpt: total_bytes,
                total_bytes: total_bytes.max(seg_bytes),
                segments: n_segments,
            }),
            sync_state: Mutex::new(SyncState {
                synced_seq: 0,
                sync_running: false,
                max_requested: 0,
            }),
            sync_cv: Condvar::new(),
        })
    }

    /// The log directory.
    pub fn dir(&self) -> &Path {
        &self.dir
    }

    /// The active segment's index.
    pub fn current_segment(&self) -> u64 {
        self.lock_inner().seg_index
    }

    fn lock_inner(&self) -> std::sync::MutexGuard<'_, Inner> {
        self.inner.lock().unwrap_or_else(std::sync::PoisonError::into_inner)
    }

    fn lock_sync(&self) -> std::sync::MutexGuard<'_, SyncState> {
        self.sync_state.lock().unwrap_or_else(std::sync::PoisonError::into_inner)
    }

    /// Write the process buffer to the OS.
    fn flush_locked(inner: &mut Inner) -> std::io::Result<()> {
        if !inner.buf.is_empty() {
            (&*inner.file).write_all(&inner.buf)?;
            inner.buf.clear();
        }
        Ok(())
    }

    /// Finish the active segment (flush + fsync) and open the next one.
    /// Everything written so far becomes durable, so `synced_seq` advances.
    fn rotate_locked(&self, inner: &mut Inner) -> std::io::Result<()> {
        Self::flush_locked(inner)?;
        inner.file.sync_data()?;
        let durable_seq = inner.next_seq - 1;
        inner.seg_index += 1;
        inner.segments += 1;
        inner.seg_bytes = 0;
        inner.file = Arc::new(
            OpenOptions::new()
                .create(true)
                .append(true)
                .open(segment_path(&self.dir, inner.seg_index))?,
        );
        // The new segment file must survive a crash as a directory entry,
        // or recovery finds records referencing a segment that vanished.
        sync_dir(&self.dir)?;
        let mut s = self.lock_sync();
        s.synced_seq = s.synced_seq.max(durable_seq);
        drop(s);
        self.sync_cv.notify_all();
        Ok(())
    }

    /// Encode and append one record; returns its sequence number.
    fn append_locked(&self, inner: &mut Inner, rec: &LogRecord) -> std::io::Result<u64> {
        if inner.seg_bytes >= self.opts.segment_max_bytes {
            self.rotate_locked(inner)?;
        }
        let seq = inner.next_seq;
        inner.next_seq += 1;
        let before = inner.buf.len();
        record::encode_into(rec, &mut inner.buf);
        let encoded = (inner.buf.len() - before) as u64;
        inner.seg_bytes += encoded;
        inner.total_bytes += encoded;
        inner.bytes_since_ckpt += encoded;
        inner.records_since_ckpt += 1;
        match rec {
            LogRecord::Begin { txn } | LogRecord::Op { txn, .. } => {
                let seg = inner.seg_index;
                inner.live_low.entry(*txn).or_insert(seg);
            }
            LogRecord::Commit { txn, .. } => {
                inner.commits_since_ckpt += 1;
                inner.live_low.remove(txn);
            }
            LogRecord::Abort { txn } => {
                inner.live_low.remove(txn);
            }
            LogRecord::Register { .. } => {}
        }
        Ok(seq)
    }

    /// Append a non-completion record (Begin / Op). Buffered according to
    /// the durability level; never fsyncs by itself — the write-ahead
    /// discipline only requires these to reach disk before the *commit*
    /// record does, which the commit path's flush-then-sync guarantees
    /// (the buffer and the file are strictly ordered).
    pub fn append(&self, rec: &LogRecord) -> Result<(), StorageError> {
        let mut inner = self.lock_inner();
        self.append_locked(&mut inner, rec)?;
        match self.opts.durability {
            Durability::None => {
                if inner.buf.len() >= NONE_FLUSH_BYTES {
                    Self::flush_locked(&mut inner)?;
                }
            }
            // Under group commit, op records ride in the process buffer:
            // the sync leader flushes everything before any fsync, so they
            // never need their own write syscall. The classical
            // (non-group) discipline flushes every record, like the
            // legacy line-JSON log.
            Durability::Fsync if self.opts.group_commit => {
                if inner.buf.len() >= NONE_FLUSH_BYTES {
                    Self::flush_locked(&mut inner)?;
                }
            }
            Durability::Buffered | Durability::Fsync => Self::flush_locked(&mut inner)?,
        }
        Ok(())
    }

    /// Append a completion record with the configured durability: under
    /// `Fsync` this blocks until the record is on disk — one fsync per
    /// concurrent batch when group commit is enabled.
    pub fn commit(&self, rec: &LogRecord) -> Result<(), StorageError> {
        debug_assert!(rec.is_completion());
        let mut inner = self.lock_inner();
        let seq = self.append_locked(&mut inner, rec)?;
        match self.opts.durability {
            Durability::None => Ok(()),
            Durability::Buffered => {
                Self::flush_locked(&mut inner)?;
                Ok(())
            }
            Durability::Fsync => {
                if self.opts.group_commit {
                    // No flush here: the sync leader flushes the shared
                    // buffer under the log lock before it snapshots the
                    // high-water mark, so this record is covered by
                    // whichever fsync it waits for.
                    drop(inner);
                    self.group_sync(seq)
                } else {
                    Self::flush_locked(&mut inner)?;
                    // Classical discipline (the legacy `Wal::append_sync`):
                    // the log lock is held across the fsync, serializing
                    // one durable commit at a time.
                    inner.file.sync_data()?;
                    Ok(())
                }
            }
        }
    }

    /// Wait until sequence number `my_seq` is durable, fsyncing as leader
    /// when no sync is in flight. The leader stays hot: as long as some
    /// committer is waiting on a higher sequence number it runs another
    /// flush + fsync round itself, rather than paying a wake-up handoff
    /// between every batch.
    fn group_sync(&self, my_seq: u64) -> Result<(), StorageError> {
        let mut s = self.lock_sync();
        s.max_requested = s.max_requested.max(my_seq);
        loop {
            if s.synced_seq >= my_seq {
                return Ok(());
            }
            if s.sync_running {
                s = self.sync_cv.wait(s).unwrap_or_else(std::sync::PoisonError::into_inner);
                continue;
            }
            // Become the leader.
            s.sync_running = true;
            while s.synced_seq < s.max_requested {
                drop(s);
                // One scheduling breath before snapshotting the high-water
                // mark: committers racing toward the log get into this
                // batch instead of waiting out a whole fsync.
                std::thread::yield_now();
                let outcome: std::io::Result<u64> = (|| {
                    let (high, file) = {
                        let mut inner = self.lock_inner();
                        Self::flush_locked(&mut inner)?;
                        (inner.next_seq - 1, inner.file.clone())
                    };
                    file.sync_data()?;
                    Ok(high)
                })();
                s = self.lock_sync();
                match outcome {
                    Ok(high) => s.synced_seq = s.synced_seq.max(high),
                    Err(e) => {
                        s.sync_running = false;
                        drop(s);
                        self.sync_cv.notify_all();
                        return Err(e.into());
                    }
                }
                self.sync_cv.notify_all();
            }
            s.sync_running = false;
            drop(s);
            self.sync_cv.notify_all();
            return Ok(());
        }
    }

    /// Flush the process buffer and fsync the active segment.
    pub fn sync(&self) -> Result<(), StorageError> {
        let file = {
            let mut inner = self.lock_inner();
            Self::flush_locked(&mut inner)?;
            inner.file.clone()
        };
        file.sync_data()?;
        Ok(())
    }

    /// Finish the active segment and start a new one (checkpoint protocol
    /// step). Returns the index of the *new* active segment.
    pub fn rotate(&self) -> Result<u64, StorageError> {
        let mut inner = self.lock_inner();
        self.rotate_locked(&mut inner)?;
        Ok(inner.seg_index)
    }

    /// Current statistics for the compaction policy.
    pub fn stats(&self) -> crate::policy::LogStats {
        let inner = self.lock_inner();
        crate::policy::LogStats {
            commits_since_checkpoint: inner.commits_since_ckpt,
            records_since_checkpoint: inner.records_since_ckpt,
            bytes_since_checkpoint: inner.bytes_since_ckpt,
            bytes_at_last_checkpoint: inner.bytes_at_last_ckpt,
            total_bytes: inner.total_bytes,
            segments: inner.segments,
        }
    }

    /// Reset the policy counters after a checkpoint.
    pub fn mark_checkpoint(&self) {
        let mut inner = self.lock_inner();
        inner.commits_since_ckpt = 0;
        inner.records_since_ckpt = 0;
        inner.bytes_since_ckpt = 0;
        inner.bytes_at_last_ckpt = inner.total_bytes;
    }

    /// The lowest segment still holding records of an incomplete
    /// transaction (`None` when every logged transaction has completed).
    pub fn min_live_segment(&self) -> Option<u64> {
        self.lock_inner().live_low.values().min().copied()
    }

    /// Delete every segment with index `< upto`, clamped so segments still
    /// referenced by incomplete transactions survive. Returns the number of
    /// segments deleted.
    pub fn prune_segments(&self, upto: u64) -> Result<u64, StorageError> {
        let mut inner = self.lock_inner();
        let bound = inner.live_low.values().min().copied().unwrap_or(u64::MAX).min(upto);
        let mut deleted = 0;
        for (idx, path) in list_segments(&self.dir)? {
            if idx >= bound || idx == inner.seg_index {
                continue;
            }
            let len = fs::metadata(&path).map(|m| m.len()).unwrap_or(0);
            fs::remove_file(&path)?;
            inner.total_bytes = inner.total_bytes.saturating_sub(len);
            inner.segments = inner.segments.saturating_sub(1);
            deleted += 1;
        }
        Ok(deleted)
    }
}

impl Drop for SegmentedWal {
    /// Orderly close: push the process buffer to the OS so only a real
    /// crash — not a clean shutdown — can lose `Durability::None` records.
    fn drop(&mut self) {
        let mut inner = self.lock_inner();
        let _ = Self::flush_locked(&mut inner);
    }
}

/// What a reopening store learns from its cheap metadata scan.
#[derive(Clone, Debug, Default)]
pub struct OpenScan {
    /// Highest commit timestamp in the surviving log.
    pub last_ts: u64,
    /// Highest transaction id in the surviving log.
    pub max_txn: u64,
    /// Object registry bindings (`id`, `name`), in log order.
    pub registrations: Vec<(u64, String)>,
}

/// Fold the recovery watermarks (highest commit timestamp, highest
/// transaction id) and the object registry bindings out of the segments
/// under `dir` without materializing op payloads — the cheap scan a
/// reopening store uses to re-anchor clocks, id allocators, and the
/// name→id registry. Same torn-tail semantics as [`read_records`].
pub fn scan_watermarks(dir: &Path) -> Result<OpenScan, StorageError> {
    let segments = list_segments(dir)?;
    let last_index = segments.last().map(|(i, _)| *i);
    let mut scan = OpenScan::default();
    for (index, path) in &segments {
        let bytes = fs::read(path)?;
        let mut pos = 0usize;
        loop {
            if pos >= bytes.len() {
                break;
            }
            match record::decode_meta_at(&bytes, pos) {
                Ok((meta, next)) => {
                    scan.max_txn = scan.max_txn.max(meta.txn);
                    if let Some(ts) = meta.commit_ts {
                        scan.last_ts = scan.last_ts.max(ts);
                    }
                    if meta.register {
                        // Rare record: a full decode of just this frame.
                        if let Ok((LogRecord::Register { id, name }, _)) =
                            record::decode_at(&bytes, pos)
                        {
                            scan.registrations.push((id, name));
                        }
                    }
                    pos = next;
                }
                Err(e) => {
                    if Some(*index) == last_index {
                        break; // torn tail
                    }
                    return Err(StorageError::Corrupt {
                        segment: *index,
                        detail: format!("{e:?} in non-final segment"),
                    });
                }
            }
        }
    }
    Ok(scan)
}

/// Read every record from the segments under `dir`, in order. A torn or
/// corrupt frame in the **final** segment truncates the scan there (crash
/// tail); the same anywhere else is reported as corruption. Returns the
/// records and whether a torn tail was dropped.
pub fn read_records(dir: &Path) -> Result<(Vec<LogRecord>, bool), StorageError> {
    let segments = list_segments(dir)?;
    let mut out = Vec::new();
    let mut torn = false;
    let last_index = segments.last().map(|(i, _)| *i);
    for (index, path) in &segments {
        let bytes = fs::read(path)?;
        let (records, err) = record::decode_all(&bytes);
        out.extend(records);
        match err {
            None => {}
            Some(FrameError::Truncated) if bytes.is_empty() => {}
            Some(e) => {
                if Some(*index) == last_index {
                    torn = true;
                } else {
                    return Err(StorageError::Corrupt {
                        segment: *index,
                        detail: format!("{e:?} in non-final segment"),
                    });
                }
            }
        }
    }
    Ok((out, torn))
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicU64, Ordering};

    fn tmp(name: &str) -> PathBuf {
        static N: AtomicU64 = AtomicU64::new(0);
        let mut p = std::env::temp_dir();
        p.push(format!(
            "hcc-wal-{}-{}-{}",
            std::process::id(),
            name,
            N.fetch_add(1, Ordering::Relaxed)
        ));
        let _ = fs::remove_dir_all(&p);
        p
    }

    fn opts() -> WalOptions {
        WalOptions { segment_max_bytes: 256, durability: Durability::Fsync, group_commit: true }
    }

    #[test]
    fn append_commit_read_roundtrip() {
        let dir = tmp("roundtrip");
        let wal = SegmentedWal::open(&dir, opts()).unwrap();
        wal.append(&LogRecord::Begin { txn: 1 }).unwrap();
        wal.append(&LogRecord::Op { txn: 1, obj: 1, op: vec![1, 2, 3] }).unwrap();
        wal.commit(&LogRecord::Commit { txn: 1, ts: 9 }).unwrap();
        drop(wal);
        let (recs, torn) = read_records(&dir).unwrap();
        assert!(!torn);
        assert_eq!(recs.len(), 3);
        assert_eq!(recs[2], LogRecord::Commit { txn: 1, ts: 9 });
    }

    #[test]
    fn rotation_spreads_records_over_segments() {
        let dir = tmp("rotate");
        let wal = SegmentedWal::open(&dir, opts()).unwrap();
        for i in 0..100 {
            wal.append(&LogRecord::Op { txn: i, obj: 1, op: vec![0u8; 32] }).unwrap();
            wal.commit(&LogRecord::Commit { txn: i, ts: i + 1 }).unwrap();
        }
        let segments = list_segments(&dir).unwrap();
        assert!(segments.len() > 2, "expected rotation, got {} segments", segments.len());
        let (recs, _) = read_records(&dir).unwrap();
        assert_eq!(recs.len(), 200, "no records lost across rotations");
    }

    #[test]
    fn torn_tail_in_final_segment_is_tolerated() {
        let dir = tmp("torn");
        let wal = SegmentedWal::open(&dir, opts()).unwrap();
        wal.commit(&LogRecord::Commit { txn: 1, ts: 1 }).unwrap();
        let seg = wal.current_segment();
        drop(wal);
        let mut f = OpenOptions::new().append(true).open(segment_path(&dir, seg)).unwrap();
        f.write_all(&[0x55; 7]).unwrap(); // half a header
        drop(f);
        let (recs, torn) = read_records(&dir).unwrap();
        assert!(torn);
        assert_eq!(recs, vec![LogRecord::Commit { txn: 1, ts: 1 }]);
    }

    #[test]
    fn corruption_in_middle_segment_is_an_error() {
        let dir = tmp("corrupt-mid");
        let wal = SegmentedWal::open(&dir, opts()).unwrap();
        for i in 0..50 {
            wal.append(&LogRecord::Op { txn: i, obj: 1, op: vec![0u8; 32] }).unwrap();
            wal.commit(&LogRecord::Commit { txn: i, ts: i + 1 }).unwrap();
        }
        drop(wal);
        let segments = list_segments(&dir).unwrap();
        assert!(segments.len() >= 3);
        // Damage a byte in the middle of the first segment.
        let victim = &segments[0].1;
        let mut bytes = fs::read(victim).unwrap();
        let mid = bytes.len() / 2;
        bytes[mid] ^= 0xFF;
        fs::write(victim, &bytes).unwrap();
        match read_records(&dir) {
            Err(StorageError::Corrupt { segment, .. }) => assert_eq!(segment, segments[0].0),
            other => panic!("expected corruption error, got {other:?}"),
        }
    }

    #[test]
    fn reopen_truncates_torn_tail_so_new_commits_survive() {
        let dir = tmp("reopen-torn");
        {
            let wal = SegmentedWal::open(&dir, opts()).unwrap();
            wal.commit(&LogRecord::Commit { txn: 1, ts: 1 }).unwrap();
        }
        // Crash tail: half a frame after the acknowledged commit.
        let last = list_segments(&dir).unwrap().pop().unwrap().1;
        {
            let mut f = OpenOptions::new().append(true).open(&last).unwrap();
            f.write_all(&[0x55; 5]).unwrap();
        }
        // Reopen and acknowledge another commit: it must not be appended
        // after the garbage (recovery would stop at the tear and lose it).
        {
            let wal = SegmentedWal::open(&dir, opts()).unwrap();
            wal.commit(&LogRecord::Commit { txn: 2, ts: 2 }).unwrap();
        }
        let (recs, torn) = read_records(&dir).unwrap();
        assert!(!torn, "open() must have repaired the tear");
        assert_eq!(
            recs,
            vec![LogRecord::Commit { txn: 1, ts: 1 }, LogRecord::Commit { txn: 2, ts: 2 }],
            "both acknowledged commits must survive"
        );
    }

    #[test]
    fn reopen_appends_after_existing_segments() {
        let dir = tmp("reopen");
        {
            let wal = SegmentedWal::open(&dir, opts()).unwrap();
            wal.commit(&LogRecord::Commit { txn: 1, ts: 1 }).unwrap();
        }
        {
            let wal = SegmentedWal::open(&dir, opts()).unwrap();
            wal.commit(&LogRecord::Commit { txn: 2, ts: 2 }).unwrap();
        }
        let (recs, _) = read_records(&dir).unwrap();
        assert_eq!(recs.len(), 2);
    }

    #[test]
    fn group_commit_from_many_threads_loses_nothing() {
        let dir = tmp("group");
        let wal = Arc::new(
            SegmentedWal::open(&dir, WalOptions { segment_max_bytes: 1 << 20, ..opts() }).unwrap(),
        );
        let threads = 8;
        let per = 50;
        let mut joins = Vec::new();
        for t in 0..threads {
            let wal = wal.clone();
            joins.push(std::thread::spawn(move || {
                for i in 0..per {
                    let txn = t * per + i + 1;
                    wal.append(&LogRecord::Begin { txn }).unwrap();
                    wal.commit(&LogRecord::Commit { txn, ts: txn }).unwrap();
                }
            }));
        }
        for j in joins {
            j.join().unwrap();
        }
        drop(wal);
        let (recs, torn) = read_records(&dir).unwrap();
        assert!(!torn);
        let commits = recs.iter().filter(|r| matches!(r, LogRecord::Commit { .. })).count();
        assert_eq!(commits as u64, threads * per);
    }

    #[test]
    fn prune_respects_live_transactions() {
        let dir = tmp("prune");
        let wal = SegmentedWal::open(&dir, opts()).unwrap();
        // Txn 999 begins early and stays incomplete.
        wal.append(&LogRecord::Begin { txn: 999 }).unwrap();
        wal.append(&LogRecord::Op { txn: 999, obj: 1, op: vec![0; 16] }).unwrap();
        for i in 0..50 {
            wal.append(&LogRecord::Op { txn: i, obj: 1, op: vec![0u8; 32] }).unwrap();
            wal.commit(&LogRecord::Commit { txn: i, ts: i + 1 }).unwrap();
        }
        let current = wal.current_segment();
        assert!(current > 2);
        // Pruning everything below the current segment must keep segment 1
        // (txn 999's records live there).
        wal.prune_segments(current).unwrap();
        let remaining = list_segments(&dir).unwrap();
        assert_eq!(remaining.first().unwrap().0, 1, "live txn pinned segment 1");
        // Completing the transaction unpins it.
        wal.commit(&LogRecord::Abort { txn: 999 }).unwrap();
        wal.prune_segments(current).unwrap();
        let remaining = list_segments(&dir).unwrap();
        assert!(remaining.first().unwrap().0 >= current.min(wal.current_segment()));
    }

    #[test]
    fn stats_track_appends_and_checkpoint_reset() {
        let dir = tmp("stats");
        let wal = SegmentedWal::open(&dir, opts()).unwrap();
        wal.append(&LogRecord::Begin { txn: 1 }).unwrap();
        wal.commit(&LogRecord::Commit { txn: 1, ts: 1 }).unwrap();
        let s = wal.stats();
        assert_eq!(s.records_since_checkpoint, 2);
        assert_eq!(s.commits_since_checkpoint, 1);
        assert!(s.bytes_since_checkpoint > 0);
        wal.mark_checkpoint();
        let s = wal.stats();
        assert_eq!(s.records_since_checkpoint, 0);
        assert_eq!(s.bytes_at_last_checkpoint, s.total_bytes);
    }
}
