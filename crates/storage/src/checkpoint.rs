//! Checkpoint files: a serialized committed frontier plus the per-stripe
//! log positions recovery may prune below.
//!
//! ```text
//! file := magic "HCCKPT03", len: u32, crc: u32, payload
//! payload := last_ts: u64, last_ticket: u64, commit_chain: u64,
//!            s: u32, s × { low: u64 },
//!            n: u32, n × { name: len-prefixed utf8, data: len-prefixed bytes },
//!            r: u32, r × { id: u64, name: len-prefixed utf8 }
//! ```
//!
//! `last_ts` is the **fuzzy-checkpoint watermark**: every commit with
//! timestamp `≤ last_ts` is reflected in every snapshot (the snapshots
//! are taken *at* the watermark while later commits keep flowing), and
//! recovery replays only commits strictly above it. `last_ticket` is the
//! global ticket watermark at checkpoint time — a reopening log anchors
//! its ticket counter above it, since compaction may have deleted the
//! segments that held the highest tickets.
//!
//! The `s` entries are the **per-stripe low-water marks**: for stripe
//! `i`, every segment with index `< low[i]` was deleted by the
//! checkpoint's compaction (segments pinned by transactions live at
//! checkpoint time keep `low[i]` clamped down until they complete).
//! Recovery scans every surviving segment regardless — the vector is a
//! diagnostic record of what compaction was entitled to delete, not a
//! scan bound.
//!
//! The trailing `r` entries are the object **registry bindings** (the
//! WAL's `Register` records) at checkpoint time. They ride in the
//! checkpoint — written temp + fsync + rename, so immune to tail
//! truncation — because compaction deletes the segments holding the
//! original `Register` records while pinned segments may keep op records
//! that still reference the ids.
//!
//! Files are named `ckpt-<last_ts>.ckpt`, written to a temp file,
//! fsynced, then renamed — a half-written checkpoint can never shadow a
//! complete one, and recovery skips any file whose CRC does not verify.

use crate::record::crc32;
use crate::StorageError;
use std::fs::{self, File, OpenOptions};
use std::io::Write;
use std::path::{Path, PathBuf};

const MAGIC: &[u8; 8] = b"HCCKPT03";

/// A serialized committed frontier.
#[derive(Clone, Debug, PartialEq)]
pub struct Checkpoint {
    /// Every commit with timestamp `≤ last_ts` is reflected in `objects`;
    /// recovery replays only commits strictly above it.
    pub last_ts: u64,
    /// The global ticket watermark at checkpoint time: a reopened log
    /// must hand out tickets strictly above it.
    pub last_ticket: u64,
    /// The commit-chain watermark: the ticket of the last commit record
    /// chained before the checkpoint began. Recovery's chain walk starts
    /// here — every accepted post-checkpoint commit must link back to it
    /// through surviving records.
    pub commit_chain: u64,
    /// Per-stripe low-water marks: segment indexes compaction pruned
    /// below (diagnostic — recovery scans every surviving segment).
    pub stripe_lows: Vec<u64>,
    /// `(object name, snapshot bytes)` for every registered object, taken
    /// at the `last_ts` watermark.
    pub objects: Vec<(String, Vec<u8>)>,
    /// The WAL object registry at checkpoint time: `(id, name)` bindings
    /// op records below (and pinned across) this checkpoint may use.
    pub registry: Vec<(u64, String)>,
}

fn checkpoint_path(dir: &Path, last_ts: u64) -> PathBuf {
    dir.join(format!("ckpt-{last_ts:020}.ckpt"))
}

impl Checkpoint {
    fn encode(&self) -> Vec<u8> {
        let mut payload = Vec::new();
        payload.extend_from_slice(&self.last_ts.to_le_bytes());
        payload.extend_from_slice(&self.last_ticket.to_le_bytes());
        payload.extend_from_slice(&self.commit_chain.to_le_bytes());
        payload.extend_from_slice(&(self.stripe_lows.len() as u32).to_le_bytes());
        for low in &self.stripe_lows {
            payload.extend_from_slice(&low.to_le_bytes());
        }
        payload.extend_from_slice(&(self.objects.len() as u32).to_le_bytes());
        for (name, data) in &self.objects {
            payload.extend_from_slice(&(name.len() as u32).to_le_bytes());
            payload.extend_from_slice(name.as_bytes());
            payload.extend_from_slice(&(data.len() as u32).to_le_bytes());
            payload.extend_from_slice(data);
        }
        payload.extend_from_slice(&(self.registry.len() as u32).to_le_bytes());
        for (id, name) in &self.registry {
            payload.extend_from_slice(&id.to_le_bytes());
            payload.extend_from_slice(&(name.len() as u32).to_le_bytes());
            payload.extend_from_slice(name.as_bytes());
        }
        let mut out = Vec::with_capacity(payload.len() + 16);
        out.extend_from_slice(MAGIC);
        out.extend_from_slice(&(payload.len() as u32).to_le_bytes());
        out.extend_from_slice(&crc32(&payload).to_le_bytes());
        out.extend_from_slice(&payload);
        out
    }

    fn decode(bytes: &[u8]) -> Option<Checkpoint> {
        if bytes.len() < 16 || &bytes[0..8] != MAGIC {
            return None;
        }
        let len = u32::from_le_bytes(bytes[8..12].try_into().unwrap()) as usize;
        let crc = u32::from_le_bytes(bytes[12..16].try_into().unwrap());
        let payload = bytes.get(16..16 + len)?;
        if crc32(payload) != crc {
            return None;
        }
        let mut pos = 0usize;
        let take = |pos: &mut usize, n: usize| -> Option<&[u8]> {
            let s = payload.get(*pos..*pos + n)?;
            *pos += n;
            Some(s)
        };
        let last_ts = u64::from_le_bytes(take(&mut pos, 8)?.try_into().unwrap());
        let last_ticket = u64::from_le_bytes(take(&mut pos, 8)?.try_into().unwrap());
        let commit_chain = u64::from_le_bytes(take(&mut pos, 8)?.try_into().unwrap());
        let s = u32::from_le_bytes(take(&mut pos, 4)?.try_into().unwrap());
        let mut stripe_lows = Vec::with_capacity(s as usize);
        for _ in 0..s {
            stripe_lows.push(u64::from_le_bytes(take(&mut pos, 8)?.try_into().unwrap()));
        }
        let n = u32::from_le_bytes(take(&mut pos, 4)?.try_into().unwrap());
        let mut objects = Vec::with_capacity(n as usize);
        for _ in 0..n {
            let name_len = u32::from_le_bytes(take(&mut pos, 4)?.try_into().unwrap()) as usize;
            let name = String::from_utf8(take(&mut pos, name_len)?.to_vec()).ok()?;
            let data_len = u32::from_le_bytes(take(&mut pos, 4)?.try_into().unwrap()) as usize;
            let data = take(&mut pos, data_len)?.to_vec();
            objects.push((name, data));
        }
        let r = u32::from_le_bytes(take(&mut pos, 4)?.try_into().unwrap());
        let mut registry = Vec::with_capacity(r as usize);
        for _ in 0..r {
            let id = u64::from_le_bytes(take(&mut pos, 8)?.try_into().unwrap());
            let name_len = u32::from_le_bytes(take(&mut pos, 4)?.try_into().unwrap()) as usize;
            let name = String::from_utf8(take(&mut pos, name_len)?.to_vec()).ok()?;
            registry.push((id, name));
        }
        Some(Checkpoint { last_ts, last_ticket, commit_chain, stripe_lows, objects, registry })
    }

    /// Durably write this checkpoint into `dir` (temp file + fsync + rename
    /// + directory fsync).
    pub fn save(&self, dir: &Path) -> Result<PathBuf, StorageError> {
        fs::create_dir_all(dir)?;
        let final_path = checkpoint_path(dir, self.last_ts);
        let tmp_path = dir.join(format!(".ckpt-{:020}.tmp", self.last_ts));
        {
            let mut f =
                OpenOptions::new().create(true).write(true).truncate(true).open(&tmp_path)?;
            f.write_all(&self.encode())?;
            f.sync_data()?;
        }
        fs::rename(&tmp_path, &final_path)?;
        if let Ok(d) = File::open(dir) {
            let _ = d.sync_data(); // directory fsync: best effort
        }
        Ok(final_path)
    }

    /// Load the newest valid checkpoint in `dir`; corrupt or half-written
    /// files are skipped.
    pub fn load_latest(dir: &Path) -> Result<Option<Checkpoint>, StorageError> {
        let entries = match fs::read_dir(dir) {
            Ok(e) => e,
            Err(e) if e.kind() == std::io::ErrorKind::NotFound => return Ok(None),
            Err(e) => return Err(e.into()),
        };
        let mut candidates: Vec<PathBuf> = entries
            .filter_map(|e| e.ok())
            .map(|e| e.path())
            .filter(|p| {
                p.file_name()
                    .and_then(|n| n.to_str())
                    .map(|n| n.starts_with("ckpt-") && n.ends_with(".ckpt"))
                    .unwrap_or(false)
            })
            .collect();
        candidates.sort();
        for path in candidates.iter().rev() {
            if let Some(ckpt) = fs::read(path).ok().as_deref().and_then(Checkpoint::decode) {
                return Ok(Some(ckpt));
            }
        }
        Ok(None)
    }

    /// Delete checkpoints older than the one covering `keep_ts`.
    pub fn prune_older(dir: &Path, keep_ts: u64) -> Result<u64, StorageError> {
        let mut deleted = 0;
        for entry in fs::read_dir(dir)? {
            let path = entry?.path();
            let Some(name) = path.file_name().and_then(|n| n.to_str()) else { continue };
            if let Some(ts) = name.strip_prefix("ckpt-").and_then(|s| s.strip_suffix(".ckpt")) {
                if ts.parse::<u64>().map(|t| t < keep_ts).unwrap_or(false) {
                    fs::remove_file(&path)?;
                    deleted += 1;
                }
            }
        }
        Ok(deleted)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicU64, Ordering};

    fn tmp(name: &str) -> PathBuf {
        static N: AtomicU64 = AtomicU64::new(0);
        let mut p = std::env::temp_dir();
        p.push(format!(
            "hcc-ckpt-{}-{}-{}",
            std::process::id(),
            name,
            N.fetch_add(1, Ordering::Relaxed)
        ));
        let _ = fs::remove_dir_all(&p);
        p
    }

    fn sample(ts: u64) -> Checkpoint {
        Checkpoint {
            last_ts: ts,
            last_ticket: 321,
            commit_chain: 300,
            stripe_lows: vec![3, 1, 7, 2],
            objects: vec![
                ("acct".into(), br#"{"balance":75}"#.to_vec()),
                ("q".into(), b"[1,2]".to_vec()),
            ],
            registry: vec![(1, "acct".into()), (2, "q".into())],
        }
    }

    #[test]
    fn save_load_roundtrip() {
        let dir = tmp("roundtrip");
        sample(42).save(&dir).unwrap();
        assert_eq!(Checkpoint::load_latest(&dir).unwrap(), Some(sample(42)));
    }

    #[test]
    fn latest_wins() {
        let dir = tmp("latest");
        sample(10).save(&dir).unwrap();
        sample(99).save(&dir).unwrap();
        sample(50).save(&dir).unwrap();
        assert_eq!(Checkpoint::load_latest(&dir).unwrap().unwrap().last_ts, 99);
    }

    #[test]
    fn corrupt_latest_falls_back_to_previous() {
        let dir = tmp("fallback");
        sample(10).save(&dir).unwrap();
        let newest = sample(99).save(&dir).unwrap();
        // Flip a payload byte in the newest file.
        let mut bytes = fs::read(&newest).unwrap();
        let last = bytes.len() - 1;
        bytes[last] ^= 0xFF;
        fs::write(&newest, &bytes).unwrap();
        assert_eq!(Checkpoint::load_latest(&dir).unwrap().unwrap().last_ts, 10);
    }

    #[test]
    fn truncated_file_is_skipped() {
        let dir = tmp("truncated");
        sample(10).save(&dir).unwrap();
        let newest = sample(99).save(&dir).unwrap();
        let bytes = fs::read(&newest).unwrap();
        fs::write(&newest, &bytes[..bytes.len() / 2]).unwrap();
        assert_eq!(Checkpoint::load_latest(&dir).unwrap().unwrap().last_ts, 10);
    }

    #[test]
    fn prune_keeps_current() {
        let dir = tmp("prune");
        sample(10).save(&dir).unwrap();
        sample(20).save(&dir).unwrap();
        sample(30).save(&dir).unwrap();
        assert_eq!(Checkpoint::prune_older(&dir, 30).unwrap(), 2);
        assert_eq!(Checkpoint::load_latest(&dir).unwrap().unwrap().last_ts, 30);
    }

    #[test]
    fn empty_dir_has_no_checkpoint() {
        assert_eq!(Checkpoint::load_latest(&tmp("empty")).unwrap(), None);
    }

    #[test]
    fn empty_stripe_vector_roundtrips() {
        let dir = tmp("no-stripes");
        let ckpt = Checkpoint { stripe_lows: vec![], objects: vec![], ..sample(7) };
        ckpt.save(&dir).unwrap();
        assert_eq!(Checkpoint::load_latest(&dir).unwrap(), Some(ckpt));
    }
}
