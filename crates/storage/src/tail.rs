//! Tailing a live striped WAL: incremental, ticket-ordered frame export.
//!
//! The replication shipper needs the log as **one stream in global
//! ticket order**, but the stripes append concurrently and a ticket is
//! reserved *before* its frame is written — so at any instant each
//! stripe's tail may be missing tickets that a neighbouring stripe has
//! already made visible. [`WalTailer`] owns a byte cursor per stripe,
//! decodes newly appended frames on every [`WalTailer::poll`], buffers
//! them by ticket, and releases only the **contiguous prefix**: a frame
//! is emitted exactly once, after every lower ticket has been emitted.
//!
//! Frames are captured as raw envelope bytes (`len|crc|seq|payload`),
//! not re-encoded — the follower appends what the primary wrote, and the
//! converged log prefix is byte-identical after a ticket-ordered merge.
//!
//! ## Gaps
//!
//! Three ways a ticket can be missing at the contiguity frontier:
//!
//! * **in flight** — reserved, not yet flushed. Microseconds; the next
//!   poll finds it. This is the common case and why the tailer waits.
//! * **never coming** — a transaction reserved the ticket and then hit
//!   an append failure and aborted, or the ticket is below the log's
//!   pruned floor. Waiting forever would wedge the stream, so after
//!   [`TailOptions::gap_patience`] consecutive polls without progress
//!   the tailer skips to the next ticket it actually holds and counts
//!   the jump in [`WalTailer::gaps_skipped`].
//! * **pruned mid-tail** — compaction deleted a segment below a cursor.
//!   Replication sources should run with pruning off (or a follower
//!   bootstraps from a checkpoint first — a ROADMAP follow-up); the
//!   tailer surfaces the vanished file as an error instead of guessing.
//!
//! Visibility follows the writer's flush discipline: `Buffered` and
//! classical `Fsync` flush every record to the OS, group-commit `Fsync`
//! parks op records in a process buffer until the next group flush, and
//! `Durability::None` may hold several KiB back indefinitely — which is
//! why replication is specified for the buffered/fsync modes.

use std::collections::BTreeMap;
use std::fs;
use std::path::{Path, PathBuf};

use crate::record;
use crate::wal::{list_segments, stripe_dirs};
use crate::StorageError;
use hcc_wire::frame::FrameError;

/// Tunables for a [`WalTailer`].
#[derive(Clone, Copy, Debug)]
pub struct TailOptions {
    /// Consecutive no-progress polls at a ticket gap before the tailer
    /// declares the missing ticket dead and skips it.
    pub gap_patience: u32,
}

impl Default for TailOptions {
    fn default() -> TailOptions {
        TailOptions { gap_patience: 50 }
    }
}

/// Byte cursor into one stripe: the segment being read and the offset of
/// the first byte not yet consumed (always a frame boundary).
struct StripeCursor {
    dir: PathBuf,
    seg_index: u64,
    offset: u64,
}

/// One exported frame: its ticket and its raw envelope bytes.
pub type TailedFrame = (u64, Vec<u8>);

/// An incremental, ticket-ordered reader over a (possibly live) striped
/// WAL directory. See the module docs for the contract.
pub struct WalTailer {
    dir: PathBuf,
    stripes: Vec<StripeCursor>,
    /// Decoded-but-not-yet-contiguous frames, keyed by ticket.
    pending: BTreeMap<u64, Vec<u8>>,
    /// The next ticket to emit.
    next: u64,
    /// Highest ticket seen on disk so far.
    frontier: u64,
    /// Consecutive polls that made no emission progress while pending
    /// frames sat above a gap.
    stalled: u32,
    /// Tickets skipped as permanently missing.
    gaps_skipped: u64,
    opts: TailOptions,
}

impl WalTailer {
    /// Open a tailer over `dir` that will emit every frame with ticket
    /// strictly greater than `after`, in ticket order. Existing segments
    /// are scanned immediately (the catch-up); frames at or below
    /// `after` are counted into the frontier but not buffered.
    pub fn new(
        dir: impl AsRef<Path>,
        after: u64,
        opts: TailOptions,
    ) -> Result<WalTailer, StorageError> {
        let mut tailer = WalTailer {
            dir: dir.as_ref().to_path_buf(),
            stripes: Vec::new(),
            pending: BTreeMap::new(),
            next: after + 1,
            frontier: after,
            stalled: 0,
            gaps_skipped: 0,
            opts,
        };
        tailer.discover_stripes()?;
        Ok(tailer)
    }

    /// Highest ticket observed on disk (shipped or not).
    pub fn frontier(&self) -> u64 {
        self.frontier
    }

    /// The next ticket [`WalTailer::poll`] would emit.
    pub fn next_ticket(&self) -> u64 {
        self.next
    }

    /// Tickets abandoned as permanently missing (reserved but never
    /// appended — an aborted transaction's failed op append).
    pub fn gaps_skipped(&self) -> u64 {
        self.gaps_skipped
    }

    /// Stripe directories can appear after the tailer (an empty primary
    /// creates them on first open); re-discover until some exist.
    fn discover_stripes(&mut self) -> Result<(), StorageError> {
        if !self.stripes.is_empty() {
            return Ok(());
        }
        for (_, sdir) in stripe_dirs(&self.dir)? {
            let first_seg = list_segments(&sdir)?.first().map_or(1, |(i, _)| *i);
            self.stripes.push(StripeCursor { dir: sdir, seg_index: first_seg, offset: 0 });
        }
        Ok(())
    }

    /// Read newly appended complete frames off every stripe and return
    /// the released contiguous run of tickets, oldest first. An empty
    /// result means nothing new is both visible and contiguous yet.
    pub fn poll(&mut self) -> Result<Vec<TailedFrame>, StorageError> {
        self.discover_stripes()?;
        for i in 0..self.stripes.len() {
            self.poll_stripe(i)?;
        }
        let mut out = Vec::new();
        while let Some(bytes) = self.pending.remove(&self.next) {
            out.push((self.next, bytes));
            self.next += 1;
        }
        if out.is_empty() && !self.pending.is_empty() {
            // Frames are waiting above a gap. Give the in-flight writer
            // time, then declare the hole permanent and jump it.
            self.stalled += 1;
            if self.stalled > self.opts.gap_patience {
                let (&first, _) = self.pending.iter().next().expect("pending is non-empty");
                self.gaps_skipped += first - self.next;
                self.next = first;
                while let Some(bytes) = self.pending.remove(&self.next) {
                    out.push((self.next, bytes));
                    self.next += 1;
                }
                self.stalled = 0;
            }
        } else {
            self.stalled = 0;
        }
        Ok(out)
    }

    fn poll_stripe(&mut self, i: usize) -> Result<(), StorageError> {
        loop {
            let (path, offset, seg_index) = {
                let c = &self.stripes[i];
                (crate::wal::segment_path(&c.dir, c.seg_index), c.offset, c.seg_index)
            };
            let bytes = match fs::read(&path) {
                Ok(b) => b,
                Err(e) if e.kind() == std::io::ErrorKind::NotFound => {
                    // Either the stripe hasn't written its first segment
                    // yet, or compaction pruned under our cursor.
                    let segments = list_segments(&self.stripes[i].dir)?;
                    match segments.first() {
                        None => return Ok(()),
                        Some((first, _)) if *first > seg_index && offset == 0 => {
                            // We never read a byte of the pruned range …
                            // but pruning only deletes segments whose
                            // records are checkpointed, i.e. tickets we
                            // were expected to ship. Surface it.
                            return Err(StorageError::Io(std::io::Error::new(
                                std::io::ErrorKind::NotFound,
                                format!(
                                    "segment {seg_index} of {} was pruned under the replication \
                                     tailer; run the replicated store with compaction off",
                                    self.stripes[i].dir.display()
                                ),
                            )));
                        }
                        Some(_) => return Ok(()),
                    }
                }
                Err(e) => return Err(e.into()),
            };
            let mut at = offset as usize;
            while at < bytes.len() {
                match record::decode_at(&bytes, at) {
                    Ok((seq, _rec, end)) => {
                        self.frontier = self.frontier.max(seq);
                        if seq >= self.next && !self.pending.contains_key(&seq) {
                            self.pending.insert(seq, bytes[at..end].to_vec());
                        }
                        at = end;
                    }
                    // Truncated: a torn tail mid-append (wait for the
                    // rest). BadCrc/Malformed at the very tail can also
                    // be a read racing a buffered writer mid-flush —
                    // re-read next poll; if it is real corruption the
                    // stream stalls visibly instead of shipping garbage.
                    Err(FrameError::Truncated)
                    | Err(FrameError::BadCrc)
                    | Err(FrameError::Malformed)
                    | Err(FrameError::BadLength(_)) => break,
                }
            }
            self.stripes[i].offset = at as u64;
            if at == bytes.len() {
                // Clean end of this segment: advance to the next one if
                // rotation already created it, else wait here.
                let segments = list_segments(&self.stripes[i].dir)?;
                match segments.iter().find(|(idx, _)| *idx > seg_index) {
                    Some((next_idx, _)) => {
                        self.stripes[i].seg_index = *next_idx;
                        self.stripes[i].offset = 0;
                    }
                    None => return Ok(()),
                }
            } else {
                // Mid-frame tail: wait for the writer.
                return Ok(());
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::wal::{SegmentedWal, WalOptions};
    use crate::LogRecord;
    use std::sync::atomic::{AtomicU64, Ordering};

    fn tmp(name: &str) -> PathBuf {
        static N: AtomicU64 = AtomicU64::new(0);
        let mut p = std::env::temp_dir();
        p.push(format!(
            "hcc-tail-{}-{}-{}",
            std::process::id(),
            name,
            N.fetch_add(1, Ordering::Relaxed)
        ));
        let _ = std::fs::remove_dir_all(&p);
        p
    }

    fn opts(stripes: usize) -> WalOptions {
        WalOptions { segment_max_bytes: 256, stripes, ..WalOptions::default() }
    }

    fn append_txn(wal: &SegmentedWal, txn: u64, obj: u64, ts: u64) {
        wal.append_begin(txn).unwrap();
        let seq = wal.reserve();
        wal.append_op(seq, txn, obj, format!("op-{txn}").as_bytes()).unwrap();
        wal.commit_txn(txn, ts).unwrap();
    }

    #[test]
    fn tails_appends_in_ticket_order_across_stripes_and_rotations() {
        let dir = tmp("order");
        let wal = SegmentedWal::open(&dir, opts(4)).unwrap();
        let mut tailer = WalTailer::new(&dir, 0, TailOptions::default()).unwrap();
        let mut got: Vec<u64> = Vec::new();
        for txn in 1..=40u64 {
            append_txn(&wal, txn, txn % 5, txn);
            for (seq, bytes) in tailer.poll().unwrap() {
                // Every emitted frame re-decodes to its ticket.
                let (dseq, _rec, used) = record::decode_at(&bytes, 0).unwrap();
                assert_eq!((dseq, used), (seq, bytes.len()));
                got.push(seq);
            }
        }
        wal.sync().unwrap();
        loop {
            let more = tailer.poll().unwrap();
            if more.is_empty() {
                break;
            }
            got.extend(more.iter().map(|(s, _)| *s));
        }
        let expect: Vec<u64> = (1..wal.current_ticket()).collect();
        assert_eq!(got, expect, "contiguous ticket order, nothing lost or duplicated");
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn catch_up_starts_strictly_after_the_resume_ticket() {
        let dir = tmp("resume");
        let wal = SegmentedWal::open(&dir, opts(2)).unwrap();
        for txn in 1..=10u64 {
            append_txn(&wal, txn, txn, txn);
        }
        wal.sync().unwrap();
        let cut = 7;
        let mut tailer = WalTailer::new(&dir, cut, TailOptions::default()).unwrap();
        let mut got = Vec::new();
        loop {
            let more = tailer.poll().unwrap();
            if more.is_empty() {
                break;
            }
            got.extend(more.iter().map(|(s, _)| *s));
        }
        let expect: Vec<u64> = (cut + 1..wal.current_ticket()).collect();
        assert_eq!(got, expect);
        assert_eq!(tailer.frontier(), wal.current_ticket() - 1);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn permanent_gap_is_skipped_after_patience_runs_out() {
        let dir = tmp("gap");
        let wal = SegmentedWal::open(&dir, opts(1)).unwrap();
        append_txn(&wal, 1, 1, 1);
        // Burn a ticket that will never be appended (a failed op append
        // whose transaction aborted).
        let _dead = wal.reserve();
        let after = wal.reserve();
        wal.append_op(after, 9, 1, b"late").unwrap();
        wal.sync().unwrap();
        let mut tailer = WalTailer::new(&dir, 0, TailOptions { gap_patience: 3 }).unwrap();
        let mut got = Vec::new();
        for _ in 0..10 {
            got.extend(tailer.poll().unwrap().iter().map(|(s, _)| *s));
        }
        assert!(got.contains(&after), "the frame past the dead ticket ships: {got:?}");
        assert_eq!(tailer.gaps_skipped(), 1);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn torn_tail_bytes_are_held_back_until_completed() {
        let dir = tmp("torn");
        let wal = SegmentedWal::open(&dir, opts(1)).unwrap();
        append_txn(&wal, 1, 1, 1);
        wal.sync().unwrap();
        let mut tailer = WalTailer::new(&dir, 0, TailOptions::default()).unwrap();
        let n_first = tailer.poll().unwrap().len();
        assert!(n_first >= 3, "begin+op+commit visible");
        // Hand-tear a half frame onto the active segment, at the next
        // contiguous ticket so release is not waiting on a gap.
        let next = wal.current_ticket();
        let sdir = stripe_dirs(&dir).unwrap().remove(0).1;
        let (_, seg) = list_segments(&sdir).unwrap().pop().unwrap();
        let full = record::encode(&LogRecord::Begin { txn: 99 }, next);
        let mut f = fs::OpenOptions::new().append(true).open(&seg).unwrap();
        use std::io::Write as _;
        f.write_all(&full[..full.len() - 3]).unwrap();
        drop(f);
        assert!(tailer.poll().unwrap().is_empty(), "torn tail emits nothing");
        // Complete the frame: it ships.
        let mut f = fs::OpenOptions::new().append(true).open(&seg).unwrap();
        f.write_all(&full[full.len() - 3..]).unwrap();
        drop(f);
        let got = tailer.poll().unwrap();
        assert_eq!(got.iter().map(|(s, _)| *s).collect::<Vec<_>>(), vec![next]);
        let _ = std::fs::remove_dir_all(&dir);
    }
}
