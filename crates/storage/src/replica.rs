//! The follower's side of log shipping: a striped append-only log fed
//! raw WAL frames in global ticket order.
//!
//! A [`ReplicaLog`] looks exactly like a primary WAL on disk —
//! `stripe-NN/seg-XXXXXXXX.wal` directories of `len|crc|seq|payload`
//! frames — so the whole existing recovery pipeline
//! ([`crate::wal::read_records`] → [`crate::store::DurableStore::recover`])
//! works on a replica directory unchanged. That is the point: promotion
//! is *ordinary crash recovery* over a log the follower built one
//! verified frame at a time, not a second apply path.
//!
//! Differences from the primary's [`crate::wal::SegmentedWal`]:
//!
//! * Frames arrive already ticketed and **in ticket order** (the
//!   shipper merges stripes before sending), so the replica routes each
//!   frame to `stripe = seq % stripes` and every stripe file is
//!   strictly seq-ascending — which makes [`ReplicaLog::truncate_above`]
//!   a clean per-stripe suffix cut.
//! * Appends are idempotent: a frame at or below
//!   [`ReplicaLog::last_ticket`] is a re-delivery (the follower
//!   re-requested from its durable position after a disconnect) and is
//!   skipped byte-free.
//! * Every frame's CRC is re-verified before it is written. A corrupt
//!   frame in the middle of a batch poisons the connection, not the
//!   log: nothing after it is appended and the caller re-dials.
//!
//! Crash discipline matches the primary's: only the **final** segment
//! of a stripe may end in a torn frame (repaired on open by truncating
//! to the last whole-frame boundary); damage anywhere else is
//! [`StorageError::Corrupt`].

use std::fs::{self, File, OpenOptions};
use std::io::Write;
use std::path::{Path, PathBuf};

use crate::record;
use crate::wal::{list_segments, segment_path, stripe_dir, stripe_dirs, sync_dir};
use crate::{Durability, StorageError};
use hcc_wire::frame::FrameError;

/// How a [`ReplicaLog`] is laid out and flushed.
#[derive(Clone, Copy, Debug)]
pub struct ReplicaOptions {
    /// Stripe count for a fresh directory (an existing directory keeps
    /// its own count; this value is ignored then).
    pub stripes: usize,
    /// Rotate a stripe's segment once it exceeds this size.
    pub segment_max_bytes: u64,
    /// `Fsync` syncs every appended batch before acking it upstream;
    /// anything else leaves the batch in the OS page cache.
    pub durability: Durability,
}

impl Default for ReplicaOptions {
    fn default() -> ReplicaOptions {
        ReplicaOptions {
            stripes: 1,
            segment_max_bytes: 4 * 1024 * 1024,
            durability: Durability::default(),
        }
    }
}

struct ReplicaStripe {
    dir: PathBuf,
    file: File,
    seg_index: u64,
    seg_bytes: u64,
}

/// The follower's striped log. See the module docs for the contract.
pub struct ReplicaLog {
    dir: PathBuf,
    stripes: Vec<ReplicaStripe>,
    last_ticket: u64,
    opts: ReplicaOptions,
}

impl ReplicaLog {
    /// Open (or create) a replica log at `dir`, repairing a torn final
    /// frame in each stripe's last segment exactly like primary
    /// recovery does.
    pub fn open(dir: impl AsRef<Path>, opts: ReplicaOptions) -> Result<ReplicaLog, StorageError> {
        let dir = dir.as_ref().to_path_buf();
        fs::create_dir_all(&dir)?;
        let mut existing = stripe_dirs(&dir)?;
        if existing.is_empty() {
            let n = opts.stripes.clamp(1, crate::wal::MAX_STRIPES);
            for s in 0..n {
                let sdir = stripe_dir(&dir, s);
                fs::create_dir_all(&sdir)?;
                existing.push((s, sdir));
            }
            sync_dir(&dir)?;
        }
        let mut stripes = Vec::with_capacity(existing.len());
        let mut last_ticket = 0u64;
        for (_, sdir) in existing {
            let (stripe, high) = ReplicaStripe::open(sdir)?;
            last_ticket = last_ticket.max(high);
            stripes.push(stripe);
        }
        Ok(ReplicaLog { dir, stripes, last_ticket, opts })
    }

    /// The directory this log lives in.
    pub fn dir(&self) -> &Path {
        &self.dir
    }

    /// The highest ticket appended (and, after [`ReplicaLog::open`] or a
    /// flushed batch, durable to the configured level). `0` = empty.
    pub fn last_ticket(&self) -> u64 {
        self.last_ticket
    }

    /// Verify and append a batch of concatenated raw frames (ascending
    /// `seq`), skipping any already at or below [`ReplicaLog::last_ticket`].
    /// Returns the new `last_ticket` once the batch is flushed — that is
    /// the value to put in the `ReplAck`.
    pub fn append_frames(&mut self, frames: &[u8]) -> Result<u64, StorageError> {
        let mut at = 0usize;
        let mut prev = 0u64;
        while at < frames.len() {
            let (seq, _rec, end) = record::decode_at(frames, at).map_err(|e| bad_batch(at, e))?;
            if seq <= prev {
                return Err(bad_batch(at, FrameError::Malformed));
            }
            prev = seq;
            if seq > self.last_ticket {
                self.append_one(seq, &frames[at..end])?;
                self.last_ticket = seq;
            }
            at = end;
        }
        if self.opts.durability == Durability::Fsync {
            for s in &self.stripes {
                s.file.sync_data()?;
            }
        }
        Ok(self.last_ticket)
    }

    fn append_one(&mut self, seq: u64, frame: &[u8]) -> Result<(), StorageError> {
        let i = (seq % self.stripes.len() as u64) as usize;
        let s = &mut self.stripes[i];
        if s.seg_bytes > 0 && s.seg_bytes + frame.len() as u64 > self.opts.segment_max_bytes {
            s.rotate()?;
        }
        s.file.write_all(frame)?;
        s.seg_bytes += frame.len() as u64;
        Ok(())
    }

    /// Force everything appended so far to the configured durability.
    pub fn sync(&self) -> Result<(), StorageError> {
        for s in &self.stripes {
            s.file.sync_data()?;
        }
        Ok(())
    }

    /// Physically drop every frame with `seq > ticket` — the promotion
    /// cut after the chain walk finds the last dependency-closed commit.
    /// Stripe files are seq-ascending, so this is a suffix truncation
    /// per stripe (plus deleting whole later segments).
    pub fn truncate_above(&mut self, ticket: u64) -> Result<(), StorageError> {
        for s in &mut self.stripes {
            s.truncate_above(ticket)?;
        }
        self.last_ticket = self.last_ticket.min(ticket);
        // `ticket` itself may have been a skipped gap; recompute the
        // true high mark from what survived.
        let mut high = 0u64;
        for s in &self.stripes {
            high = high.max(s.high_seq()?);
        }
        self.last_ticket = high;
        Ok(())
    }
}

fn bad_batch(offset: usize, err: FrameError) -> StorageError {
    StorageError::Io(std::io::Error::new(
        std::io::ErrorKind::InvalidData,
        format!("replication batch rejected at byte {offset}: {err:?}"),
    ))
}

impl ReplicaStripe {
    /// Open one stripe: repair the final segment's torn tail, refuse
    /// damage anywhere earlier, and reopen the last segment for append.
    fn open(dir: PathBuf) -> Result<(ReplicaStripe, u64), StorageError> {
        let segments = list_segments(&dir)?;
        let mut high = 0u64;
        let last = segments.len().saturating_sub(1);
        for (i, (idx, path)) in segments.iter().enumerate() {
            let bytes = fs::read(path)?;
            let mut valid = 0usize;
            while valid < bytes.len() {
                match record::decode_meta_at(&bytes, valid) {
                    Ok((meta, next)) => {
                        high = high.max(meta.seq);
                        valid = next;
                    }
                    Err(e) if i == last => {
                        // Torn tail of the active segment: the crash cut
                        // mid-append. Truncate to the last whole frame.
                        let _ = e;
                        let f = OpenOptions::new().write(true).open(path)?;
                        f.set_len(valid as u64)?;
                        f.sync_data()?;
                        break;
                    }
                    Err(e) => {
                        return Err(StorageError::Corrupt {
                            segment: *idx,
                            detail: format!("replica stripe frame at byte {valid}: {e:?}"),
                        });
                    }
                }
            }
        }
        let (seg_index, seg_bytes, path) = match segments.last() {
            Some((idx, path)) => (*idx, fs::metadata(path)?.len(), path.clone()),
            None => {
                let path = segment_path(&dir, 1);
                (1, 0, path)
            }
        };
        let file = OpenOptions::new().create(true).append(true).open(&path)?;
        sync_dir(&dir)?;
        Ok((ReplicaStripe { dir, file, seg_index, seg_bytes }, high))
    }

    fn rotate(&mut self) -> Result<(), StorageError> {
        self.file.sync_data()?;
        self.seg_index += 1;
        let path = segment_path(&self.dir, self.seg_index);
        self.file = OpenOptions::new().create_new(true).append(true).open(path)?;
        self.seg_bytes = 0;
        sync_dir(&self.dir)?;
        Ok(())
    }

    fn truncate_above(&mut self, ticket: u64) -> Result<(), StorageError> {
        let segments = list_segments(&self.dir)?;
        let mut cut: Option<(u64, u64)> = None; // (seg_index, byte offset)
        'outer: for (idx, path) in &segments {
            let bytes = fs::read(path)?;
            let mut at = 0usize;
            while at < bytes.len() {
                match record::decode_meta_at(&bytes, at) {
                    Ok((meta, next)) => {
                        if meta.seq > ticket {
                            cut = Some((*idx, at as u64));
                            break 'outer;
                        }
                        at = next;
                    }
                    Err(e) => {
                        return Err(StorageError::Corrupt {
                            segment: *idx,
                            detail: format!("during truncate_above: {e:?}"),
                        });
                    }
                }
            }
        }
        let Some((cut_seg, cut_off)) = cut else { return Ok(()) };
        for (idx, path) in &segments {
            if *idx > cut_seg {
                fs::remove_file(path)?;
            }
        }
        let cut_path = segment_path(&self.dir, cut_seg);
        let f = OpenOptions::new().write(true).open(&cut_path)?;
        f.set_len(cut_off)?;
        f.sync_data()?;
        sync_dir(&self.dir)?;
        self.seg_index = cut_seg;
        self.seg_bytes = cut_off;
        self.file = OpenOptions::new().append(true).open(&cut_path)?;
        Ok(())
    }

    /// Highest seq currently in this stripe (0 if empty).
    fn high_seq(&self) -> Result<u64, StorageError> {
        let mut high = 0u64;
        for (_, path) in list_segments(&self.dir)? {
            let bytes = fs::read(&path)?;
            let mut at = 0usize;
            while at < bytes.len() {
                match record::decode_meta_at(&bytes, at) {
                    Ok((meta, next)) => {
                        high = high.max(meta.seq);
                        at = next;
                    }
                    Err(_) => break,
                }
            }
        }
        Ok(high)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::wal::read_records;
    use crate::LogRecord;
    use std::sync::atomic::{AtomicU64, Ordering};

    fn tmp(name: &str) -> PathBuf {
        static N: AtomicU64 = AtomicU64::new(0);
        let mut p = std::env::temp_dir();
        p.push(format!(
            "hcc-replica-{}-{}-{}",
            std::process::id(),
            name,
            N.fetch_add(1, Ordering::Relaxed)
        ));
        let _ = std::fs::remove_dir_all(&p);
        p
    }

    fn frame(seq: u64) -> Vec<u8> {
        record::encode(&LogRecord::Begin { txn: seq }, seq)
    }

    fn batch(seqs: &[u64]) -> Vec<u8> {
        let mut out = Vec::new();
        for &s in seqs {
            out.extend_from_slice(&frame(s));
        }
        out
    }

    fn opts() -> ReplicaOptions {
        ReplicaOptions { stripes: 3, segment_max_bytes: 128, ..ReplicaOptions::default() }
    }

    fn seqs_on_disk(dir: &Path) -> Vec<u64> {
        let (recs, _) = read_records(dir).unwrap();
        recs.iter().map(|(s, _)| *s).collect()
    }

    #[test]
    fn appends_route_rotate_and_reload() {
        let dir = tmp("basic");
        let mut log = ReplicaLog::open(&dir, opts()).unwrap();
        let all: Vec<u64> = (1..=50).collect();
        assert_eq!(log.append_frames(&batch(&all)).unwrap(), 50);
        assert_eq!(log.last_ticket(), 50);
        drop(log);
        let log = ReplicaLog::open(&dir, opts()).unwrap();
        assert_eq!(log.last_ticket(), 50);
        assert_eq!(seqs_on_disk(&dir), all);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn redelivered_frames_are_skipped_idempotently() {
        let dir = tmp("idem");
        let mut log = ReplicaLog::open(&dir, opts()).unwrap();
        log.append_frames(&batch(&[1, 2, 3])).unwrap();
        // Reconnect replays an overlapping window.
        log.append_frames(&batch(&[2, 3, 4, 5])).unwrap();
        assert_eq!(seqs_on_disk(&dir), vec![1, 2, 3, 4, 5]);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn corrupt_frame_poisons_the_batch_not_the_log() {
        let dir = tmp("poison");
        let mut log = ReplicaLog::open(&dir, opts()).unwrap();
        log.append_frames(&batch(&[1])).unwrap();
        let mut b = batch(&[2, 3]);
        let flip = frame(2).len() + 12; // inside frame 3's body
        b[flip] ^= 0xff;
        assert!(log.append_frames(&b).is_err());
        // Frame 2 landed (it preceded the damage), frame 3 did not.
        assert_eq!(seqs_on_disk(&dir), vec![1, 2]);
        assert_eq!(log.last_ticket(), 2);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn out_of_order_batches_are_refused() {
        let dir = tmp("order");
        let mut log = ReplicaLog::open(&dir, opts()).unwrap();
        let mut b = batch(&[5]);
        b.extend_from_slice(&batch(&[4]));
        assert!(log.append_frames(&b).is_err());
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn torn_tail_is_repaired_on_open() {
        let dir = tmp("torn");
        let mut log = ReplicaLog::open(&dir, opts()).unwrap();
        log.append_frames(&batch(&(1..=9).collect::<Vec<_>>())).unwrap();
        log.sync().unwrap();
        drop(log);
        // Tear the last frame of one stripe (seq 9 routes to 9 % 3 = 0).
        let sdir = stripe_dir(&dir, 0);
        let (_, seg) = list_segments(&sdir).unwrap().pop().unwrap();
        let len = fs::metadata(&seg).unwrap().len();
        OpenOptions::new().write(true).open(&seg).unwrap().set_len(len - 5).unwrap();
        let mut log = ReplicaLog::open(&dir, opts()).unwrap();
        assert_eq!(log.last_ticket(), 8, "torn frame 9 dropped");
        // The stream resumes from the durable position.
        log.append_frames(&batch(&[9, 10])).unwrap();
        assert_eq!(seqs_on_disk(&dir), (1..=10).collect::<Vec<_>>());
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn truncate_above_cuts_every_stripe_suffix() {
        let dir = tmp("cut");
        let mut log = ReplicaLog::open(&dir, opts()).unwrap();
        log.append_frames(&batch(&(1..=40).collect::<Vec<_>>())).unwrap();
        log.truncate_above(17).unwrap();
        assert_eq!(log.last_ticket(), 17);
        assert_eq!(seqs_on_disk(&dir), (1..=17).collect::<Vec<_>>());
        // The log keeps appending cleanly after the cut.
        log.append_frames(&batch(&[18, 19])).unwrap();
        assert_eq!(seqs_on_disk(&dir), (1..=19).collect::<Vec<_>>());
        let _ = std::fs::remove_dir_all(&dir);
    }
}
