//! The shared binary frame envelope: length-prefixed, CRC32-protected,
//! sequence-stamped.
//!
//! ```text
//! ┌──────────┬──────────┬──────────┬───────────────┐
//! │ len: u32 │ crc: u32 │ seq: u64 │ payload bytes │  (integers little-endian)
//! └──────────┴──────────┴──────────┴───────────────┘
//! ```
//!
//! One implementation, two consumers:
//!
//! * the **WAL** (`hcc-storage::record`) frames log records with it —
//!   `seq` is the global append ticket, and a failed decode at a
//!   stripe's tail is a torn-tail crash artifact;
//! * the **network protocol** (`crate::conn`) frames requests and
//!   responses with it — `seq` is the request id responses echo, and a
//!   failed decode means the peer (or the path to it) is lying: the
//!   session is closed rather than resynchronized by guesswork.
//!
//! The CRC covers `seq_le || payload`, so neither a flipped payload bit
//! nor a flipped sequence bit passes. The byte format is pinned by
//! `crates/storage/tests/framing_golden.rs`: existing WAL images must
//! replay byte-for-byte across refactors of this module.

/// Upper bound on one frame's payload (guards against reading a garbage
/// length field as an allocation size). WAL callers accept up to this;
/// network callers enforce the much smaller negotiated
/// [`crate::MAX_WIRE_PAYLOAD`] *before* allocating.
pub const MAX_PAYLOAD: u32 = 1 << 30;

/// Bytes of frame header before the payload: len + crc + seq.
pub const HEADER_BYTES: usize = 16;

// ---- CRC32 (IEEE 802.3, the zlib polynomial) ---------------------------

fn crc32_table() -> &'static [u32; 256] {
    use std::sync::OnceLock;
    static TABLE: OnceLock<[u32; 256]> = OnceLock::new();
    TABLE.get_or_init(|| {
        let mut table = [0u32; 256];
        for (i, entry) in table.iter_mut().enumerate() {
            let mut c = i as u32;
            for _ in 0..8 {
                c = if c & 1 != 0 { 0xEDB8_8320 ^ (c >> 1) } else { c >> 1 };
            }
            *entry = c;
        }
        table
    })
}

fn crc32_update(mut c: u32, bytes: &[u8]) -> u32 {
    let table = crc32_table();
    for &b in bytes {
        c = table[((c ^ b as u32) & 0xFF) as usize] ^ (c >> 8);
    }
    c
}

/// IEEE CRC32 of `bytes`.
pub fn crc32(bytes: &[u8]) -> u32 {
    crc32_update(0xFFFF_FFFF, bytes) ^ 0xFFFF_FFFF
}

/// IEEE CRC32 of `seq_le || payload` — what a frame's CRC field protects.
pub fn frame_crc(seq: u64, payload: &[u8]) -> u32 {
    let c = crc32_update(0xFFFF_FFFF, &seq.to_le_bytes());
    crc32_update(c, payload) ^ 0xFFFF_FFFF
}

/// Why a frame could not be decoded at some offset.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum FrameError {
    /// Fewer bytes remain than a header needs — clean EOF when 0 remain,
    /// torn header otherwise.
    Truncated,
    /// The length field exceeds the caller's payload bound (garbage
    /// header, or a peer pushing past its negotiated limit).
    BadLength(u32),
    /// The payload's CRC does not match the header.
    BadCrc,
    /// The payload's tag byte is unknown or its fields are malformed.
    Malformed,
}

impl std::fmt::Display for FrameError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            FrameError::Truncated => write!(f, "frame truncated mid-header or mid-payload"),
            FrameError::BadLength(len) => {
                write!(f, "frame length field {len} exceeds the payload bound")
            }
            FrameError::BadCrc => write!(f, "frame CRC mismatch"),
            FrameError::Malformed => write!(f, "frame payload is malformed"),
        }
    }
}

impl std::error::Error for FrameError {}

/// Append the frame envelope around `payload`, stamped `seq`, to `out`.
pub fn encode_frame_into(seq: u64, payload: &[u8], out: &mut Vec<u8>) {
    out.extend_from_slice(&(payload.len() as u32).to_le_bytes());
    out.extend_from_slice(&frame_crc(seq, payload).to_le_bytes());
    out.extend_from_slice(&seq.to_le_bytes());
    out.extend_from_slice(payload);
}

/// Extract one frame's CRC-verified `(seq, payload)` at `bytes[offset..]`,
/// plus the offset just past the frame, accepting payloads up to
/// `max_payload` bytes.
pub fn frame_at_bounded(
    bytes: &[u8],
    offset: usize,
    max_payload: u32,
) -> Result<(u64, &[u8], usize), FrameError> {
    let remaining = &bytes[offset.min(bytes.len())..];
    if remaining.len() < HEADER_BYTES {
        return Err(FrameError::Truncated);
    }
    let len = u32::from_le_bytes(remaining[0..4].try_into().unwrap());
    if len > max_payload {
        return Err(FrameError::BadLength(len));
    }
    let crc = u32::from_le_bytes(remaining[4..8].try_into().unwrap());
    let seq = u64::from_le_bytes(remaining[8..16].try_into().unwrap());
    let end = HEADER_BYTES + len as usize;
    if remaining.len() < end {
        return Err(FrameError::Truncated);
    }
    let payload = &remaining[HEADER_BYTES..end];
    if frame_crc(seq, payload) != crc {
        return Err(FrameError::BadCrc);
    }
    Ok((seq, payload, offset + end))
}

/// [`frame_at_bounded`] at the permissive [`MAX_PAYLOAD`] bound — the
/// WAL's decoder entry point.
pub fn frame_at(bytes: &[u8], offset: usize) -> Result<(u64, &[u8], usize), FrameError> {
    frame_at_bounded(bytes, offset, MAX_PAYLOAD)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn crc32_known_vectors() {
        assert_eq!(crc32(b""), 0x0000_0000);
        assert_eq!(crc32(b"123456789"), 0xCBF4_3926);
        assert_eq!(crc32(b"The quick brown fox jumps over the lazy dog"), 0x414F_A339);
    }

    #[test]
    fn envelope_roundtrips() {
        let mut buf = Vec::new();
        encode_frame_into(7, b"hello", &mut buf);
        encode_frame_into(8, b"", &mut buf);
        let (seq, payload, next) = frame_at(&buf, 0).unwrap();
        assert_eq!((seq, payload), (7, &b"hello"[..]));
        let (seq, payload, end) = frame_at(&buf, next).unwrap();
        assert_eq!((seq, payload), (8, &b""[..]));
        assert_eq!(end, buf.len());
        assert_eq!(frame_at(&buf, end), Err(FrameError::Truncated), "clean EOF");
    }

    #[test]
    fn flipped_seq_or_payload_bit_fails_crc() {
        let mut buf = Vec::new();
        encode_frame_into(3, b"payload", &mut buf);
        let mut seq_flip = buf.clone();
        seq_flip[8] ^= 0x01;
        assert_eq!(frame_at(&seq_flip, 0), Err(FrameError::BadCrc));
        let mut payload_flip = buf.clone();
        let last = payload_flip.len() - 1;
        payload_flip[last] ^= 0x01;
        assert_eq!(frame_at(&payload_flip, 0), Err(FrameError::BadCrc));
    }

    #[test]
    fn bounded_decode_refuses_oversized_length_without_allocating() {
        let mut buf = Vec::new();
        encode_frame_into(1, &[0u8; 64], &mut buf);
        assert!(frame_at_bounded(&buf, 0, 64).is_ok());
        assert_eq!(frame_at_bounded(&buf, 0, 63), Err(FrameError::BadLength(64)));
        let mut garbage = Vec::new();
        garbage.extend_from_slice(&u32::MAX.to_le_bytes());
        garbage.extend_from_slice(&[0u8; 12]);
        assert_eq!(frame_at(&garbage, 0), Err(FrameError::BadLength(u32::MAX)));
    }

    #[test]
    fn torn_tail_is_truncated_not_garbage() {
        let mut buf = Vec::new();
        encode_frame_into(5, b"abcdef", &mut buf);
        for cut in 1..buf.len() {
            assert_eq!(
                frame_at(&buf[..buf.len() - cut], 0),
                Err(FrameError::Truncated),
                "cut {cut}"
            );
        }
    }
}
