//! Request/response codecs for the network protocol.
//!
//! Messages are encoded the same way WAL record payloads are — a tag
//! byte followed by little-endian fields and length-prefixed byte
//! strings — and travel inside the shared frame envelope
//! ([`crate::frame`]), whose `seq` field carries the **request id**:
//! responses echo the id of the request they answer, so a session may
//! pipeline requests and match responses out of order.
//!
//! The decoders accept exactly what the encoders produce: unknown tags,
//! short fields, bad UTF-8, and trailing bytes inside a frame are all
//! `None` (surfaced as [`crate::frame::FrameError::Malformed`] by the
//! connection layer). A malformed message is a protocol violation, not a
//! recoverable hiccup — the session closes.

/// The protocol version [`Request::Hello`] negotiates. Bumped on any
/// incompatible codec change; a server refuses other versions with
/// [`WireFault::VersionMismatch`].
pub const PROTOCOL_VERSION: u32 = 1;

/// The typed objects the protocol can open and operate on, mirroring the
/// `Db` facade's typed handles.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum TypeTag {
    /// `AccountObject` (balance, credit/debit/post).
    Account,
    /// `CounterObject` (inc/dec/read).
    Counter,
    /// `QueueObject<i64>` (enq/deq).
    QueueI64,
}

impl TypeTag {
    fn to_byte(self) -> u8 {
        match self {
            TypeTag::Account => 1,
            TypeTag::Counter => 2,
            TypeTag::QueueI64 => 3,
        }
    }

    fn from_byte(b: u8) -> Option<TypeTag> {
        match b {
            1 => Some(TypeTag::Account),
            2 => Some(TypeTag::Counter),
            3 => Some(TypeTag::QueueI64),
            _ => None,
        }
    }
}

/// One typed operation inside a [`Request::Transact`] batch. Amounts are
/// integers on the wire; the server lifts them into `Rational`.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum WireOp {
    /// `credit(amount)` on the account named `name`.
    Credit {
        /// Account name.
        name: String,
        /// Amount (integer money).
        amount: i64,
    },
    /// `debit(amount)` on the account named `name` (may be refused as an
    /// overdraft — the refusal is a response, not an error).
    Debit {
        /// Account name.
        name: String,
        /// Amount (integer money).
        amount: i64,
    },
    /// `inc(delta)` on the counter named `name` (negative = dec).
    Inc {
        /// Counter name.
        name: String,
        /// Signed increment.
        delta: i64,
    },
    /// `enq(item)` on the queue named `name`.
    Enq {
        /// Queue name.
        name: String,
        /// The item.
        item: i64,
    },
    /// `deq()` on the queue named `name`.
    Deq {
        /// Queue name.
        name: String,
    },
}

/// The pinned response of one executed [`WireOp`], in batch order.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum OpResult {
    /// The operation returns nothing (credit, inc, enq).
    Unit,
    /// A debit's outcome: `true` = debited, `false` = overdraft refusal.
    Debited(bool),
    /// An integer response (a dequeued item).
    Int(i64),
}

/// One typed read view inside a [`Response::Views`] answer, in query
/// order.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum View {
    /// An account balance as an exact rational `num/den`.
    Balance {
        /// Numerator.
        num: i64,
        /// Denominator (> 0).
        den: i64,
    },
    /// A counter value.
    Count(i64),
    /// A queue's items, front first.
    Items(Vec<i64>),
}

/// Typed refusals a server sends instead of an answer. The client maps
/// these onto the `HccError` taxonomy (`Overloaded` is transient and
/// retried with backoff; protocol violations are fatal).
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum WireFault {
    /// The server refused the handshake: incompatible protocol version.
    VersionMismatch {
        /// The version the server speaks.
        server: u32,
        /// The version the client offered.
        client: u32,
    },
    /// The server refused the handshake: bad auth token.
    BadToken,
    /// Admission control shed this request: the session (or the server)
    /// is at its in-flight cap. Transient — back off and retry.
    Overloaded {
        /// In-flight requests counted against the cap at refusal time.
        in_flight: u32,
        /// The cap that was hit.
        cap: u32,
    },
    /// The named object is already open as a different type.
    TypeMismatch {
        /// The contested object name.
        object: String,
    },
    /// A `read at` timestamp was already folded away by compaction.
    SnapshotCompacted {
        /// The requested timestamp.
        requested: u64,
        /// The lowest still-readable timestamp.
        floor: u64,
    },
    /// A `read at` timestamp is not readable right now (still in
    /// flight). Transient.
    SnapshotContended {
        /// The requested timestamp.
        requested: u64,
    },
    /// The server is draining: no new work is admitted. Reconnect after
    /// the restart (the request was **not** executed).
    ShuttingDown,
    /// The request failed transiently server-side (e.g. its retry budget
    /// exhausted on deadlock dooms); the transaction was aborted and may
    /// be resubmitted.
    Transient {
        /// The server-side error's display.
        detail: String,
    },
    /// The request failed fatally server-side; resubmitting cannot help.
    Fatal {
        /// The server-side error's display.
        detail: String,
    },
}

/// Client → server messages.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum Request {
    /// The session handshake — must be the first request on a
    /// connection. The server answers [`Response::Welcome`] or a
    /// handshake [`WireFault`] and closes.
    Hello {
        /// The protocol version the client speaks.
        version: u32,
        /// Auth token (stub: compared verbatim against the server's
        /// configured token, if any).
        token: String,
        /// The in-flight cap the client asks for; the server answers
        /// with the negotiated (possibly lower) cap.
        max_in_flight: u32,
    },
    /// Open (and recover) the typed object `name` — the wire mirror of
    /// `db.object::<T>(name)`.
    Open {
        /// The object's type.
        tag: TypeTag,
        /// The object's name.
        name: String,
    },
    /// Execute `ops` as one transaction; commit and answer
    /// [`Response::Committed`] with each op's pinned response.
    Transact {
        /// The batch, executed in order.
        ops: Vec<WireOp>,
    },
    /// Snapshot-read the queried objects off the wait-free read path —
    /// at the stable watermark (`at: None`) or a caller-chosen
    /// timestamp (`at: Some(ts)`, time travel).
    Read {
        /// `None` = the server's stable watermark; `Some(ts)` = read at
        /// `ts` exactly.
        at: Option<u64>,
        /// The objects to view.
        queries: Vec<(TypeTag, String)>,
    },
    /// Ask the server to drain and exit (token-authorized at handshake;
    /// the admin stub this protocol version ships).
    Shutdown,
    /// Orderly session close.
    Goodbye,
    /// Ask for the server's positions — answered inline (never queued),
    /// so clients and the replication promote logic can observe the
    /// stable watermark without a full `Transact`/`Read` round-trip.
    Stats,
}

/// Server → client messages.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum Response {
    /// The handshake succeeded.
    Welcome {
        /// The server's protocol version.
        version: u32,
        /// The server-assigned session id.
        session: u64,
        /// The negotiated per-session in-flight cap.
        max_in_flight: u32,
    },
    /// The object is open (recovered state and all).
    OpenOk,
    /// The transaction committed at `ts` with these pinned responses.
    Committed {
        /// The commit timestamp.
        ts: u64,
        /// Per-op responses, batch order.
        results: Vec<OpResult>,
    },
    /// The snapshot views, all consistent at `watermark`.
    Views {
        /// The commit timestamp every view reads at.
        watermark: u64,
        /// Per-query views, query order.
        views: Vec<View>,
    },
    /// A typed refusal.
    Fault(WireFault),
    /// Acknowledges [`Request::Goodbye`] / [`Request::Shutdown`].
    Bye,
    /// The server's positions, answering [`Request::Stats`].
    Stats {
        /// The stable watermark: every commit at or below it is fully
        /// applied and readable on the wait-free snapshot path.
        watermark: u64,
        /// Transactions committed since this server opened its store.
        committed: u64,
        /// Transactions aborted since this server opened its store.
        aborted: u64,
    },
}

// ---- Encoding helpers (the WAL payload idiom) --------------------------
// Crate-visible: the replication codecs (`crate::repl`) share them.

pub(crate) fn put_u32(out: &mut Vec<u8>, v: u32) {
    out.extend_from_slice(&v.to_le_bytes());
}

pub(crate) fn put_u64(out: &mut Vec<u8>, v: u64) {
    out.extend_from_slice(&v.to_le_bytes());
}

fn put_i64(out: &mut Vec<u8>, v: i64) {
    out.extend_from_slice(&v.to_le_bytes());
}

pub(crate) fn put_str(out: &mut Vec<u8>, s: &str) {
    put_u32(out, s.len() as u32);
    out.extend_from_slice(s.as_bytes());
}

pub(crate) struct Cursor<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Cursor<'a> {
    pub(crate) fn new(bytes: &'a [u8]) -> Cursor<'a> {
        Cursor { bytes, pos: 0 }
    }

    pub(crate) fn take(&mut self, n: usize) -> Option<&'a [u8]> {
        let end = self.pos.checked_add(n)?;
        if end > self.bytes.len() {
            return None;
        }
        let s = &self.bytes[self.pos..end];
        self.pos = end;
        Some(s)
    }

    pub(crate) fn u8(&mut self) -> Option<u8> {
        self.take(1).map(|b| b[0])
    }

    pub(crate) fn u32(&mut self) -> Option<u32> {
        self.take(4).map(|b| u32::from_le_bytes(b.try_into().unwrap()))
    }

    pub(crate) fn u64(&mut self) -> Option<u64> {
        self.take(8).map(|b| u64::from_le_bytes(b.try_into().unwrap()))
    }

    fn i64(&mut self) -> Option<i64> {
        self.take(8).map(|b| i64::from_le_bytes(b.try_into().unwrap()))
    }

    pub(crate) fn str(&mut self) -> Option<String> {
        let n = self.u32()?;
        let bytes = self.take(n as usize)?;
        String::from_utf8(bytes.to_vec()).ok()
    }

    pub(crate) fn done(&self) -> bool {
        self.pos == self.bytes.len()
    }
}

/// A message that can travel inside a frame payload. Implemented by
/// [`Request`] and [`Response`]; the connection layer is generic over it.
pub trait WireMsg: Sized {
    /// Append the payload encoding of `self` to `out`.
    fn encode_payload(&self, out: &mut Vec<u8>);

    /// Decode a payload; `None` on any malformation (unknown tag, short
    /// field, bad UTF-8, trailing bytes).
    fn decode_payload(bytes: &[u8]) -> Option<Self>;
}

impl WireOp {
    fn encode(&self, out: &mut Vec<u8>) {
        match self {
            WireOp::Credit { name, amount } => {
                out.push(1);
                put_str(out, name);
                put_i64(out, *amount);
            }
            WireOp::Debit { name, amount } => {
                out.push(2);
                put_str(out, name);
                put_i64(out, *amount);
            }
            WireOp::Inc { name, delta } => {
                out.push(3);
                put_str(out, name);
                put_i64(out, *delta);
            }
            WireOp::Enq { name, item } => {
                out.push(4);
                put_str(out, name);
                put_i64(out, *item);
            }
            WireOp::Deq { name } => {
                out.push(5);
                put_str(out, name);
            }
        }
    }

    fn decode(c: &mut Cursor) -> Option<WireOp> {
        Some(match c.u8()? {
            1 => WireOp::Credit { name: c.str()?, amount: c.i64()? },
            2 => WireOp::Debit { name: c.str()?, amount: c.i64()? },
            3 => WireOp::Inc { name: c.str()?, delta: c.i64()? },
            4 => WireOp::Enq { name: c.str()?, item: c.i64()? },
            5 => WireOp::Deq { name: c.str()? },
            _ => return None,
        })
    }
}

impl OpResult {
    fn encode(&self, out: &mut Vec<u8>) {
        match self {
            OpResult::Unit => out.push(1),
            OpResult::Debited(ok) => {
                out.push(2);
                out.push(u8::from(*ok));
            }
            OpResult::Int(v) => {
                out.push(3);
                put_i64(out, *v);
            }
        }
    }

    fn decode(c: &mut Cursor) -> Option<OpResult> {
        Some(match c.u8()? {
            1 => OpResult::Unit,
            2 => OpResult::Debited(match c.u8()? {
                0 => false,
                1 => true,
                _ => return None,
            }),
            3 => OpResult::Int(c.i64()?),
            _ => return None,
        })
    }
}

impl View {
    fn encode(&self, out: &mut Vec<u8>) {
        match self {
            View::Balance { num, den } => {
                out.push(1);
                put_i64(out, *num);
                put_i64(out, *den);
            }
            View::Count(v) => {
                out.push(2);
                put_i64(out, *v);
            }
            View::Items(items) => {
                out.push(3);
                put_u32(out, items.len() as u32);
                for item in items {
                    put_i64(out, *item);
                }
            }
        }
    }

    fn decode(c: &mut Cursor) -> Option<View> {
        Some(match c.u8()? {
            1 => View::Balance { num: c.i64()?, den: c.i64()? },
            2 => View::Count(c.i64()?),
            3 => {
                let n = c.u32()?;
                let mut items = Vec::with_capacity(n.min(1 << 16) as usize);
                for _ in 0..n {
                    items.push(c.i64()?);
                }
                View::Items(items)
            }
            _ => return None,
        })
    }
}

impl WireFault {
    fn encode(&self, out: &mut Vec<u8>) {
        match self {
            WireFault::VersionMismatch { server, client } => {
                out.push(1);
                put_u32(out, *server);
                put_u32(out, *client);
            }
            WireFault::BadToken => out.push(2),
            WireFault::Overloaded { in_flight, cap } => {
                out.push(3);
                put_u32(out, *in_flight);
                put_u32(out, *cap);
            }
            WireFault::TypeMismatch { object } => {
                out.push(4);
                put_str(out, object);
            }
            WireFault::SnapshotCompacted { requested, floor } => {
                out.push(5);
                put_u64(out, *requested);
                put_u64(out, *floor);
            }
            WireFault::SnapshotContended { requested } => {
                out.push(6);
                put_u64(out, *requested);
            }
            WireFault::ShuttingDown => out.push(7),
            WireFault::Transient { detail } => {
                out.push(8);
                put_str(out, detail);
            }
            WireFault::Fatal { detail } => {
                out.push(9);
                put_str(out, detail);
            }
        }
    }

    fn decode(c: &mut Cursor) -> Option<WireFault> {
        Some(match c.u8()? {
            1 => WireFault::VersionMismatch { server: c.u32()?, client: c.u32()? },
            2 => WireFault::BadToken,
            3 => WireFault::Overloaded { in_flight: c.u32()?, cap: c.u32()? },
            4 => WireFault::TypeMismatch { object: c.str()? },
            5 => WireFault::SnapshotCompacted { requested: c.u64()?, floor: c.u64()? },
            6 => WireFault::SnapshotContended { requested: c.u64()? },
            7 => WireFault::ShuttingDown,
            8 => WireFault::Transient { detail: c.str()? },
            9 => WireFault::Fatal { detail: c.str()? },
            _ => return None,
        })
    }
}

impl WireMsg for Request {
    fn encode_payload(&self, out: &mut Vec<u8>) {
        match self {
            Request::Hello { version, token, max_in_flight } => {
                out.push(1);
                put_u32(out, *version);
                put_str(out, token);
                put_u32(out, *max_in_flight);
            }
            Request::Open { tag, name } => {
                out.push(2);
                out.push(tag.to_byte());
                put_str(out, name);
            }
            Request::Transact { ops } => {
                out.push(3);
                put_u32(out, ops.len() as u32);
                for op in ops {
                    op.encode(out);
                }
            }
            Request::Read { at, queries } => {
                out.push(4);
                match at {
                    None => out.push(0),
                    Some(ts) => {
                        out.push(1);
                        put_u64(out, *ts);
                    }
                }
                put_u32(out, queries.len() as u32);
                for (tag, name) in queries {
                    out.push(tag.to_byte());
                    put_str(out, name);
                }
            }
            Request::Shutdown => out.push(5),
            Request::Goodbye => out.push(6),
            Request::Stats => out.push(7),
        }
    }

    fn decode_payload(bytes: &[u8]) -> Option<Request> {
        let mut c = Cursor::new(bytes);
        let req = match c.u8()? {
            1 => Request::Hello { version: c.u32()?, token: c.str()?, max_in_flight: c.u32()? },
            2 => Request::Open { tag: TypeTag::from_byte(c.u8()?)?, name: c.str()? },
            3 => {
                let n = c.u32()?;
                let mut ops = Vec::with_capacity(n.min(1 << 12) as usize);
                for _ in 0..n {
                    ops.push(WireOp::decode(&mut c)?);
                }
                Request::Transact { ops }
            }
            4 => {
                let at = match c.u8()? {
                    0 => None,
                    1 => Some(c.u64()?),
                    _ => return None,
                };
                let n = c.u32()?;
                let mut queries = Vec::with_capacity(n.min(1 << 12) as usize);
                for _ in 0..n {
                    queries.push((TypeTag::from_byte(c.u8()?)?, c.str()?));
                }
                Request::Read { at, queries }
            }
            5 => Request::Shutdown,
            6 => Request::Goodbye,
            7 => Request::Stats,
            _ => return None,
        };
        c.done().then_some(req)
    }
}

impl WireMsg for Response {
    fn encode_payload(&self, out: &mut Vec<u8>) {
        match self {
            Response::Welcome { version, session, max_in_flight } => {
                out.push(1);
                put_u32(out, *version);
                put_u64(out, *session);
                put_u32(out, *max_in_flight);
            }
            Response::OpenOk => out.push(2),
            Response::Committed { ts, results } => {
                out.push(3);
                put_u64(out, *ts);
                put_u32(out, results.len() as u32);
                for r in results {
                    r.encode(out);
                }
            }
            Response::Views { watermark, views } => {
                out.push(4);
                put_u64(out, *watermark);
                put_u32(out, views.len() as u32);
                for v in views {
                    v.encode(out);
                }
            }
            Response::Fault(fault) => {
                out.push(5);
                fault.encode(out);
            }
            Response::Bye => out.push(6),
            Response::Stats { watermark, committed, aborted } => {
                out.push(7);
                put_u64(out, *watermark);
                put_u64(out, *committed);
                put_u64(out, *aborted);
            }
        }
    }

    fn decode_payload(bytes: &[u8]) -> Option<Response> {
        let mut c = Cursor::new(bytes);
        let resp = match c.u8()? {
            1 => {
                Response::Welcome { version: c.u32()?, session: c.u64()?, max_in_flight: c.u32()? }
            }
            2 => Response::OpenOk,
            3 => {
                let ts = c.u64()?;
                let n = c.u32()?;
                let mut results = Vec::with_capacity(n.min(1 << 12) as usize);
                for _ in 0..n {
                    results.push(OpResult::decode(&mut c)?);
                }
                Response::Committed { ts, results }
            }
            4 => {
                let watermark = c.u64()?;
                let n = c.u32()?;
                let mut views = Vec::with_capacity(n.min(1 << 12) as usize);
                for _ in 0..n {
                    views.push(View::decode(&mut c)?);
                }
                Response::Views { watermark, views }
            }
            5 => Response::Fault(WireFault::decode(&mut c)?),
            6 => Response::Bye,
            7 => Response::Stats { watermark: c.u64()?, committed: c.u64()?, aborted: c.u64()? },
            _ => return None,
        };
        c.done().then_some(resp)
    }
}

impl std::fmt::Display for WireFault {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            WireFault::VersionMismatch { server, client } => {
                write!(
                    f,
                    "protocol version mismatch: server speaks {server}, client offered {client}"
                )
            }
            WireFault::BadToken => write!(f, "handshake refused: bad auth token"),
            WireFault::Overloaded { in_flight, cap } => {
                write!(f, "request shed by admission control: {in_flight} in flight at cap {cap}")
            }
            WireFault::TypeMismatch { object } => {
                write!(f, "object {object:?} is already open as a different type")
            }
            WireFault::SnapshotCompacted { requested, floor } => {
                write!(f, "snapshot {requested} no longer readable (compaction floor {floor})")
            }
            WireFault::SnapshotContended { requested } => {
                write!(f, "snapshot {requested} not readable right now; retry at a fresh watermark")
            }
            WireFault::ShuttingDown => write!(f, "server is draining; reconnect after restart"),
            WireFault::Transient { detail } => write!(f, "transient server failure: {detail}"),
            WireFault::Fatal { detail } => write!(f, "fatal server failure: {detail}"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn requests() -> Vec<Request> {
        vec![
            Request::Hello { version: PROTOCOL_VERSION, token: "t0k3n".into(), max_in_flight: 8 },
            Request::Open { tag: TypeTag::Account, name: "acct".into() },
            Request::Transact {
                ops: vec![
                    WireOp::Credit { name: "acct".into(), amount: 5 },
                    WireOp::Debit { name: "acct".into(), amount: 3 },
                    WireOp::Inc { name: "hits".into(), delta: -2 },
                    WireOp::Enq { name: "q".into(), item: 77 },
                    WireOp::Deq { name: "q".into() },
                ],
            },
            Request::Read {
                at: None,
                queries: vec![(TypeTag::Account, "acct".into()), (TypeTag::QueueI64, "q".into())],
            },
            Request::Read { at: Some(42), queries: vec![(TypeTag::Counter, "hits".into())] },
            Request::Shutdown,
            Request::Goodbye,
            Request::Stats,
        ]
    }

    fn responses() -> Vec<Response> {
        vec![
            Response::Welcome { version: PROTOCOL_VERSION, session: 7, max_in_flight: 4 },
            Response::OpenOk,
            Response::Committed {
                ts: 99,
                results: vec![
                    OpResult::Unit,
                    OpResult::Debited(true),
                    OpResult::Debited(false),
                    OpResult::Int(-12),
                ],
            },
            Response::Views {
                watermark: 41,
                views: vec![
                    View::Balance { num: 7, den: 2 },
                    View::Count(-3),
                    View::Items(vec![1, 2, 3]),
                    View::Items(vec![]),
                ],
            },
            Response::Fault(WireFault::VersionMismatch { server: 1, client: 9 }),
            Response::Fault(WireFault::BadToken),
            Response::Fault(WireFault::Overloaded { in_flight: 9, cap: 8 }),
            Response::Fault(WireFault::TypeMismatch { object: "acct".into() }),
            Response::Fault(WireFault::SnapshotCompacted { requested: 3, floor: 9 }),
            Response::Fault(WireFault::SnapshotContended { requested: 5 }),
            Response::Fault(WireFault::ShuttingDown),
            Response::Fault(WireFault::Transient { detail: "deadlock doom".into() }),
            Response::Fault(WireFault::Fatal { detail: "disk on fire".into() }),
            Response::Bye,
            Response::Stats { watermark: 41, committed: 12, aborted: 3 },
        ]
    }

    fn roundtrip<M: WireMsg + PartialEq + std::fmt::Debug>(msg: &M) {
        let mut buf = Vec::new();
        msg.encode_payload(&mut buf);
        assert_eq!(M::decode_payload(&buf).as_ref(), Some(msg), "roundtrip of {msg:?}");
        // Trailing junk inside the frame is a malformation, not slack.
        let mut longer = buf.clone();
        longer.push(0);
        assert_eq!(M::decode_payload(&longer), None, "trailing byte accepted for {msg:?}");
        // Every proper prefix is malformed, never a panic.
        for cut in 0..buf.len() {
            let _ = M::decode_payload(&buf[..cut]);
        }
    }

    #[test]
    fn every_request_roundtrips() {
        for r in requests() {
            roundtrip(&r);
        }
    }

    #[test]
    fn every_response_roundtrips() {
        for r in responses() {
            roundtrip(&r);
        }
    }

    #[test]
    fn unknown_tags_are_refused() {
        assert_eq!(Request::decode_payload(&[99]), None);
        assert_eq!(Response::decode_payload(&[99]), None);
        assert_eq!(Request::decode_payload(&[]), None);
        // Bad UTF-8 in a name.
        let mut buf = vec![2u8, 1];
        buf.extend_from_slice(&1u32.to_le_bytes());
        buf.push(0xFF);
        assert_eq!(Request::decode_payload(&buf), None);
    }

    #[test]
    fn fault_display_is_honest_prose() {
        let f = WireFault::Overloaded { in_flight: 9, cap: 8 };
        let msg = format!("{f}");
        assert!(msg.contains("shed") && msg.contains('9') && msg.contains('8'), "{msg}");
        assert!(!format!("{}", WireFault::BadToken).contains("BadToken"));
    }
}
