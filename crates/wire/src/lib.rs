//! # hcc-wire — shared framing and the network protocol
//!
//! One `len|crc|seq|payload` frame implementation ([`frame`]) with two
//! consumers: the WAL in `hcc-storage` (where `seq` is the global append
//! ticket) and the TCP protocol here (where `seq` is the request id
//! responses echo). Extracting the envelope means a corruption bug fixed
//! once is fixed for both, and the byte format is pinned by a golden
//! differential test on the storage side.
//!
//! On top of the envelope: typed request/response codecs ([`msg`]) for
//! the operations the `Db` facade exposes, and framed TCP connections
//! ([`conn`]) — the only module in the workspace allowed to touch raw
//! sockets (enforced by `repolint`).
//!
//! See `docs/NETWORK.md` for the protocol walk-through: handshake,
//! admission control, overload semantics, and the `net.*` metrics that
//! make shedding observable.

#![warn(missing_docs)]

pub mod conn;
pub mod frame;
pub mod msg;
pub mod repl;

/// Upper bound on one network frame's payload — far below the WAL's
/// [`frame::MAX_PAYLOAD`]: no single request/response legitimately
/// approaches 1 MiB, and the receive path refuses larger length fields
/// *before* allocating.
pub const MAX_WIRE_PAYLOAD: u32 = 1 << 20;
