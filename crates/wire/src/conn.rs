//! Framed TCP connections: the only place in the workspace that touches
//! raw sockets.
//!
//! A [`Conn`] wraps a `TcpStream` and splits into a [`SendHalf`] and a
//! [`RecvHalf`] (independent OS handles onto the same socket), so a
//! client may pipeline requests from one thread while another drains
//! responses, and a server session may be torn down from outside its
//! blocked reader via [`RecvHalf::shutdown`].
//!
//! Every message travels inside the shared [`crate::frame`] envelope
//! with the **request id** in the `seq` field. The receive path enforces
//! [`crate::MAX_WIRE_PAYLOAD`] *before* allocating — a garbage or
//! hostile length field is refused as [`FrameError::BadLength`], never
//! trusted as an allocation size. A connection that delivers a torn or
//! corrupt frame is not resynchronized by guesswork: the error is
//! surfaced and the session closes.
//!
//! [`SendHalf::send_raw`] exists for fault-injection tests (half-written
//! frames, flipped CRC bits) and deliberately bypasses the encoder.

use std::io::{Read, Write};
use std::net::{Shutdown, SocketAddr, TcpListener, TcpStream, ToSocketAddrs};
use std::time::Duration;

use crate::frame::{self, FrameError, HEADER_BYTES};
use crate::msg::WireMsg;
use crate::MAX_WIRE_PAYLOAD;

/// Why a framed receive or send failed.
#[derive(Debug)]
pub enum WireError {
    /// The socket failed (includes read timeouts as `WouldBlock`/
    /// `TimedOut`, and EOF that tore a frame mid-header or mid-payload
    /// does **not** land here — that is `Frame(Truncated)`).
    Io(std::io::Error),
    /// The peer sent bytes that do not decode: torn frame at disconnect
    /// (`Truncated`), length beyond the negotiated bound (`BadLength`),
    /// corruption (`BadCrc`), or an unknown/ill-formed message
    /// (`Malformed`).
    Frame(FrameError),
}

impl std::fmt::Display for WireError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            WireError::Io(e) => write!(f, "socket error: {e}"),
            WireError::Frame(e) => write!(f, "wire frame refused: {e}"),
        }
    }
}

impl std::error::Error for WireError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            WireError::Io(e) => Some(e),
            WireError::Frame(e) => Some(e),
        }
    }
}

impl From<std::io::Error> for WireError {
    fn from(e: std::io::Error) -> WireError {
        WireError::Io(e)
    }
}

impl From<FrameError> for WireError {
    fn from(e: FrameError) -> WireError {
        WireError::Frame(e)
    }
}

/// A listening socket handing out framed connections.
pub struct Listener {
    inner: TcpListener,
}

impl Listener {
    /// Bind `addr` (e.g. `"127.0.0.1:0"` to let the OS pick a port).
    pub fn bind<A: ToSocketAddrs>(addr: A) -> std::io::Result<Listener> {
        Ok(Listener { inner: TcpListener::bind(addr)? })
    }

    /// The bound address (the source of truth when bound to port 0).
    pub fn local_addr(&self) -> std::io::Result<SocketAddr> {
        self.inner.local_addr()
    }

    /// Block for the next connection.
    pub fn accept(&self) -> std::io::Result<(Conn, SocketAddr)> {
        let (stream, peer) = self.inner.accept()?;
        stream.set_nodelay(true).ok();
        Ok((Conn { stream }, peer))
    }
}

/// Connect to `addr` and return a framed connection.
pub fn connect<A: ToSocketAddrs>(addr: A) -> std::io::Result<Conn> {
    let stream = TcpStream::connect(addr)?;
    stream.set_nodelay(true).ok();
    Ok(Conn { stream })
}

/// One framed, bidirectional connection.
pub struct Conn {
    stream: TcpStream,
}

impl Conn {
    /// Split into independently-owned send and receive halves (two OS
    /// handles onto the same socket).
    pub fn split(self) -> std::io::Result<(SendHalf, RecvHalf)> {
        let write = self.stream.try_clone()?;
        Ok((
            SendHalf { stream: write, buf: Vec::with_capacity(256) },
            RecvHalf { stream: self.stream },
        ))
    }

    /// The remote endpoint.
    pub fn peer_addr(&self) -> std::io::Result<SocketAddr> {
        self.stream.peer_addr()
    }
}

/// The writing half of a [`Conn`].
pub struct SendHalf {
    stream: TcpStream,
    buf: Vec<u8>,
}

impl SendHalf {
    /// Frame and send `msg` stamped with request id `seq`; returns the
    /// bytes put on the wire.
    pub fn send<M: WireMsg>(&mut self, seq: u64, msg: &M) -> std::io::Result<u64> {
        self.buf.clear();
        let mut payload = Vec::with_capacity(64);
        msg.encode_payload(&mut payload);
        frame::encode_frame_into(seq, &payload, &mut self.buf);
        self.stream.write_all(&self.buf)?;
        Ok(self.buf.len() as u64)
    }

    /// Send raw bytes with no framing — fault injection only (torn
    /// frames, flipped CRC bits, oversized length fields).
    pub fn send_raw(&mut self, bytes: &[u8]) -> std::io::Result<()> {
        self.stream.write_all(bytes)
    }

    /// Shut down the write direction (peer's recv sees clean EOF once
    /// buffered bytes drain).
    pub fn shutdown_write(&self) {
        self.stream.shutdown(Shutdown::Write).ok();
    }

    /// Tear down the whole socket (both directions) — unblocks a peer
    /// or sibling half blocked in recv.
    pub fn shutdown_both(&self) {
        self.stream.shutdown(Shutdown::Both).ok();
    }
}

/// The reading half of a [`Conn`].
pub struct RecvHalf {
    stream: TcpStream,
}

enum Filled {
    Full,
    CleanEof,
    TornEof,
}

fn read_full(stream: &mut TcpStream, buf: &mut [u8]) -> std::io::Result<Filled> {
    let mut got = 0;
    while got < buf.len() {
        match stream.read(&mut buf[got..]) {
            Ok(0) => {
                return Ok(if got == 0 { Filled::CleanEof } else { Filled::TornEof });
            }
            Ok(n) => got += n,
            Err(e) if e.kind() == std::io::ErrorKind::Interrupted => continue,
            Err(e) => return Err(e),
        }
    }
    Ok(Filled::Full)
}

impl RecvHalf {
    /// Block for the next frame. `Ok(None)` is a clean close on a frame
    /// boundary; EOF anywhere inside a frame is
    /// `Err(Frame(Truncated))` — a torn disconnect, refused rather than
    /// partially believed. Returns `(request id, message, wire bytes)`.
    pub fn recv<M: WireMsg>(&mut self) -> Result<Option<(u64, M, u64)>, WireError> {
        let mut hdr = [0u8; HEADER_BYTES];
        match read_full(&mut self.stream, &mut hdr)? {
            Filled::CleanEof => return Ok(None),
            Filled::TornEof => return Err(FrameError::Truncated.into()),
            Filled::Full => {}
        }
        let len = u32::from_le_bytes(hdr[0..4].try_into().unwrap());
        if len > MAX_WIRE_PAYLOAD {
            return Err(FrameError::BadLength(len).into());
        }
        let mut whole = vec![0u8; HEADER_BYTES + len as usize];
        whole[..HEADER_BYTES].copy_from_slice(&hdr);
        match read_full(&mut self.stream, &mut whole[HEADER_BYTES..])? {
            Filled::Full => {}
            Filled::CleanEof | Filled::TornEof => return Err(FrameError::Truncated.into()),
        }
        let (seq, payload, _) = frame::frame_at_bounded(&whole, 0, MAX_WIRE_PAYLOAD)?;
        match M::decode_payload(payload) {
            Some(msg) => Ok(Some((seq, msg, whole.len() as u64))),
            None => Err(FrameError::Malformed.into()),
        }
    }

    /// Bound how long one `recv` may block (`None` = forever). Timeouts
    /// surface as `WireError::Io` with kind `WouldBlock`/`TimedOut`.
    pub fn set_read_timeout(&self, timeout: Option<Duration>) -> std::io::Result<()> {
        self.stream.set_read_timeout(timeout)
    }

    /// Tear down the whole socket — unblocks this half if parked in
    /// `recv` from another thread holding the send half.
    pub fn shutdown_both(&self) {
        self.stream.shutdown(Shutdown::Both).ok();
    }
}

impl WireError {
    /// Was this a read timeout (socket alive, nothing arrived in time)?
    pub fn is_timeout(&self) -> bool {
        matches!(
            self,
            WireError::Io(e) if matches!(
                e.kind(),
                std::io::ErrorKind::WouldBlock | std::io::ErrorKind::TimedOut
            )
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::frame::frame_crc;
    use crate::msg::{Request, Response, WireFault, WireOp};

    fn pair() -> (Conn, Conn) {
        let listener = Listener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap();
        let client = connect(addr).unwrap();
        let (server, _) = listener.accept().unwrap();
        (client, server)
    }

    #[test]
    fn pipelined_requests_roundtrip_with_ids() {
        let (client, server) = pair();
        let (mut ctx, mut crx) = client.split().unwrap();
        let (mut stx, mut srx) = server.split().unwrap();

        let reqs = [
            Request::Transact { ops: vec![WireOp::Credit { name: "a".into(), amount: 1 }] },
            Request::Read { at: None, queries: vec![] },
            Request::Goodbye,
        ];
        for (i, r) in reqs.iter().enumerate() {
            let n = ctx.send(i as u64 + 1, r).unwrap();
            assert!(n > HEADER_BYTES as u64);
        }
        for (i, r) in reqs.iter().enumerate() {
            let (seq, got, _) = srx.recv::<Request>().unwrap().unwrap();
            assert_eq!(seq, i as u64 + 1);
            assert_eq!(&got, r);
        }
        // Responses echo request ids, possibly out of order.
        stx.send(2, &Response::Fault(WireFault::ShuttingDown)).unwrap();
        stx.send(1, &Response::Bye).unwrap();
        let (seq, _, _) = crx.recv::<Response>().unwrap().unwrap();
        assert_eq!(seq, 2);
        let (seq, _, _) = crx.recv::<Response>().unwrap().unwrap();
        assert_eq!(seq, 1);
    }

    #[test]
    fn clean_close_on_frame_boundary_is_none() {
        let (client, server) = pair();
        let (mut ctx, _crx) = client.split().unwrap();
        let (_stx, mut srx) = server.split().unwrap();
        ctx.send(1, &Request::Goodbye).unwrap();
        ctx.shutdown_write();
        let (seq, _, _) = srx.recv::<Request>().unwrap().unwrap();
        assert_eq!(seq, 1);
        assert!(srx.recv::<Request>().unwrap().is_none(), "clean EOF");
    }

    #[test]
    fn half_written_frame_at_disconnect_is_truncated() {
        let (client, server) = pair();
        let (mut ctx, _crx) = client.split().unwrap();
        let (_stx, mut srx) = server.split().unwrap();
        let mut framed = Vec::new();
        let mut payload = Vec::new();
        Request::Goodbye.encode_payload(&mut payload);
        frame::encode_frame_into(9, &payload, &mut framed);
        ctx.send_raw(&framed[..framed.len() - 1]).unwrap();
        ctx.shutdown_write();
        match srx.recv::<Request>() {
            Err(WireError::Frame(FrameError::Truncated)) => {}
            other => panic!("expected torn-frame refusal, got {other:?}"),
        }
    }

    #[test]
    fn flipped_crc_bit_is_refused_not_decoded() {
        let (client, server) = pair();
        let (mut ctx, _crx) = client.split().unwrap();
        let (_stx, mut srx) = server.split().unwrap();
        let mut framed = Vec::new();
        let mut payload = Vec::new();
        Request::Shutdown.encode_payload(&mut payload);
        frame::encode_frame_into(3, &payload, &mut framed);
        let last = framed.len() - 1;
        framed[last] ^= 0x01;
        ctx.send_raw(&framed).unwrap();
        match srx.recv::<Request>() {
            Err(WireError::Frame(FrameError::BadCrc)) => {}
            other => panic!("expected CRC refusal, got {other:?}"),
        }
    }

    #[test]
    fn oversized_length_field_is_refused_before_allocation() {
        let (client, server) = pair();
        let (mut ctx, _crx) = client.split().unwrap();
        let (_stx, mut srx) = server.split().unwrap();
        let mut hostile = Vec::new();
        hostile.extend_from_slice(&u32::MAX.to_le_bytes());
        hostile.extend_from_slice(&[0u8; 12]);
        ctx.send_raw(&hostile).unwrap();
        match srx.recv::<Request>() {
            Err(WireError::Frame(FrameError::BadLength(len))) => assert_eq!(len, u32::MAX),
            other => panic!("expected length refusal, got {other:?}"),
        }
    }

    #[test]
    fn well_framed_garbage_payload_is_malformed() {
        let (client, server) = pair();
        let (mut ctx, _crx) = client.split().unwrap();
        let (_stx, mut srx) = server.split().unwrap();
        let payload = [99u8, 1, 2, 3];
        let mut framed = Vec::new();
        framed.extend_from_slice(&(payload.len() as u32).to_le_bytes());
        framed.extend_from_slice(&frame_crc(5, &payload).to_le_bytes());
        framed.extend_from_slice(&5u64.to_le_bytes());
        framed.extend_from_slice(&payload);
        ctx.send_raw(&framed).unwrap();
        match srx.recv::<Request>() {
            Err(WireError::Frame(FrameError::Malformed)) => {}
            other => panic!("expected malformed refusal, got {other:?}"),
        }
    }

    #[test]
    fn read_timeout_is_transient_io() {
        let (client, server) = pair();
        let (_ctx, _crx) = client.split().unwrap();
        let (_stx, mut srx) = server.split().unwrap();
        srx.set_read_timeout(Some(Duration::from_millis(20))).unwrap();
        let err = srx.recv::<Request>().unwrap_err();
        assert!(err.is_timeout(), "{err:?}");
    }
}
