//! Replication stream messages: `ReplHello` / `ReplBatch` / `ReplAck`.
//!
//! A follower dials the primary's replication listener and the two speak
//! [`ReplMsg`] over the ordinary framed connection ([`crate::conn`]):
//!
//! 1. follower → [`ReplMsg::Hello`] — version, token, and the last
//!    ticket its replica log holds durably (resume point);
//! 2. primary → [`ReplMsg::Welcome`] (or [`ReplMsg::Fault`] and close);
//! 3. primary → [`ReplMsg::Batch`]* — **raw WAL frames in global ticket
//!    order**, each still wearing the golden-pinned `len|crc|seq|payload`
//!    envelope ([`crate::frame`]) exactly as it sits in the primary's
//!    stripes, so the follower appends bytes it can re-verify and the
//!    converged log prefix is byte-identical after a ticket-ordered
//!    merge;
//! 4. follower → [`ReplMsg::Ack`] per batch — the highest ticket now
//!    durable in its replica log (under its own durability level).
//!
//! A batch also carries the primary's **positions at sample time**: its
//! stable watermark and the last ticket it had issued when that
//! watermark was read. The pair is what lets a lagging follower serve
//! *consistent-prefix* snapshot reads: every commit with timestamp ≤
//! `watermark` already had a ticket ≤ `ticket` when the sample was taken
//! (timestamps are allocated before the commit record is ticketed, and
//! the watermark excludes everything still in flight), so once the
//! follower has applied all tickets up to `ticket`, exposing `watermark`
//! to readers can never show a history with a hole in it. An empty
//! batch is a heartbeat refreshing exactly those positions.
//!
//! Codecs follow the [`crate::msg`] discipline: strict, length-checked,
//! trailing bytes refused — a malformed replication message closes the
//! stream (the follower re-dials and resumes from its durable ticket).

use crate::msg::{put_str, put_u32, put_u64, Cursor, WireMsg};

/// The replication protocol version [`ReplMsg::Hello`] negotiates —
/// independent of the client protocol's [`crate::msg::PROTOCOL_VERSION`].
pub const REPL_PROTOCOL_VERSION: u32 = 1;

/// One replication-stream message. The stream is strictly alternating
/// after the handshake: the primary sends batches, the follower answers
/// each with an ack.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum ReplMsg {
    /// `ReplHello` — the follower's opener.
    Hello {
        /// Replication protocol version ([`REPL_PROTOCOL_VERSION`]).
        version: u32,
        /// Auth token (same stub as the client handshake).
        token: String,
        /// The last ticket durable in the follower's replica log; the
        /// primary resumes the stream at `last_ticket + 1`.
        last_ticket: u64,
    },
    /// The primary accepted the `ReplHello`.
    Welcome {
        /// The primary's replication protocol version.
        version: u32,
        /// The last ticket the primary's log held at accept time.
        frontier: u64,
    },
    /// `ReplBatch` — zero or more raw WAL frames in ticket order, plus
    /// the primary's sampled positions (an empty batch is a heartbeat).
    Batch {
        /// The primary's stable watermark, read **before** `ticket`.
        watermark: u64,
        /// The last ticket the primary had issued when `watermark` was
        /// sampled — the follower may expose `watermark` to readers once
        /// it has applied every ticket up to this one.
        ticket: u64,
        /// Concatenated WAL frames (`len|crc|seq|payload` each), strictly
        /// ascending in `seq`. Empty for a heartbeat.
        frames: Vec<u8>,
    },
    /// `ReplAck` — the highest ticket now durable in the replica log.
    Ack {
        /// Durable ticket (0 = nothing yet).
        ticket: u64,
    },
    /// The primary refused the handshake or the stream.
    Fault {
        /// Why, in prose.
        detail: String,
    },
}

impl WireMsg for ReplMsg {
    fn encode_payload(&self, out: &mut Vec<u8>) {
        match self {
            ReplMsg::Hello { version, token, last_ticket } => {
                out.push(1);
                put_u32(out, *version);
                put_str(out, token);
                put_u64(out, *last_ticket);
            }
            ReplMsg::Welcome { version, frontier } => {
                out.push(2);
                put_u32(out, *version);
                put_u64(out, *frontier);
            }
            ReplMsg::Batch { watermark, ticket, frames } => {
                out.push(3);
                put_u64(out, *watermark);
                put_u64(out, *ticket);
                put_u32(out, frames.len() as u32);
                out.extend_from_slice(frames);
            }
            ReplMsg::Ack { ticket } => {
                out.push(4);
                put_u64(out, *ticket);
            }
            ReplMsg::Fault { detail } => {
                out.push(5);
                put_str(out, detail);
            }
        }
    }

    fn decode_payload(bytes: &[u8]) -> Option<ReplMsg> {
        let mut c = Cursor::new(bytes);
        let msg = match c.u8()? {
            1 => ReplMsg::Hello { version: c.u32()?, token: c.str()?, last_ticket: c.u64()? },
            2 => ReplMsg::Welcome { version: c.u32()?, frontier: c.u64()? },
            3 => {
                let watermark = c.u64()?;
                let ticket = c.u64()?;
                let n = c.u32()?;
                let frames = c.take(n as usize)?.to_vec();
                ReplMsg::Batch { watermark, ticket, frames }
            }
            4 => ReplMsg::Ack { ticket: c.u64()? },
            5 => ReplMsg::Fault { detail: c.str()? },
            _ => return None,
        };
        c.done().then_some(msg)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::frame::encode_frame_into;

    fn messages() -> Vec<ReplMsg> {
        let mut frames = Vec::new();
        encode_frame_into(11, b"first", &mut frames);
        encode_frame_into(12, b"", &mut frames);
        vec![
            ReplMsg::Hello { version: REPL_PROTOCOL_VERSION, token: "t".into(), last_ticket: 10 },
            ReplMsg::Welcome { version: REPL_PROTOCOL_VERSION, frontier: 42 },
            ReplMsg::Batch { watermark: 9, ticket: 12, frames },
            ReplMsg::Batch { watermark: 0, ticket: 0, frames: Vec::new() },
            ReplMsg::Ack { ticket: 12 },
            ReplMsg::Fault { detail: "bad token".into() },
        ]
    }

    #[test]
    fn every_message_roundtrips() {
        for msg in messages() {
            let mut buf = Vec::new();
            msg.encode_payload(&mut buf);
            assert_eq!(ReplMsg::decode_payload(&buf).as_ref(), Some(&msg), "roundtrip {msg:?}");
            let mut longer = buf.clone();
            longer.push(0);
            assert_eq!(ReplMsg::decode_payload(&longer), None, "trailing byte for {msg:?}");
            for cut in 0..buf.len() {
                let _ = ReplMsg::decode_payload(&buf[..cut]);
            }
        }
    }

    #[test]
    fn unknown_tags_are_refused() {
        assert_eq!(ReplMsg::decode_payload(&[99]), None);
        assert_eq!(ReplMsg::decode_payload(&[]), None);
    }

    #[test]
    fn batch_frames_survive_the_trip_byte_identically() {
        let mut frames = Vec::new();
        encode_frame_into(7, b"payload", &mut frames);
        let msg = ReplMsg::Batch { watermark: 3, ticket: 7, frames: frames.clone() };
        let mut buf = Vec::new();
        msg.encode_payload(&mut buf);
        match ReplMsg::decode_payload(&buf) {
            Some(ReplMsg::Batch { frames: got, .. }) => assert_eq!(got, frames),
            other => panic!("decoded {other:?}"),
        }
    }
}
