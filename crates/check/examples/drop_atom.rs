//! What an unsound table looks like: drop one atom from the queue's
//! derived relation and let the checker produce its minimized
//! counterexample — the mutation experiment `adtcheck`'s CI negative
//! test runs, as a human-readable walkthrough (pasted into
//! `docs/CHECKING.md`).
//!
//! ```text
//! cargo run --release -p hcc-check --example drop_atom
//! ```

use hcc_check::{check_soundness, render_counterexample, CheckInput, Depth};
use hcc_relations::tables::AdtConfig;

fn main() {
    let input = CheckInput::from_adt_config(AdtConfig::queue());
    println!("FIFO-Queue stated atoms:");
    for atom in &input.atoms {
        println!("    {atom:?}");
    }

    for atom in input.atoms.clone() {
        let weakened = input.without_atom(&atom);
        let report = check_soundness(&weakened, Depth::new(3));
        println!("\nwithout {atom:?} — {} schedules searched:", report.schedules);
        match &report.counterexample {
            Some(cex) => print!("{}", render_counterexample(&weakened.name, cex)),
            None => {
                println!("{}: still sound (the atom is conservative at this depth)", weakened.name)
            }
        }
    }
}
