//! Satellite check: the symmetric closure is applied *consistently*.
//!
//! `ConflictTable` lets a type state each dependency once, in either
//! direction, with the closure applied at lookup: `conflicts(a, b)` is
//! `related(a, b) || related(b, a)`, where `related` probes the stated
//! atoms under the pair's key condition. Two things must therefore
//! never disagree, no matter how lopsidedly the atoms were stated:
//!
//! * the lookup order — `conflicts(a, b)` and `conflicts(b, a)` query
//!   the atom set as `(req, held)` and `(held, req)` respectively, and
//!   must give one answer;
//! * the two closures — the live `SpecLock` (what the lock manager
//!   enforces) and `CheckInput` (what every analysis in this crate
//!   searches under) close the same stated atoms independently, and
//!   must agree pairwise.
//!
//! Exercised against a probe type whose table we control completely:
//! one deterministic maximally-asymmetric table, then random atom sets.

use hcc_check::CheckInput;
use hcc_core::runtime::{AdtDef, ConflictSpec, ConflictTable, LockSpec, RedoDecodeError, SpecLock};
use hcc_relations::relation::{Atom, Cond, OpClass};
use hcc_spec::adt::{Adt, SharedAdt, SpecState};
use hcc_spec::{Inv, Operation, Value};
use proptest::prelude::*;
use std::collections::BTreeSet;
use std::sync::{Arc, Mutex};

/// The atoms the probe's next `conflict_spec()` call will state.
/// `SpecLock::from_def` copies a `Table`'s atoms without memoizing, so
/// each test case installs its set and builds a fresh lock.
static PROBE_ATOMS: Mutex<BTreeSet<Atom>> = Mutex::new(BTreeSet::new());

/// Both tests mutate [`PROBE_ATOMS`]; serialize them.
static SERIAL: Mutex<()> = Mutex::new(());

/// Probe invocations: class name (`a`/`b`/`c`) and key (`0`/`1`).
#[derive(Clone, Debug, PartialEq)]
struct ProbeOp(&'static str, i64);

/// A total serial specification over the probe alphabet — every op is
/// legal everywhere (this file audits the closure, not legality).
struct ProbeSpec;

impl Adt for ProbeSpec {
    fn initial(&self) -> SpecState {
        SpecState(Value::Unit)
    }
    fn step(&self, state: &SpecState, _inv: &Inv) -> Vec<(Value, SpecState)> {
        vec![(Value::Unit, state.clone())]
    }
    fn type_name(&self) -> &'static str {
        "Probe"
    }
}

/// The probe `AdtDef`: just enough to build a [`SpecLock`] — the
/// storage-facing half is unreachable in these tests.
#[derive(Default)]
struct Probe;

impl AdtDef for Probe {
    type State = ();
    type Op = ProbeOp;
    type Res = ();

    fn type_name(&self) -> &'static str {
        "Probe"
    }
    fn initial(&self) -> Self::State {}
    fn respond(&self, _state: &Self::State, _op: &Self::Op) -> Vec<Self::Res> {
        vec![()]
    }
    fn apply(&self, _state: &mut Self::State, _op: &Self::Op, _res: &Self::Res) {}
    fn is_read(&self, _op: &Self::Op, _res: &Self::Res) -> bool {
        false
    }
    fn spec_op(&self, op: &Self::Op, _res: &Self::Res) -> Operation {
        Operation::new(Inv::unary(op.0, op.1), Value::Unit)
    }
    fn conflict_spec(&self) -> ConflictSpec {
        ConflictSpec::Table(ConflictTable {
            name: "probe",
            classify: probe_classify,
            atoms: PROBE_ATOMS.lock().unwrap().clone(),
        })
    }
    fn encode_op(&self, _op: &Self::Op, _res: &Self::Res) -> Vec<u8> {
        unreachable!("the probe never touches storage")
    }
    fn decode_op(&self, _bytes: &[u8]) -> Result<(Self::Op, Self::Res), RedoDecodeError> {
        unreachable!("the probe never touches storage")
    }
    fn encode_state(&self, _state: &Self::State) -> Vec<u8> {
        unreachable!("the probe never touches storage")
    }
    fn decode_state(&self, _bytes: &[u8]) -> Result<Self::State, RedoDecodeError> {
        unreachable!("the probe never touches storage")
    }
}

fn probe_classify(q: &Operation) -> OpClass {
    OpClass::new(q.inv.op)
}

/// Three classes × two keys: enough instances that `KeyEq` and `KeyNeq`
/// atoms each hit some pairs and miss others.
fn executed_alphabet() -> Vec<ProbeOp> {
    ["a", "b", "c"].iter().flat_map(|&c| [ProbeOp(c, 0), ProbeOp(c, 1)]).collect()
}

/// Assert, over every ordered pair of probe instances, that the lock's
/// closure is symmetric, matches the stated one-directional lookups,
/// and agrees with the analyzer's independent closure of `table`.
fn assert_closure_consistent(table: &ConflictTable) {
    let lock = SpecLock::<Probe>::from_def();
    let input = CheckInput::from_table(
        Arc::new(ProbeSpec) as SharedAdt,
        executed_alphabet().iter().map(|op| Probe.spec_op(op, &())).collect(),
        table,
    );
    for x in &executed_alphabet() {
        for y in &executed_alphabet() {
            let (ex, ey) = ((x.clone(), ()), (y.clone(), ()));
            let (qx, qy) = (Probe.spec_op(x, &()), Probe.spec_op(y, &()));
            let forward = lock.conflicts(&ex, &ey);
            assert_eq!(
                forward,
                lock.conflicts(&ey, &ex),
                "lookup order disagrees on {x:?} vs {y:?}"
            );
            assert_eq!(
                forward,
                lock.related(&qx, &qy) || lock.related(&qy, &qx),
                "the closure is not the union of the directional lookups for {x:?} vs {y:?}"
            );
            assert_eq!(
                forward,
                input.conflicts(&qx, &qy),
                "SpecLock and CheckInput disagree on {x:?} vs {y:?}"
            );
        }
    }
}

/// The worst case stated by hand: every atom in one direction only.
#[test]
fn asymmetric_entries_close_symmetrically() {
    let _g = SERIAL.lock().unwrap_or_else(|e| e.into_inner());
    let table = ConflictTable::new("probe", probe_classify)
        .rule("a", "b", Cond::KeyEq)
        .rule("b", "c", Cond::KeyNeq)
        .rule("c", "a", Cond::KeyEq)
        .rule("a", "a", Cond::KeyNeq);
    *PROBE_ATOMS.lock().unwrap() = table.atoms.clone();
    assert_closure_consistent(&table);

    // Spot-check the deliberate asymmetries through the closed lookup.
    let lock = SpecLock::<Probe>::from_def();
    let e = |c, k| (ProbeOp(c, k), ());
    assert!(lock.conflicts(&e("a", 0), &e("b", 0)), "stated direction");
    assert!(lock.conflicts(&e("b", 0), &e("a", 0)), "closed direction");
    assert!(lock.conflicts(&e("c", 1), &e("b", 0)), "closed KeyNeq direction");
    assert!(!lock.conflicts(&e("b", 0), &e("c", 0)), "KeyNeq spares equal keys");
    assert!(lock.conflicts(&e("a", 0), &e("a", 1)), "self-class KeyNeq");
    assert!(!lock.conflicts(&e("a", 0), &e("a", 0)), "no a=a atom under KeyEq");
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Random tables: whatever subset of atoms is stated, in whatever
    /// directions, the closed relation never disagrees with itself.
    #[test]
    fn random_tables_close_symmetrically(
        entries in prop::collection::vec((0usize..3, 0usize..3, 0usize..2), 0..12)
    ) {
        let _g = SERIAL.lock().unwrap_or_else(|e| e.into_inner());
        let classes = ["a", "b", "c"];
        let mut table = ConflictTable::new("probe", probe_classify);
        for (r, c, cond) in entries {
            let cond = if cond == 0 { Cond::KeyEq } else { Cond::KeyNeq };
            table = table.rule(classes[r], classes[c], cond);
        }
        *PROBE_ATOMS.lock().unwrap() = table.atoms.clone();
        assert_closure_consistent(&table);
    }
}
