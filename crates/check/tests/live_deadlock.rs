//! The static deadlock prediction, cross-checked against reality: the
//! possible-waits analysis says the queue's Table-II relation admits
//! the `hold Enq, want Deq` two-party cycle — so two real transactions
//! driven into exactly that shape must trip the runtime's
//! `DeadlockDetector`, visible both through `detector().victims()` and
//! the `deadlock.victims` metric the manager mirrors it into.

use hcc_adts::fifo_queue::{QueueObject, QueueTableII};
use hcc_check::{deadlock_potential, CheckInput};
use hcc_relations::relation::OpClass;
use hcc_relations::tables::AdtConfig;
use hcc_txn::TxnManager;
use std::sync::Arc;
use std::time::Duration;

#[test]
fn predicted_queue_cycle_is_real() {
    // Static half: the analysis predicts the Enq/Enq-via-Deq cycle.
    let input = CheckInput::from_adt_config(AdtConfig::queue());
    let (enq, deq) = (OpClass::new("Enq"), OpClass::new("Deq"));
    assert!(
        deadlock_potential(&input, 3).iter().any(|c| c.holders == vec![enq.clone(), enq.clone()]
            && c.requests == vec![deq.clone(), deq.clone()]),
        "the static analysis no longer predicts the queue cycle"
    );

    // Live half: realize the predicted shape. Both transactions enqueue
    // their own element (Enq/Enq — compatible, both proceed), then each
    // dequeues: each deq answers the *own* enqueued element (committed
    // view is empty) and conflicts with the other's Enq (v ≠ v′), so
    // both block — the predicted cycle, for the detector to break.
    let mgr = TxnManager::new();
    let q: Arc<QueueObject<i64>> =
        Arc::new(QueueObject::with("q", Arc::new(QueueTableII), mgr.object_options()));

    let t1 = mgr.begin();
    let t2 = mgr.begin();
    q.enq(&t1, 1).unwrap();
    q.enq(&t2, 2).unwrap();

    let (mgr2, q2, t1c) = (mgr.clone(), q.clone(), t1.clone());
    let j1 = std::thread::spawn(move || match q2.deq(&t1c) {
        Ok(_) => mgr2.commit(t1c).map(|_| ()).map_err(|_| ()),
        Err(_) => {
            mgr2.abort(t1c);
            Err(())
        }
    });
    std::thread::sleep(Duration::from_millis(5));
    let r2 = match q.deq(&t2) {
        Ok(_) => mgr.commit(t2).map(|_| ()).map_err(|_| ()),
        Err(_) => {
            mgr.abort(t2);
            Err(())
        }
    };
    let r1 = j1.join().unwrap();

    assert!(r1.is_ok() || r2.is_ok(), "at least one transaction survives");
    let both_ok = r1.is_ok() && r2.is_ok();
    assert!(
        mgr.detector().victims() >= 1 || both_ok,
        "the predicted cycle must either resolve by luck or cost a victim"
    );
    assert_eq!(
        mgr.metrics().snapshot().counter("deadlock.victims"),
        mgr.detector().victims(),
        "the obs mirror tracks the detector"
    );
}
