//! Bounded soundness checking: does the conflict table block every
//! non-hybrid-atomic schedule?
//!
//! ## The two-transaction reduction
//!
//! A conflict table is *unsound* when the runtime, granting locks
//! exactly as the table dictates, can produce a history that is not
//! hybrid atomic. Searching over arbitrary histories is hopeless;
//! searching over a canonical shape is not, and a canonical shape
//! exists:
//!
//! > A bounded violation among the schedules the table admits exists
//! > iff there are a committed setup sequence `σ` and two continuation
//! > sequences `α`, `β` such that (1) `σ` is legal from the initial
//! > state, (2) `α` and `β` are each legal from the state after `σ` —
//! > each transaction's responses are computed against the committed
//! > state plus its *own* effects, exactly the runtime's
//! > `candidates()` view — (3) every cross pair `(a ∈ α, b ∈ β)` is
//! > table-**compatible** (those are precisely the schedules where
//! > both transactions can hold all their locks simultaneously, i.e.
//! > genuinely overlap), and (4) the serial composition `σ·α·β` is
//! > illegal.
//!
//! Why two transactions suffice: hybrid atomicity demands the
//! committed transactions be serially legal in timestamp order
//! (Definition 15). Under two-phase locking per the table, the first
//! violation involves the operations of exactly two overlapping
//! transactions against a committed prefix — any third transaction
//! either committed before both (fold it into `σ`) or overlaps only
//! compatibly with the violating pair (drop it; legality of the pair's
//! view is unaffected because compatible overlap never changes either
//! party's committed view mid-flight). Why one ordering of the pair
//! suffices: `(α, β)` ranges over *ordered* pairs of continuations, so
//! both commit orders are covered.
//!
//! The witness is rendered as a formal [`History`] — `σ` committed at
//! timestamp 1, then `α` (timestamp 2) and `β` (timestamp 3) — and
//! every counterexample is **confirmed against the `hcc-verify`
//! oracle** before being reported: condition (4) and the oracle's
//! "serial ops in timestamp order are illegal" are the same statement,
//! and the assertion keeps this crate honest about that equivalence.
//!
//! ## Search strategy
//!
//! Naively this is |sequences|³. Three observations collapse it:
//!
//! * legality of a continuation depends on `σ` only through its
//!   [`Frontier`], so setups are deduplicated by frontier (keeping the
//!   shortest representative — `legal_sequences` is shortlex);
//! * the legal continuations from one frontier form a *tree* shared by
//!   `α` and `β`; we grow it once per setup, annotating each node with
//!   the union of its path's conflict masks;
//! * compatibility of a growing `β` against a fixed `α` is one `u64`
//!   test per extension, and is monotone — a conflicting extension
//!   prunes its whole subtree.

use crate::input::CheckInput;
use hcc_relations::enumerate::legal_sequences;
use hcc_relations::relation::Atom;
use hcc_spec::history::HistoryBuilder;
use hcc_spec::{Adt, Frontier, History, ObjectId, Operation};
use hcc_verify::{hybrid_atomic_violation, SystemSpecs};
use std::collections::BTreeSet;

/// Search depths for the soundness check.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Depth {
    /// Maximum length of the committed setup sequence `σ`.
    pub setup: usize,
    /// Maximum length of each transaction's continuation (`α`, `β`).
    pub per_txn: usize,
}

impl Depth {
    /// The `adtcheck --depth k` convention: setups up to `k` ops, each
    /// transaction up to `k − 1` (never less than 1). Violations need
    /// setup context more than they need long transactions — every
    /// known table-mutation witness for the bundled types fits in
    /// `Depth::new(3)`.
    pub fn new(k: usize) -> Depth {
        Depth { setup: k, per_txn: k.saturating_sub(1).max(1) }
    }
}

impl std::fmt::Display for Depth {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "σ≤{}, txn≤{}", self.setup, self.per_txn)
    }
}

/// A minimized unsoundness witness: a schedule the table admits whose
/// history is not hybrid atomic.
#[derive(Clone, Debug)]
pub struct Counterexample {
    /// The committed setup sequence `σ` (possibly empty).
    pub setup: Vec<Operation>,
    /// The first transaction's operations (commits at timestamp 2).
    pub left: Vec<Operation>,
    /// The second transaction's operations (commits at timestamp 3).
    pub right: Vec<Operation>,
    /// The canonicalized class pairs that overlap in the witness — the
    /// table entries that wrongly permit it. In a minimal witness every
    /// surviving cross pair is load-bearing.
    pub offending: BTreeSet<Atom>,
    /// The witness as a formal history (oracle-confirmed non-hybrid-atomic).
    pub history: History,
}

/// Outcome of a soundness search.
#[derive(Clone, Debug)]
pub struct SoundnessReport {
    /// Distinct setup frontiers searched.
    pub setups: usize,
    /// Admitted two-transaction schedules examined.
    pub schedules: u64,
    /// The first violation found, minimized — `None` means sound within
    /// bounds.
    pub counterexample: Option<Counterexample>,
}

impl SoundnessReport {
    /// Sound within the searched bounds?
    pub fn sound(&self) -> bool {
        self.counterexample.is_none()
    }
}

/// One atom's necessity verdict (conservatism reporting).
#[derive(Clone, Debug)]
pub struct AtomNecessity {
    /// The stated atom under probe.
    pub atom: Atom,
    /// A violation admitted once the atom is removed — `Some` proves
    /// the atom necessary; `None` flags it as a (bounded-search)
    /// over-approximation.
    pub witness: Option<Counterexample>,
}

/// The continuation tree from one setup frontier: every legal sequence
/// of at most `per_txn` alphabet ops, shared between the `α` and `β`
/// roles.
struct Tree {
    nodes: Vec<Node>,
    children: Vec<Vec<usize>>,
}

struct Node {
    /// Alphabet index of the last op (unused for the root).
    op: usize,
    parent: usize,
    /// Frontier after `σ` + this node's path.
    frontier: Frontier,
    /// Union of the path ops' conflict masks: bit `j` set iff some op
    /// on the path conflicts with alphabet op `j`.
    conf: u64,
}

impl Tree {
    fn grow(
        adt: &dyn Adt,
        alphabet: &[Operation],
        masks: &[u64],
        f0: &Frontier,
        per_txn: usize,
    ) -> Tree {
        let mut nodes =
            vec![Node { op: usize::MAX, parent: usize::MAX, frontier: f0.clone(), conf: 0 }];
        let mut children: Vec<Vec<usize>> = vec![Vec::new()];
        let mut level = vec![0usize];
        for _ in 0..per_txn {
            let mut next = Vec::new();
            for &n in &level {
                for (o, op) in alphabet.iter().enumerate() {
                    let f = nodes[n].frontier.advance(adt, op);
                    if f.is_empty() {
                        continue;
                    }
                    let idx = nodes.len();
                    nodes.push(Node {
                        op: o,
                        parent: n,
                        frontier: f,
                        conf: nodes[n].conf | masks[o],
                    });
                    children.push(Vec::new());
                    children[n].push(idx);
                    next.push(idx);
                }
            }
            level = next;
        }
        Tree { nodes, children }
    }

    /// The alphabet indices along the path from the root to `idx`.
    fn path(&self, mut idx: usize) -> Vec<usize> {
        let mut ops = Vec::new();
        while idx != 0 {
            ops.push(self.nodes[idx].op);
            idx = self.nodes[idx].parent;
        }
        ops.reverse();
        ops
    }

    /// Walk the tree as `β` against a fixed `α` (its path-conflict
    /// union `alpha_conf`), carrying the serial frontier `g` of
    /// `σ·α·β-so-far`. Returns the node at which `g` first empties —
    /// an admitted schedule whose serial composition is illegal.
    fn search_beta(
        &self,
        adt: &dyn Adt,
        alphabet: &[Operation],
        alpha_conf: u64,
        g: &Frontier,
        node: usize,
        schedules: &mut u64,
    ) -> Option<usize> {
        for &c in &self.children[node] {
            let o = self.nodes[c].op;
            if alpha_conf & (1 << o) != 0 {
                // β would need a lock α holds: the runtime serializes
                // this pair, and every extension keeps the conflict.
                continue;
            }
            *schedules += 1;
            let g2 = g.advance(adt, &alphabet[o]);
            if g2.is_empty() {
                return Some(c);
            }
            if let Some(hit) = self.search_beta(adt, alphabet, alpha_conf, &g2, c, schedules) {
                return Some(hit);
            }
        }
        None
    }
}

/// Search every admitted two-transaction schedule within `depth` for a
/// hybrid-atomicity violation. The first violation found is minimized,
/// oracle-confirmed, and returned; `None` counterexample means the
/// table is sound within bounds.
pub fn check_soundness(input: &CheckInput, depth: Depth) -> SoundnessReport {
    let adt = input.adt.as_ref();
    let masks = input.conflict_masks();

    // Setup sequences matter only through their frontier; shortlex
    // enumeration makes the first representative the shortest.
    let mut setups: Vec<(Frontier, Vec<usize>)> = Vec::new();
    let mut seen: BTreeSet<Frontier> = BTreeSet::new();
    for seq in legal_sequences(adt, &input.alphabet, depth.setup) {
        if seen.insert(seq.frontier.clone()) {
            setups.push((seq.frontier, seq.ops));
        }
    }

    let mut schedules = 0u64;
    for (f0, sigma) in &setups {
        let tree = Tree::grow(adt, &input.alphabet, &masks, f0, depth.per_txn);
        for a in 1..tree.nodes.len() {
            let hit = tree.search_beta(
                adt,
                &input.alphabet,
                tree.nodes[a].conf,
                &tree.nodes[a].frontier,
                0,
                &mut schedules,
            );
            if let Some(b) = hit {
                let cex = minimize(input, sigma, &tree.path(a), &tree.path(b));
                return SoundnessReport {
                    setups: setups.len(),
                    schedules,
                    counterexample: Some(cex),
                };
            }
        }
    }
    SoundnessReport { setups: setups.len(), schedules, counterexample: None }
}

/// Probe every stated atom for necessity: remove it, re-run the
/// soundness search, and record the violation (if any) its absence
/// admits. Atoms with no witness are over-approximations *within the
/// searched bounds* — safe to keep, candidates to sharpen. This same
/// probe is the mutation test: flipping a load-bearing table entry to
/// compatible must surface a counterexample.
pub fn atom_necessity(input: &CheckInput, depth: Depth) -> Vec<AtomNecessity> {
    input
        .atoms
        .iter()
        .map(|atom| AtomNecessity {
            atom: atom.clone(),
            witness: check_soundness(&input.without_atom(atom), depth).counterexample,
        })
        .collect()
}

/// Is `(σ, α, β)` an admitted violation? The four conditions of the
/// reduction, re-checked from scratch (the minimizer's only oracle).
fn admitted_violation(
    input: &CheckInput,
    sigma: &[usize],
    alpha: &[usize],
    beta: &[usize],
) -> bool {
    let adt = input.adt.as_ref();
    let ops = |ixs: &[usize]| ixs.iter().map(|&i| input.alphabet[i].clone()).collect::<Vec<_>>();
    let f0 = Frontier::initial(adt).advance_seq(adt, &ops(sigma));
    if f0.is_empty() {
        return false;
    }
    let fa = f0.advance_seq(adt, &ops(alpha));
    if fa.is_empty() || f0.advance_seq(adt, &ops(beta)).is_empty() {
        return false;
    }
    for &a in alpha {
        for &b in beta {
            if input.conflicts(&input.alphabet[a], &input.alphabet[b]) {
                return false;
            }
        }
    }
    fa.advance_seq(adt, &ops(beta)).is_empty()
}

/// Greedy delta-debugging: repeatedly drop single operations from `σ`,
/// `α`, and `β` while the triple remains an admitted violation, to a
/// fixpoint. Deletion can only *relax* the compatibility condition, so
/// the minimum is a genuine witness with every op load-bearing.
fn minimize(
    input: &CheckInput,
    sigma: &[usize],
    alpha: &[usize],
    beta: &[usize],
) -> Counterexample {
    debug_assert!(admitted_violation(input, sigma, alpha, beta));
    let mut parts = [sigma.to_vec(), alpha.to_vec(), beta.to_vec()];
    'shrink: loop {
        for p in 0..3 {
            for i in 0..parts[p].len() {
                let mut probe = parts.clone();
                probe[p].remove(i);
                if admitted_violation(input, &probe[0], &probe[1], &probe[2]) {
                    parts = probe;
                    continue 'shrink;
                }
            }
        }
        break;
    }
    let [sigma, alpha, beta] = parts;

    let mut offending = BTreeSet::new();
    for &a in &alpha {
        for &b in &beta {
            offending.insert(input.canonical_pair(&input.alphabet[a], &input.alphabet[b]));
        }
    }

    let ops = |ixs: &[usize]| ixs.iter().map(|&i| input.alphabet[i].clone()).collect::<Vec<_>>();
    let (setup, left, right) = (ops(&sigma), ops(&alpha), ops(&beta));
    let history = witness_history(&setup, &left, &right);

    // The reduction's condition (4) and the oracle's hybrid-atomicity
    // test must be the same statement; a divergence here is a bug in
    // this crate, not in the table under audit.
    assert!(history.well_formed().is_ok(), "witness history is well-formed");
    let specs = SystemSpecs::new().with(ObjectId(0), input.adt.clone());
    assert_eq!(
        hybrid_atomic_violation(&history, &specs),
        Some(ObjectId(0)),
        "{}: the hcc-verify oracle must confirm the minimized counterexample",
        input.name
    );

    Counterexample { setup, left, right, offending, history }
}

/// Render `(σ, α, β)` as a formal history at object 0: `σ` as
/// transaction 1 (committed at timestamp 1 before the pair starts),
/// `α` as transaction 2 (timestamp 2), `β` as transaction 3
/// (timestamp 3).
fn witness_history(setup: &[Operation], left: &[Operation], right: &[Operation]) -> History {
    let mut b = HistoryBuilder::new();
    for op in setup {
        b = b.op(0, 1, op.inv.clone(), op.res.clone());
    }
    if !setup.is_empty() {
        b = b.commit(0, 1, 1);
    }
    for op in left {
        b = b.op(0, 2, op.inv.clone(), op.res.clone());
    }
    for op in right {
        b = b.op(0, 3, op.inv.clone(), op.res.clone());
    }
    b.commit(0, 2, 2).commit(0, 3, 3).build()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builtin::registry;
    use crate::input::CheckInput;
    use hcc_relations::relation::{Cond, OpClass};
    use hcc_relations::tables::AdtConfig;
    use hcc_verify::hybrid_atomic;

    fn atom(row: &str, col: &str, cond: Cond) -> Atom {
        Atom { row: OpClass::new(row), col: OpClass::new(col), cond }
    }

    /// The headline property: every bundled table — derived for the
    /// seven built-ins and both `define_adt!` types — admits no
    /// hybrid-atomicity violation. (Depth 2 here for debug-build speed;
    /// CI runs `adtcheck --all --depth 3` in release.)
    #[test]
    fn every_registered_table_is_sound() {
        for entry in registry() {
            let report = check_soundness(&entry.input, Depth::new(2));
            assert!(
                report.sound(),
                "{}: admitted violation {:?}",
                entry.input.name,
                report.counterexample
            );
            assert!(report.schedules > 0, "{}: search was vacuous", entry.input.name);
        }
    }

    /// The mutation negative test: flip the queue's `Deq ⊦ Deq (v=v′)`
    /// entry to compatible and the checker must produce the paper's own
    /// anomaly — two transactions dequeuing the same committed element —
    /// minimized to one op each, naming the flipped pair.
    #[test]
    fn dropping_the_deq_deq_atom_is_caught_with_a_minimal_witness() {
        let input = CheckInput::from_adt_config(AdtConfig::queue());
        let flipped = atom("Deq", "Deq", Cond::KeyEq);
        assert!(input.atoms.contains(&flipped), "the entry under mutation is stated");
        let report = check_soundness(&input.without_atom(&flipped), Depth::new(3));
        let cex = report.counterexample.expect("the mutation must be caught");
        assert_eq!(
            (cex.setup.len(), cex.left.len(), cex.right.len()),
            (1, 1, 1),
            "minimal witness is enq ∥ deq/deq: {cex:?}"
        );
        assert_eq!(
            cex.offending.iter().collect::<Vec<_>>(),
            vec![&flipped],
            "the offending pair names exactly the flipped entry"
        );
        // And the witness history is independently non-hybrid-atomic.
        let specs = SystemSpecs::new().with(ObjectId(0), input.adt.clone());
        assert!(!hybrid_atomic(&cex.history, &specs));
    }

    /// Same, for the queue's other entry (`Deq ⊦ Enq, v ≠ v′`): a
    /// dequeue overlapping the enqueue of a different element must
    /// conflict, or the earlier-timestamped enqueuer's element can be
    /// dequeued past.
    #[test]
    fn dropping_the_deq_enq_atom_is_caught() {
        let input = CheckInput::from_adt_config(AdtConfig::queue());
        let flipped = atom("Deq", "Enq", Cond::KeyNeq);
        let cex = check_soundness(&input.without_atom(&flipped), Depth::new(3))
            .counterexample
            .expect("the mutation must be caught");
        assert!(
            cex.offending.contains(&flipped),
            "offending pairs {:?} must name the flipped entry",
            cex.offending
        );
    }

    /// Conservatism reporting, negative direction: neither queue atom is
    /// an over-approximation — removing either admits a violation.
    #[test]
    fn every_queue_atom_is_necessary() {
        let input = CheckInput::from_adt_config(AdtConfig::queue());
        for probe in atom_necessity(&input, Depth::new(3)) {
            assert!(probe.witness.is_some(), "{:?} should be necessary", probe.atom);
        }
    }

    /// Conservatism reporting, positive direction: the account's
    /// `Debit-Overdraft ⊦ Post (v=v′)` entry is never exercised by a
    /// bounded violation — the lift's empty-bucket generalization (the
    /// equal-amount case never arises over the derivation alphabet)
    /// over-approximates, and `adtcheck` says so instead of silently
    /// trusting it.
    #[test]
    fn account_overdraft_post_atom_is_conservative_within_bounds() {
        let input = CheckInput::from_adt_config(AdtConfig::account());
        let conservative: Vec<Atom> = atom_necessity(&input, Depth::new(3))
            .into_iter()
            .filter(|p| p.witness.is_none())
            .map(|p| p.atom)
            .collect();
        assert_eq!(conservative, vec![atom("Debit-Overdraft", "Post", Cond::KeyEq)]);
    }

    /// Sanity at the extreme: with every entry flipped to compatible the
    /// queue is immediately unsound.
    #[test]
    fn the_empty_table_on_a_queue_is_unsound() {
        let mut input = CheckInput::from_adt_config(AdtConfig::queue());
        input.atoms.clear();
        assert!(!check_soundness(&input, Depth::new(2)).sound());
    }

    /// The depth convention: `--depth k` = setups to `k`, transactions
    /// to `k − 1`, floored at 1.
    #[test]
    fn depth_convention() {
        assert_eq!(Depth::new(3), Depth { setup: 3, per_txn: 2 });
        assert_eq!(Depth::new(1), Depth { setup: 1, per_txn: 1 });
    }
}
