//! Static deadlock-potential analysis over a conflict table.
//!
//! The hybrid scheme takes locks it holds to commit, so two
//! transactions that each acquired *compatible* locks and then request
//! operations *conflicting* with each other's holdings wait forever —
//! the runtime's `DeadlockDetector` exists precisely to break such
//! cycles. Which cycles are reachable is a static property of the
//! conflict table plus the specification, and this module computes it:
//!
//! * a **possible-waits edge** `H —R→ H′` is *instance-grounded*: it is
//!   emitted only when some reachable frontier `F` admits concrete
//!   operations `h, h′` legal from `F` with `h, h′` table-compatible
//!   (so two transactions really can hold both simultaneously), and a
//!   request `r` of class `R` that is legal after `F·h` (the requester's
//!   own view — the runtime never *waits* on an undefined operation; it
//!   blocks on the view instead) and conflicts with `h′`;
//! * a **cycle** over these edges is a deadlock the table cannot rule
//!   out. Self-edges are two-party same-class deadlocks (the queue's
//!   `Enq —Deq→ Enq`: two enqueuers each trying to dequeue the other's
//!   element); 2-cycles pair distinct classes; 3-cycles are reported
//!   only when minimal (no sub-pair already cycles).
//!
//! Edges check co-holdability pairwise at per-edge frontiers, so a
//! cycle is a *potential*, not a certainty — the analysis
//! over-approximates, which is the useful direction: an acyclic graph
//! proves the table deadlock-free within bounds, and the bundled
//! queue's predicted cycle is confirmed against the live detector's
//! `deadlock.victims` in this crate's tests.

use crate::input::CheckInput;
use hcc_relations::enumerate::legal_sequences;
use hcc_relations::relation::OpClass;
use hcc_spec::{Frontier, Operation};
use std::collections::{BTreeMap, BTreeSet};

/// One instance-grounded possible-waits edge: a transaction holding
/// `holds` requests `requests` and blocks on a transaction holding
/// `blocked_on`.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct WaitEdge {
    /// Class the waiting transaction already holds.
    pub holds: OpClass,
    /// Class of the blocked request.
    pub requests: OpClass,
    /// Class held by the transaction being waited on.
    pub blocked_on: OpClass,
    /// Concrete grounding `(h, r, h′)` at some reachable frontier.
    pub example: (Operation, Operation, Operation),
}

/// A wait cycle: party `i` holds `holders[i]` and requests
/// `requests[i]`, blocked on party `(i + 1) % n`.
#[derive(Clone, Debug, PartialEq, Eq, PartialOrd, Ord)]
pub struct WaitCycle {
    /// Held classes around the cycle.
    pub holders: Vec<OpClass>,
    /// Requested classes around the cycle (same indexing).
    pub requests: Vec<OpClass>,
}

impl std::fmt::Display for WaitCycle {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        for (i, (h, r)) in self.holders.iter().zip(&self.requests).enumerate() {
            if i > 0 {
                write!(f, " → ")?;
            }
            write!(f, "hold {h}, want {r}")?;
        }
        write!(f, " → ⟲")
    }
}

/// Compute the possible-waits edges, deduplicated by class triple,
/// grounding each at the first witnessing frontier. `setup_depth`
/// bounds the committed prefixes whose frontiers are explored.
pub fn possible_waits(input: &CheckInput, setup_depth: usize) -> Vec<WaitEdge> {
    let adt = input.adt.as_ref();
    let masks = input.conflict_masks();
    let n = input.alphabet.len();

    let mut frontiers: BTreeSet<Frontier> = BTreeSet::new();
    for seq in legal_sequences(adt, &input.alphabet, setup_depth) {
        frontiers.insert(seq.frontier);
    }

    let mut edges: BTreeMap<(OpClass, OpClass, OpClass), WaitEdge> = BTreeMap::new();
    for f in &frontiers {
        // Single-step holdings from this committed state, with the
        // holder's post-op view.
        let holdings: Vec<(usize, Frontier)> = (0..n)
            .filter_map(|i| {
                let fh = f.advance(adt, &input.alphabet[i]);
                (!fh.is_empty()).then_some((i, fh))
            })
            .collect();
        for &(h, ref fh) in &holdings {
            for r in 0..n {
                if fh.advance(adt, &input.alphabet[r]).is_empty() {
                    continue; // the requester's own view refuses r
                }
                for &(hp, _) in &holdings {
                    let coholdable = masks[h] & (1 << hp) == 0;
                    let blocks = masks[r] & (1 << hp) != 0;
                    if coholdable && blocks {
                        let key = (input.class_of(h), input.class_of(r), input.class_of(hp));
                        edges.entry(key.clone()).or_insert_with(|| WaitEdge {
                            holds: key.0,
                            requests: key.1,
                            blocked_on: key.2,
                            example: (
                                input.alphabet[h].clone(),
                                input.alphabet[r].clone(),
                                input.alphabet[hp].clone(),
                            ),
                        });
                    }
                }
            }
        }
    }
    edges.into_values().collect()
}

/// Minimal cycles over a set of possible-waits edges: all self-edges
/// and 2-cycles, plus 3-cycles none of whose vertex pairs already
/// cycle.
pub fn cycles(edges: &[WaitEdge]) -> Vec<WaitCycle> {
    // Adjacency with one representative request label per (from, to).
    let mut adj: BTreeMap<(&OpClass, &OpClass), &OpClass> = BTreeMap::new();
    for e in edges {
        adj.entry((&e.holds, &e.blocked_on)).or_insert(&e.requests);
    }
    let verts: BTreeSet<&OpClass> = adj.keys().flat_map(|&(a, b)| [a, b]).collect();
    let verts: Vec<&OpClass> = verts.into_iter().collect();

    let mut out = Vec::new();
    let mut cycling: BTreeSet<Vec<&OpClass>> = BTreeSet::new();

    for &v in &verts {
        if let Some(&r) = adj.get(&(v, v)) {
            // Two parties, same held class: both sides wait via r.
            out.push(WaitCycle {
                holders: vec![v.clone(), v.clone()],
                requests: vec![r.clone(), r.clone()],
            });
            cycling.insert(vec![v]);
        }
    }
    for (i, &a) in verts.iter().enumerate() {
        for &b in &verts[i + 1..] {
            if let (Some(&rab), Some(&rba)) = (adj.get(&(a, b)), adj.get(&(b, a))) {
                out.push(WaitCycle {
                    holders: vec![a.clone(), b.clone()],
                    requests: vec![rab.clone(), rba.clone()],
                });
                cycling.insert(vec![a, b]);
            }
        }
    }
    for (i, &a) in verts.iter().enumerate() {
        for (j, &b) in verts.iter().enumerate() {
            for (k, &c) in verts.iter().enumerate() {
                // One rotation per cycle: smallest index first; distinct.
                if !(i < j && i < k && j != k) {
                    continue;
                }
                let pairwise_minimal = [[a, b], [a, c], [b, c]].iter().all(|p| {
                    let mut p = p.to_vec();
                    p.sort();
                    !cycling.contains(&p)
                        && !cycling.contains(&vec![p[0]])
                        && !cycling.contains(&vec![p[1]])
                });
                if !pairwise_minimal {
                    continue;
                }
                if let (Some(&rab), Some(&rbc), Some(&rca)) =
                    (adj.get(&(a, b)), adj.get(&(b, c)), adj.get(&(c, a)))
                {
                    out.push(WaitCycle {
                        holders: vec![a.clone(), b.clone(), c.clone()],
                        requests: vec![rab.clone(), rbc.clone(), rca.clone()],
                    });
                }
            }
        }
    }
    out
}

/// The full analysis: possible-waits edges at `setup_depth`, then their
/// minimal cycles.
pub fn deadlock_potential(input: &CheckInput, setup_depth: usize) -> Vec<WaitCycle> {
    cycles(&possible_waits(input, setup_depth))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::input::CheckInput;
    use hcc_relations::relation::OpClass;
    use hcc_relations::tables::AdtConfig;

    /// The queue's signature prediction: two enqueuers (compatible) who
    /// then each dequeue deadlock — `hold Enq, want Deq` both ways.
    /// The live half of this cross-check (two real transactions, the
    /// runtime detector picking a victim) is `tests/live_deadlock.rs`.
    #[test]
    fn queue_predicts_the_enq_enq_deq_cycle() {
        let input = CheckInput::from_adt_config(AdtConfig::queue());
        let found = deadlock_potential(&input, 3);
        let (enq, deq) = (OpClass::new("Enq"), OpClass::new("Deq"));
        assert!(
            found.iter().any(|c| c.holders == vec![enq.clone(), enq.clone()]
                && c.requests == vec![deq.clone(), deq.clone()]),
            "missing the Enq/Enq-via-Deq cycle in {found:?}"
        );
    }

    /// Every emitted edge really is instance-grounded: held pair
    /// co-holdable, request blocked by the other party's holding.
    #[test]
    fn edges_are_grounded() {
        for cfg in [AdtConfig::queue(), AdtConfig::account()] {
            let input = CheckInput::from_adt_config(cfg);
            let edges = possible_waits(&input, 3);
            assert!(!edges.is_empty());
            for e in &edges {
                let (h, r, hp) = &e.example;
                assert!(!input.conflicts(h, hp), "{e:?}: held ops must be co-holdable");
                assert!(input.conflicts(r, hp), "{e:?}: the request must block");
                assert_eq!(
                    ((input.classify)(h), (input.classify)(r), (input.classify)(hp)),
                    (e.holds.clone(), e.requests.clone(), e.blocked_on.clone())
                );
            }
        }
    }

    /// No conflicts, no waits, no cycles.
    #[test]
    fn a_conflict_free_table_cannot_deadlock() {
        let mut input = CheckInput::from_adt_config(AdtConfig::queue());
        input.atoms.clear();
        assert!(possible_waits(&input, 3).is_empty());
        assert!(deadlock_potential(&input, 3).is_empty());
    }
}
