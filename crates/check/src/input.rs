//! The unit of analysis: one type's specification, alphabet, and
//! conflict table, normalized from whichever form it arrived in —
//! an [`AdtConfig`] from `hcc-relations`, a raw [`DeriveSpec`], or an
//! `AdtDef`'s [`ConflictSpec`] — plus the precomputed per-instance
//! class and conflict views every analysis in this crate consumes.

use hcc_core::runtime::{AdtDef, ConflictSpec, ConflictTable};
use hcc_relations::derive::{cached_conflict_atoms, DeriveSpec};
use hcc_relations::relation::{pair_cond, Atom, OpClass};
use hcc_relations::tables::AdtConfig;
use hcc_spec::adt::SharedAdt;
use hcc_spec::Operation;
use std::collections::BTreeSet;

/// Everything the static analyses need to know about one type. The
/// `atoms` are the *stated* (pre-closure) dependency relation; all
/// lookups here apply the symmetric closure, mirroring the runtime's
/// `SpecLock`, so the analyses exercise exactly the relation the lock
/// manager would enforce.
#[derive(Clone)]
pub struct CheckInput {
    /// Display name (the type name, by convention).
    pub name: String,
    /// The serial specification.
    pub adt: SharedAdt,
    /// The finite operation alphabet the bounded search ranges over.
    pub alphabet: Vec<Operation>,
    /// Operation → class, as the runtime lock would classify it.
    pub classify: fn(&Operation) -> OpClass,
    /// The class-level conflict atoms under audit.
    pub atoms: BTreeSet<Atom>,
}

impl CheckInput {
    /// Audit a derivation config's *derived* table (cached, so `adtcheck`
    /// and the runtime share one derivation per type).
    pub fn from_adt_config(cfg: AdtConfig) -> CheckInput {
        let spec: DeriveSpec = cfg.into();
        CheckInput::from_derive_spec(spec.adt.type_name().to_string(), &spec)
    }

    /// Audit the derived table of an arbitrary [`DeriveSpec`].
    pub fn from_derive_spec(name: String, spec: &DeriveSpec) -> CheckInput {
        let atoms = cached_conflict_atoms(&name, spec).as_ref().clone();
        CheckInput {
            name,
            adt: spec.adt.clone(),
            alphabet: spec.alphabet.clone(),
            classify: spec.classify,
            atoms,
        }
    }

    /// Audit a hand-stated [`ConflictTable`] over the given spec and
    /// alphabet. (A table carries no alphabet of its own — the caller
    /// chooses the derivation domain to search over, exactly as a
    /// `DeriveSpec` would.)
    pub fn from_table(
        adt: SharedAdt,
        alphabet: Vec<Operation>,
        table: &ConflictTable,
    ) -> CheckInput {
        CheckInput {
            name: adt.type_name().to_string(),
            adt,
            alphabet,
            classify: table.classify,
            atoms: table.atoms.clone(),
        }
    }

    /// Audit whatever conflict spec an [`AdtDef`] declares. Derived defs
    /// carry their own serial specification and alphabet; a table-backed
    /// def states atoms but no searchable specification, so the caller
    /// must supply one through [`CheckInput::from_table`] instead.
    pub fn from_def<D: AdtDef>() -> Result<CheckInput, &'static str> {
        let def = D::default();
        match def.conflict_spec() {
            ConflictSpec::Derived(spec) => {
                Ok(CheckInput::from_derive_spec(def.type_name().to_string(), &spec))
            }
            ConflictSpec::Table(_) => {
                Err("table-backed def carries no searchable serial specification; \
                 supply one with CheckInput::from_table")
            }
        }
    }

    /// The class of alphabet instance `i`.
    pub fn class_of(&self, i: usize) -> OpClass {
        (self.classify)(&self.alphabet[i])
    }

    /// Would the runtime's lock manager treat instances `a` and `b` as
    /// conflicting? Symmetric-closure lookup over the stated atoms,
    /// mirroring `SpecLock::conflicts` = `related(a,b) || related(b,a)`.
    pub fn conflicts(&self, a: &Operation, b: &Operation) -> bool {
        self.related(a, b) || self.related(b, a)
    }

    /// One-directional atom lookup: is `class(q) ⊦ class(p)` stated
    /// under the pair's key condition?
    pub fn related(&self, q: &Operation, p: &Operation) -> bool {
        let atom = Atom { row: (self.classify)(q), col: (self.classify)(p), cond: pair_cond(q, p) };
        self.atoms.contains(&atom)
    }

    /// Per-instance conflict bitmasks: bit `j` of `masks[i]` is set iff
    /// instances `i` and `j` conflict. The searches test "does this op
    /// conflict with anything the other transaction did" as one `&`.
    ///
    /// Panics if the alphabet exceeds 64 instances — the bundled types
    /// top out at 14, and a derivation domain that large would make the
    /// bounded search itself intractable long before the masks overflow.
    pub fn conflict_masks(&self) -> Vec<u64> {
        assert!(
            self.alphabet.len() <= 64,
            "{}: alphabet of {} instances exceeds the 64-op analysis limit",
            self.name,
            self.alphabet.len()
        );
        let mut masks = vec![0u64; self.alphabet.len()];
        for (i, mask) in masks.iter_mut().enumerate() {
            for (j, b) in self.alphabet.iter().enumerate() {
                if self.conflicts(&self.alphabet[i], b) {
                    *mask |= 1 << j;
                }
            }
        }
        masks
    }

    /// `self` with one stated atom removed — the probe behind
    /// conservatism reporting and mutation testing: is the table still
    /// sound without this entry?
    pub fn without_atom(&self, atom: &Atom) -> CheckInput {
        let mut weakened = self.clone();
        weakened.atoms.remove(atom);
        weakened
    }

    /// The canonical form of the conflict between two concrete ops: the
    /// class pair ordered, with the pair's key condition. Both lock
    /// directions collapse onto one atom, so counterexample "offending
    /// pair" reports are stable regardless of which side ran first.
    pub fn canonical_pair(&self, a: &Operation, b: &Operation) -> Atom {
        let (ca, cb) = ((self.classify)(a), (self.classify)(b));
        let cond = pair_cond(a, b);
        if ca <= cb {
            Atom { row: ca, col: cb, cond }
        } else {
            Atom { row: cb, col: ca, cond }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn queue_masks_match_pairwise_conflicts() {
        let input = CheckInput::from_adt_config(AdtConfig::queue());
        let masks = input.conflict_masks();
        for (i, a) in input.alphabet.iter().enumerate() {
            for (j, b) in input.alphabet.iter().enumerate() {
                assert_eq!(masks[i] & (1 << j) != 0, input.conflicts(a, b));
                // Symmetric closure: the mask view is symmetric even
                // though the stated atoms are one-directional.
                assert_eq!(masks[i] & (1 << j) != 0, masks[j] & (1 << i) != 0);
            }
        }
    }

    #[test]
    fn without_atom_removes_exactly_one_entry() {
        let input = CheckInput::from_adt_config(AdtConfig::queue());
        let atom = input.atoms.iter().next().unwrap().clone();
        let weakened = input.without_atom(&atom);
        assert_eq!(weakened.atoms.len(), input.atoms.len() - 1);
        assert!(!weakened.atoms.contains(&atom));
    }

    #[test]
    fn canonical_pair_is_order_insensitive() {
        let input = CheckInput::from_adt_config(AdtConfig::queue());
        for a in &input.alphabet {
            for b in &input.alphabet {
                assert_eq!(input.canonical_pair(a, b), input.canonical_pair(b, a));
            }
        }
    }
}
