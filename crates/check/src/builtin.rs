//! The `adtcheck` registry: the seven bundled derivation configs plus
//! the two `define_adt!` types the workload crate ships (leaderboard,
//! inventory).

use crate::input::CheckInput;
use hcc_relations::derive::DeriveSpec;
use hcc_relations::tables::AdtConfig;
use hcc_workload::{custom, inventory};

/// One registry entry: the audit input plus the derivation spec behind
/// it (for the bounds-invariance self-check).
pub struct Registered {
    /// The normalized audit input.
    pub input: CheckInput,
    /// The derivation spec the atoms came from.
    pub derive: DeriveSpec,
    /// `true` for `define_adt!` user-defined types, `false` for the
    /// paper's built-ins.
    pub defined: bool,
}

fn builtin(cfg: AdtConfig) -> Registered {
    let derive: DeriveSpec = cfg.into();
    let input = CheckInput::from_derive_spec(derive.adt.type_name().to_string(), &derive);
    Registered { input, derive, defined: false }
}

fn defined(name: &str, derive: DeriveSpec) -> Registered {
    let input = CheckInput::from_derive_spec(name.to_string(), &derive);
    Registered { input, derive, defined: true }
}

/// Every type `adtcheck --all` audits, in presentation order: the seven
/// built-ins (Tables I–VI plus the counter), then the bundled
/// user-defined types.
pub fn registry() -> Vec<Registered> {
    vec![
        builtin(AdtConfig::file()),
        builtin(AdtConfig::queue()),
        builtin(AdtConfig::semiqueue()),
        builtin(AdtConfig::account()),
        builtin(AdtConfig::counter()),
        builtin(AdtConfig::set()),
        builtin(AdtConfig::directory()),
        defined("Leaderboard", custom::lb_derive_spec()),
        defined("Inventory", inventory::inv_derive_spec()),
    ]
}
