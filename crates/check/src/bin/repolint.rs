//! `repolint` — repository-convention lints that grep-level review
//! keeps missing, run from the repo root (CI invokes it there).
//!
//! 1. **WAL discipline**: direct `log_op` method calls appear only
//!    inside `crates/storage` — every other layer logs through the
//!    runtime's self-logging path, so a stray direct append bypasses
//!    striping, durability policy, and recovery accounting. Integration
//!    tests under `tests/` may hand-craft WAL records (torn tails,
//!    divergent logs), and one workload file is grandfathered: the
//!    ratchet denies *new* production call sites.
//! 2. **Snapshot discipline**: in `crates/adts`, every `impl Snapshot
//!    for` block overrides `snapshot_at` — the default would serialize
//!    the latest state instead of the checkpoint watermark's, silently
//!    corrupting checkpoint/recovery consistency.
//! 3. **Read-path lock freedom**: the wait-free read path
//!    (`crates/db/src/read.rs`, `crates/core/src/runtime/horizon.rs`)
//!    must exist and must never call into the transactional execution
//!    machinery — no operation execution, no lock attempts. The
//!    "zero lock acquisitions" guarantee is load-bearing API doc; this
//!    ratchet keeps a future refactor from quietly routing reads back
//!    through the lock manager.
//! 4. **Socket discipline**: the standard library's raw TCP
//!    stream/listener types appear only inside `crates/wire` — every
//!    other crate speaks through the wire crate's framed connection
//!    types, so CRC framing, payload bounds, and clean-vs-torn EOF
//!    classification cannot be bypassed by a second ad-hoc socket
//!    path.
//! 5. **Replication discipline**: `crates/repl` has *no second apply
//!    path* — a follower replays commits through the recovery path's
//!    pinned responses (`apply_replicated`), never by re-executing
//!    operations against the lock manager. The same lock-acquisition
//!    needles the read-path ratchet bans must not appear in the repl
//!    crate's sources, so a future "optimization" cannot quietly turn
//!    replay into re-execution (which would re-take locks, re-run
//!    nondeterministic choices, and diverge from the primary).
//!
//! Exit status 1 on any finding, listing file and line.

use std::path::{Path, PathBuf};

fn rust_files(root: &Path, out: &mut Vec<PathBuf>) {
    let Ok(entries) = std::fs::read_dir(root) else { return };
    for entry in entries.flatten() {
        let path = entry.path();
        let name = entry.file_name();
        let name = name.to_string_lossy();
        if path.is_dir() {
            if name == "target" || name.starts_with('.') {
                continue;
            }
            rust_files(&path, out);
        } else if name.ends_with(".rs") {
            out.push(path);
        }
    }
}

fn main() {
    let root = std::env::current_dir().expect("cwd");
    if !root.join("Cargo.toml").exists() {
        eprintln!("repolint: run from the repository root");
        std::process::exit(2);
    }
    let mut files = Vec::new();
    rust_files(&root, &mut files);
    files.sort();

    // Assembled so this linter's own source does not contain its needle.
    let log_op_call = [".log", "_op("].concat();
    let raw_sockets = [["Tcp", "Stream"].concat(), ["Tcp", "Listener"].concat()];
    // Every way code reaches the lock manager: executing an operation
    // (`.execute(` / `try_execute`) or testing a lock directly
    // (`attempt(`). Shared by the read-path ratchet (3) and the
    // replication no-second-apply-path ratchet (5).
    let lock_needles =
        [[".exec", "ute("].concat(), ["try_", "execute"].concat(), ["atte", "mpt("].concat()];

    // The ratchet's standing exceptions: tests that hand-craft WAL
    // records on purpose, and the manual-discipline workload whose whole
    // point is demonstrating the caller-driven append (its comment calls
    // itself "the only caller-driven append left in the workspace").
    let log_op_allowed = |rel: &str| {
        rel.starts_with("tests/")
            || rel.contains("/tests/")
            || rel == "crates/workload/src/crash.rs"
    };

    let mut findings = Vec::new();
    for path in &files {
        let Ok(text) = std::fs::read_to_string(path) else { continue };
        let rel = path.strip_prefix(&root).unwrap_or(path);
        let rel_s = rel.to_string_lossy().replace('\\', "/");

        if !rel_s.starts_with("crates/storage/") && !log_op_allowed(&rel_s) {
            for (i, line) in text.lines().enumerate() {
                if line.contains(&log_op_call) {
                    findings.push(format!(
                        "{rel_s}:{}: direct WAL append `{log_op_call}` outside crates/storage",
                        i + 1
                    ));
                }
            }
        }

        if !rel_s.starts_with("crates/wire/") {
            for (i, line) in text.lines().enumerate() {
                for needle in &raw_sockets {
                    if line.contains(needle.as_str()) {
                        findings.push(format!(
                            "{rel_s}:{}: raw socket type `{needle}` outside crates/wire \
                             (use the framed hcc-wire connection instead)",
                            i + 1
                        ));
                    }
                }
            }
        }

        if rel_s.starts_with("crates/repl/src/") {
            for (i, line) in text.lines().enumerate() {
                for needle in &lock_needles {
                    if line.contains(needle.as_str()) {
                        findings.push(format!(
                            "{rel_s}:{}: lock-acquisition/execution call `{needle}` in the \
                             replication crate — followers replay through apply_replicated's \
                             pinned responses, never a second apply path",
                            i + 1
                        ));
                    }
                }
            }
        }

        if rel_s.starts_with("crates/adts/") {
            let impls = text.matches("impl Snapshot for").count();
            let overrides = text.matches("fn snapshot_at").count();
            if overrides < impls {
                findings.push(format!(
                    "{rel_s}: {impls} `impl Snapshot for` but only {overrides} \
                     `fn snapshot_at` override(s) — a default snapshot_at serializes \
                     the latest state, not the watermark's"
                ));
            }
        }
    }

    // The read path's lock-freedom ratchet: the read path clones
    // committed snapshots under the object latch and must never grow a
    // lock-acquisition call.
    let read_path_files = ["crates/db/src/read.rs", "crates/core/src/runtime/horizon.rs"];
    for rel_s in read_path_files {
        let Ok(text) = std::fs::read_to_string(root.join(rel_s)) else {
            findings.push(format!("{rel_s}: wait-free read path file is missing"));
            continue;
        };
        for (i, line) in text.lines().enumerate() {
            for needle in &lock_needles {
                if line.contains(needle.as_str()) {
                    findings.push(format!(
                        "{rel_s}:{}: lock-acquisition call `{needle}` on the wait-free read path",
                        i + 1
                    ));
                }
            }
        }
    }

    if findings.is_empty() {
        println!("repolint: {} files clean", files.len());
    } else {
        for f in &findings {
            eprintln!("repolint: {f}");
        }
        std::process::exit(1);
    }
}
