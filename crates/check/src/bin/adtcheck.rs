//! `adtcheck` — the static soundness verdict for every bundled type.
//!
//! ```text
//! adtcheck --all [--depth K] [--no-conservatism] [--no-deadlock] [--invariance defined|all|off]
//! adtcheck --type <Name> [...]      audit one registered type
//! adtcheck --list                   list registered type names
//! ```
//!
//! For each selected type: run the bounded soundness search (admitted
//! two-transaction schedules vs. the hybrid-atomicity oracle), the
//! per-atom conservatism probe, the possible-waits deadlock analysis,
//! and (per `--invariance`) the doubled-bounds derivation self-check.
//! Exit status 1 if any table is unsound or any derivation bounds
//! drift — the CI gate.

use hcc_check::report::{render_detail, render_verdict_table, TypeVerdict};
use hcc_check::soundness::{atom_necessity, check_soundness, Depth};
use hcc_check::{deadlock_potential, registry};
use hcc_relations::derive::check_bounds_invariance;
use std::time::Instant;

struct Options {
    select: Select,
    depth: usize,
    conservatism: bool,
    deadlock: bool,
    invariance: Invariance,
}

enum Select {
    All,
    One(String),
    List,
}

#[derive(PartialEq)]
enum Invariance {
    /// Only `define_adt!` types (the built-ins' convergence is pinned by
    /// `hcc-relations`' own release-mode test) — the default.
    Defined,
    All,
    Off,
}

fn usage() -> ! {
    eprintln!(
        "usage: adtcheck (--all | --type <Name> | --list) [--depth K] \
         [--no-conservatism] [--no-deadlock] [--invariance defined|all|off]"
    );
    std::process::exit(2)
}

fn parse(args: &[String]) -> Options {
    let mut opts = Options {
        select: Select::All,
        depth: 3,
        conservatism: true,
        deadlock: true,
        invariance: Invariance::Defined,
    };
    let mut selected = false;
    let mut i = 0;
    while i < args.len() {
        match args[i].as_str() {
            "--all" => selected = true,
            "--list" => {
                opts.select = Select::List;
                selected = true;
            }
            "--type" => {
                i += 1;
                let name = args.get(i).unwrap_or_else(|| usage());
                opts.select = Select::One(name.clone());
                selected = true;
            }
            "--depth" => {
                i += 1;
                opts.depth = args.get(i).and_then(|d| d.parse().ok()).unwrap_or_else(|| usage());
                if opts.depth == 0 {
                    usage();
                }
            }
            "--no-conservatism" => opts.conservatism = false,
            "--no-deadlock" => opts.deadlock = false,
            "--invariance" => {
                i += 1;
                opts.invariance = match args.get(i).map(String::as_str) {
                    Some("defined") => Invariance::Defined,
                    Some("all") => Invariance::All,
                    Some("off") => Invariance::Off,
                    _ => usage(),
                };
            }
            _ => usage(),
        }
        i += 1;
    }
    if !selected {
        usage();
    }
    opts
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let opts = parse(&args);

    let mut entries = registry();
    match &opts.select {
        Select::List => {
            for e in &entries {
                println!("{}", e.input.name);
            }
            return;
        }
        Select::One(name) => {
            entries.retain(|e| e.input.name == *name);
            if entries.is_empty() {
                eprintln!("adtcheck: unknown type {name:?} (try --list)");
                std::process::exit(2);
            }
        }
        Select::All => {}
    }

    let depth = Depth::new(opts.depth);
    let mut verdicts = Vec::new();
    for entry in &entries {
        let start = Instant::now();
        let soundness = check_soundness(&entry.input, depth);
        // Probing atom necessity of an unsound table reports noise;
        // surface the unsoundness alone.
        let run_necessity = opts.conservatism && soundness.sound();
        let necessity =
            if run_necessity { atom_necessity(&entry.input, depth) } else { Vec::new() };
        let cycles =
            if opts.deadlock { deadlock_potential(&entry.input, depth.setup) } else { Vec::new() };
        let run_invariance = match opts.invariance {
            Invariance::All => true,
            Invariance::Defined => entry.defined,
            Invariance::Off => false,
        };
        let invariance = run_invariance.then(|| {
            check_bounds_invariance(&entry.derive).map(|_| ()).map_err(|drift| drift.to_string())
        });
        verdicts.push(TypeVerdict {
            name: entry.input.name.clone(),
            atoms: entry.input.atoms.len(),
            depth,
            soundness,
            necessity,
            necessity_checked: run_necessity,
            cycles,
            cycles_checked: opts.deadlock,
            invariance,
            millis: start.elapsed().as_millis(),
        });
    }

    println!("adtcheck: depth {depth} over {} type(s)\n", verdicts.len());
    print!("{}", render_verdict_table(&verdicts));
    let details: Vec<String> =
        verdicts.iter().map(render_detail).filter(|d| !d.is_empty()).collect();
    if !details.is_empty() {
        println!();
        for d in details {
            print!("{d}");
        }
    }

    if verdicts.iter().any(|v| v.failed()) {
        std::process::exit(1);
    }
}
