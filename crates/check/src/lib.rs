//! # hcc-check — static soundness analysis for conflict tables
//!
//! The paper derives a data type's lock conflict relation from its serial
//! specification (Sections 4–5) and proves the construction hybrid atomic
//! (Theorems 10 and 16). This crate is the *auditor* for that machinery:
//! given any conflict table — derived by `hcc-relations`, or stated by
//! hand through `ConflictSpec::Table` — it decides, within bounds and
//! **without executing the runtime's locks**, whether the table is
//! sound, where it is conservative, and where it can deadlock.
//!
//! * [`soundness`] — enumerate every two-transaction schedule the table
//!   *permits* (only table-compatible operations overlap) over bounded
//!   op sequences and check the resulting histories against the
//!   `hcc-verify` hybrid-atomicity oracle. A violation is delta-debugged
//!   to a minimal witness naming the offending class pairs.
//! * [`soundness::atom_necessity`] — conservatism reporting: an atom
//!   whose removal admits no bounded violation is an over-approximation
//!   (informational; mirrors the paper's Table V "Always" bucket
//!   generalization).
//! * [`deadlock`] — the possible-waits graph over conflict classes and
//!   its minimal cycles: symmetric conflicts mean lock waits, and a wait
//!   cycle the table admits is a deadlock the runtime's detector will
//!   have to break (cross-checked live against `deadlock.victims`).
//! * [`report`] — the `adtcheck` verdict table renderer.
//! * [`builtin`] — the registry of the seven bundled types plus the
//!   `define_adt!` leaderboard and inventory.
//!
//! The model: a violation of hybrid atomicity among the schedules a
//! table admits exists within bounds iff there are a committed setup
//! sequence `σ` and two continuations `α`, `β` — each legal against the
//! committed state plus its own effects, exactly the runtime's view
//! semantics — whose operations pairwise overlap compatibly, yet
//! `σ·α·β` is illegal serially. See [`soundness`] for why two
//! transactions and this shape suffice.

pub mod builtin;
pub mod deadlock;
pub mod input;
pub mod report;
pub mod soundness;

pub use builtin::{registry, Registered};
pub use deadlock::{cycles, deadlock_potential, possible_waits, WaitCycle, WaitEdge};
pub use input::CheckInput;
pub use report::{render_counterexample, render_detail, render_verdict_table, TypeVerdict};
pub use soundness::{
    atom_necessity, check_soundness, AtomNecessity, Counterexample, Depth, SoundnessReport,
};
