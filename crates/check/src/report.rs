//! Verdict aggregation and rendering for `adtcheck`.

use crate::deadlock::WaitCycle;
use crate::soundness::{AtomNecessity, Counterexample, Depth, SoundnessReport};
use hcc_relations::relation::Atom;
use hcc_spec::Operation;

/// Everything `adtcheck` decided about one type.
pub struct TypeVerdict {
    /// Type name.
    pub name: String,
    /// Stated conflict atoms.
    pub atoms: usize,
    /// The searched depth.
    pub depth: Depth,
    /// The soundness search outcome.
    pub soundness: SoundnessReport,
    /// Per-atom necessity (empty when conservatism reporting is off or
    /// the table is unsound).
    pub necessity: Vec<AtomNecessity>,
    /// Whether necessity probing ran.
    pub necessity_checked: bool,
    /// Minimal possible-wait cycles (empty when the analysis is off).
    pub cycles: Vec<WaitCycle>,
    /// Whether deadlock analysis ran.
    pub cycles_checked: bool,
    /// Outcome of the bounds-invariance self-check, if it ran:
    /// `Some(Err(text))` is drift.
    pub invariance: Option<Result<(), String>>,
    /// Wall-clock cost of this type's analyses.
    pub millis: u128,
}

impl TypeVerdict {
    /// Atoms no bounded violation needs — over-approximations.
    pub fn conservative_atoms(&self) -> Vec<&Atom> {
        self.necessity.iter().filter(|n| n.witness.is_none()).map(|n| &n.atom).collect()
    }

    /// Does anything fail hard (unsound table or drifting bounds)?
    pub fn failed(&self) -> bool {
        !self.soundness.sound() || matches!(self.invariance, Some(Err(_)))
    }
}

fn fmt_ops(ops: &[Operation]) -> String {
    if ops.is_empty() {
        return "ε".to_string();
    }
    ops.iter().map(|o| format!("{o:?}")).collect::<Vec<_>>().join(" ")
}

/// Render the summary table, one row per type.
pub fn render_verdict_table(verdicts: &[TypeVerdict]) -> String {
    let mut rows: Vec<[String; 7]> = vec![[
        "type".into(),
        "atoms".into(),
        "schedules".into(),
        "sound".into(),
        "conservative".into(),
        "wait-cycles".into(),
        "ms".into(),
    ]];
    for v in verdicts {
        rows.push([
            v.name.clone(),
            v.atoms.to_string(),
            v.soundness.schedules.to_string(),
            if v.soundness.sound() { "yes".into() } else { "UNSOUND".into() },
            if !v.necessity_checked {
                "-".into()
            } else {
                v.conservative_atoms().len().to_string()
            },
            if !v.cycles_checked { "-".into() } else { v.cycles.len().to_string() },
            v.millis.to_string(),
        ]);
    }
    let widths: Vec<usize> =
        (0..7).map(|c| rows.iter().map(|r| r[c].chars().count()).max().unwrap_or(0)).collect();
    let mut out = String::new();
    for (i, row) in rows.iter().enumerate() {
        for (c, cell) in row.iter().enumerate() {
            let pad = widths[c] - cell.chars().count();
            if c > 0 {
                out.push_str("  ");
            }
            if c == 0 {
                out.push_str(cell);
                out.push_str(&" ".repeat(pad));
            } else {
                out.push_str(&" ".repeat(pad));
                out.push_str(cell);
            }
        }
        out.push('\n');
        if i == 0 {
            let total = widths.iter().sum::<usize>() + 2 * (widths.len() - 1);
            out.push_str(&"-".repeat(total));
            out.push('\n');
        }
    }
    out
}

/// Render one minimized counterexample for human consumption.
pub fn render_counterexample(name: &str, cex: &Counterexample) -> String {
    let mut out = String::new();
    out.push_str(&format!("{name}: UNSOUND — admitted schedule is not hybrid atomic\n"));
    out.push_str(&format!("  committed setup σ : {}\n", fmt_ops(&cex.setup)));
    out.push_str(&format!("  txn A (commits @2): {}\n", fmt_ops(&cex.left)));
    out.push_str(&format!("  txn B (commits @3): {}\n", fmt_ops(&cex.right)));
    out.push_str("  every A×B pair is table-compatible, yet σ·A·B is serially illegal\n");
    out.push_str("  offending class pairs (wrongly compatible):\n");
    for atom in &cex.offending {
        out.push_str(&format!("    {atom:?}\n"));
    }
    out
}

/// Render a type's full detail block (below the summary table).
pub fn render_detail(v: &TypeVerdict) -> String {
    let mut out = String::new();
    if let Some(cex) = &v.soundness.counterexample {
        out.push_str(&render_counterexample(&v.name, cex));
    }
    if v.necessity_checked {
        let conservative = v.conservative_atoms();
        if !conservative.is_empty() {
            out.push_str(&format!(
                "{}: conservative atoms (no bounded violation requires them):\n",
                v.name
            ));
            for atom in conservative {
                out.push_str(&format!("    {atom:?}\n"));
            }
        }
    }
    for cycle in &v.cycles {
        out.push_str(&format!("{}: possible deadlock: {cycle}\n", v.name));
    }
    if let Some(Err(drift)) = &v.invariance {
        out.push_str(&format!("{}: BOUNDS DRIFT — {drift}\n", v.name));
    }
    out
}
