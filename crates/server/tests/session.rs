//! Session-layer coverage: handshake refusal, the per-session in-flight
//! cap under a barrier-held flood, torn frames at disconnect, graceful
//! drain, and kill/heal reconnection (the multisite harness's
//! discipline, over a real socket).

use std::sync::Arc;
use std::time::Duration;

use hcc_client::{Client, ClientOptions};
use hcc_db::Db;
use hcc_server::{serve_with, ServerOptions};
use hcc_wire::frame;
use hcc_wire::msg::{OpResult, Request, Response, TypeTag, WireFault, WireOp, PROTOCOL_VERSION};

fn tmpdir(tag: &str) -> std::path::PathBuf {
    let dir = std::env::temp_dir().join(format!(
        "hcc-session-{tag}-{}-{:?}",
        std::process::id(),
        std::thread::current().id()
    ));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).unwrap();
    dir
}

fn credit(name: &str, amount: i64) -> WireOp {
    WireOp::Credit { name: name.into(), amount }
}

fn debit(name: &str, amount: i64) -> WireOp {
    WireOp::Debit { name: name.into(), amount }
}

/// Seed `name` with `amount`, then hold a successful debit open in its
/// own transaction: per the hybrid conflict table only `Debit-Ok`
/// conflicts with `Debit-Ok`, so this is the barrier that parks every
/// remote debit while letting the shed path stay observable.
fn hold_debit_barrier(db: &Db, name: &str, seed: i64) -> Arc<hcc_core::TxnHandle> {
    db.transact(|tx| {
        let acct: Arc<hcc_adts::AccountObject> = db.object(name)?;
        acct.credit(tx.handle(), hcc_spec::Rational::from_int(seed))?;
        Ok(())
    })
    .unwrap();
    let acct = db.object::<hcc_adts::AccountObject>(name).unwrap();
    let holder = db.manager().begin();
    assert!(acct.debit(&holder, hcc_spec::Rational::from_int(1)).unwrap());
    holder
}

#[test]
fn handshake_refuses_version_mismatch_and_bad_token() {
    let db = Arc::new(Db::in_memory());
    let server = serve_with(
        db.clone(),
        "127.0.0.1:0",
        ServerOptions { token: Some("sesame".into()), ..ServerOptions::default() },
    )
    .unwrap();
    let addr = server.local_addr().to_string();

    let opts = |version, token: &str| ClientOptions {
        version,
        token: token.into(),
        ..ClientOptions::default()
    };
    let err = Client::connect_with(&addr, opts(PROTOCOL_VERSION + 7, "sesame")).unwrap_err();
    let msg = err.to_string();
    assert!(
        msg.contains(&PROTOCOL_VERSION.to_string())
            && msg.contains(&(PROTOCOL_VERSION + 7).to_string()),
        "refusal names both versions: {msg}"
    );
    assert!(!err.is_transient(), "a version mismatch never fixes itself by retrying");

    let err = Client::connect_with(&addr, opts(PROTOCOL_VERSION, "wrong")).unwrap_err();
    assert!(err.to_string().contains("token"), "{err}");

    // The right version and token get in; refused handshakes never
    // counted as opened sessions.
    let mut ok = Client::connect_with(&addr, opts(PROTOCOL_VERSION, "sesame")).unwrap();
    ok.open(TypeTag::Account, "a").unwrap();
    ok.goodbye().unwrap();
    server.drain();
    let stats = db.stats();
    assert_eq!(stats.counter("net.sessions.refused"), 2);
    assert_eq!(stats.counter("net.sessions.opened"), 1);
    assert_eq!(stats.counter("net.sessions.closed"), 1);
}

/// The barrier-held flood: a conflicting transaction holds the account's
/// lock while a client pipelines far past its in-flight cap. The excess
/// must be shed with a typed `Overloaded` (observable in the shed
/// counter) while the queue-depth gauge stays bounded — and every
/// admitted request must still commit once the barrier lifts.
#[test]
fn in_flight_cap_sheds_flood_without_queue_growth() {
    let db = Arc::new(Db::builder().lock_timeout(Duration::from_secs(30)).in_memory());
    let opts = ServerOptions {
        workers: 2,
        queue_cap: 64,
        session_in_flight_cap: 3,
        ..ServerOptions::default()
    };
    let server = serve_with(db.clone(), "127.0.0.1:0", opts).unwrap();
    let addr = server.local_addr().to_string();

    // The barrier: a local transaction holds "hot"'s Debit-Ok lock so
    // every admitted remote debit blocks inside a worker.
    let holder = hold_debit_barrier(&db, "hot", 1000);

    let client =
        Client::connect_with(&addr, ClientOptions { max_in_flight: 3, ..ClientOptions::default() })
            .unwrap();
    assert_eq!(client.granted_in_flight(), 3);
    let (mut tx, mut rx) = client.into_halves();

    const FLOOD: u64 = 24;
    for seq in 1..=FLOOD {
        let req = Request::Transact { ops: vec![debit("hot", 1)] };
        let mut payload = Vec::new();
        use hcc_wire::msg::WireMsg;
        req.encode_payload(&mut payload);
        let mut framed = Vec::new();
        frame::encode_frame_into(seq, &payload, &mut framed);
        tx.send_raw(&framed).unwrap();
    }

    // The sheds come back immediately while the admitted three stay
    // parked behind the barrier.
    let mut shed = Vec::new();
    for _ in 0..(FLOOD - 3) {
        let (_seq, resp, _) = rx.recv::<Response>().unwrap().unwrap();
        match resp {
            Response::Fault(WireFault::Overloaded { in_flight, cap }) => {
                assert_eq!(cap, 3);
                assert!(in_flight >= 3, "shed below the cap: {in_flight}");
                shed.push(in_flight);
            }
            other => panic!("expected Overloaded, got {other:?}"),
        }
    }
    assert_eq!(db.stats().counter("net.requests.shed"), FLOOD - 3);
    assert!(
        db.stats().gauge("net.queue.depth") <= 3,
        "queue absorbed the flood instead of shedding it"
    );

    // Lift the barrier: the three admitted requests commit.
    db.manager().abort(holder);
    let mut committed = 0;
    for _ in 0..3 {
        let (_seq, resp, _) = rx.recv::<Response>().unwrap().unwrap();
        match resp {
            Response::Committed { results, .. } => {
                assert_eq!(results, vec![OpResult::Debited(true)]);
                committed += 1;
            }
            other => panic!("expected Committed, got {other:?}"),
        }
    }
    assert_eq!(committed, 3);
    drop((tx, rx));
    server.drain();
    assert_eq!(db.stats().gauge("net.queue.depth"), 0, "drain leaves the queue empty");
    // The seed commit plus exactly the admitted requests; sheds
    // executed nothing.
    assert_eq!(db.committed_count(), 1 + 3);
}

/// A half-written frame at disconnect is refused wholesale: the session
/// dies, nothing half-applies, and the server keeps serving.
#[test]
fn torn_frame_at_disconnect_never_corrupts_state() {
    let db = Arc::new(Db::in_memory());
    let server = serve_with(db.clone(), "127.0.0.1:0", ServerOptions::default()).unwrap();
    let addr = server.local_addr().to_string();

    let mut victim = Client::connect(&addr).unwrap();
    victim.transact(vec![credit("acct", 10)]).unwrap();
    let (mut tx, rx) = victim.into_halves();

    // Half a frame, then the plug is pulled.
    use hcc_wire::msg::WireMsg;
    let mut payload = Vec::new();
    Request::Transact { ops: vec![credit("acct", 77)] }.encode_payload(&mut payload);
    let mut framed = Vec::new();
    frame::encode_frame_into(99, &payload, &mut framed);
    tx.send_raw(&framed[..framed.len() / 2]).unwrap();
    tx.shutdown_write();
    drop((tx, rx));

    // A corrupted frame (flipped CRC bit) on a second session: same
    // refusal, no decode of the lie.
    let liar = Client::connect(&addr).unwrap();
    let (mut tx2, rx2) = liar.into_halves();
    let mut framed2 = Vec::new();
    frame::encode_frame_into(7, &payload, &mut framed2);
    let last = framed2.len() - 1;
    framed2[last] ^= 0x01;
    tx2.send_raw(&framed2).unwrap();
    drop((tx2, rx2));

    // The server outlives both: a fresh session sees exactly the one
    // acknowledged commit and none of the refused bytes' effects.
    let mut fresh = Client::connect(&addr).unwrap();
    let deadline = std::time::Instant::now() + Duration::from_secs(5);
    while db.stats().counter("net.frames.refused") < 2 {
        assert!(std::time::Instant::now() < deadline, "frame refusals not observed");
        std::thread::sleep(Duration::from_millis(5));
    }
    let (_, views) = fresh.read(None, vec![(TypeTag::Account, "acct".into())]).unwrap();
    assert_eq!(views, vec![hcc_wire::msg::View::Balance { num: 10, den: 1 }]);
    fresh.goodbye().unwrap();
    server.drain();
    assert_eq!(db.committed_count(), 1, "the torn/corrupt frames executed nothing");
}

/// Kill the server mid-session and heal it on the same directory (the
/// multisite harness's kill/heal discipline over a socket): a client
/// reconnects to the revived server and resumes on the recovered state.
#[test]
fn client_reconnects_and_resumes_after_kill_and_heal() {
    let dir = tmpdir("heal");

    let db = Arc::new(Db::open(&dir).unwrap());
    let server = serve_with(db.clone(), "127.0.0.1:0", ServerOptions::default()).unwrap();
    let addr = server.local_addr().to_string();
    let mut client = Client::connect(&addr).unwrap();
    for _ in 0..5 {
        client.transact(vec![credit("persist", 2)]).unwrap();
    }
    server.kill();
    match client.transact(vec![credit("persist", 1)]) {
        Err(e) => assert!(!e.is_transient(), "outcome-unknown loss must not auto-retry: {e}"),
        Ok(_) => panic!("transact succeeded across a killed server"),
    }
    drop(client);
    drop(db);

    // Heal: recover the same directory, serve on a fresh port (the old
    // one may sit in TIME_WAIT), reconnect, verify, resume.
    let db = Arc::new(Db::open(&dir).unwrap());
    let server = serve_with(db.clone(), "127.0.0.1:0", ServerOptions::default()).unwrap();
    let addr = server.local_addr().to_string();
    let mut client = Client::connect(&addr).unwrap();
    let (_, views) = client.read(None, vec![(TypeTag::Account, "persist".into())]).unwrap();
    assert_eq!(
        views,
        vec![hcc_wire::msg::View::Balance { num: 10, den: 1 }],
        "all five acknowledged commits survived the kill"
    );
    client.transact(vec![credit("persist", 5)]).unwrap();
    let (_, views) = client.read(None, vec![(TypeTag::Account, "persist".into())]).unwrap();
    assert_eq!(views, vec![hcc_wire::msg::View::Balance { num: 15, den: 1 }]);
    client.goodbye().unwrap();
    server.drain();
    drop(db);
    let _ = std::fs::remove_dir_all(&dir);
}

/// `Shutdown` over the wire wakes `wait_for_shutdown_request`, and the
/// drain answers everything already admitted.
#[test]
fn remote_shutdown_then_drain_answers_admitted_work() {
    let db = Arc::new(Db::in_memory());
    let server = serve_with(db.clone(), "127.0.0.1:0", ServerOptions::default()).unwrap();
    let addr = server.local_addr().to_string();

    let mut client = Client::connect(&addr).unwrap();
    client.transact(vec![credit("a", 3)]).unwrap();
    client.shutdown_server().unwrap();
    server.wait_for_shutdown_request();
    server.drain();

    // Draining refused nothing that was admitted: the commit stands.
    assert_eq!(db.committed_count(), 1);
    let stats = db.stats();
    assert_eq!(stats.gauge("net.queue.depth"), 0);
    assert_eq!(stats.counter("net.sessions.opened"), stats.counter("net.sessions.closed"));

    // A connect after drain is refused at the socket.
    assert!(Client::connect(&addr).is_err());
}

/// Draining servers refuse *new* work with `ShuttingDown`, typed and
/// explicit — not a hang, not a silent drop.
#[test]
fn draining_refuses_new_work_with_typed_fault() {
    let db = Arc::new(Db::builder().lock_timeout(Duration::from_secs(30)).in_memory());
    let server = serve_with(db.clone(), "127.0.0.1:0", ServerOptions::default()).unwrap();
    let addr = server.local_addr().to_string();

    // Park one admitted request behind a held Debit-Ok lock so the
    // drain has something outstanding to wait for.
    let holder = hold_debit_barrier(&db, "gate", 100);

    let client = Client::connect(&addr).unwrap();
    let (mut tx, mut rx) = client.into_halves();
    use hcc_wire::msg::WireMsg;
    let mut payload = Vec::new();
    Request::Transact { ops: vec![debit("gate", 1)] }.encode_payload(&mut payload);
    let mut framed = Vec::new();
    frame::encode_frame_into(1, &payload, &mut framed);
    tx.send_raw(&framed).unwrap();

    // Wait until the request is admitted (it shows in the counters),
    // then start the drain from another thread.
    let deadline = std::time::Instant::now() + Duration::from_secs(5);
    while db.stats().counter("net.requests.transact") < 1 {
        assert!(std::time::Instant::now() < deadline, "request not admitted");
        std::thread::sleep(Duration::from_millis(5));
    }
    let drainer = {
        let db = db.clone();
        std::thread::spawn(move || {
            // Hold the barrier well past the refusal below, then release
            // it so the admitted job can finish.
            std::thread::sleep(Duration::from_millis(400));
            db.manager().abort(holder);
        })
    };

    let draining = std::thread::spawn(move || server.drain());
    // New work sent while draining is refused, typed. (The drain flips
    // its flag first thing; the sleep just keeps this send comfortably
    // behind it.)
    std::thread::sleep(Duration::from_millis(150));
    let mut payload2 = Vec::new();
    Request::Transact { ops: vec![credit("other", 1)] }.encode_payload(&mut payload2);
    let mut framed2 = Vec::new();
    frame::encode_frame_into(2, &payload2, &mut framed2);
    tx.send_raw(&framed2).unwrap();

    let mut saw_shutting_down = false;
    let mut saw_commit = false;
    for _ in 0..2 {
        match rx.recv::<Response>() {
            Ok(Some((_seq, Response::Fault(WireFault::ShuttingDown), _))) => {
                saw_shutting_down = true;
            }
            Ok(Some((_seq, Response::Committed { .. }, _))) => saw_commit = true,
            other => panic!("unexpected during drain: {other:?}"),
        }
    }
    assert!(saw_shutting_down, "new work during drain must be refused as ShuttingDown");
    assert!(saw_commit, "admitted work must still be answered by the drain");
    drainer.join().unwrap();
    draining.join().unwrap();
    // The barrier's seed commit plus the one admitted debit.
    assert_eq!(db.committed_count(), 2);
}
