//! The served replication topology: a durable primary server with an
//! embedded shipper (`repl_listen`), a follower feeding a read-replica
//! server, and a client routing snapshot reads replica-first via the
//! cheap inline `Stats` probe.

use std::sync::Arc;
use std::time::{Duration, Instant};

use hcc_adts::CounterObject;
use hcc_client::{Client, ClientOptions};
use hcc_db::Db;
use hcc_repl::{Follower, FollowerOptions, ObjectResolver};
use hcc_server::{serve_with, ServerOptions};
use hcc_storage::DurableObject;
use hcc_wire::msg::{TypeTag, View, WireOp};

fn tmpdir(tag: &str) -> std::path::PathBuf {
    let dir = std::env::temp_dir().join(format!(
        "hcc-replsrv-{tag}-{}-{:?}",
        std::process::id(),
        std::thread::current().id()
    ));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).unwrap();
    dir
}

fn counter_resolver() -> ObjectResolver {
    Arc::new(|db: &Db, name: &str| {
        let obj = db.object::<CounterObject>(name).map_err(|e| e.to_string())?;
        Ok(obj as Arc<dyn DurableObject>)
    })
}

fn await_follower(db: &Db, follower: &Follower) {
    let target = || db.storage().unwrap().last_issued_ticket();
    let deadline = Instant::now() + Duration::from_secs(20);
    while follower.durable_ticket() < target()
        || follower.lag() != 0
        || follower.watermark() < db.manager().stable_watermark()
    {
        assert!(!follower.poisoned(), "follower poisoned while converging");
        assert!(Instant::now() < deadline, "follower never converged");
        std::thread::sleep(Duration::from_millis(5));
    }
}

#[test]
fn repl_listen_requires_a_durable_db() {
    let db = Arc::new(Db::in_memory());
    let err = match serve_with(
        db,
        "127.0.0.1:0",
        ServerOptions { repl_listen: Some("127.0.0.1:0".into()), ..ServerOptions::default() },
    ) {
        Err(e) => e,
        Ok(_) => panic!("an in-memory Db must not start a shipper"),
    };
    assert!(err.to_string().contains("durable"), "{err}");
}

#[test]
fn stats_probe_and_replica_first_reads_with_fallback() {
    let pdir = tmpdir("primary");
    let rdir = tmpdir("replica");
    let db = Arc::new(Db::builder().segment_max_bytes(4096).open(&pdir).unwrap());
    let server = serve_with(
        db.clone(),
        "127.0.0.1:0",
        ServerOptions { repl_listen: Some("127.0.0.1:0".into()), ..ServerOptions::default() },
    )
    .unwrap();
    let repl_addr = server.repl_addr().expect("repl listener bound").to_string();

    let mut client = Client::connect(&server.local_addr().to_string()).unwrap();
    client.open(TypeTag::Counter, "hits").unwrap();

    // Stats is answered inline and tracks commits and the watermark.
    let before = client.stats().unwrap();
    for _ in 0..30 {
        client.transact(vec![WireOp::Inc { name: "hits".into(), delta: 1 }]).unwrap();
    }
    let after = client.stats().unwrap();
    assert_eq!(after.committed, before.committed + 30);
    assert!(after.watermark > before.watermark, "watermark advanced with commits");

    // A follower converges off the embedded shipper, and a second
    // server fronts its Db as a read replica.
    let follower = Follower::start(
        &rdir,
        &repl_addr,
        counter_resolver(),
        FollowerOptions {
            segment_max_bytes: 4096,
            reconnect_backoff: Duration::from_millis(10),
            ..FollowerOptions::default()
        },
    )
    .unwrap();
    db.storage().unwrap().sync().unwrap();
    await_follower(&db, &follower);

    let replica_db = follower.db().clone();
    let replica_server =
        serve_with(replica_db.clone(), "127.0.0.1:0", ServerOptions::default()).unwrap();
    client
        .attach_read_replica(&replica_server.local_addr().to_string(), ClientOptions::default())
        .unwrap();
    assert!(client.has_read_replica());

    // The read is served by the replica: correct views at a watermark
    // that is the follower's, and the replica server's read counter —
    // not the primary's — moves.
    let primary_reads = db.stats().counter("net.requests.read");
    let (wm, views) = client.read(None, vec![(TypeTag::Counter, "hits".into())]).unwrap();
    assert_eq!(views, vec![View::Count(30)]);
    assert!(wm <= db.manager().stable_watermark());
    assert_eq!(replica_db.stats().counter("net.requests.read"), 1);
    assert_eq!(db.stats().counter("net.requests.read"), primary_reads);

    // Replica failure: the read falls back to the primary and the dead
    // replica is detached, so later reads go straight to the primary.
    replica_server.kill();
    let (_, views) = client.read(None, vec![(TypeTag::Counter, "hits".into())]).unwrap();
    assert_eq!(views, vec![View::Count(30)]);
    assert!(!client.has_read_replica(), "failed replica was detached");
    assert_eq!(db.stats().counter("net.requests.read"), primary_reads + 1);

    client.goodbye().unwrap();
    drop(follower);
    server.drain();
    let _ = std::fs::remove_dir_all(&pdir);
    let _ = std::fs::remove_dir_all(&rdir);
}
