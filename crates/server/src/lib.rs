//! # hcc-server — the TCP front door
//!
//! Serves a [`Db`] over the `hcc-wire` protocol: an accept loop hands
//! each connection to a session reader thread, readers admit requests
//! into one global [bounded queue](queue::BoundedQueue), and a fixed
//! worker pool executes them against the facade and answers on the
//! session's socket (responses echo the request id, so sessions may
//! pipeline).
//!
//! ## Admission control
//!
//! Two caps, both refusing with a typed `Overloaded` fault instead of
//! queueing unboundedly:
//!
//! * **per-session in-flight cap** (negotiated at handshake): requests
//!   admitted but not yet answered. A client flooding past its cap is
//!   shed at the reader, before the queue.
//! * **global queue cap**: queued-but-unclaimed jobs across all
//!   sessions. A full queue sheds at the door, keeping memory bounded no
//!   matter how many sessions conspire.
//!
//! Every decision is observable: `net.requests.shed`, the
//! `net.queue.depth` gauge, and per-kind request counters land in the
//! same metrics registry the rest of the stack dumps via `HCC_METRICS`.
//!
//! ## Drain
//!
//! [`ServerHandle::drain`] stops accepting, refuses new work with
//! `ShuttingDown`, executes every already-admitted job, answers it, and
//! only then tears down sessions — so a client that got an ack got a
//! real commit, and the queue-depth gauge reads zero in the final
//! metrics dump.

#![warn(missing_docs)]

mod exec;
mod queue;

use std::collections::HashMap;
use std::net::SocketAddr;
use std::sync::atomic::{AtomicBool, AtomicU32, AtomicU64, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::Duration;

use hcc_db::Db;
use hcc_wire::conn::{self, Listener, SendHalf, WireError};
use hcc_wire::msg::{Request, Response, WireFault, PROTOCOL_VERSION};
use parking_lot::{Condvar, Mutex};
use queue::BoundedQueue;

/// Tunables for [`serve_with`]. `Default` is sized for tests and small
/// deployments; production would raise the caps, not remove them.
#[derive(Clone, Debug)]
pub struct ServerOptions {
    /// Worker threads executing requests against the `Db`.
    pub workers: usize,
    /// Global cap on queued-but-unclaimed jobs; excess is shed.
    pub queue_cap: usize,
    /// Ceiling on the per-session in-flight cap a handshake may
    /// negotiate.
    pub session_in_flight_cap: u32,
    /// When set, handshakes must present exactly this token.
    pub token: Option<String>,
    /// How long a fresh connection may sit silent before its handshake
    /// is abandoned.
    pub handshake_timeout: Duration,
    /// When set, also bind a replication listener on this address and
    /// ship the WAL to followers ([`hcc_repl::Primary`]). Requires a
    /// durable `Db`; followers authenticate with the same `token`.
    pub repl_listen: Option<String>,
}

impl Default for ServerOptions {
    fn default() -> ServerOptions {
        ServerOptions {
            workers: 4,
            queue_cap: 64,
            session_in_flight_cap: 16,
            token: None,
            handshake_timeout: Duration::from_secs(5),
            repl_listen: None,
        }
    }
}

struct NetMetrics {
    sessions_opened: Arc<hcc_obs::Counter>,
    sessions_closed: Arc<hcc_obs::Counter>,
    sessions_refused: Arc<hcc_obs::Counter>,
    req_open: Arc<hcc_obs::Counter>,
    req_transact: Arc<hcc_obs::Counter>,
    req_read: Arc<hcc_obs::Counter>,
    req_stats: Arc<hcc_obs::Counter>,
    bytes_in: Arc<hcc_obs::Counter>,
    bytes_out: Arc<hcc_obs::Counter>,
    shed: Arc<hcc_obs::Counter>,
    frames_refused: Arc<hcc_obs::Counter>,
    request_nanos: Arc<hcc_obs::Histogram>,
}

impl NetMetrics {
    fn new(registry: &hcc_obs::Registry) -> NetMetrics {
        NetMetrics {
            sessions_opened: registry.counter("net.sessions.opened"),
            sessions_closed: registry.counter("net.sessions.closed"),
            sessions_refused: registry.counter("net.sessions.refused"),
            req_open: registry.counter("net.requests.open"),
            req_transact: registry.counter("net.requests.transact"),
            req_read: registry.counter("net.requests.read"),
            req_stats: registry.counter("net.requests.stats"),
            bytes_in: registry.counter("net.bytes.in"),
            bytes_out: registry.counter("net.bytes.out"),
            shed: registry.counter("net.requests.shed"),
            frames_refused: registry.counter("net.frames.refused"),
            request_nanos: registry.histogram("net.request.nanos"),
        }
    }
}

/// One admitted unit of work: a request plus the session to answer on.
struct Job {
    session: Arc<Session>,
    seq: u64,
    req: Request,
}

struct Session {
    id: u64,
    /// Workers and the reader both answer on this half; the lock keeps
    /// concurrent responses from interleaving bytes.
    tx: Mutex<SendHalf>,
    /// Admitted-but-unanswered requests, counted against `cap`.
    in_flight: AtomicU32,
    cap: u32,
}

impl Session {
    fn respond(&self, shared: &Shared, seq: u64, resp: &Response) {
        if let Ok(n) = self.tx.lock().send(seq, resp) {
            shared.metrics.bytes_out.add(n);
        }
        // A dead socket still completes the request: the decrement (and
        // the outstanding count the drain waits on) must not depend on
        // the client surviving to read the answer.
    }

    fn finish(&self, shared: &Shared) {
        self.in_flight.fetch_sub(1, Ordering::AcqRel);
        if shared.outstanding.fetch_sub(1, Ordering::AcqRel) == 1 {
            let _lock = shared.idle.0.lock();
            shared.idle.1.notify_all();
        }
    }
}

struct Shared {
    db: Arc<Db>,
    opts: ServerOptions,
    metrics: NetMetrics,
    queue: BoundedQueue<Job>,
    draining: AtomicBool,
    /// Admitted-but-unanswered requests server-wide (queued + executing).
    outstanding: AtomicU64,
    idle: (Mutex<()>, Condvar),
    sessions: Mutex<HashMap<u64, Arc<Session>>>,
    next_session: AtomicU64,
    /// Set when a session delivers an authorized `Shutdown` request.
    shutdown_requested: (Mutex<bool>, Condvar),
}

/// A running server. Dropping the handle does **not** stop it; call
/// [`ServerHandle::drain`] (graceful) or [`ServerHandle::kill`]
/// (abrupt, for tests that model a crash without a process).
pub struct ServerHandle {
    addr: SocketAddr,
    shared: Arc<Shared>,
    accept: Option<JoinHandle<()>>,
    workers: Vec<JoinHandle<()>>,
    readers: Arc<Mutex<Vec<JoinHandle<()>>>>,
    repl: Option<hcc_repl::Primary>,
}

/// Serve `db` on `addr` with default [`ServerOptions`]. Bind to port 0
/// to let the OS choose; the real address is
/// [`ServerHandle::local_addr`].
pub fn serve(db: Arc<Db>, addr: &str) -> std::io::Result<ServerHandle> {
    serve_with(db, addr, ServerOptions::default())
}

/// Serve `db` on `addr` with explicit options.
pub fn serve_with(db: Arc<Db>, addr: &str, opts: ServerOptions) -> std::io::Result<ServerHandle> {
    let listener = Listener::bind(addr)?;
    let local = listener.local_addr()?;

    // The replication listener rides along with the front door: the
    // shipper tails the same WAL the executors append to, and followers
    // present the same auth token clients do.
    let repl = match &opts.repl_listen {
        Some(listen) => {
            let Some(store) = db.storage() else {
                return Err(std::io::Error::new(
                    std::io::ErrorKind::InvalidInput,
                    "repl_listen requires a durable Db (replication ships the WAL)",
                ));
            };
            let mgr = db.manager().clone();
            let store = store.clone();
            // Watermark FIRST, ticket second — the sampling order the
            // follower's consistent-prefix argument depends on.
            let sample: hcc_repl::PositionSampler = Arc::new(move || {
                let wm = mgr.stable_watermark();
                let tk = store.last_issued_ticket();
                (wm, tk)
            });
            let popts = hcc_repl::PrimaryOptions {
                token: opts.token.clone(),
                ..hcc_repl::PrimaryOptions::default()
            };
            Some(hcc_repl::Primary::start(
                listen,
                db.storage().unwrap().dir(),
                sample,
                db.metrics(),
                popts,
            )?)
        }
        None => None,
    };

    let metrics = NetMetrics::new(db.metrics());
    let queue = BoundedQueue::new(opts.queue_cap, db.metrics().gauge("net.queue.depth"));
    let shared = Arc::new(Shared {
        db,
        opts,
        metrics,
        queue,
        draining: AtomicBool::new(false),
        outstanding: AtomicU64::new(0),
        idle: (Mutex::new(()), Condvar::new()),
        sessions: Mutex::new(HashMap::new()),
        next_session: AtomicU64::new(1),
        shutdown_requested: (Mutex::new(false), Condvar::new()),
    });

    let workers = (0..shared.opts.workers.max(1))
        .map(|_| {
            let shared = shared.clone();
            std::thread::spawn(move || worker_loop(&shared))
        })
        .collect();

    let readers: Arc<Mutex<Vec<JoinHandle<()>>>> = Arc::new(Mutex::new(Vec::new()));
    let accept = {
        let shared = shared.clone();
        let readers = readers.clone();
        std::thread::spawn(move || accept_loop(&listener, &shared, &readers))
    };

    Ok(ServerHandle { addr: local, shared, accept: Some(accept), workers, readers, repl })
}

impl ServerHandle {
    /// The address actually bound (resolves port 0).
    pub fn local_addr(&self) -> SocketAddr {
        self.addr
    }

    /// The replication listener's bound address, when
    /// [`ServerOptions::repl_listen`] was set — followers connect here.
    pub fn repl_addr(&self) -> Option<SocketAddr> {
        self.repl.as_ref().map(|p| p.local_addr())
    }

    /// Block until some authenticated session asks the server to shut
    /// down via `Request::Shutdown` (the example binary's exit signal).
    pub fn wait_for_shutdown_request(&self) {
        let (lock, cv) = &self.shared.shutdown_requested;
        let mut requested = lock.lock();
        while !*requested {
            cv.wait(&mut requested);
        }
    }

    fn stop_accepting(&mut self) {
        // Stop shipping to followers first: a drain or kill models the
        // primary going away, and followers must reconnect elsewhere
        // (or be promoted), not read a half-drained stream.
        if let Some(mut primary) = self.repl.take() {
            primary.stop();
        }
        self.shared.draining.store(true, Ordering::SeqCst);
        // Wake the blocked accept with a throwaway connection.
        let _ = conn::connect(self.addr);
        if let Some(accept) = self.accept.take() {
            accept.join().ok();
        }
    }

    fn teardown_sessions(&self) {
        let sessions: Vec<Arc<Session>> = self.shared.sessions.lock().values().cloned().collect();
        for s in sessions {
            s.tx.lock().shutdown_both();
        }
        let readers = std::mem::take(&mut *self.readers.lock());
        for r in readers {
            r.join().ok();
        }
    }

    /// Graceful shutdown: stop accepting, refuse new requests with
    /// `ShuttingDown`, execute and answer every admitted job, then close
    /// sessions. The queue-depth gauge is zero when this returns.
    pub fn drain(mut self) {
        self.stop_accepting();
        // Admitted jobs keep their promise: wait until none are
        // outstanding (readers now refuse admissions, so this count
        // only falls).
        {
            let (lock, cv) = &self.shared.idle;
            let mut guard = lock.lock();
            while self.shared.outstanding.load(Ordering::Acquire) > 0 {
                cv.wait_for(&mut guard, Duration::from_millis(50));
            }
        }
        self.shared.queue.close();
        for w in self.workers.drain(..) {
            w.join().ok();
        }
        self.teardown_sessions();
    }

    /// Abrupt stop for tests: close every socket first (answers to
    /// queued work are lost, as in a crash), then reap the threads.
    /// Models a crash without killing the process; the process-level
    /// SIGABRT path is exercised by `examples/server_client.rs`.
    pub fn kill(mut self) {
        self.stop_accepting();
        self.teardown_sessions();
        self.shared.queue.close();
        for w in self.workers.drain(..) {
            w.join().ok();
        }
    }
}

fn accept_loop(
    listener: &Listener,
    shared: &Arc<Shared>,
    readers: &Arc<Mutex<Vec<JoinHandle<()>>>>,
) {
    while !shared.draining.load(Ordering::SeqCst) {
        let Ok((conn, _peer)) = listener.accept() else { break };
        if shared.draining.load(Ordering::SeqCst) {
            break;
        }
        let shared = shared.clone();
        let handle = std::thread::spawn(move || session_loop(conn, &shared));
        readers.lock().push(handle);
    }
}

/// Validate the handshake on a fresh connection; `Some` hands back the
/// session and its receive half, `None` means the connection was
/// refused (counted) and closed.
fn handshake(
    conn: hcc_wire::conn::Conn,
    shared: &Arc<Shared>,
) -> Option<(Arc<Session>, hcc_wire::conn::RecvHalf)> {
    let (mut tx, mut rx) = conn.split().ok()?;
    rx.set_read_timeout(Some(shared.opts.handshake_timeout)).ok()?;
    let hello = match rx.recv::<Request>() {
        Ok(Some((_seq, req, n))) => {
            shared.metrics.bytes_in.add(n);
            req
        }
        _ => {
            shared.metrics.sessions_refused.inc();
            return None;
        }
    };
    let refusal = match &hello {
        Request::Hello { version, .. } if *version != PROTOCOL_VERSION => {
            Some(WireFault::VersionMismatch { server: PROTOCOL_VERSION, client: *version })
        }
        Request::Hello { token, .. } => match &shared.opts.token {
            Some(expected) if token != expected => Some(WireFault::BadToken),
            _ => None,
        },
        // Anything else before a handshake is a protocol violation.
        _ => Some(WireFault::Fatal { detail: "first request must be the handshake".into() }),
    };
    if let Some(fault) = refusal {
        shared.metrics.sessions_refused.inc();
        if let Ok(n) = tx.send(0, &Response::Fault(fault)) {
            shared.metrics.bytes_out.add(n);
        }
        return None;
    }
    let Request::Hello { max_in_flight, .. } = hello else { unreachable!() };
    let cap = max_in_flight.clamp(1, shared.opts.session_in_flight_cap);
    let id = shared.next_session.fetch_add(1, Ordering::Relaxed);
    let welcome = Response::Welcome { version: PROTOCOL_VERSION, session: id, max_in_flight: cap };
    match tx.send(0, &welcome) {
        Ok(n) => shared.metrics.bytes_out.add(n),
        Err(_) => return None,
    }
    rx.set_read_timeout(None).ok();
    let session = Arc::new(Session { id, tx: Mutex::new(tx), in_flight: AtomicU32::new(0), cap });
    shared.sessions.lock().insert(id, session.clone());
    shared.metrics.sessions_opened.inc();
    Some((session, rx))
}

fn session_loop(conn: hcc_wire::conn::Conn, shared: &Arc<Shared>) {
    let Some((session, mut rx)) = handshake(conn, shared) else { return };
    loop {
        match rx.recv::<Request>() {
            Ok(Some((seq, req, n))) => {
                shared.metrics.bytes_in.add(n);
                if !admit(&session, shared, seq, req) {
                    break;
                }
            }
            // Clean close on a frame boundary.
            Ok(None) => break,
            // A torn or corrupt frame never corrupts the session's
            // state: whatever half-arrived is refused wholesale and the
            // connection dies here. Admitted requests still complete
            // (their effects are real commits); only their answers are
            // lost with the socket.
            Err(WireError::Frame(_)) => {
                shared.metrics.frames_refused.inc();
                break;
            }
            Err(WireError::Io(_)) => break,
        }
    }
    shared.sessions.lock().remove(&session.id);
    session.tx.lock().shutdown_both();
    shared.metrics.sessions_closed.inc();
}

/// Route one decoded request: answer session-control inline, shed past
/// the caps, enqueue the rest. `false` ends the session.
fn admit(session: &Arc<Session>, shared: &Arc<Shared>, seq: u64, req: Request) -> bool {
    match &req {
        Request::Goodbye => {
            session.respond(shared, seq, &Response::Bye);
            return false;
        }
        Request::Shutdown => {
            // The handshake already authenticated this session's token;
            // any authenticated session may request the drain.
            let (lock, cv) = &shared.shutdown_requested;
            *lock.lock() = true;
            cv.notify_all();
            session.respond(shared, seq, &Response::Bye);
            return true;
        }
        Request::Hello { .. } => {
            session.respond(
                shared,
                seq,
                &Response::Fault(WireFault::Fatal { detail: "handshake already completed".into() }),
            );
            return false;
        }
        Request::Stats => {
            // Answered inline so a stats probe (watermark poll, health
            // check) is never queued behind a slow transact — and keeps
            // answering while draining, since it admits no new work.
            shared.metrics.req_stats.inc();
            session.respond(
                shared,
                seq,
                &Response::Stats {
                    watermark: shared.db.stable_watermark(),
                    committed: shared.db.committed_count(),
                    aborted: shared.db.aborted_count(),
                },
            );
            return true;
        }
        Request::Open { .. } => shared.metrics.req_open.inc(),
        Request::Transact { .. } => shared.metrics.req_transact.inc(),
        Request::Read { .. } => shared.metrics.req_read.inc(),
    }
    if shared.draining.load(Ordering::SeqCst) {
        session.respond(shared, seq, &Response::Fault(WireFault::ShuttingDown));
        return true;
    }
    // Per-session cap: admitted-but-unanswered requests on this session.
    let in_flight = session.in_flight.load(Ordering::Acquire);
    if in_flight >= session.cap {
        shared.metrics.shed.inc();
        session.respond(
            shared,
            seq,
            &Response::Fault(WireFault::Overloaded { in_flight, cap: session.cap }),
        );
        return true;
    }
    session.in_flight.fetch_add(1, Ordering::AcqRel);
    shared.outstanding.fetch_add(1, Ordering::AcqRel);
    match shared.queue.try_push(Job { session: session.clone(), seq, req }) {
        Ok(()) => true,
        Err((job, depth)) => {
            // Global queue full (or closing): shed at the door.
            shared.metrics.shed.inc();
            let fault = if shared.draining.load(Ordering::SeqCst) {
                WireFault::ShuttingDown
            } else {
                WireFault::Overloaded { in_flight: depth as u32, cap: shared.opts.queue_cap as u32 }
            };
            session.respond(shared, seq, &Response::Fault(fault));
            job.session.finish(shared);
            true
        }
    }
}

fn worker_loop(shared: &Arc<Shared>) {
    while let Some(job) = shared.queue.pop() {
        let start = std::time::Instant::now();
        let resp = exec::execute(&shared.db, &job.req);
        shared.metrics.request_nanos.observe(start.elapsed().as_nanos() as u64);
        job.session.respond(shared, job.seq, &resp);
        job.session.finish(shared);
    }
}

pub use exec::execute;
