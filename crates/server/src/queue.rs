//! The bounded job queue between session readers and the worker pool.
//!
//! The front door's admission discipline in one data structure: a
//! producer that finds the queue full gets an immediate `Err` back — the
//! reader turns it into a typed `Overloaded` refusal — instead of the
//! queue growing to absorb the burst. Consumers block until a job
//! arrives or the queue is closed *and* empty, so a graceful drain
//! executes every admitted job before the workers exit.

use std::collections::VecDeque;
use std::sync::Arc;

use parking_lot::{Condvar, Mutex};

struct Inner<J> {
    jobs: VecDeque<J>,
    closed: bool,
}

/// A fixed-capacity MPMC queue: `try_push` never blocks (full = refusal),
/// `pop` blocks until a job or close-and-empty.
pub struct BoundedQueue<J> {
    inner: Mutex<Inner<J>>,
    nonempty: Condvar,
    cap: usize,
    depth: Arc<hcc_obs::Gauge>,
}

impl<J> BoundedQueue<J> {
    /// A queue admitting at most `cap` queued jobs, mirroring its depth
    /// into `depth` (the `net.queue.depth` gauge).
    pub fn new(cap: usize, depth: Arc<hcc_obs::Gauge>) -> BoundedQueue<J> {
        BoundedQueue {
            inner: Mutex::new(Inner {
                jobs: VecDeque::with_capacity(cap.min(1024)),
                closed: false,
            }),
            nonempty: Condvar::new(),
            cap,
            depth,
        }
    }

    /// Admit `job`, or hand it straight back: `Err((job, depth))` when
    /// the queue is at capacity (shed it) or closed (drain refusal).
    pub fn try_push(&self, job: J) -> Result<(), (J, usize)> {
        let mut inner = self.inner.lock();
        if inner.closed || inner.jobs.len() >= self.cap {
            let depth = inner.jobs.len();
            drop(inner);
            return Err((job, depth));
        }
        inner.jobs.push_back(job);
        self.depth.set(inner.jobs.len() as i64);
        drop(inner);
        self.nonempty.notify_one();
        Ok(())
    }

    /// Block for the next job; `None` once the queue is closed and every
    /// admitted job has been taken.
    pub fn pop(&self) -> Option<J> {
        let mut inner = self.inner.lock();
        loop {
            if let Some(job) = inner.jobs.pop_front() {
                self.depth.set(inner.jobs.len() as i64);
                return Some(job);
            }
            if inner.closed {
                return None;
            }
            self.nonempty.wait(&mut inner);
        }
    }

    /// Stop admitting; wake every blocked consumer so the pool can drain
    /// the remainder and exit.
    pub fn close(&self) {
        self.inner.lock().closed = true;
        self.nonempty.notify_all();
    }
}
