//! Executing decoded requests against the `Db` facade.
//!
//! This is the server's only contact with application semantics: each
//! [`WireOp`] maps onto the typed handle call a local caller would make
//! (`db.object::<AccountObject>(name)` + `credit`/`debit`/…), the whole
//! batch runs inside one `db.transact_ts` (so the facade's transient
//! retry, abort-on-drop, and exactly-once discipline all apply
//! unchanged), and reads go through `begin_read`/`read_at` — the same
//! wait-free snapshot path in-process readers use.
//!
//! Failures come back as typed [`WireFault`]s, classified with the same
//! transient/fatal line `HccError::is_transient` draws, so a remote
//! client's retry loop can be as correct as a local one.

use std::sync::Arc;

use hcc_adts::{AccountObject, CounterObject, QueueObject};
use hcc_db::{Db, HccError, ReadTx, Tx};
use hcc_spec::Rational;
use hcc_wire::msg::{OpResult, Request, Response, TypeTag, View, WireFault, WireOp};

/// Map an `HccError` the facade surfaced onto the fault a remote caller
/// can act on. The transient/fatal classification crosses the wire
/// intact: a shed or aborted request may be resubmitted, a fatal one
/// must not be.
fn fault_from(err: HccError) -> WireFault {
    match err {
        HccError::TypeMismatch { object, .. } => WireFault::TypeMismatch { object },
        HccError::SnapshotCompacted { requested, floor } => {
            WireFault::SnapshotCompacted { requested, floor }
        }
        HccError::SnapshotContended { requested } => WireFault::SnapshotContended { requested },
        HccError::Overloaded { in_flight, cap } => WireFault::Overloaded { in_flight, cap },
        // The facade's transact already spent its retry budget on
        // transient failures; the transaction is aborted everywhere, so
        // the *remote* caller may still resubmit — that is a fresh
        // transaction, not a replay.
        e @ HccError::RetriesExhausted { .. } => WireFault::Transient { detail: e.to_string() },
        e if e.is_transient() => WireFault::Transient { detail: e.to_string() },
        e => WireFault::Fatal { detail: e.to_string() },
    }
}

fn open_object(db: &Db, tag: TypeTag, name: &str) -> Result<(), HccError> {
    match tag {
        TypeTag::Account => db.object::<AccountObject>(name).map(drop),
        TypeTag::Counter => db.object::<CounterObject>(name).map(drop),
        TypeTag::QueueI64 => db.object::<QueueObject<i64>>(name).map(drop),
    }
}

fn run_op(db: &Db, tx: &Tx, op: &WireOp) -> Result<OpResult, HccError> {
    match op {
        WireOp::Credit { name, amount } => {
            let acct: Arc<AccountObject> = db.object(name)?;
            acct.credit(tx.handle(), Rational::from_int(*amount))?;
            Ok(OpResult::Unit)
        }
        WireOp::Debit { name, amount } => {
            let acct: Arc<AccountObject> = db.object(name)?;
            Ok(OpResult::Debited(acct.debit(tx.handle(), Rational::from_int(*amount))?))
        }
        WireOp::Inc { name, delta } => {
            let counter: Arc<CounterObject> = db.object(name)?;
            if *delta >= 0 {
                counter.inc(tx.handle(), *delta)?;
            } else {
                counter.dec(tx.handle(), -*delta)?;
            }
            Ok(OpResult::Unit)
        }
        WireOp::Enq { name, item } => {
            let queue: Arc<QueueObject<i64>> = db.object(name)?;
            queue.enq(tx.handle(), *item)?;
            Ok(OpResult::Unit)
        }
        WireOp::Deq { name } => {
            let queue: Arc<QueueObject<i64>> = db.object(name)?;
            Ok(OpResult::Int(queue.deq(tx.handle())?))
        }
    }
}

fn view_one(db: &Db, rtx: &ReadTx<'_>, tag: TypeTag, name: &str) -> Result<View, HccError> {
    // Views come off the pinned snapshot; opening the handle first is
    // what recovers a not-yet-opened object into the fold horizon.
    match tag {
        TypeTag::Account => {
            open_object(db, tag, name)?;
            let balance = rtx.view::<AccountObject>(name)?;
            // i64 wire range; the workspace's integer-money workloads
            // stay well inside it.
            Ok(View::Balance { num: balance.numerator() as i64, den: balance.denominator() as i64 })
        }
        TypeTag::Counter => {
            open_object(db, tag, name)?;
            Ok(View::Count(rtx.view::<CounterObject>(name)?))
        }
        TypeTag::QueueI64 => {
            open_object(db, tag, name)?;
            Ok(View::Items(rtx.view::<QueueObject<i64>>(name)?.into_iter().collect()))
        }
    }
}

/// Execute one admitted request to its response. Only `Open`,
/// `Transact`, and `Read` reach here — the session layer answers
/// handshake and connection-control messages itself.
pub fn execute(db: &Db, req: &Request) -> Response {
    match req {
        Request::Open { tag, name } => match open_object(db, *tag, name) {
            Ok(()) => Response::OpenOk,
            Err(e) => Response::Fault(fault_from(e)),
        },
        Request::Transact { ops } => {
            let outcome = db.transact_ts(|tx| {
                ops.iter().map(|op| run_op(db, tx, op)).collect::<Result<Vec<_>, _>>()
            });
            match outcome {
                Ok((results, ts)) => Response::Committed { ts: ts.0, results },
                Err(e) => Response::Fault(fault_from(e)),
            }
        }
        Request::Read { at, queries } => {
            let run = || -> Result<Response, HccError> {
                let rtx = match at {
                    None => db.begin_read(),
                    Some(ts) => db.read_at(*ts)?,
                };
                let views = queries
                    .iter()
                    .map(|(tag, name)| view_one(db, &rtx, *tag, name))
                    .collect::<Result<Vec<_>, _>>()?;
                Ok(Response::Views { watermark: rtx.watermark(), views })
            };
            run().unwrap_or_else(|e| Response::Fault(fault_from(e)))
        }
        // Session-layer messages (including `Stats`, answered inline so
        // it can never queue behind a slow transact) never reach the
        // executor.
        Request::Hello { .. } | Request::Shutdown | Request::Goodbye | Request::Stats => {
            Response::Fault(WireFault::Fatal {
                detail: "session message routed to executor".into(),
            })
        }
    }
}
