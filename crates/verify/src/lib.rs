//! # hcc-verify — atomicity checkers (the test oracle)
//!
//! Implements the correctness properties of Section 3 as executable
//! checks over recorded histories:
//!
//! * [`serializable_in`] — is `H` serializable in a given total order
//!   (Section 3.2: `Serial(H, T)` acceptable at every object)?
//! * [`serializable`] / [`atomic`] — existential serializability and
//!   atomicity (brute-force over orders; histories are small in tests).
//! * [`hybrid_atomic`] — `permanent(H)` serializable in timestamp order
//!   (Section 3.3).
//! * [`online_hybrid_atomic`] — for every commit set `C` and every total
//!   order `T` consistent with `Known(H|X)`, `H|C|X` is serializable in `T`
//!   (Section 3.4). Exponential; intended for bounded histories.
//! * [`dynamic_atomic`] — serializable in *every* total order consistent
//!   with `precedes(H)` (Section 7), the property commutativity-based
//!   schemes guarantee.

use hcc_spec::adt::SharedAdt;
use hcc_spec::{legal, History, ObjectId, TxnId};
use std::collections::{HashMap, HashSet};

/// The serial specifications of every object in a system, keyed by id.
#[derive(Clone, Default)]
pub struct SystemSpecs {
    specs: HashMap<ObjectId, SharedAdt>,
}

impl SystemSpecs {
    /// An empty registry.
    pub fn new() -> SystemSpecs {
        SystemSpecs::default()
    }

    /// Register an object's specification.
    pub fn insert(&mut self, obj: ObjectId, spec: SharedAdt) -> &mut Self {
        self.specs.insert(obj, spec);
        self
    }

    /// Builder-style registration.
    pub fn with(mut self, obj: ObjectId, spec: SharedAdt) -> SystemSpecs {
        self.specs.insert(obj, spec);
        self
    }

    /// The specification for `obj`.
    pub fn get(&self, obj: ObjectId) -> &SharedAdt {
        self.specs.get(&obj).unwrap_or_else(|| panic!("no spec registered for {obj:?}"))
    }
}

/// Is `h` serializable in the order `order` — i.e. is
/// `OpSeq(Serial(h, order))` acceptable at every object?
pub fn serializable_in(h: &History, order: &[TxnId], specs: &SystemSpecs) -> bool {
    h.objects().into_iter().all(|x| {
        let ops = h.serial_ops_at(order, x);
        legal(specs.get(x).as_ref(), &ops)
    })
}

fn permutations<T: Clone>(items: &[T]) -> Vec<Vec<T>> {
    if items.is_empty() {
        return vec![Vec::new()];
    }
    let mut out = Vec::new();
    for i in 0..items.len() {
        let mut rest = items.to_vec();
        let x = rest.remove(i);
        for mut p in permutations(&rest) {
            p.insert(0, x.clone());
            out.push(p);
        }
    }
    out
}

const MAX_BRUTE_FORCE_TXNS: usize = 8;

/// Is the failure-free history `h` serializable in *some* total order?
///
/// Brute force over permutations; panics if `h` has more than 8
/// transactions (the checkers are oracles for bounded tests, not
/// production tools).
pub fn serializable(h: &History, specs: &SystemSpecs) -> bool {
    let txns = h.txns();
    assert!(
        txns.len() <= MAX_BRUTE_FORCE_TXNS,
        "brute-force serializability limited to {MAX_BRUTE_FORCE_TXNS} transactions"
    );
    permutations(&txns).into_iter().any(|order| serializable_in(h, &order, specs))
}

/// Is `h` atomic — `permanent(h)` serializable (Section 3.2)?
pub fn atomic(h: &History, specs: &SystemSpecs) -> bool {
    serializable(&h.permanent(), specs)
}

/// Is `h` hybrid atomic — `permanent(h)` serializable in timestamp order
/// (Section 3.3)?
pub fn hybrid_atomic(h: &History, specs: &SystemSpecs) -> bool {
    hybrid_atomic_violation(h, specs).is_none()
}

/// Why a history is not hybrid atomic: the first object (in id order)
/// whose permanent operations, serialized in timestamp order, are not a
/// legal sequence of its specification. `None` means `h` is hybrid
/// atomic. The library entry point for tools that need to *report* a
/// violation, not just detect one — `hcc-check` confirms every
/// counterexample its static soundness search finds through this
/// function, so the search and the oracle can never silently disagree.
pub fn hybrid_atomic_violation(h: &History, specs: &SystemSpecs) -> Option<ObjectId> {
    let p = h.permanent();
    let order = p.ts_order();
    p.objects().into_iter().find(|&x| !legal(specs.get(x).as_ref(), &p.serial_ops_at(&order, x)))
}

/// Is `h` dynamic atomic — `permanent(h)` serializable in **every** total
/// order consistent with `precedes(h)` (Section 7)?
pub fn dynamic_atomic(h: &History, specs: &SystemSpecs) -> bool {
    let p = h.permanent();
    let txns = p.txns();
    assert!(txns.len() <= MAX_BRUTE_FORCE_TXNS);
    let prec = h.precedes();
    permutations(&txns)
        .into_iter()
        .filter(|order| consistent(order, &prec))
        .all(|order| serializable_in(&p, &order, specs))
}

/// Does a total order (as a sequence) respect a set of pairs?
fn consistent(order: &[TxnId], pairs: &HashSet<(TxnId, TxnId)>) -> bool {
    let pos: HashMap<TxnId, usize> = order.iter().enumerate().map(|(i, &t)| (t, i)).collect();
    pairs.iter().all(|(a, b)| match (pos.get(a), pos.get(b)) {
        (Some(i), Some(j)) => i < j,
        _ => true,
    })
}

/// Is `h` online hybrid atomic at `x` (Section 3.4)?
///
/// For every commit set `C` (a superset of `committed(h)` disjoint from
/// `aborted(h)`) and every total order `T` on `C` consistent with
/// `Known(h|x)`, `h|C|x` must be serializable in `T`.
pub fn online_hybrid_atomic_at(h: &History, x: ObjectId, specs: &SystemSpecs) -> bool {
    let hx = h.restrict_obj(x);
    let txns = hx.txns();
    assert!(txns.len() <= MAX_BRUTE_FORCE_TXNS, "online check limited to 8 transactions");
    let committed: HashSet<TxnId> = hx.committed().keys().copied().collect();
    let aborted = hx.aborted();
    let known = hx.known();
    let candidates: Vec<TxnId> =
        txns.iter().copied().filter(|t| !committed.contains(t) && !aborted.contains(t)).collect();
    // Every subset of the active transactions may still commit.
    for bits in 0..(1u32 << candidates.len()) {
        let mut c: HashSet<TxnId> = committed.clone();
        for (i, t) in candidates.iter().enumerate() {
            if bits & (1 << i) != 0 {
                c.insert(*t);
            }
        }
        let members: Vec<TxnId> = txns.iter().copied().filter(|t| c.contains(t)).collect();
        let restricted = hx.restrict_txns(&c);
        for order in permutations(&members) {
            if !consistent(&order, &known) {
                continue;
            }
            if !serializable_in(&restricted, &order, specs) {
                return false;
            }
        }
    }
    true
}

/// Is `h` online hybrid atomic at every object?
pub fn online_hybrid_atomic(h: &History, specs: &SystemSpecs) -> bool {
    h.objects().into_iter().all(|x| online_hybrid_atomic_at(h, x, specs))
}

#[cfg(test)]
mod tests {
    use super::*;
    use hcc_spec::history::HistoryBuilder;
    use hcc_spec::specs::{FileSpec, QueueSpec};
    use hcc_spec::{Inv, Value};
    use std::sync::Arc;

    fn queue_specs() -> SystemSpecs {
        SystemSpecs::new().with(ObjectId(0), Arc::new(QueueSpec))
    }

    fn enq(v: i64) -> Inv {
        QueueSpec::enq(v)
    }
    fn deq() -> Inv {
        QueueSpec::deq()
    }

    /// The paper's Section-3 example: serializable in the order Q, P, R.
    fn paper_history() -> History {
        HistoryBuilder::new()
            .op(0, 1, enq(1), Value::Unit)
            .op(0, 2, enq(2), Value::Unit)
            .op(0, 1, enq(3), Value::Unit)
            .commit(0, 1, 2)
            .commit(0, 2, 1)
            .op(0, 3, deq(), 2)
            .op(0, 3, deq(), 1)
            .commit(0, 3, 5)
            .build()
    }

    #[test]
    fn paper_history_is_hybrid_atomic() {
        let h = paper_history();
        let specs = queue_specs();
        assert!(hybrid_atomic(&h, &specs));
        assert!(atomic(&h, &specs));
        assert!(serializable(&h, &specs));
        assert!(online_hybrid_atomic(&h, &specs));
    }

    #[test]
    fn wrong_timestamp_order_is_not_hybrid_atomic() {
        // Same events, but P gets the smaller timestamp — then the ts
        // order P,Q,R would have to dequeue 1 first, not 2.
        let h = HistoryBuilder::new()
            .op(0, 1, enq(1), Value::Unit)
            .op(0, 2, enq(2), Value::Unit)
            .commit(0, 1, 1)
            .commit(0, 2, 2)
            .op(0, 3, deq(), 2)
            .commit(0, 3, 5)
            .build();
        let specs = queue_specs();
        assert!(!hybrid_atomic(&h, &specs));
        assert_eq!(hybrid_atomic_violation(&h, &specs), Some(ObjectId(0)), "names the object");
        // It *is* serializable in some order (Q, P, R), hence atomic...
        assert!(atomic(&h, &specs));
        // ...and dynamic atomicity fails too: P, Q, R is consistent with
        // precedes but unacceptable.
        assert!(!dynamic_atomic(&h, &specs));
    }

    #[test]
    fn aborted_transactions_are_invisible() {
        let h = HistoryBuilder::new()
            .op(0, 1, enq(1), Value::Unit)
            .abort(0, 1)
            .op(0, 2, enq(2), Value::Unit)
            .commit(0, 2, 1)
            .op(0, 3, deq(), 2)
            .commit(0, 3, 2)
            .build();
        assert!(hybrid_atomic(&h, &queue_specs()));
    }

    #[test]
    fn serializable_in_checks_each_object() {
        let mut specs = queue_specs();
        specs.insert(ObjectId(1), Arc::new(FileSpec::default()));
        let h = HistoryBuilder::new()
            .op(0, 1, enq(1), Value::Unit)
            .op(1, 1, FileSpec::write(9), Value::Unit)
            .op(1, 2, FileSpec::read(), 9)
            .op(0, 2, deq(), 1)
            .build();
        // T1 before T2: enq then deq, write then read-9: fine.
        assert!(serializable_in(&h, &[TxnId(1), TxnId(2)], &specs));
        // T2 first: read-9 before the write and deq on empty: illegal.
        assert!(!serializable_in(&h, &[TxnId(2), TxnId(1)], &specs));
    }

    #[test]
    fn online_check_catches_premature_responses() {
        // R dequeues an item enqueued by the *uncommitted* P. If P is in a
        // commit set ordered after R... actually the violation: commit set
        // {P, R} with order R before P (both orders are consistent with
        // empty Known) makes deq→1 precede enq(1).
        let h = HistoryBuilder::new()
            .op(0, 1, enq(1), Value::Unit) // P (uncommitted)
            .op(0, 3, deq(), 1) // R dequeues P's item!
            .build();
        assert!(!online_hybrid_atomic(&h, &queue_specs()));
        // Plain hybrid atomicity does not see it (nobody committed).
        assert!(hybrid_atomic(&h, &queue_specs()));
    }

    #[test]
    fn online_check_accepts_own_item_dequeue() {
        // A transaction dequeuing its *own* enqueue is fine.
        let h = HistoryBuilder::new().op(0, 1, enq(1), Value::Unit).op(0, 1, deq(), 1).build();
        assert!(online_hybrid_atomic(&h, &queue_specs()));
    }

    #[test]
    fn consistent_order_helper() {
        let pairs: HashSet<(TxnId, TxnId)> = [(TxnId(1), TxnId(2))].into();
        assert!(consistent(&[TxnId(1), TxnId(2)], &pairs));
        assert!(!consistent(&[TxnId(2), TxnId(1)], &pairs));
        // Pairs mentioning absent transactions are vacuous.
        assert!(consistent(&[TxnId(3)], &pairs));
    }

    #[test]
    #[should_panic(expected = "no spec registered")]
    fn missing_spec_panics() {
        let h = HistoryBuilder::new().op(9, 1, enq(1), Value::Unit).build();
        serializable_in(&h, &[TxnId(1)], &SystemSpecs::new());
    }
}
