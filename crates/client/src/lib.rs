//! # hcc-client — talking to the front door
//!
//! A synchronous client for the `hcc-wire` protocol with the same error
//! contract local callers get: every failure is an
//! [`HccError`](hcc_db::HccError) whose `is_transient()` answer is the
//! retry decision. A shed request (`Overloaded`) or a server-side
//! transient abort is retried here with the facade's own
//! [`RetryPolicy`] backoff; fatal faults surface immediately.
//!
//! ## Outcome-unknown honesty
//!
//! If the connection dies **after a request was sent but before its
//! response arrived**, this client does *not* resend it: the server may
//! have committed and only the ack was lost, so blind resubmission
//! could double-apply effects. The failure surfaces as
//! [`HccError::Protocol`](hcc_db::HccError) naming the outcome unknown;
//! the caller decides — typically by reading recovered state after
//! reconnecting, which is exactly what the socket crash workload's
//! verifier does.

#![warn(missing_docs)]

use std::time::Duration;

use hcc_db::{HccError, RetryPolicy};
use hcc_txn::manager::CommitError;
use hcc_wire::conn::{self, RecvHalf, SendHalf, WireError};
use hcc_wire::msg::{OpResult, Request, Response, TypeTag, View, WireFault, PROTOCOL_VERSION};

/// Handshake and retry tunables for [`Client::connect_with`].
#[derive(Clone, Debug)]
pub struct ClientOptions {
    /// Auth token presented at handshake.
    pub token: String,
    /// The in-flight cap to ask for (the server may grant less).
    pub max_in_flight: u32,
    /// Backoff schedule for `Overloaded`/transient retries.
    pub retry: RetryPolicy,
    /// Protocol version to offer — overridable so tests can exercise
    /// the version-mismatch refusal.
    pub version: u32,
    /// Read timeout while waiting for the handshake reply.
    pub handshake_timeout: Duration,
}

impl Default for ClientOptions {
    fn default() -> ClientOptions {
        ClientOptions {
            token: String::new(),
            max_in_flight: 8,
            retry: RetryPolicy::default(),
            version: PROTOCOL_VERSION,
            handshake_timeout: Duration::from_secs(5),
        }
    }
}

/// Server positions answering [`Client::stats`]: the stable watermark
/// (every commit at or below it is readable on the snapshot path) and
/// the lifetime commit/abort totals.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct ServerStats {
    /// The server's stable watermark.
    pub watermark: u64,
    /// Transactions committed since the server's store opened.
    pub committed: u64,
    /// Transactions aborted since the server's store opened.
    pub aborted: u64,
}

/// A connected, handshaken session.
pub struct Client {
    tx: SendHalf,
    rx: RecvHalf,
    next_seq: u64,
    session: u64,
    granted_in_flight: u32,
    retry: RetryPolicy,
    /// An attached read replica; [`Client::read`] routes here first.
    replica: Option<Box<Client>>,
}

fn lost(context: &str) -> HccError {
    HccError::Protocol(format!(
        "connection lost {context}: the request's outcome is unknown and it will not be \
         resent (a commit whose ack was lost must not be re-applied)"
    ))
}

fn fault_to_error(fault: WireFault) -> HccError {
    match fault {
        WireFault::Overloaded { in_flight, cap } => HccError::Overloaded { in_flight, cap },
        WireFault::TypeMismatch { object } => {
            HccError::TypeMismatch { object, requested: "remote open" }
        }
        WireFault::SnapshotCompacted { requested, floor } => {
            HccError::SnapshotCompacted { requested, floor }
        }
        WireFault::SnapshotContended { requested } => HccError::SnapshotContended { requested },
        // The server aborted the transaction transiently (most often its
        // own retry budget spent on deadlock dooms). It was aborted
        // everywhere, so resubmitting is a *fresh* transaction and safe:
        // classified transient here, the client's own backoff applies.
        WireFault::Transient { .. } => HccError::Commit(CommitError::Doomed),
        WireFault::VersionMismatch { server, client } => HccError::Protocol(format!(
            "handshake refused: server speaks protocol {server}, this client offered {client}"
        )),
        WireFault::BadToken => HccError::Protocol("handshake refused: bad auth token".into()),
        WireFault::ShuttingDown => {
            HccError::Protocol("server is draining; reconnect after its restart".into())
        }
        WireFault::Fatal { detail } => {
            HccError::Protocol(format!("server reported a fatal failure: {detail}"))
        }
    }
}

impl std::fmt::Debug for Client {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Client")
            .field("session", &self.session)
            .field("granted_in_flight", &self.granted_in_flight)
            .finish_non_exhaustive()
    }
}

impl Client {
    /// Connect and handshake with [`ClientOptions::default`].
    pub fn connect(addr: &str) -> Result<Client, HccError> {
        Client::connect_with(addr, ClientOptions::default())
    }

    /// Connect to `addr` and perform the handshake. Refusals
    /// (version mismatch, bad token) surface as
    /// [`HccError::Protocol`](hcc_db::HccError).
    pub fn connect_with(addr: &str, opts: ClientOptions) -> Result<Client, HccError> {
        let conn = conn::connect(addr)
            .map_err(|e| HccError::Protocol(format!("connect to {addr} failed: {e}")))?;
        let (mut tx, mut rx) =
            conn.split().map_err(|e| HccError::Protocol(format!("socket split failed: {e}")))?;
        let hello = Request::Hello {
            version: opts.version,
            token: opts.token.clone(),
            max_in_flight: opts.max_in_flight,
        };
        tx.send(0, &hello).map_err(|e| HccError::Protocol(format!("handshake send: {e}")))?;
        rx.set_read_timeout(Some(opts.handshake_timeout)).ok();
        let resp = recv_msg(&mut rx, "during handshake")?;
        rx.set_read_timeout(None).ok();
        match resp {
            (_, Response::Welcome { session, max_in_flight, .. }) => Ok(Client {
                tx,
                rx,
                next_seq: 1,
                session,
                granted_in_flight: max_in_flight,
                retry: opts.retry,
                replica: None,
            }),
            (_, Response::Fault(fault)) => Err(fault_to_error(fault)),
            (_, other) => Err(HccError::Protocol(format!("unexpected handshake reply: {other:?}"))),
        }
    }

    /// The server-assigned session id.
    pub fn session(&self) -> u64 {
        self.session
    }

    /// The in-flight cap the handshake granted.
    pub fn granted_in_flight(&self) -> u32 {
        self.granted_in_flight
    }

    /// One request, one response, no retry. Transient faults (including
    /// `Overloaded`) come back as errors for the caller to classify.
    pub fn request_once(&mut self, req: &Request) -> Result<Response, HccError> {
        let seq = self.next_seq;
        self.next_seq += 1;
        self.tx
            .send(seq, req)
            .map_err(|e| HccError::Protocol(format!("request send failed: {e}")))?;
        loop {
            let (got_seq, resp) = recv_msg(&mut self.rx, "awaiting a response")?;
            if got_seq == seq {
                return Ok(resp);
            }
            // A stale answer (e.g. to a request whose wait we abandoned)
            // is drained, not confused with ours.
        }
    }

    /// One request with the transient-retry loop local `transact`
    /// callers get: `Overloaded` and server-side transient faults back
    /// off per the policy; everything else surfaces at once.
    pub fn request(&mut self, req: &Request) -> Result<Response, HccError> {
        let mut attempt: u32 = 0;
        loop {
            let err = match self.request_once(req)? {
                Response::Fault(fault) => fault_to_error(fault),
                resp => return Ok(resp),
            };
            if !err.is_transient() {
                return Err(err);
            }
            if attempt >= self.retry.max_retries {
                return Err(HccError::RetriesExhausted {
                    attempts: attempt + 1,
                    last: Box::new(err),
                });
            }
            std::thread::sleep(self.retry.backoff(attempt));
            attempt += 1;
        }
    }

    /// Open (and recover) the typed object `name` on the server.
    pub fn open(&mut self, tag: TypeTag, name: &str) -> Result<(), HccError> {
        match self.request(&Request::Open { tag, name: name.into() })? {
            Response::OpenOk => Ok(()),
            other => Err(HccError::Protocol(format!("unexpected reply to open: {other:?}"))),
        }
    }

    /// Execute `ops` as one transaction; returns the commit timestamp
    /// and each op's pinned response. Shed/transient outcomes are
    /// retried (each retry is a fresh server-side transaction — the
    /// previous attempt was aborted or never admitted).
    pub fn transact(
        &mut self,
        ops: Vec<hcc_wire::msg::WireOp>,
    ) -> Result<(u64, Vec<OpResult>), HccError> {
        match self.request(&Request::Transact { ops })? {
            Response::Committed { ts, results } => Ok((ts, results)),
            other => Err(HccError::Protocol(format!("unexpected reply to transact: {other:?}"))),
        }
    }

    /// Snapshot-read `queries` — at the server's stable watermark
    /// (`at: None`) or a pinned historical timestamp. All views are
    /// consistent at the returned watermark.
    ///
    /// With a replica attached ([`Client::attach_read_replica`]) the
    /// read is served there first: a follower's watermark is always a
    /// consistent prefix of the primary's history, so the views are
    /// correct even while it lags — only the returned watermark may
    /// trail. Any replica failure detaches it and falls back to the
    /// primary, so the read itself still succeeds.
    pub fn read(
        &mut self,
        at: Option<u64>,
        queries: Vec<(TypeTag, String)>,
    ) -> Result<(u64, Vec<View>), HccError> {
        if let Some(mut replica) = self.replica.take() {
            // The replica is dropped on any failure (dead socket,
            // lagging past a pinned timestamp, shed) rather than
            // retried per-read: the caller re-attaches when it has a
            // healthy follower again.
            if let Ok(out) = replica.read_here(at, queries.clone()) {
                self.replica = Some(replica);
                return Ok(out);
            }
        }
        self.read_here(at, queries)
    }

    fn read_here(
        &mut self,
        at: Option<u64>,
        queries: Vec<(TypeTag, String)>,
    ) -> Result<(u64, Vec<View>), HccError> {
        match self.request(&Request::Read { at, queries })? {
            Response::Views { watermark, views } => Ok((watermark, views)),
            other => Err(HccError::Protocol(format!("unexpected reply to read: {other:?}"))),
        }
    }

    /// Ask the server for its positions (stable watermark, lifetime
    /// commit/abort counts). Answered inline on the server — never
    /// queued behind transactions — so it is cheap enough to poll for
    /// replication lag or health checks.
    pub fn stats(&mut self) -> Result<ServerStats, HccError> {
        match self.request(&Request::Stats)? {
            Response::Stats { watermark, committed, aborted } => {
                Ok(ServerStats { watermark, committed, aborted })
            }
            other => Err(HccError::Protocol(format!("unexpected reply to stats: {other:?}"))),
        }
    }

    /// Connect to a read replica at `addr` and route subsequent
    /// [`Client::read`] calls there first, falling back to (and
    /// detaching on) any replica failure. The replica server fronts a
    /// follower's `Db`, so its reads observe the replicated stable
    /// watermark — a consistent, possibly lagging prefix.
    pub fn attach_read_replica(&mut self, addr: &str, opts: ClientOptions) -> Result<(), HccError> {
        let replica = Client::connect_with(addr, opts)?;
        self.replica = Some(Box::new(replica));
        Ok(())
    }

    /// Whether a read replica is currently attached (a failed replica
    /// read silently detaches it).
    pub fn has_read_replica(&self) -> bool {
        self.replica.is_some()
    }

    /// Ask the server to drain and exit.
    pub fn shutdown_server(&mut self) -> Result<(), HccError> {
        match self.request_once(&Request::Shutdown)? {
            Response::Bye => Ok(()),
            Response::Fault(fault) => Err(fault_to_error(fault)),
            other => Err(HccError::Protocol(format!("unexpected reply to shutdown: {other:?}"))),
        }
    }

    /// Orderly close: say goodbye, wait for the ack, drop the socket.
    pub fn goodbye(mut self) -> Result<(), HccError> {
        match self.request_once(&Request::Goodbye)? {
            Response::Bye => Ok(()),
            other => Err(HccError::Protocol(format!("unexpected reply to goodbye: {other:?}"))),
        }
    }

    /// Split into raw wire halves — for tests that need to pipeline
    /// past the in-flight cap or inject malformed bytes mid-session.
    pub fn into_halves(self) -> (SendHalf, RecvHalf) {
        (self.tx, self.rx)
    }
}

fn recv_msg(rx: &mut RecvHalf, context: &str) -> Result<(u64, Response), HccError> {
    match rx.recv::<Response>() {
        Ok(Some((seq, resp, _n))) => Ok((seq, resp)),
        Ok(None) => Err(lost(&format!("{context} (clean close)"))),
        Err(WireError::Frame(e)) => {
            Err(HccError::Protocol(format!("frame refused {context}: {e}")))
        }
        Err(WireError::Io(e)) => Err(lost(&format!("{context}: {e}"))),
    }
}
