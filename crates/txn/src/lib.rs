//! # hcc-txn — the transaction substrate
//!
//! The paper assumes three services around the LOCK algorithm; this crate
//! provides all of them:
//!
//! * **Timestamp generation** ([`clock`]): a Lamport-style logical clock.
//!   Each operation raises the transaction's lower bound to the object's
//!   clock; commit timestamps are generated above both the global clock and
//!   that bound, which yields exactly the paper's well-formedness
//!   constraint `precedes(H|X) ⊆ TS(H)`.
//! * **Atomic commitment** ([`manager`]): a transaction manager running a
//!   two-phase protocol over every object the transaction touched, so a
//!   transaction never commits at some objects and aborts at others. The
//!   manager is also the **redo sink** its objects self-log through
//!   (`object_options` binds them), and [`registry`] replays a recovered
//!   log back into registered objects by name. A message-passing
//!   simulation of the distributed version — with per-site WALs and a
//!   coordinator decision log — lives in [`sim`].
//! * **Deadlock handling** ([`deadlock`]): the paper names "the usual
//!   remedies (e.g., timeout or detection)"; both are here — a
//!   waits-for-graph detector with youngest-victim selection, and the
//!   timeout policy built into `hcc-core`'s blocking.
//! * **Recovery** ([`wal`]): a write-ahead log of operations and
//!   completion records; replay reconstructs the committed state after a
//!   crash, in commit-timestamp order.

pub mod clock;
pub mod deadlock;
pub mod manager;
pub mod registry;
pub mod sim;
pub mod wal;

pub use clock::LogicalClock;
pub use deadlock::DeadlockDetector;
pub use manager::{CommitError, ReplicatedOps, TxnManager};
pub use registry::{RecoveryError, RecoveryReport, Registry};
