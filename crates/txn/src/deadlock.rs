//! Waits-for-graph deadlock detection with youngest-victim selection.
//!
//! Section 4.1: "the algorithms described here are subject to deadlock; the
//! usual remedies (e.g., timeout or detection) can be used". This is the
//! detection remedy: objects report block/unblock events through the
//! [`WaitObserver`] hooks, the detector maintains the waits-for graph, and
//! on finding a cycle it *dooms* the youngest transaction in it (highest
//! id); the victim's pending operation fails with `ExecError::Doomed` and
//! the manager aborts it.

use hcc_core::runtime::{TxnHandle, WaitObserver};
use hcc_obs::Counter;
use hcc_spec::TxnId;
use parking_lot::Mutex;
use std::collections::{HashMap, HashSet};
use std::sync::{Arc, OnceLock, Weak};

/// The detector. One instance per system; share it with every object via
/// [`hcc_core::runtime::RuntimeOptions`].
#[derive(Default)]
pub struct DeadlockDetector {
    inner: Mutex<Graph>,
    /// Mirror of the victim tally in the owning system's metric registry
    /// (`deadlock.victims`), wired by the transaction manager.
    victim_counter: OnceLock<Arc<Counter>>,
}

#[derive(Default)]
struct Graph {
    /// waiter → transactions it is currently blocked on.
    edges: HashMap<TxnId, Vec<TxnId>>,
    /// Live handles, for dooming victims.
    handles: HashMap<TxnId, Weak<TxnHandle>>,
    /// Victims doomed so far (metrics).
    victims: u64,
}

impl DeadlockDetector {
    /// A fresh detector.
    pub fn new() -> Arc<DeadlockDetector> {
        Arc::new(DeadlockDetector::default())
    }

    /// Track a transaction so it can be doomed if it joins a cycle.
    pub fn register(&self, handle: &Arc<TxnHandle>) {
        self.inner.lock().handles.insert(handle.id(), Arc::downgrade(handle));
    }

    /// Remove a completed transaction from the graph.
    pub fn forget(&self, txn: TxnId) {
        let mut g = self.inner.lock();
        g.edges.remove(&txn);
        g.handles.remove(&txn);
    }

    /// Number of victims doomed so far.
    pub fn victims(&self) -> u64 {
        self.inner.lock().victims
    }

    /// Mirror every future doom into `counter` (idempotent; first wiring
    /// wins). The manager points this at its registry's
    /// `deadlock.victims`.
    pub fn mirror_victims_into(&self, counter: Arc<Counter>) {
        let _ = self.victim_counter.set(counter);
    }

    /// Is there a path `from → … → to` of length ≥ 1 in the waits-for
    /// graph?
    fn reachable(edges: &HashMap<TxnId, Vec<TxnId>>, from: TxnId, to: TxnId) -> bool {
        let mut seen: HashSet<TxnId> = HashSet::new();
        let mut stack: Vec<TxnId> = edges.get(&from).cloned().unwrap_or_default();
        while let Some(t) = stack.pop() {
            if t == to {
                return true;
            }
            if !seen.insert(t) {
                continue;
            }
            if let Some(next) = edges.get(&t) {
                stack.extend(next.iter().copied());
            }
        }
        false
    }

    /// Collect the transactions on some cycle through `start` (empty when
    /// there is none). A node is on such a cycle iff `start` reaches it and
    /// it reaches `start`; the graphs here are tiny (currently blocked
    /// transactions only), so the quadratic scan is fine.
    fn cycle_members(edges: &HashMap<TxnId, Vec<TxnId>>, start: TxnId) -> Vec<TxnId> {
        if !Self::reachable(edges, start, start) {
            return Vec::new();
        }
        let mut members = vec![start];
        let mut seen = HashSet::new();
        let mut stack: Vec<TxnId> = edges.get(&start).cloned().unwrap_or_default();
        while let Some(t) = stack.pop() {
            if !seen.insert(t) || t == start {
                continue;
            }
            if Self::reachable(edges, t, start) {
                members.push(t);
            }
            if let Some(next) = edges.get(&t) {
                stack.extend(next.iter().copied());
            }
        }
        members
    }
}

impl WaitObserver for DeadlockDetector {
    fn on_block(&self, waiter: TxnId, holders: &[TxnId]) {
        let mut g = self.inner.lock();
        g.edges.insert(waiter, holders.to_vec());
        // Detect a cycle through the new waiter.
        let members = Self::cycle_members(&g.edges, waiter);
        if members.is_empty() {
            return;
        }
        // Youngest victim: transaction ids are issued in begin order, so
        // the max id is the youngest.
        let victim = members.into_iter().max().unwrap();
        if let Some(h) = g.handles.get(&victim).and_then(Weak::upgrade) {
            h.doom();
            g.victims += 1;
            if let Some(c) = self.victim_counter.get() {
                c.inc();
            }
        }
        g.edges.remove(&victim);
    }

    fn on_unblock(&self, waiter: TxnId) {
        self.inner.lock().edges.remove(&waiter);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn t(n: u64) -> TxnId {
        TxnId(n)
    }

    #[test]
    fn two_party_cycle_dooms_the_youngest() {
        let d = DeadlockDetector::new();
        let h1 = TxnHandle::new(t(1));
        let h2 = TxnHandle::new(t(2));
        d.register(&h1);
        d.register(&h2);
        d.on_block(t(1), &[t(2)]);
        assert!(!h1.is_doomed() && !h2.is_doomed(), "no cycle yet");
        d.on_block(t(2), &[t(1)]);
        assert!(h2.is_doomed(), "youngest (t2) is the victim");
        assert!(!h1.is_doomed());
        assert_eq!(d.victims(), 1);
    }

    #[test]
    fn three_party_cycle() {
        let d = DeadlockDetector::new();
        let hs: Vec<_> = (1..=3).map(|i| TxnHandle::new(t(i))).collect();
        for h in &hs {
            d.register(h);
        }
        d.on_block(t(1), &[t(2)]);
        d.on_block(t(2), &[t(3)]);
        d.on_block(t(3), &[t(1)]);
        assert!(hs[2].is_doomed());
        assert!(!hs[0].is_doomed() && !hs[1].is_doomed());
    }

    #[test]
    fn chains_without_cycles_are_harmless() {
        let d = DeadlockDetector::new();
        let hs: Vec<_> = (1..=3).map(|i| TxnHandle::new(t(i))).collect();
        for h in &hs {
            d.register(h);
        }
        d.on_block(t(3), &[t(2)]);
        d.on_block(t(2), &[t(1)]);
        assert!(hs.iter().all(|h| !h.is_doomed()));
    }

    #[test]
    fn unblock_clears_edges() {
        let d = DeadlockDetector::new();
        let h1 = TxnHandle::new(t(1));
        let h2 = TxnHandle::new(t(2));
        d.register(&h1);
        d.register(&h2);
        d.on_block(t(1), &[t(2)]);
        d.on_unblock(t(1));
        d.on_block(t(2), &[t(1)]);
        assert!(!h2.is_doomed(), "t1 no longer waits, no cycle");
    }

    #[test]
    fn forget_removes_handles() {
        let d = DeadlockDetector::new();
        let h1 = TxnHandle::new(t(1));
        d.register(&h1);
        d.forget(t(1));
        d.on_block(t(1), &[t(1)]);
        assert!(!h1.is_doomed(), "forgotten handles cannot be doomed");
    }

    #[test]
    fn self_wait_is_a_cycle() {
        // Degenerate but should not panic; the waiter dooms itself.
        let d = DeadlockDetector::new();
        let h1 = TxnHandle::new(t(1));
        d.register(&h1);
        d.on_block(t(1), &[t(1)]);
        assert!(h1.is_doomed());
    }
}
