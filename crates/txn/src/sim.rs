//! A message-passing simulation of distributed two-phase commitment.
//!
//! The paper's model is distributed: objects live at sites, and a commit
//! protocol [9, 19, 26] delivers `commit(t)` events with a single
//! timestamp to every site. This module simulates that setting in-process:
//! each [`Site`] is a thread owning a set of objects and serving
//! prepare/commit/abort messages over crossbeam channels; the
//! [`Coordinator`] runs the two-phase protocol with a vote timeout, and
//! sites can be *crashed* to exercise the abort path.
//!
//! ## Durability
//!
//! The simulation speaks the same self-logging dialect as the single-site
//! manager:
//!
//! * objects hosted at a site are built with options carrying a
//!   [`SiteWal`] redo sink, so every mutating operation appends to that
//!   site's own WAL automatically;
//! * a durable [`Site`] (see [`Site::spawn_durable`]) logs each phase-2
//!   commit decision to its WAL *before* applying it;
//! * the [`Coordinator`] can carry a decision log
//!   ([`Coordinator::with_decision_log`]): the commit decision is made
//!   durable before any phase-2 message is sent — the classic 2PC
//!   write-ahead rule;
//! * [`recover_site`] rebuilds a site from its WAL through the recovery
//!   [`Registry`], resolving *in-doubt* transactions (ops logged, no
//!   local decision — the site crashed between its yes-vote and the
//!   phase-2 message) against the coordinator's recovered decisions.
//!
//! A site crashed between Prepare and Commit no longer vanishes silently:
//! phase 2 collects acknowledgements, and the coordinator reports
//! [`CommitOutcome::CommittedPartial`] naming the sites that never
//! confirmed — the commit *is* decided (phase 1 closed), but delivery is
//! known-incomplete until those sites recover.

use crate::clock::LogicalClock;
use crate::registry::{Decisions, RecoveryError, RecoveryReport, Registry};
use crossbeam::channel::{bounded, unbounded, Receiver, Sender};
use hcc_core::runtime::{RedoSink, RedoTicket, TxParticipant, TxnHandle, TxnPhase};
use hcc_spec::TxnId;
use hcc_storage::{DurableStore, StorageError};
use std::collections::BTreeMap;
use std::path::Path;
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::Duration;

/// A redo sink appending to one site's WAL: objects hosted at a site are
/// built with `RuntimeOptions::default().with_redo(site_wal)` and then
/// self-log exactly like objects owned by a single-site manager.
pub struct SiteWal {
    store: Arc<DurableStore>,
    /// Set when an op append failed: the WAL no longer holds every
    /// executed operation, so the site must vote no until it is healthy
    /// again — a yes-vote over an incomplete log could let in-doubt
    /// resolution replay half a transaction.
    poisoned: std::sync::atomic::AtomicBool,
}

impl SiteWal {
    /// A sink over the site's store.
    pub fn new(store: Arc<DurableStore>) -> Arc<SiteWal> {
        Arc::new(SiteWal { store, poisoned: std::sync::atomic::AtomicBool::new(false) })
    }

    /// The underlying store.
    pub fn store(&self) -> &Arc<DurableStore> {
        &self.store
    }

    /// Did any op append fail (making the WAL incomplete)?
    pub fn poisoned(&self) -> bool {
        self.poisoned.load(std::sync::atomic::Ordering::Acquire)
    }
}

impl RedoSink for SiteWal {
    fn reserve(&self, _txn: TxnId, _object: &str) -> RedoTicket {
        RedoTicket(self.store.reserve_ticket())
    }

    fn publish(&self, ticket: RedoTicket, txn: TxnId, object: &str, op: &[u8]) {
        // The simulation's sites have no commit-path stash; a failed
        // append poisons the sink instead, and the site votes no on every
        // later Prepare (see `Site::spawn_durable`).
        if self.store.publish_op(ticket.0, txn.0, object, op).is_err() {
            self.poisoned.store(true, std::sync::atomic::Ordering::Release);
        }
    }
}

/// Messages a site serves.
enum SiteMsg {
    /// Phase 1: vote on committing `txn`.
    Prepare { txn: Arc<TxnHandle>, reply: Sender<bool> },
    /// Phase 2: `txn` committed at timestamp `ts`; acknowledge on `ack`.
    Commit { txn: TxnId, ts: u64, ack: Sender<()> },
    /// `txn` aborted.
    Abort { txn: TxnId },
    /// Stop responding (simulated crash).
    Crash,
    /// Reply to the next Prepare, then crash — the window between a
    /// yes-vote and the phase-2 message.
    CrashAfterPrepare,
    /// Clean shutdown.
    Shutdown,
}

/// A simulated site hosting a set of objects.
pub struct Site {
    name: String,
    tx: Sender<SiteMsg>,
    thread: Option<JoinHandle<()>>,
}

impl Site {
    /// Spawn a site thread serving the given objects (no durable log).
    pub fn spawn(name: impl Into<String>, objects: Vec<Arc<dyn TxParticipant>>) -> Site {
        Self::spawn_inner(name.into(), objects, None)
    }

    /// Spawn a site whose WAL discipline is full 2PC-participant grade:
    /// hosted objects self-log through `wal` (pass the same [`SiteWal`]
    /// in their options), a yes-vote **forces the WAL to disk first**
    /// (ops must survive once the coordinator may decide commit) and is
    /// refused while the sink is poisoned, and phase-2 decisions are
    /// logged before being applied.
    pub fn spawn_durable(
        name: impl Into<String>,
        objects: Vec<Arc<dyn TxParticipant>>,
        wal: Arc<SiteWal>,
    ) -> Site {
        Self::spawn_inner(name.into(), objects, Some(wal))
    }

    fn spawn_inner(
        name: String,
        objects: Vec<Arc<dyn TxParticipant>>,
        store: Option<Arc<SiteWal>>,
    ) -> Site {
        let (tx, rx): (Sender<SiteMsg>, Receiver<SiteMsg>) = unbounded();
        let thread_name = name.clone();
        let thread = std::thread::Builder::new()
            .name(format!("site-{thread_name}"))
            .spawn(move || {
                let mut crashed = false;
                let mut crash_after_prepare = false;
                while let Ok(msg) = rx.recv() {
                    match msg {
                        SiteMsg::Prepare { txn, reply } => {
                            if !crashed {
                                let mut vote = objects.iter().all(|o| o.prepare(&txn));
                                if let Some(wal) = &store {
                                    // Classic 2PC: the participant forces
                                    // its log before voting yes — once the
                                    // coordinator may decide commit, the
                                    // ops must survive a crash. A poisoned
                                    // sink (a lost op append) or a failed
                                    // force means the log is incomplete:
                                    // vote no.
                                    vote = vote && !wal.poisoned() && wal.store().sync().is_ok();
                                }
                                let _ = reply.send(vote);
                                if crash_after_prepare {
                                    crashed = true;
                                }
                            }
                            // A crashed site never replies: the coordinator
                            // times out and aborts.
                        }
                        SiteMsg::Commit { txn, ts, ack } => {
                            if !crashed {
                                // Write-ahead at the participant: the local
                                // decision record must reach the site's WAL
                                // before the effects are applied (a Begin
                                // record keeps a zero-op commit
                                // recoverable). A site that cannot make the
                                // decision durable behaves like a crashed
                                // one — no apply, no ack — so the
                                // coordinator reports partial delivery and
                                // recovery heals it from the decision logs,
                                // instead of acknowledging a commit a
                                // restart would lose.
                                let logged = match &store {
                                    Some(wal) => wal
                                        .store()
                                        .log_begin(txn.0)
                                        .and_then(|()| wal.store().log_commit(txn.0, ts))
                                        .is_ok(),
                                    None => true,
                                };
                                if logged {
                                    for o in &objects {
                                        o.commit_at(txn, ts);
                                    }
                                    let _ = ack.send(());
                                }
                            }
                            // A crashed site neither applies nor
                            // acknowledges: the coordinator reports the
                            // delivery as partial.
                        }
                        SiteMsg::Abort { txn } => {
                            if !crashed {
                                if let Some(wal) = &store {
                                    let _ = wal.store().log_abort(txn.0);
                                }
                                for o in &objects {
                                    o.abort_txn(txn);
                                }
                            }
                        }
                        SiteMsg::Crash => crashed = true,
                        SiteMsg::CrashAfterPrepare => crash_after_prepare = true,
                        SiteMsg::Shutdown => break,
                    }
                }
            })
            .expect("spawn site thread");
        Site { name, tx, thread: Some(thread) }
    }

    /// The site's name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Simulate a crash: the site stops voting and applying.
    pub fn crash(&self) {
        let _ = self.tx.send(SiteMsg::Crash);
    }

    /// Simulate a crash in the prepare→commit window: the site answers
    /// the next Prepare (voting normally), then stops responding — so the
    /// phase-2 Commit message finds it dead.
    pub fn crash_after_prepare(&self) {
        let _ = self.tx.send(SiteMsg::CrashAfterPrepare);
    }
}

impl Drop for Site {
    fn drop(&mut self) {
        let _ = self.tx.send(SiteMsg::Shutdown);
        if let Some(t) = self.thread.take() {
            let _ = t.join();
        }
    }
}

/// The two-phase-commit coordinator.
pub struct Coordinator {
    clock: Arc<LogicalClock>,
    vote_timeout: Duration,
    /// The coordinator's own durable decision log: commit decisions are
    /// persisted here before any phase-2 message goes out, so recovering
    /// sites can resolve their in-doubt transactions.
    decisions: Option<Arc<DurableStore>>,
}

/// Outcome of a distributed commit attempt.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum CommitOutcome {
    /// All sites voted yes and acknowledged the phase-2 commit.
    Committed(u64),
    /// The commit was *decided* (every site voted yes) but one or more
    /// sites never acknowledged the phase-2 message — crashed in the
    /// prepare→commit window. Their durable effects are recovered by
    /// [`recover_site`] against the coordinator's decision log; reporting
    /// this as a plain `Committed` would silently hide that live replicas
    /// disagree until then.
    CommittedPartial {
        /// The commit timestamp.
        ts: u64,
        /// Sites that did not acknowledge within the timeout.
        missed: Vec<String>,
    },
    /// Aborted: a site voted no or failed to vote in time (or the
    /// coordinator could not persist its decision).
    Aborted {
        /// The site that caused the abort.
        site: String,
    },
}

/// An injected coordinator failure for crash workloads.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub enum CoordinatorKill {
    /// Run the protocol to completion.
    #[default]
    None,
    /// Crash right after the decision record is durable and before any
    /// phase-2 message is sent — the window the decision log exists for.
    /// Every site is left in doubt; the outcome reports them all missed.
    AfterDecision,
}

impl Coordinator {
    /// A coordinator over the given clock.
    pub fn new(clock: Arc<LogicalClock>) -> Coordinator {
        Coordinator { clock, vote_timeout: Duration::from_millis(200), decisions: None }
    }

    /// Set the prepare-vote (and phase-2 acknowledgement) timeout.
    pub fn with_vote_timeout(mut self, t: Duration) -> Coordinator {
        self.vote_timeout = t;
        self
    }

    /// Attach a durable decision log: every commit decision is persisted
    /// before phase 2 begins. [`coordinator_decisions`] reads it back for
    /// in-doubt resolution at recovering sites.
    pub fn with_decision_log(mut self, store: Arc<DurableStore>) -> Coordinator {
        self.decisions = Some(store);
        self
    }

    /// Run two-phase commit for `txn` across `sites`.
    ///
    /// Phase 1 collects votes with a timeout; if every site votes yes, a
    /// timestamp above the transaction's bound is generated, the decision
    /// is made durable (when a decision log is attached), and phase 2
    /// distributes it, collecting acknowledgements. Either way all sites
    /// reach the same verdict: atomic commitment.
    pub fn commit(&self, txn: &Arc<TxnHandle>, sites: &[Site]) -> CommitOutcome {
        let refs: Vec<&Site> = sites.iter().collect();
        self.commit_with_kill(txn, &refs, CoordinatorKill::None)
    }

    /// [`Coordinator::commit`] with an injected coordinator crash — the
    /// crash workloads' kill-point hook. Takes site references so
    /// long-lived harnesses can keep ownership of their sites.
    pub fn commit_with_kill(
        &self,
        txn: &Arc<TxnHandle>,
        sites: &[&Site],
        kill: CoordinatorKill,
    ) -> CommitOutcome {
        // Phase 1.
        let mut pending = Vec::new();
        for site in sites {
            let (rtx, rrx) = bounded(1);
            let _ = site.tx.send(SiteMsg::Prepare { txn: txn.clone(), reply: rtx });
            pending.push((site, rrx));
        }
        for (site, rrx) in &pending {
            match rrx.recv_timeout(self.vote_timeout) {
                Ok(true) => {}
                _ => {
                    // Vote no or timeout: abort everywhere.
                    txn.set_phase(TxnPhase::Aborted);
                    for s in sites {
                        let _ = s.tx.send(SiteMsg::Abort { txn: txn.id() });
                    }
                    if let Some(log) = &self.decisions {
                        let _ = log.log_abort(txn.id().0);
                    }
                    return CommitOutcome::Aborted { site: site.name.clone() };
                }
            }
        }
        // The decision point: generate the timestamp and (when configured)
        // persist the decision before any site hears about it — a
        // recovering participant must always be able to learn the verdict.
        let ts = self.clock.timestamp_after(txn.bound());
        if let Some(log) = &self.decisions {
            let durable = log.log_begin(txn.id().0).and_then(|()| log.log_commit(txn.id().0, ts));
            if durable.is_err() {
                // An undecidable decision log means the verdict could be
                // lost; aborting is the only outcome recovery can always
                // reconstruct. The commit frame may still have reached
                // disk even though its fsync failed — a durable abort
                // record makes recovery's abort-wins rule suppress it, so
                // no recovering site can resurrect a decision every live
                // site is about to discard.
                let _ = log.log_abort_durable(txn.id().0);
                txn.set_phase(TxnPhase::Aborted);
                for s in sites {
                    let _ = s.tx.send(SiteMsg::Abort { txn: txn.id() });
                }
                return CommitOutcome::Aborted { site: "coordinator".to_string() };
            }
        }
        // The decision is now durable (or no log is configured). A
        // coordinator crash from here on cannot change the verdict — only
        // delay its delivery.
        txn.set_phase(TxnPhase::Committed(ts));
        if kill == CoordinatorKill::AfterDecision {
            // Crash before phase 2: every site stays in doubt until a
            // recovered coordinator redelivers ([`Coordinator::retry_phase2`])
            // or the site restarts and consults the decision log.
            return CommitOutcome::CommittedPartial {
                ts,
                missed: sites.iter().map(|s| s.name.clone()).collect(),
            };
        }
        // Phase 2: distribute the timestamp and collect acknowledgements.
        match self.deliver_phase2(txn.id(), ts, sites) {
            missed if missed.is_empty() => CommitOutcome::Committed(ts),
            missed => CommitOutcome::CommittedPartial { ts, missed },
        }
    }

    /// Send `Commit {txn, ts}` to every site in `sites` and collect
    /// acknowledgements under one shared deadline (k dead sites cost one
    /// timeout, not k of them). Returns the names of sites that did not
    /// acknowledge.
    fn deliver_phase2(&self, txn: TxnId, ts: u64, sites: &[&Site]) -> Vec<String> {
        let mut acks = Vec::new();
        for s in sites {
            let (atx, arx) = bounded(1);
            let _ = s.tx.send(SiteMsg::Commit { txn, ts, ack: atx });
            acks.push((s, arx));
        }
        let deadline = std::time::Instant::now() + self.vote_timeout;
        let mut missed = Vec::new();
        for (site, arx) in &acks {
            let remaining = deadline.saturating_duration_since(std::time::Instant::now());
            if arx.recv_timeout(remaining).is_err() {
                missed.push(site.name.clone());
            }
        }
        missed
    }

    /// Redeliver a *decided* commit to sites that never acknowledged
    /// phase 2, up to `max_rounds` times — the recovery half of
    /// [`CommitOutcome::CommittedPartial`]. The caller passes the live
    /// `Site` handles to retry against (typically freshly recovered
    /// replacements of the crashed ones — see [`recover_site`]); delivery
    /// is idempotent at the sites, so redelivering to a site that already
    /// applied the commit (live or via recovery) is harmless. Returns
    /// `Committed` once every site acknowledged, or `CommittedPartial`
    /// naming the still-unreachable ones.
    pub fn retry_phase2(
        &self,
        txn: TxnId,
        ts: u64,
        sites: &[&Site],
        max_rounds: usize,
    ) -> CommitOutcome {
        let mut pending: Vec<&Site> = sites.to_vec();
        for _ in 0..max_rounds {
            let missed = self.deliver_phase2(txn, ts, &pending);
            if missed.is_empty() {
                return CommitOutcome::Committed(ts);
            }
            pending.retain(|s| missed.contains(&s.name));
        }
        CommitOutcome::CommittedPartial {
            ts,
            missed: pending.into_iter().map(|s| s.name.clone()).collect(),
        }
    }
}

/// The commit decisions a coordinator's log survived with: `txn → ts`.
pub fn coordinator_decisions(dir: impl AsRef<Path>) -> Result<BTreeMap<u64, u64>, StorageError> {
    let recovered = DurableStore::recover(dir)?;
    Ok(recovered.committed.into_iter().map(|c| (c.txn, c.ts)).collect())
}

/// Rebuild one site's objects from its WAL: checkpoint restored, locally
/// decided commits replayed, and *in-doubt* transactions (ops logged but
/// no local completion record — the crash hit between the yes-vote and
/// the phase-2 message) resolved against the coordinator's `decisions`.
/// Thin wrapper over [`Registry::restore_and_replay_resolved`].
pub fn recover_site(
    dir: impl AsRef<Path>,
    registry: &Registry,
    decisions: &Decisions,
) -> Result<RecoveryReport, RecoveryError> {
    let recovered = DurableStore::recover(dir).map_err(RecoveryError::Storage)?;
    registry.restore_and_replay_resolved(&recovered, decisions)
}

#[cfg(test)]
mod tests {
    use super::*;
    use hcc_adts::account::AccountObject;
    use hcc_core::runtime::RuntimeOptions;
    use hcc_spec::{Rational, TxnId};
    use hcc_storage::StorageOptions;
    use std::sync::atomic::{AtomicU64, Ordering};

    fn r(n: i64) -> Rational {
        Rational::from_int(n)
    }

    fn tmp(name: &str) -> std::path::PathBuf {
        static N: AtomicU64 = AtomicU64::new(0);
        let mut p = std::env::temp_dir();
        p.push(format!(
            "hcc-sim-{}-{}-{}",
            std::process::id(),
            name,
            N.fetch_add(1, Ordering::Relaxed)
        ));
        let _ = std::fs::remove_dir_all(&p);
        p
    }

    fn wait_for_balance(a: &AccountObject, expect: Rational) {
        for _ in 0..100 {
            if a.committed_balance() == expect {
                return;
            }
            std::thread::sleep(Duration::from_millis(2));
        }
        assert_eq!(a.committed_balance(), expect);
    }

    #[test]
    fn distributed_commit_reaches_all_sites() {
        let a = Arc::new(AccountObject::hybrid("a"));
        let b = Arc::new(AccountObject::hybrid("b"));
        let site1 = Site::spawn("s1", vec![a.inner().clone()]);
        let site2 = Site::spawn("s2", vec![b.inner().clone()]);
        let clock = Arc::new(LogicalClock::new());
        let coord = Coordinator::new(clock);

        let t = TxnHandle::new(TxnId(1));
        a.credit(&t, r(5)).unwrap();
        b.credit(&t, r(7)).unwrap();
        match coord.commit(&t, &[site1, site2]) {
            CommitOutcome::Committed(ts) => assert!(ts > 0),
            other => panic!("expected commit, got {other:?}"),
        }
        wait_for_balance(&a, r(5));
        wait_for_balance(&b, r(7));
    }

    #[test]
    fn crashed_site_aborts_the_transaction_everywhere() {
        let a = Arc::new(AccountObject::hybrid("a"));
        let b = Arc::new(AccountObject::hybrid("b"));
        let site1 = Site::spawn("s1", vec![a.inner().clone()]);
        let site2 = Site::spawn("s2", vec![b.inner().clone()]);
        let clock = Arc::new(LogicalClock::new());
        let coord = Coordinator::new(clock).with_vote_timeout(Duration::from_millis(50));

        let t = TxnHandle::new(TxnId(1));
        a.credit(&t, r(5)).unwrap();
        b.credit(&t, r(7)).unwrap();
        site2.crash();
        match coord.commit(&t, &[site1, site2]) {
            CommitOutcome::Aborted { site } => assert_eq!(site, "s2"),
            other => panic!("expected abort, got {other:?}"),
        }
        // The surviving site aborted too: all-or-nothing.
        wait_for_balance(&a, r(0));
        assert_eq!(t.phase(), TxnPhase::Aborted);
    }

    #[test]
    fn doomed_transaction_is_voted_down() {
        let a = Arc::new(AccountObject::hybrid("a"));
        let site1 = Site::spawn("s1", vec![a.inner().clone()]);
        let clock = Arc::new(LogicalClock::new());
        let coord = Coordinator::new(clock);
        let t = TxnHandle::new(TxnId(1));
        a.credit(&t, r(5)).unwrap();
        t.doom();
        assert!(matches!(coord.commit(&t, &[site1]), CommitOutcome::Aborted { .. }));
    }

    /// Regression: a site crashed between Prepare and Commit used to drop
    /// the phase-2 message silently — the coordinator reported a clean
    /// `Committed` while one replica had never applied (or logged) the
    /// transaction. The outcome now names the site.
    #[test]
    fn crash_between_prepare_and_commit_is_reported_not_swallowed() {
        let a = Arc::new(AccountObject::hybrid("a"));
        let b = Arc::new(AccountObject::hybrid("b"));
        let site1 = Site::spawn("s1", vec![a.inner().clone()]);
        let site2 = Site::spawn("s2", vec![b.inner().clone()]);
        let clock = Arc::new(LogicalClock::new());
        let coord = Coordinator::new(clock).with_vote_timeout(Duration::from_millis(100));

        let t = TxnHandle::new(TxnId(1));
        a.credit(&t, r(5)).unwrap();
        b.credit(&t, r(7)).unwrap();
        site2.crash_after_prepare();
        match coord.commit(&t, &[site1, site2]) {
            CommitOutcome::CommittedPartial { ts, missed } => {
                assert!(ts > 0);
                assert_eq!(missed, vec!["s2".to_string()]);
            }
            other => panic!("expected partial commit, got {other:?}"),
        }
        // The commit *was* decided; the surviving site applied it.
        wait_for_balance(&a, r(5));
        assert_eq!(b.committed_balance(), r(0), "crashed site never applied");
    }

    /// The full 2PC durability story: self-logging per-site WALs, a
    /// durable coordinator decision, a site crashed in the prepare→commit
    /// window, and recovery that heals it from its own WAL plus the
    /// coordinator's decision log.
    #[test]
    fn crashed_site_recovers_in_doubt_commit_from_decision_logs() {
        let dir_site = tmp("site");
        let dir_coord = tmp("coord");
        let decided_ts;
        {
            let store = DurableStore::open(&dir_site, StorageOptions::default()).unwrap();
            let wal = SiteWal::new(store);
            let b = Arc::new(AccountObject::with(
                "b",
                Arc::new(hcc_adts::account::AccountHybrid),
                RuntimeOptions::default().with_redo(wal.clone()),
            ));
            let site = Site::spawn_durable("s-b", vec![b.inner().clone()], wal);
            let coord_store = DurableStore::open(&dir_coord, StorageOptions::default()).unwrap();
            let clock = Arc::new(LogicalClock::new());
            let coord = Coordinator::new(clock)
                .with_vote_timeout(Duration::from_millis(100))
                .with_decision_log(coord_store);

            // Ops self-log into the site WAL; then the site crashes after
            // voting yes, so its WAL holds ops but no commit record.
            let t = TxnHandle::new(TxnId(1));
            b.credit(&t, r(42)).unwrap();
            site.crash_after_prepare();
            match coord.commit(&t, &[site]) {
                CommitOutcome::CommittedPartial { ts, missed } => {
                    assert_eq!(missed, vec!["s-b".to_string()]);
                    decided_ts = ts;
                }
                other => panic!("expected partial commit, got {other:?}"),
            }
            assert_eq!(b.committed_balance(), r(0), "site died before applying");
        }
        // The site restarts: fresh object, recovery from its WAL resolves
        // the in-doubt transaction against the coordinator's decision.
        let decisions = coordinator_decisions(&dir_coord).unwrap();
        assert_eq!(decisions.get(&1), Some(&decided_ts));
        let b = Arc::new(AccountObject::hybrid("b"));
        let mut registry = Registry::new();
        registry.register(b.clone());
        let report = recover_site(&dir_site, &registry, &decisions).unwrap();
        assert_eq!(report.replayed, 1);
        assert_eq!(b.committed_balance(), r(42), "the decided commit is healed");

        // Without the decision, the same WAL recovers to nothing: an
        // undecided in-doubt transaction is an abort.
        let b2 = Arc::new(AccountObject::hybrid("b"));
        let mut registry2 = Registry::new();
        registry2.register(b2.clone());
        let report2 = recover_site(&dir_site, &registry2, &BTreeMap::new()).unwrap();
        assert_eq!(report2.replayed, 0);
        assert_eq!(b2.committed_balance(), r(0));
    }

    /// The transient-failure healing loop: a `CommittedPartial` (site
    /// crashed between Prepare and Commit) becomes a full `Committed`
    /// once the site is recovered from its WAL and the coordinator
    /// redelivers phase 2 — and the redelivery is idempotent over the
    /// state recovery already replayed.
    #[test]
    fn phase2_retry_turns_partial_commit_into_full_commit() {
        let dir_site = tmp("retry-site");
        let dir_coord = tmp("retry-coord");
        let clock = Arc::new(LogicalClock::new());
        let coord_store = DurableStore::open(&dir_coord, StorageOptions::default()).unwrap();
        let coord = Coordinator::new(clock)
            .with_vote_timeout(Duration::from_millis(100))
            .with_decision_log(coord_store);

        let (ts, txn_id) = {
            let store = DurableStore::open(&dir_site, StorageOptions::default()).unwrap();
            let wal = SiteWal::new(store);
            let b = Arc::new(AccountObject::with(
                "b",
                Arc::new(hcc_adts::account::AccountHybrid),
                RuntimeOptions::default().with_redo(wal.clone()),
            ));
            let site = Site::spawn_durable("s-b", vec![b.inner().clone()], wal);
            let t = TxnHandle::new(TxnId(1));
            b.credit(&t, r(31)).unwrap();
            site.crash_after_prepare();
            match coord.commit(&t, &[site]) {
                CommitOutcome::CommittedPartial { ts, missed } => {
                    assert_eq!(missed, vec!["s-b".to_string()]);
                    (ts, t.id())
                }
                other => panic!("expected partial commit, got {other:?}"),
            }
            // Site (and its WAL handle) drop here: the "machine" is down.
        };

        // Restart the site: recover its objects from its WAL + the
        // coordinator's decisions, then serve again.
        let decisions = coordinator_decisions(&dir_coord).unwrap();
        let store = DurableStore::open(&dir_site, StorageOptions::default()).unwrap();
        let wal = SiteWal::new(store);
        let b = Arc::new(AccountObject::with(
            "b",
            Arc::new(hcc_adts::account::AccountHybrid),
            RuntimeOptions::default().with_redo(wal.clone()),
        ));
        let mut registry = Registry::new();
        registry.register(b.clone());
        let report = recover_site(&dir_site, &registry, &decisions).unwrap();
        assert_eq!(report.replayed, 1);
        assert_eq!(b.committed_balance(), r(31));
        let site = Site::spawn_durable("s-b", vec![b.inner().clone()], wal);

        // The coordinator redelivers the unacknowledged phase 2: full
        // commit, idempotent at the recovered site.
        match coord.retry_phase2(txn_id, ts, &[&site], 3) {
            CommitOutcome::Committed(got) => assert_eq!(got, ts),
            other => panic!("expected full commit after retry, got {other:?}"),
        }
        assert_eq!(b.committed_balance(), r(31), "redelivery did not double-apply");

        // A still-dead site stays reported as missed after bounded rounds.
        site.crash();
        match coord.retry_phase2(txn_id, ts, &[&site], 2) {
            CommitOutcome::CommittedPartial { missed, .. } => {
                assert_eq!(missed, vec!["s-b".to_string()]);
            }
            other => panic!("expected partial, got {other:?}"),
        }
    }

    /// A coordinator killed after its decision fsync leaves every site in
    /// doubt — and every site heals from the decision log at restart.
    #[test]
    fn coordinator_crash_after_decision_heals_at_site_recovery() {
        let dir_site = tmp("ckill-site");
        let dir_coord = tmp("ckill-coord");
        let clock = Arc::new(LogicalClock::new());
        let coord_store = DurableStore::open(&dir_coord, StorageOptions::default()).unwrap();
        let coord = Coordinator::new(clock)
            .with_vote_timeout(Duration::from_millis(100))
            .with_decision_log(coord_store);

        let decided_ts = {
            let store = DurableStore::open(&dir_site, StorageOptions::default()).unwrap();
            let wal = SiteWal::new(store);
            let b = Arc::new(AccountObject::with(
                "b",
                Arc::new(hcc_adts::account::AccountHybrid),
                RuntimeOptions::default().with_redo(wal.clone()),
            ));
            let site = Site::spawn_durable("s-b", vec![b.inner().clone()], wal);
            let t = TxnHandle::new(TxnId(1));
            b.credit(&t, r(8)).unwrap();
            match coord.commit_with_kill(&t, &[&site], CoordinatorKill::AfterDecision) {
                CommitOutcome::CommittedPartial { ts, missed } => {
                    assert_eq!(missed, vec!["s-b".to_string()]);
                    assert_eq!(b.committed_balance(), r(0), "no phase-2 message was sent");
                    ts
                }
                other => panic!("expected partial commit, got {other:?}"),
            }
        };

        let decisions = coordinator_decisions(&dir_coord).unwrap();
        assert_eq!(decisions.get(&1), Some(&decided_ts));
        let b = Arc::new(AccountObject::hybrid("b"));
        let mut registry = Registry::new();
        registry.register(b.clone());
        let report = recover_site(&dir_site, &registry, &decisions).unwrap();
        assert_eq!(report.replayed, 1);
        assert_eq!(b.committed_balance(), r(8));
    }
}
