//! A message-passing simulation of distributed two-phase commitment.
//!
//! The paper's model is distributed: objects live at sites, and a commit
//! protocol [9, 19, 26] delivers `commit(t)` events with a single
//! timestamp to every site. This module simulates that setting in-process:
//! each [`Site`] is a thread owning a set of objects and serving
//! prepare/commit/abort messages over crossbeam channels; the
//! [`Coordinator`] runs the two-phase protocol with a vote timeout, and
//! sites can be *crashed* to exercise the abort path.

use crate::clock::LogicalClock;
use crossbeam::channel::{bounded, unbounded, Receiver, Sender};
use hcc_core::runtime::{TxParticipant, TxnHandle, TxnPhase};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::Duration;

/// Messages a site serves.
enum SiteMsg {
    /// Phase 1: vote on committing `txn`.
    Prepare { txn: Arc<TxnHandle>, reply: Sender<bool> },
    /// Phase 2: `txn` committed at timestamp `ts`.
    Commit { txn: hcc_spec::TxnId, ts: u64 },
    /// `txn` aborted.
    Abort { txn: hcc_spec::TxnId },
    /// Stop responding (simulated crash).
    Crash,
    /// Clean shutdown.
    Shutdown,
}

/// A simulated site hosting a set of objects.
pub struct Site {
    name: String,
    tx: Sender<SiteMsg>,
    thread: Option<JoinHandle<()>>,
}

impl Site {
    /// Spawn a site thread serving the given objects.
    pub fn spawn(name: impl Into<String>, objects: Vec<Arc<dyn TxParticipant>>) -> Site {
        let name = name.into();
        let (tx, rx): (Sender<SiteMsg>, Receiver<SiteMsg>) = unbounded();
        let thread_name = name.clone();
        let thread = std::thread::Builder::new()
            .name(format!("site-{thread_name}"))
            .spawn(move || {
                let mut crashed = false;
                while let Ok(msg) = rx.recv() {
                    match msg {
                        SiteMsg::Prepare { txn, reply } => {
                            if !crashed {
                                let vote = objects.iter().all(|o| o.prepare(&txn));
                                let _ = reply.send(vote);
                            }
                            // A crashed site never replies: the coordinator
                            // times out and aborts.
                        }
                        SiteMsg::Commit { txn, ts } => {
                            if !crashed {
                                for o in &objects {
                                    o.commit_at(txn, ts);
                                }
                            }
                        }
                        SiteMsg::Abort { txn } => {
                            if !crashed {
                                for o in &objects {
                                    o.abort_txn(txn);
                                }
                            }
                        }
                        SiteMsg::Crash => crashed = true,
                        SiteMsg::Shutdown => break,
                    }
                }
            })
            .expect("spawn site thread");
        Site { name, tx, thread: Some(thread) }
    }

    /// The site's name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Simulate a crash: the site stops voting and applying.
    pub fn crash(&self) {
        let _ = self.tx.send(SiteMsg::Crash);
    }
}

impl Drop for Site {
    fn drop(&mut self) {
        let _ = self.tx.send(SiteMsg::Shutdown);
        if let Some(t) = self.thread.take() {
            let _ = t.join();
        }
    }
}

/// The two-phase-commit coordinator.
pub struct Coordinator {
    clock: Arc<LogicalClock>,
    vote_timeout: Duration,
}

/// Outcome of a distributed commit attempt.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum CommitOutcome {
    /// All sites voted yes; the commit was distributed with this
    /// timestamp.
    Committed(u64),
    /// Aborted: a site voted no or failed to vote in time.
    Aborted {
        /// The site that caused the abort.
        site: String,
    },
}

impl Coordinator {
    /// A coordinator over the given clock.
    pub fn new(clock: Arc<LogicalClock>) -> Coordinator {
        Coordinator { clock, vote_timeout: Duration::from_millis(200) }
    }

    /// Set the prepare-vote timeout.
    pub fn with_vote_timeout(mut self, t: Duration) -> Coordinator {
        self.vote_timeout = t;
        self
    }

    /// Run two-phase commit for `txn` across `sites`.
    ///
    /// Phase 1 collects votes with a timeout; if every site votes yes, a
    /// timestamp above the transaction's bound is generated and phase 2
    /// distributes it. Otherwise every site receives an abort. Either way
    /// all sites reach the same verdict: atomic commitment.
    pub fn commit(&self, txn: &Arc<TxnHandle>, sites: &[Site]) -> CommitOutcome {
        // Phase 1.
        let mut pending = Vec::new();
        for site in sites {
            let (rtx, rrx) = bounded(1);
            let _ = site.tx.send(SiteMsg::Prepare { txn: txn.clone(), reply: rtx });
            pending.push((site, rrx));
        }
        for (site, rrx) in &pending {
            match rrx.recv_timeout(self.vote_timeout) {
                Ok(true) => {}
                _ => {
                    // Vote no or timeout: abort everywhere.
                    txn.set_phase(TxnPhase::Aborted);
                    for s in sites {
                        let _ = s.tx.send(SiteMsg::Abort { txn: txn.id() });
                    }
                    return CommitOutcome::Aborted { site: site.name.clone() };
                }
            }
        }
        // Phase 2.
        let ts = self.clock.timestamp_after(txn.bound());
        txn.set_phase(TxnPhase::Committed(ts));
        for s in sites {
            let _ = s.tx.send(SiteMsg::Commit { txn: txn.id(), ts });
        }
        CommitOutcome::Committed(ts)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hcc_adts::account::AccountObject;
    use hcc_spec::{Rational, TxnId};

    fn r(n: i64) -> Rational {
        Rational::from_int(n)
    }

    fn wait_for_balance(a: &AccountObject, expect: Rational) {
        for _ in 0..100 {
            if a.committed_balance() == expect {
                return;
            }
            std::thread::sleep(Duration::from_millis(2));
        }
        assert_eq!(a.committed_balance(), expect);
    }

    #[test]
    fn distributed_commit_reaches_all_sites() {
        let a = Arc::new(AccountObject::hybrid("a"));
        let b = Arc::new(AccountObject::hybrid("b"));
        let site1 = Site::spawn("s1", vec![a.inner().clone()]);
        let site2 = Site::spawn("s2", vec![b.inner().clone()]);
        let clock = Arc::new(LogicalClock::new());
        let coord = Coordinator::new(clock);

        let t = TxnHandle::new(TxnId(1));
        a.credit(&t, r(5)).unwrap();
        b.credit(&t, r(7)).unwrap();
        match coord.commit(&t, &[site1, site2]) {
            CommitOutcome::Committed(ts) => assert!(ts > 0),
            other => panic!("expected commit, got {other:?}"),
        }
        wait_for_balance(&a, r(5));
        wait_for_balance(&b, r(7));
    }

    #[test]
    fn crashed_site_aborts_the_transaction_everywhere() {
        let a = Arc::new(AccountObject::hybrid("a"));
        let b = Arc::new(AccountObject::hybrid("b"));
        let site1 = Site::spawn("s1", vec![a.inner().clone()]);
        let site2 = Site::spawn("s2", vec![b.inner().clone()]);
        let clock = Arc::new(LogicalClock::new());
        let coord = Coordinator::new(clock).with_vote_timeout(Duration::from_millis(50));

        let t = TxnHandle::new(TxnId(1));
        a.credit(&t, r(5)).unwrap();
        b.credit(&t, r(7)).unwrap();
        site2.crash();
        match coord.commit(&t, &[site1, site2]) {
            CommitOutcome::Aborted { site } => assert_eq!(site, "s2"),
            other => panic!("expected abort, got {other:?}"),
        }
        // The surviving site aborted too: all-or-nothing.
        wait_for_balance(&a, r(0));
        assert_eq!(t.phase(), TxnPhase::Aborted);
    }

    #[test]
    fn doomed_transaction_is_voted_down() {
        let a = Arc::new(AccountObject::hybrid("a"));
        let site1 = Site::spawn("s1", vec![a.inner().clone()]);
        let clock = Arc::new(LogicalClock::new());
        let coord = Coordinator::new(clock);
        let t = TxnHandle::new(TxnId(1));
        a.credit(&t, r(5)).unwrap();
        t.doom();
        assert!(matches!(coord.commit(&t, &[site1]), CommitOutcome::Aborted { .. }));
    }
}
