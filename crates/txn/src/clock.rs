//! Lamport-style logical clock for commit timestamps (Section 2).
//!
//! Well-formedness requires `precedes(H|X) ⊆ TS(H)`: a transaction that
//! executes at an object after another committed there must pick a later
//! timestamp. Objects expose their latest observed commit timestamp
//! (`s.clock`), operations fold it into the transaction's lower bound, and
//! [`LogicalClock::timestamp_after`] issues a fresh timestamp above both
//! the bound and every previously issued timestamp.

use std::sync::atomic::{AtomicU64, Ordering};

/// A monotone, unique timestamp source shared by all transactions of one
/// system (in the distributed simulation, piggybacked through the commit
/// protocol).
#[derive(Debug, Default)]
pub struct LogicalClock {
    last: AtomicU64,
}

impl LogicalClock {
    /// A clock starting at 0 (no timestamps issued; real timestamps are
    /// positive).
    pub fn new() -> LogicalClock {
        LogicalClock::default()
    }

    /// Issue a unique timestamp strictly greater than `bound` and than
    /// every timestamp issued before.
    pub fn timestamp_after(&self, bound: u64) -> u64 {
        let mut cur = self.last.load(Ordering::Relaxed);
        loop {
            let next = cur.max(bound) + 1;
            match self.last.compare_exchange_weak(cur, next, Ordering::AcqRel, Ordering::Relaxed) {
                Ok(_) => return next,
                Err(seen) => cur = seen,
            }
        }
    }

    /// The last issued timestamp (0 if none).
    pub fn now(&self) -> u64 {
        self.last.load(Ordering::Acquire)
    }

    /// Advance the clock to at least `ts` (merging knowledge from another
    /// site, Lamport's receive rule).
    pub fn witness(&self, ts: u64) {
        self.last.fetch_max(ts, Ordering::AcqRel);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    #[test]
    fn timestamps_are_unique_and_increasing() {
        let c = LogicalClock::new();
        let a = c.timestamp_after(0);
        let b = c.timestamp_after(0);
        assert!(b > a);
        assert_eq!(c.now(), b);
    }

    #[test]
    fn bound_is_respected() {
        let c = LogicalClock::new();
        let t = c.timestamp_after(100);
        assert!(t > 100);
        let t2 = c.timestamp_after(5);
        assert!(t2 > t, "monotone even with a small bound");
    }

    #[test]
    fn witness_merges_remote_knowledge() {
        let c = LogicalClock::new();
        c.witness(50);
        assert!(c.timestamp_after(0) > 50);
    }

    #[test]
    fn concurrent_issuance_is_unique() {
        let c = Arc::new(LogicalClock::new());
        let mut handles = Vec::new();
        for _ in 0..8 {
            let c = c.clone();
            handles.push(std::thread::spawn(move || {
                (0..500).map(|_| c.timestamp_after(0)).collect::<Vec<u64>>()
            }));
        }
        let mut all: Vec<u64> = handles.into_iter().flat_map(|h| h.join().unwrap()).collect();
        let n = all.len();
        all.sort();
        all.dedup();
        assert_eq!(all.len(), n, "no duplicate timestamps under contention");
    }
}
