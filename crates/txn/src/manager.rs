//! The transaction manager: begin / commit / abort with two-phase atomic
//! commitment and timestamp distribution.
//!
//! Commitment follows the paper's model: the transaction first reaches a
//! state with no pending invocation, then a commit timestamp is generated
//! (above the transaction's lower bound — see [`crate::clock`]) and a
//! `commit(t)` event is delivered to every object the transaction touched.
//! The two-phase structure (prepare votes, then commit fan-out) gives the
//! *atomic commitment* property the paper assumes: a transaction never
//! commits at some objects and aborts at others.

use crate::clock::LogicalClock;
use crate::deadlock::DeadlockDetector;
use hcc_core::runtime::{RuntimeOptions, TxnHandle, TxnPhase};
use hcc_spec::{Timestamp, TxnId};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

/// Why a commit was refused. In every case the transaction has been
/// aborted at all objects (all-or-nothing).
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum CommitError {
    /// Some object voted no in the prepare phase.
    PrepareFailed {
        /// The refusing object's name.
        object: String,
    },
    /// The transaction was doomed by the deadlock detector.
    Doomed,
    /// The transaction is not active.
    NotActive,
}

impl std::fmt::Display for CommitError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{self:?}")
    }
}

impl std::error::Error for CommitError {}

/// The transaction manager for one system.
pub struct TxnManager {
    clock: Arc<LogicalClock>,
    detector: Arc<DeadlockDetector>,
    next_id: AtomicU64,
    committed: AtomicU64,
    aborted: AtomicU64,
}

impl TxnManager {
    /// A fresh manager with its own clock and deadlock detector.
    pub fn new() -> Arc<TxnManager> {
        Arc::new(TxnManager {
            clock: Arc::new(LogicalClock::new()),
            detector: DeadlockDetector::new(),
            next_id: AtomicU64::new(1),
            committed: AtomicU64::new(0),
            aborted: AtomicU64::new(0),
        })
    }

    /// The manager's logical clock.
    pub fn clock(&self) -> &Arc<LogicalClock> {
        &self.clock
    }

    /// The manager's deadlock detector.
    pub fn detector(&self) -> &Arc<DeadlockDetector> {
        &self.detector
    }

    /// Runtime options wiring objects to this manager's deadlock detector.
    /// Construct objects with these options to get detection instead of
    /// bare timeouts.
    pub fn object_options(&self) -> RuntimeOptions {
        RuntimeOptions::with_observer(self.detector.clone())
    }

    /// Begin a new transaction.
    pub fn begin(&self) -> Arc<TxnHandle> {
        let id = TxnId(self.next_id.fetch_add(1, Ordering::Relaxed));
        let h = TxnHandle::new(id);
        self.detector.register(&h);
        h
    }

    /// Commit: two-phase atomic commitment across every touched object,
    /// with a timestamp above the transaction's lower bound. On any error
    /// the transaction is aborted everywhere.
    pub fn commit(&self, txn: Arc<TxnHandle>) -> Result<Timestamp, CommitError> {
        if txn.phase() != TxnPhase::Active {
            return Err(CommitError::NotActive);
        }
        if txn.is_doomed() {
            self.do_abort(&txn);
            return Err(CommitError::Doomed);
        }
        let participants = txn.participants();
        // Phase 1: collect votes.
        for p in &participants {
            if !p.prepare(&txn) {
                let object = p.object_name().to_string();
                self.do_abort(&txn);
                return Err(CommitError::PrepareFailed { object });
            }
        }
        // Generate the commit timestamp above the transaction's bound (the
        // max object clock it observed), guaranteeing precedes ⊆ TS.
        let ts = self.clock.timestamp_after(txn.bound());
        txn.set_phase(TxnPhase::Committed(ts));
        // Phase 2: distribute the timestamp.
        for p in &participants {
            p.commit_at(txn.id(), ts);
        }
        self.detector.forget(txn.id());
        self.committed.fetch_add(1, Ordering::Relaxed);
        Ok(Timestamp(ts))
    }

    /// Abort the transaction everywhere.
    pub fn abort(&self, txn: Arc<TxnHandle>) {
        self.do_abort(&txn);
    }

    fn do_abort(&self, txn: &Arc<TxnHandle>) {
        if txn.phase() != TxnPhase::Active {
            return;
        }
        txn.set_phase(TxnPhase::Aborted);
        for p in txn.participants() {
            p.abort_txn(txn.id());
        }
        self.detector.forget(txn.id());
        self.aborted.fetch_add(1, Ordering::Relaxed);
    }

    /// Number of transactions committed through this manager.
    pub fn committed_count(&self) -> u64 {
        self.committed.load(Ordering::Relaxed)
    }

    /// Number of transactions aborted through this manager.
    pub fn aborted_count(&self) -> u64 {
        self.aborted.load(Ordering::Relaxed)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hcc_adts::account::AccountObject;
    use hcc_adts::fifo_queue::QueueObject;
    use hcc_spec::Rational;
    use std::time::Duration;

    fn r(n: i64) -> Rational {
        Rational::from_int(n)
    }

    #[test]
    fn commit_distributes_one_timestamp_to_all_objects() {
        let mgr = TxnManager::new();
        let a = AccountObject::hybrid("a");
        let q: QueueObject<i64> = QueueObject::hybrid("q");
        let t = mgr.begin();
        a.credit(&t, r(5)).unwrap();
        q.enq(&t, 1).unwrap();
        let ts = mgr.commit(t).unwrap();
        assert!(ts.0 > 0);
        assert_eq!(a.committed_balance(), r(5));
        assert_eq!(q.committed_len(), 1);
        assert_eq!(mgr.committed_count(), 1);
    }

    #[test]
    fn abort_is_all_or_nothing() {
        let mgr = TxnManager::new();
        let a = AccountObject::hybrid("a");
        let q: QueueObject<i64> = QueueObject::hybrid("q");
        let t = mgr.begin();
        a.credit(&t, r(5)).unwrap();
        q.enq(&t, 1).unwrap();
        mgr.abort(t);
        assert_eq!(a.committed_balance(), r(0));
        assert_eq!(q.committed_len(), 0);
        assert_eq!(mgr.aborted_count(), 1);
    }

    #[test]
    fn doomed_transaction_cannot_commit() {
        let mgr = TxnManager::new();
        let a = AccountObject::hybrid("a");
        let t = mgr.begin();
        a.credit(&t, r(5)).unwrap();
        t.doom();
        assert_eq!(mgr.commit(t), Err(CommitError::Doomed));
        assert_eq!(a.committed_balance(), r(0), "aborted everywhere");
    }

    #[test]
    fn commit_twice_is_rejected() {
        let mgr = TxnManager::new();
        let t = mgr.begin();
        let t2 = t.clone();
        mgr.commit(t).unwrap();
        assert_eq!(mgr.commit(t2), Err(CommitError::NotActive));
    }

    #[test]
    fn timestamps_respect_object_clocks() {
        let mgr = TxnManager::new();
        let a = AccountObject::hybrid("a");
        let t1 = mgr.begin();
        a.credit(&t1, r(5)).unwrap();
        let ts1 = mgr.commit(t1).unwrap();
        // t2 runs at `a` after t1 committed there: its timestamp must be
        // later.
        let t2 = mgr.begin();
        a.credit(&t2, r(1)).unwrap();
        assert!(t2.bound() >= ts1.0);
        let ts2 = mgr.commit(t2).unwrap();
        assert!(ts2 > ts1);
    }

    #[test]
    fn deadlock_is_detected_and_a_victim_aborted() {
        let mgr = TxnManager::new();
        let a = Arc::new(AccountObject::with(
            "a",
            Arc::new(hcc_adts::account::AccountHybrid),
            mgr.object_options(),
        ));
        let b = Arc::new(AccountObject::with(
            "b",
            Arc::new(hcc_adts::account::AccountHybrid),
            mgr.object_options(),
        ));
        // Fund both accounts.
        let t0 = mgr.begin();
        a.credit(&t0, r(10)).unwrap();
        b.credit(&t0, r(10)).unwrap();
        mgr.commit(t0).unwrap();
        // t1: debit a then b; t2: debit b then a.
        let t1 = mgr.begin();
        let t2 = mgr.begin();
        assert!(a.debit(&t1, r(1)).unwrap());
        assert!(b.debit(&t2, r(1)).unwrap());
        let mgr2 = mgr.clone();
        let b2 = b.clone();
        let t1c = t1.clone();
        let j1 = std::thread::spawn(move || {
            let res = b2.debit(&t1c, r(1));
            match res {
                Ok(_) => mgr2.commit(t1c).map(|_| ()).map_err(|_| ()),
                Err(_) => {
                    mgr2.abort(t1c);
                    Err(())
                }
            }
        });
        std::thread::sleep(Duration::from_millis(5));
        let res2 = a.debit(&t2, r(1));
        let r2 = match res2 {
            Ok(_) => mgr.commit(t2).map(|_| ()).map_err(|_| ()),
            Err(_) => {
                mgr.abort(t2);
                Err(())
            }
        };
        let r1 = j1.join().unwrap();
        assert!(
            r1.is_ok() != r2.is_ok() || (r1.is_ok() && r2.is_ok()),
            "at least one transaction survives"
        );
        assert!(
            mgr.detector().victims() >= 1 || (r1.is_ok() && r2.is_ok()),
            "either a victim was chosen or no deadlock materialized"
        );
        // Money is conserved: 20 minus 1 per committed debit pair.
        let total = a.committed_balance() + b.committed_balance();
        let committed_debits = mgr.committed_count() as i64 - 1; // minus funding txn
        assert_eq!(total, r(20 - 2 * committed_debits));
    }
}
