//! The transaction manager: begin / commit / abort with two-phase atomic
//! commitment and timestamp distribution.
//!
//! Commitment follows the paper's model: the transaction first reaches a
//! state with no pending invocation, then a commit timestamp is generated
//! (above the transaction's lower bound — see [`crate::clock`]) and a
//! `commit(t)` event is delivered to every object the transaction touched.
//! The two-phase structure (prepare votes, then commit fan-out) gives the
//! *atomic commitment* property the paper assumes: a transaction never
//! commits at some objects and aborts at others.

use crate::clock::LogicalClock;
use crate::deadlock::DeadlockDetector;
use crate::registry::{RecoveryError, RecoveryReport, Registry};
use hcc_core::runtime::{
    HorizonPins, PinGuard, RedoSink, RedoTicket, RuntimeOptions, TxnHandle, TxnPhase,
};
use hcc_obs::{Counter, FlightRecorder, Gauge, Histogram};
use hcc_spec::{Timestamp, TxnId};
use hcc_storage::{Checkpoint, DurableStore, Snapshot, StorageError, StorageOptions};
use parking_lot::RwLock;
use std::path::Path;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Instant;

/// Redo payloads awaiting a retry, in execution order, each keeping its
/// reserved order ticket: `(ticket, object, bytes)`.
type PendingOps = Vec<(RedoTicket, String, Vec<u8>)>;

/// Why a commit was refused. In every case the transaction has been
/// aborted at all objects (all-or-nothing).
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum CommitError {
    /// Some object voted no in the prepare phase.
    PrepareFailed {
        /// The refusing object's name.
        object: String,
    },
    /// The transaction was doomed by the deadlock detector.
    Doomed,
    /// The transaction is not active.
    NotActive,
    /// The durable log could not persist the commit record; the
    /// transaction was aborted rather than acknowledged non-durably.
    Storage(String),
}

impl std::fmt::Display for CommitError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            CommitError::PrepareFailed { object } => {
                write!(f, "commit refused: object {object:?} voted no in the prepare phase")
            }
            CommitError::Doomed => {
                write!(f, "commit refused: transaction was doomed as a deadlock victim")
            }
            CommitError::NotActive => {
                write!(
                    f,
                    "commit refused: transaction is not active (already committed or aborted)"
                )
            }
            CommitError::Storage(detail) => {
                write!(f, "commit aborted: the durable log could not persist it ({detail})")
            }
        }
    }
}

impl std::error::Error for CommitError {}

/// The transaction manager for one system.
pub struct TxnManager {
    clock: Arc<LogicalClock>,
    detector: Arc<DeadlockDetector>,
    next_id: AtomicU64,
    committed: AtomicU64,
    aborted: AtomicU64,
    /// The durable log, when this manager persists completion records.
    store: Option<Arc<DurableStore>>,
    /// Transactions whose Begin record failed to append (transient I/O).
    /// The commit path retries the Begin before the commit record: Begin
    /// records pin the transaction's segments for compaction from its
    /// first record on, and keep the on-disk history complete for
    /// inspection (recovery itself no longer needs them — commit records
    /// are self-certifying).
    begin_unlogged: parking_lot::Mutex<std::collections::HashSet<u64>>,
    /// Redo payloads that failed to append when their operation executed
    /// (transient I/O), in execution order per transaction. Once a
    /// transaction has one stashed payload, *all* its later payloads are
    /// stashed too — appending them out of order would corrupt replay. The
    /// commit path drains the stash before the commit record, or refuses
    /// the commit.
    ops_unlogged: parking_lot::Mutex<std::collections::HashMap<u64, PendingOps>>,
    /// Commits hold this shared around log-write + phase-2 apply.
    /// Checkpoints hold it exclusively only for the *begin* instant of
    /// the fuzzy protocol — establishing the watermark and pinning
    /// horizons, no I/O — so a watermark can never fall between a
    /// commit's log record and its application at the objects.
    commit_gate: RwLock<()>,
    /// Serializes whole checkpoints against each other (two concurrent
    /// fuzzy checkpoints would fight over the horizon pins).
    checkpoint_serial: parking_lot::Mutex<()>,
    /// The system's metric registry — adopted from the durable store when
    /// there is one (so WAL/recovery counters and transaction counters
    /// land in one place), private otherwise.
    metrics: Arc<hcc_obs::Registry>,
    /// Pre-resolved transaction/checkpoint instruments (hot paths never
    /// touch the registry's name map).
    instruments: Instruments,
    /// The per-txn flight recorder (`HCC_TRACE=N`), when tracing is on.
    trace: Option<Arc<FlightRecorder>>,
    /// Commit-timestamp bookkeeping for snapshot-read watermark
    /// selection: which allocated timestamps are still between
    /// allocation and phase-2 application. See
    /// [`TxnManager::stable_watermark`].
    read_marks: parking_lot::Mutex<ReadMarks>,
    /// The shared horizon-pin registry every object built from
    /// [`TxnManager::object_options`] consults before folding — the
    /// mechanism that keeps a pinned watermark's snapshot exact across
    /// all objects at once.
    horizon: Arc<HorizonPins>,
}

/// Which commit timestamps have been allocated but not yet fully applied
/// (phase-2 fan-out not finished). The *stable watermark* — the highest
/// timestamp `W` such that every commit with `ts ≤ W` is fully applied
/// at every object it touched — is `min(inflight) - 1` while anything is
/// in flight, else the highest applied timestamp. Commits apply under a
/// *shared* gate, so a later timestamp can finish applying before an
/// earlier one; reading at the live frontier would see non-prefix
/// states. Reading at `W` never does.
#[derive(Default)]
struct ReadMarks {
    /// Timestamps allocated but not yet retired, ordered.
    inflight: std::collections::BTreeSet<u64>,
    /// Highest timestamp whose phase-2 fan-out completed (or, at build
    /// time, the store's recovery watermark — everything durable is
    /// "applied" once materialized).
    max_applied: u64,
}

/// The manager's pre-resolved metric handles.
struct Instruments {
    begun: Arc<Counter>,
    committed: Arc<Counter>,
    aborted: Arc<Counter>,
    commit_nanos: Arc<Histogram>,
    abort_nanos: Arc<Histogram>,
    ckpt_gate_nanos: Arc<Histogram>,
    ckpt_duration_nanos: Arc<Histogram>,
    ckpt_last_gate: Arc<Gauge>,
}

impl Instruments {
    fn resolve(metrics: &hcc_obs::Registry) -> Instruments {
        Instruments {
            begun: metrics.counter("txn.begun"),
            committed: metrics.counter("txn.committed"),
            aborted: metrics.counter("txn.aborted"),
            commit_nanos: metrics.histogram("txn.commit_nanos"),
            abort_nanos: metrics.histogram("txn.abort_nanos"),
            ckpt_gate_nanos: metrics.histogram("ckpt.gate_nanos"),
            ckpt_duration_nanos: metrics.histogram("ckpt.duration_nanos"),
            ckpt_last_gate: metrics.gauge("ckpt.last_gate_nanos"),
        }
    }
}

/// One object's share of a replicated transaction: the durable handle
/// to replay at, and its logged op payloads in ticket order. (See
/// [`TxnManager::apply_replicated`].)
pub type ReplicatedOps = (Arc<dyn hcc_storage::DurableObject>, Vec<Vec<u8>>);

impl TxnManager {
    /// A fresh manager with its own clock and deadlock detector (no
    /// durable log: commits live only in memory, as in the paper's model).
    pub fn new() -> Arc<TxnManager> {
        Self::build(None)
    }

    /// A manager whose completion records are persisted through a
    /// [`DurableStore`] rooted at `dir` — the commit path group-commits
    /// under `opts.durability`, and [`TxnManager::checkpoint`] bounds
    /// recovery time.
    pub fn with_storage(
        dir: impl AsRef<Path>,
        opts: StorageOptions,
    ) -> Result<Arc<TxnManager>, StorageError> {
        Ok(Self::build(Some(DurableStore::open(dir, opts)?)))
    }

    /// A manager over an existing store (shared with other components).
    pub fn with_durable_store(store: Arc<DurableStore>) -> Arc<TxnManager> {
        Self::build(Some(store))
    }

    fn build(store: Option<Arc<DurableStore>>) -> Arc<TxnManager> {
        let clock = Arc::new(LogicalClock::new());
        let mut first_id = 1;
        let mut recovered_ts = 0;
        if let Some(store) = &store {
            // Resume above everything already durable: commit timestamps
            // at or below the recovery watermark would be silently ignored
            // by a later recovery, and reused transaction ids would merge
            // with a dead transaction's records.
            recovered_ts = store.last_commit_ts();
            clock.witness(recovered_ts);
            first_id = store.max_txn_seen() + 1;
        }
        // One registry per system: adopt the store's (where WAL and
        // recovery counters already live) so `db.stats()` is one snapshot.
        let metrics = match &store {
            Some(store) => store.metrics().clone(),
            None => Arc::new(hcc_obs::Registry::new()),
        };
        let instruments = Instruments::resolve(&metrics);
        let detector = DeadlockDetector::new();
        detector.mirror_victims_into(metrics.counter("deadlock.victims"));
        let horizon = Arc::new(HorizonPins::observed(metrics.gauge("horizon.pins")));
        Arc::new(TxnManager {
            clock,
            detector,
            next_id: AtomicU64::new(first_id),
            committed: AtomicU64::new(0),
            aborted: AtomicU64::new(0),
            store,
            begin_unlogged: parking_lot::Mutex::new(std::collections::HashSet::new()),
            ops_unlogged: parking_lot::Mutex::new(std::collections::HashMap::new()),
            commit_gate: RwLock::new(()),
            checkpoint_serial: parking_lot::Mutex::new(()),
            metrics,
            instruments,
            trace: FlightRecorder::from_env().map(Arc::new),
            read_marks: parking_lot::Mutex::new(ReadMarks {
                inflight: Default::default(),
                // Everything durable is fully applied once recovery
                // materializes it, so the recovered watermark is readable
                // immediately.
                max_applied: recovered_ts,
            }),
            horizon,
        })
    }

    /// The system's metric registry (lock, transaction, WAL, checkpoint
    /// and recovery instruments all land here).
    pub fn metrics(&self) -> &Arc<hcc_obs::Registry> {
        &self.metrics
    }

    /// The flight recorder, when `HCC_TRACE=N` enabled one.
    pub fn flight_recorder(&self) -> Option<&Arc<FlightRecorder>> {
        self.trace.as_ref()
    }

    /// The durable store, if this manager has one.
    pub fn storage(&self) -> Option<&Arc<DurableStore>> {
        self.store.as_ref()
    }

    /// The manager's logical clock.
    pub fn clock(&self) -> &Arc<LogicalClock> {
        &self.clock
    }

    /// The manager's deadlock detector.
    pub fn detector(&self) -> &Arc<DeadlockDetector> {
        &self.detector
    }

    /// Runtime options *binding* objects to this manager: the deadlock
    /// detector as wait observer, the durability level the manager
    /// actually runs at, and — when the manager has a durable store — the
    /// manager itself as the redo sink, so every mutating operation on an
    /// object built with these options serializes and logs itself. There
    /// is no separate logging call for callers to forget.
    pub fn object_options(self: &Arc<Self>) -> RuntimeOptions {
        let durability = self.store.as_ref().map(|s| s.durability()).unwrap_or_default();
        let opts = RuntimeOptions::with_observer(self.detector.clone())
            .with_durability(durability)
            .with_metrics(self.metrics.clone())
            .with_trace(self.trace.clone())
            .with_horizon(self.horizon.clone());
        if self.store.is_some() {
            opts.with_redo(self.clone())
        } else {
            opts
        }
    }

    /// A commit timestamp is done with phase 2 (`applied`) or will never
    /// reach it (`!applied`: the commit was refused and aborted with no
    /// records at any object). Either way it stops holding the stable
    /// watermark down.
    fn retire_inflight(&self, ts: u64, applied: bool) {
        let mut marks = self.read_marks.lock();
        marks.inflight.remove(&ts);
        if applied {
            marks.max_applied = marks.max_applied.max(ts);
        }
    }

    /// The current **stable watermark** `W`: every commit with timestamp
    /// `≤ W` is fully applied at every object it touched, and every
    /// commit still in flight (or future) has a timestamp `> W`. A read
    /// of `committed_snapshot_at(W)` across any set of this manager's
    /// objects therefore observes a *consistent prefix* of the commit
    /// order — never a later transaction without an earlier one.
    pub fn stable_watermark(&self) -> u64 {
        let marks = self.read_marks.lock();
        match marks.inflight.first() {
            Some(&min) => min.saturating_sub(1),
            None => marks.max_applied,
        }
    }

    /// Apply one *replicated* committed transaction at its objects — the
    /// follower's apply path, which is deliberately the recovery replay
    /// path ([`crate::registry::replay_object_ops`]) and nothing else:
    /// every payload replays pinned to the response the primary logged,
    /// then the commit event is delivered at the replicated timestamp.
    /// The clock witnesses `ts` so this manager can never hand out a
    /// timestamp at or below history it has already applied.
    ///
    /// This does **not** advance the stable watermark: replicated commits
    /// arrive in *ticket* order, and commuting operations are the one
    /// case where ticket order and timestamp order may disagree — a
    /// commit with a smaller timestamp can still be in flight on the
    /// primary when a larger one lands here. Followers advance their
    /// readable watermark only through
    /// [`TxnManager::witness_replicated_watermark`], fed by the
    /// primary's sampled `(watermark, ticket)` pairs.
    pub fn apply_replicated(
        &self,
        txn: u64,
        ts: u64,
        ops: &[ReplicatedOps],
    ) -> Result<(), RecoveryError> {
        for (obj, payloads) in ops {
            crate::registry::replay_object_ops(obj.as_ref(), txn, ts, payloads)?;
        }
        self.clock.witness(ts);
        Ok(())
    }

    /// Raise the stable watermark to a value proven safe by the
    /// replication protocol: the primary sampled `wm` *before* reading
    /// its last issued ticket, and this follower has applied every
    /// ticket up to that sample's ticket — so every commit with
    /// timestamp `≤ wm` is applied here and `stable_watermark()` may
    /// serve it. Monotone; never lowers the mark.
    pub fn witness_replicated_watermark(&self, wm: u64) {
        let mut marks = self.read_marks.lock();
        if wm > marks.max_applied {
            marks.max_applied = wm;
        }
    }

    /// Pin the fold horizon at the current stable watermark and return
    /// the guard plus the pinned watermark. Watermark selection and
    /// pinning happen under one read-marks acquisition, so no commit can
    /// be allocated-and-retired between choosing `W` and protecting it.
    /// (A `forget` that *already* raced past — loaded the old floor just
    /// before this pin landed — is caught at read time by the object's
    /// folded-watermark check and surfaces as a transient refusal, not a
    /// stale answer.)
    pub fn pin_read_watermark(&self) -> PinGuard {
        let marks = self.read_marks.lock();
        let w = match marks.inflight.first() {
            Some(&min) => min.saturating_sub(1),
            None => marks.max_applied,
        };
        self.horizon.pin(w)
    }

    /// Pin the fold horizon at a caller-chosen timestamp (time-travel
    /// reads). The caller is responsible for checking `ts` against the
    /// stable watermark and the compaction floor; objects refuse folded
    /// watermarks regardless.
    pub fn pin_read_at(&self, ts: u64) -> PinGuard {
        self.horizon.pin(ts)
    }

    /// The shared horizon-pin registry (diagnostics / tests).
    pub fn horizon(&self) -> &Arc<HorizonPins> {
        &self.horizon
    }

    /// Begin a new transaction.
    pub fn begin(&self) -> Arc<TxnHandle> {
        let id = TxnId(self.next_id.fetch_add(1, Ordering::Relaxed));
        let h = TxnHandle::new(id);
        self.detector.register(&h);
        self.instruments.begun.inc();
        if let Some(tr) = &self.trace {
            tr.record(id.0, "", "begin", String::new());
        }
        if let Some(store) = &self.store {
            // An I/O error must not fail `begin` — but it is remembered:
            // the commit path retries the Begin record before the commit
            // record, keeping segment pinning and the on-disk history
            // complete.
            if store.log_begin(id.0).is_err() {
                self.begin_unlogged.lock().insert(id.0);
            }
        }
        h
    }

    /// Commit: two-phase atomic commitment across every touched object,
    /// with a timestamp above the transaction's lower bound. On any error
    /// the transaction is aborted everywhere.
    ///
    /// With a durable store attached, the commit record is persisted (group
    /// commit under `Durability::Fsync`) *before* the timestamp is
    /// distributed — the write-ahead discipline: a commit is acknowledged
    /// only once it would survive a crash.
    pub fn commit(&self, txn: Arc<TxnHandle>) -> Result<Timestamp, CommitError> {
        let started = Instant::now();
        if txn.phase() != TxnPhase::Active {
            return Err(CommitError::NotActive);
        }
        if txn.is_doomed() {
            self.do_abort(&txn);
            return Err(CommitError::Doomed);
        }
        let participants = txn.participants();
        // Phase 1: collect votes.
        for p in &participants {
            if !p.prepare(&txn) {
                let object = p.object_name().to_string();
                self.do_abort(&txn);
                return Err(CommitError::PrepareFailed { object });
            }
        }
        // Logging the record and applying it at every object happens under
        // the (shared) commit gate, so checkpoints see log and objects in
        // agreement.
        let gate = self.commit_gate.read();
        // Generate the commit timestamp above the transaction's bound (the
        // max object clock it observed), guaranteeing precedes ⊆ TS. The
        // allocation is published into the read-marks table *atomically*
        // with drawing it from the clock: a snapshot reader computing the
        // stable watermark under the same lock either sees this timestamp
        // in flight, or runs before it exists (and every timestamp
        // allocated later is strictly larger) — either way the reader's
        // watermark excludes it.
        let ts = {
            let mut marks = self.read_marks.lock();
            let ts = self.clock.timestamp_after(txn.bound());
            marks.inflight.insert(ts);
            ts
        };
        if let Some(store) = &self.store {
            // Retry a Begin record that failed at `begin()`. Still
            // failing means the log is unwell — refuse the commit rather
            // than continue over a log that is dropping appends.
            if self.begin_unlogged.lock().contains(&txn.id().0) {
                match store.log_begin(txn.id().0) {
                    Ok(()) => {
                        self.begin_unlogged.lock().remove(&txn.id().0);
                    }
                    Err(e) => {
                        drop(gate);
                        self.retire_inflight(ts, false);
                        self.do_abort(&txn);
                        self.fatal_commit_trace(txn.id(), &e.to_string());
                        return Err(CommitError::Storage(format!(
                            "begin record could not be logged: {e}"
                        )));
                    }
                }
            }
            // Drain redo payloads whose original append failed (transient
            // I/O at execution time). The write-ahead discipline requires
            // every op record on disk before the commit record; if the log
            // still refuses, the commit is refused too — acknowledging it
            // would lose these effects at recovery.
            let stashed = self.ops_unlogged.lock().remove(&txn.id().0);
            if let Some(stashed) = stashed {
                for (ticket, object, bytes) in &stashed {
                    // Retried under the originally reserved ticket, so the
                    // merged replay order is unchanged by the hiccup.
                    if let Err(e) = store.publish_op(ticket.0, txn.id().0, object, bytes) {
                        // The transaction is aborted below; do_abort drops
                        // any stash, so nothing is kept for a retry that
                        // cannot happen.
                        drop(gate);
                        self.retire_inflight(ts, false);
                        self.do_abort(&txn);
                        self.fatal_commit_trace(txn.id(), &e.to_string());
                        return Err(CommitError::Storage(format!(
                            "operation record could not be logged: {e}"
                        )));
                    }
                }
            }
            if let Err(e) = store.log_commit(txn.id().0, ts) {
                drop(gate);
                // The commit frame may have reached disk even though its
                // fsync failed; a *durable* abort record makes recovery's
                // abort-wins rule suppress it. If even that fails, the
                // post-crash outcome of this transaction is indeterminate —
                // say so instead of hiding it.
                let err = match store.log_abort_durable(txn.id().0) {
                    Ok(()) => e.to_string(),
                    Err(abort_err) => format!(
                        "{e}; compensating abort record also failed ({abort_err}): \
                         this transaction's outcome after a crash is indeterminate"
                    ),
                };
                self.retire_inflight(ts, false);
                self.do_abort(&txn);
                self.fatal_commit_trace(txn.id(), &err);
                return Err(CommitError::Storage(err));
            }
        }
        txn.set_phase(TxnPhase::Committed(ts));
        // Phase 2: distribute the timestamp.
        for p in &participants {
            p.commit_at(txn.id(), ts);
        }
        // Fully applied at every participant: the timestamp becomes
        // readable (it may raise the stable watermark).
        self.retire_inflight(ts, true);
        drop(gate);
        self.detector.forget(txn.id());
        self.committed.fetch_add(1, Ordering::Relaxed);
        self.instruments.committed.inc();
        self.instruments.commit_nanos.observe_duration(started.elapsed());
        if let Some(tr) = &self.trace {
            tr.record(txn.id().0, "", "commit", format!("ts={ts}"));
        }
        Ok(Timestamp(ts))
    }

    /// A commit failed *fatally* (the log refused it): dump the flight
    /// recorder, if one is running, so the events leading up to the
    /// failure are readable instead of lost.
    fn fatal_commit_trace(&self, txn: TxnId, detail: &str) {
        if let Some(tr) = &self.trace {
            tr.record(txn.0, "", "commit.fail", detail.to_string());
            tr.dump_to_stderr(&format!("commit of txn {} failed fatally: {detail}", txn.0));
        }
    }

    /// Rebuild the registered objects from this manager's durable log:
    /// newest checkpoint restored, committed tail replayed in timestamp
    /// order through each object's own redo decoder, and the store marked
    /// absorbed (so checkpointing is allowed again). Call once, right
    /// after constructing the objects and before running transactions.
    /// Returns an empty report when the manager has no store.
    pub fn recover(&self, registry: &Registry) -> Result<RecoveryReport, RecoveryError> {
        let Some(store) = &self.store else { return Ok(RecoveryReport::default()) };
        // The store's open already decoded the surviving log once; use
        // that image instead of re-reading every segment. The static
        // re-read remains as the fallback for a store whose image was
        // already claimed.
        let recovered = match store.take_recovered() {
            Ok(Some(recovered)) => recovered,
            Ok(None) => store.reread_recovered().inspect_err(|e| {
                self.recovery_refused_trace(&e.to_string());
            })?,
            Err(e) => {
                self.recovery_refused_trace(&e.to_string());
                return Err(e.into());
            }
        };
        let report = registry
            .restore_and_replay(&recovered)
            .inspect_err(|e| self.recovery_refused_trace(&e.to_string()))?;
        store.mark_state_absorbed();
        Ok(report)
    }

    /// Recovery refused the log: dump the flight recorder, if running.
    fn recovery_refused_trace(&self, detail: &str) {
        if let Some(tr) = &self.trace {
            tr.record(0, "", "recovery.fail", detail.to_string());
            tr.dump_to_stderr(&format!("recovery refused the log: {detail}"));
        }
    }

    /// Take a **fuzzy checkpoint** of `objects` through the durable
    /// store. Returns `Ok(None)` when the manager has no store.
    ///
    /// The commit gate is held exclusively only for the *begin* instant —
    /// recording the watermark `ts0`, the per-stripe cuts, and pinning
    /// every object's fold horizon at `ts0`; no I/O, microseconds — and
    /// is then released. Snapshots are taken incrementally, each under
    /// its own object's lock, *at* the watermark
    /// ([`Snapshot::snapshot_at`]), while concurrent commits (all with
    /// `ts > ts0`) keep flowing; recovery replays them over the fuzzy
    /// image in timestamp order. The gate-hold duration is recorded in
    /// [`TxnManager::last_checkpoint_gate_nanos`].
    pub fn checkpoint(
        &self,
        objects: &[(&str, &dyn Snapshot)],
    ) -> Result<Option<Checkpoint>, StorageError> {
        let Some(store) = &self.store else { return Ok(None) };
        let started = Instant::now();
        let _serial = self.checkpoint_serial.lock();
        let cursor = {
            let _gate = self.commit_gate.write();
            let held = Instant::now();
            let cursor = store.checkpoint_begin()?;
            for (_, obj) in objects {
                obj.pin_horizon(cursor.last_ts);
            }
            let gate_nanos = held.elapsed().as_nanos() as u64;
            self.instruments.ckpt_gate_nanos.observe(gate_nanos);
            self.instruments.ckpt_last_gate.set(gate_nanos as i64);
            cursor
        };
        let snaps: Vec<(String, Vec<u8>)> = objects
            .iter()
            .map(|(name, obj)| (name.to_string(), obj.snapshot_at(cursor.last_ts)))
            .collect();
        for (_, obj) in objects {
            obj.unpin_horizon();
        }
        let ckpt = store.checkpoint_finish(&cursor, snaps)?;
        self.instruments.ckpt_duration_nanos.observe_duration(started.elapsed());
        Ok(Some(ckpt))
    }

    /// How long the most recent [`TxnManager::checkpoint`] held the
    /// commit gate exclusively (nanoseconds) — the entire stall a fuzzy
    /// checkpoint imposes on concurrent commits.
    ///
    /// Superseded by the checkpoint histogram family: read the
    /// `ckpt.last_gate_nanos` gauge (this value), the `ckpt.gate_nanos`
    /// histogram (every checkpoint, not just the last), and
    /// `ckpt.duration_nanos` from [`TxnManager::metrics`] snapshots.
    #[doc(hidden)]
    #[deprecated(since = "0.2.0", note = "read the ckpt.* metrics from TxnManager::metrics()")]
    pub fn last_checkpoint_gate_nanos(&self) -> u64 {
        self.instruments.ckpt_last_gate.get() as u64
    }

    /// Checkpoint iff the store's compaction policy asks for it.
    pub fn maybe_checkpoint(
        &self,
        objects: &[(&str, &dyn Snapshot)],
    ) -> Result<Option<Checkpoint>, StorageError> {
        match &self.store {
            Some(store) if store.should_checkpoint() => self.checkpoint(objects),
            _ => Ok(None),
        }
    }

    /// [`TxnManager::checkpoint`] over every object in a [`Registry`].
    pub fn checkpoint_registry(
        &self,
        registry: &Registry,
    ) -> Result<Option<Checkpoint>, StorageError> {
        self.checkpoint(&registry.snapshot_refs())
    }

    /// [`TxnManager::maybe_checkpoint`] over every object in a
    /// [`Registry`].
    pub fn maybe_checkpoint_registry(
        &self,
        registry: &Registry,
    ) -> Result<Option<Checkpoint>, StorageError> {
        match &self.store {
            Some(store) if store.should_checkpoint() => self.checkpoint_registry(registry),
            _ => Ok(None),
        }
    }

    /// Abort the transaction everywhere.
    pub fn abort(&self, txn: Arc<TxnHandle>) {
        self.do_abort(&txn);
    }

    fn do_abort(&self, txn: &Arc<TxnHandle>) {
        if txn.phase() != TxnPhase::Active {
            return;
        }
        let started = Instant::now();
        txn.set_phase(TxnPhase::Aborted);
        for p in txn.participants() {
            p.abort_txn(txn.id());
        }
        if let Some(store) = &self.store {
            // Best effort: a missing abort record only delays segment
            // pruning; recovery never replays uncommitted transactions.
            let _ = store.log_abort(txn.id().0);
            self.begin_unlogged.lock().remove(&txn.id().0);
            self.ops_unlogged.lock().remove(&txn.id().0);
        }
        self.detector.forget(txn.id());
        self.aborted.fetch_add(1, Ordering::Relaxed);
        self.instruments.aborted.inc();
        self.instruments.abort_nanos.observe_duration(started.elapsed());
        if let Some(tr) = &self.trace {
            tr.record(txn.id().0, "", "abort", String::new());
        }
    }

    /// Number of transactions committed through this manager.
    pub fn committed_count(&self) -> u64 {
        self.committed.load(Ordering::Relaxed)
    }

    /// Number of transactions aborted through this manager.
    pub fn aborted_count(&self) -> u64 {
        self.aborted.load(Ordering::Relaxed)
    }
}

/// The manager *is* the redo sink its objects log through: executing a
/// mutating operation on an object built with
/// [`TxnManager::object_options`] lands here. The object reserves the
/// operation's global order ticket under its own lock
/// ([`RedoSink::reserve`] — one atomic bump against the store's ticket
/// counter) and publishes the payload after releasing it, so a stripe's
/// rotation fsync can never stall the object. An append failure is
/// stashed with its ticket (in execution order) and retried by the
/// commit path under the *same* ticket — and once one payload of a
/// transaction is stashed, all its later payloads are too, so the log
/// can never hold a transaction's ops out of order.
impl RedoSink for TxnManager {
    fn reserve(&self, _txn: TxnId, _object: &str) -> RedoTicket {
        match &self.store {
            Some(store) => RedoTicket(store.reserve_ticket()),
            None => RedoTicket(0),
        }
    }

    fn publish(&self, ticket: RedoTicket, txn: TxnId, object: &str, op: &[u8]) {
        let Some(store) = &self.store else { return };
        let mut stash = self.ops_unlogged.lock();
        if let Some(pending) = stash.get_mut(&txn.0) {
            pending.push((ticket, object.to_string(), op.to_vec()));
            return;
        }
        drop(stash);
        if store.publish_op(ticket.0, txn.0, object, op).is_err() {
            self.ops_unlogged.lock().entry(txn.0).or_default().push((
                ticket,
                object.to_string(),
                op.to_vec(),
            ));
            if let Some(tr) = &self.trace {
                tr.record(txn.0, object, "log.stash", format!("ticket={}", ticket.0));
            }
        } else if let Some(tr) = &self.trace {
            tr.record(txn.0, object, "log.op", format!("ticket={} bytes={}", ticket.0, op.len()));
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hcc_adts::account::AccountObject;
    use hcc_adts::fifo_queue::QueueObject;
    use hcc_spec::Rational;
    use std::time::Duration;

    fn r(n: i64) -> Rational {
        Rational::from_int(n)
    }

    #[test]
    fn commit_distributes_one_timestamp_to_all_objects() {
        let mgr = TxnManager::new();
        let a = AccountObject::hybrid("a");
        let q: QueueObject<i64> = QueueObject::hybrid("q");
        let t = mgr.begin();
        a.credit(&t, r(5)).unwrap();
        q.enq(&t, 1).unwrap();
        let ts = mgr.commit(t).unwrap();
        assert!(ts.0 > 0);
        assert_eq!(a.committed_balance(), r(5));
        assert_eq!(q.committed_len(), 1);
        assert_eq!(mgr.committed_count(), 1);
    }

    #[test]
    fn abort_is_all_or_nothing() {
        let mgr = TxnManager::new();
        let a = AccountObject::hybrid("a");
        let q: QueueObject<i64> = QueueObject::hybrid("q");
        let t = mgr.begin();
        a.credit(&t, r(5)).unwrap();
        q.enq(&t, 1).unwrap();
        mgr.abort(t);
        assert_eq!(a.committed_balance(), r(0));
        assert_eq!(q.committed_len(), 0);
        assert_eq!(mgr.aborted_count(), 1);
    }

    #[test]
    fn doomed_transaction_cannot_commit() {
        let mgr = TxnManager::new();
        let a = AccountObject::hybrid("a");
        let t = mgr.begin();
        a.credit(&t, r(5)).unwrap();
        t.doom();
        assert_eq!(mgr.commit(t), Err(CommitError::Doomed));
        assert_eq!(a.committed_balance(), r(0), "aborted everywhere");
    }

    #[test]
    fn commit_twice_is_rejected() {
        let mgr = TxnManager::new();
        let t = mgr.begin();
        let t2 = t.clone();
        mgr.commit(t).unwrap();
        assert_eq!(mgr.commit(t2), Err(CommitError::NotActive));
    }

    #[test]
    fn timestamps_respect_object_clocks() {
        let mgr = TxnManager::new();
        let a = AccountObject::hybrid("a");
        let t1 = mgr.begin();
        a.credit(&t1, r(5)).unwrap();
        let ts1 = mgr.commit(t1).unwrap();
        // t2 runs at `a` after t1 committed there: its timestamp must be
        // later.
        let t2 = mgr.begin();
        a.credit(&t2, r(1)).unwrap();
        assert!(t2.bound() >= ts1.0);
        let ts2 = mgr.commit(t2).unwrap();
        assert!(ts2 > ts1);
    }

    #[test]
    fn deadlock_is_detected_and_a_victim_aborted() {
        let mgr = TxnManager::new();
        let a = Arc::new(AccountObject::with(
            "a",
            Arc::new(hcc_adts::account::AccountHybrid),
            mgr.object_options(),
        ));
        let b = Arc::new(AccountObject::with(
            "b",
            Arc::new(hcc_adts::account::AccountHybrid),
            mgr.object_options(),
        ));
        // Fund both accounts.
        let t0 = mgr.begin();
        a.credit(&t0, r(10)).unwrap();
        b.credit(&t0, r(10)).unwrap();
        mgr.commit(t0).unwrap();
        // t1: debit a then b; t2: debit b then a.
        let t1 = mgr.begin();
        let t2 = mgr.begin();
        assert!(a.debit(&t1, r(1)).unwrap());
        assert!(b.debit(&t2, r(1)).unwrap());
        let mgr2 = mgr.clone();
        let b2 = b.clone();
        let t1c = t1.clone();
        let j1 = std::thread::spawn(move || {
            let res = b2.debit(&t1c, r(1));
            match res {
                Ok(_) => mgr2.commit(t1c).map(|_| ()).map_err(|_| ()),
                Err(_) => {
                    mgr2.abort(t1c);
                    Err(())
                }
            }
        });
        std::thread::sleep(Duration::from_millis(5));
        let res2 = a.debit(&t2, r(1));
        let r2 = match res2 {
            Ok(_) => mgr.commit(t2).map(|_| ()).map_err(|_| ()),
            Err(_) => {
                mgr.abort(t2);
                Err(())
            }
        };
        let r1 = j1.join().unwrap();
        assert!(
            r1.is_ok() != r2.is_ok() || (r1.is_ok() && r2.is_ok()),
            "at least one transaction survives"
        );
        assert!(
            mgr.detector().victims() >= 1 || (r1.is_ok() && r2.is_ok()),
            "either a victim was chosen or no deadlock materialized"
        );
        // Money is conserved: 20 minus 1 per committed debit pair.
        let total = a.committed_balance() + b.committed_balance();
        let committed_debits = mgr.committed_count() as i64 - 1; // minus funding txn
        assert_eq!(total, r(20 - 2 * committed_debits));
    }

    #[test]
    fn stable_watermark_is_the_last_fully_applied_commit_when_idle() {
        let mgr = TxnManager::new();
        assert_eq!(mgr.stable_watermark(), 0, "nothing committed yet");
        let a = Arc::new(AccountObject::with(
            "a",
            Arc::new(hcc_adts::account::AccountHybrid),
            mgr.object_options(),
        ));
        let t = mgr.begin();
        a.credit(&t, r(5)).unwrap();
        let ts1 = mgr.commit(t).unwrap();
        assert_eq!(mgr.stable_watermark(), ts1.0);
        let t = mgr.begin();
        a.credit(&t, r(5)).unwrap();
        let ts2 = mgr.commit(t).unwrap();
        assert_eq!(mgr.stable_watermark(), ts2.0);
        // A refused commit retires its allocated timestamp too: the
        // watermark keeps advancing instead of wedging below it.
        let t = mgr.begin();
        a.credit(&t, r(1)).unwrap();
        mgr.abort(t);
        assert_eq!(mgr.stable_watermark(), ts2.0);
    }

    #[test]
    fn pinned_watermark_keeps_snapshots_exact_while_commits_flow() {
        let mgr = TxnManager::new();
        let a = Arc::new(AccountObject::with(
            "a",
            Arc::new(hcc_adts::account::AccountHybrid),
            mgr.object_options(),
        ));
        let t = mgr.begin();
        a.credit(&t, r(10)).unwrap();
        mgr.commit(t).unwrap();
        let pin = mgr.pin_read_watermark();
        let w = pin.watermark();
        // Writers keep committing past the pin — none of it may leak into
        // (or fold away under) the pinned snapshot.
        for _ in 0..3 {
            let t = mgr.begin();
            a.credit(&t, r(100)).unwrap();
            mgr.commit(t).unwrap();
        }
        assert_eq!(a.inner().snapshot_read(w).unwrap(), r(10));
        assert_eq!(a.committed_balance(), r(310));
        drop(pin);
        assert_eq!(mgr.horizon().active(), 0, "guard drop released the pin");
    }

    /// The ISSUE's checkpoint regression: a long-running reader holding a
    /// horizon pin must not wedge a fuzzy checkpoint — the checkpoint
    /// snapshots at its own watermark under each object's latch and never
    /// waits for the reader's pin to clear.
    #[test]
    fn long_running_reader_does_not_wedge_checkpointing() {
        let dir = {
            static N: AtomicU64 = AtomicU64::new(0);
            let mut p = std::env::temp_dir();
            p.push(format!(
                "hcc-mgr-reader-{}-{}",
                std::process::id(),
                N.fetch_add(1, Ordering::Relaxed)
            ));
            let _ = std::fs::remove_dir_all(&p);
            p
        };
        let mgr = TxnManager::with_storage(&dir, StorageOptions::default()).unwrap();
        let a = Arc::new(AccountObject::with(
            "a",
            Arc::new(hcc_adts::account::AccountHybrid),
            mgr.object_options(),
        ));
        let mut registry = Registry::new();
        registry.register(a.clone());
        mgr.recover(&registry).unwrap();

        let t = mgr.begin();
        a.credit(&t, r(7)).unwrap();
        mgr.commit(t).unwrap();
        // A reader pins the horizon far in the past and just... stays.
        let pin = mgr.pin_read_watermark();
        for _ in 0..2 {
            let t = mgr.begin();
            a.credit(&t, r(1)).unwrap();
            mgr.commit(t).unwrap();
        }
        let ckpt = mgr
            .checkpoint_registry(&registry)
            .expect("checkpoint must complete while a reader pin is live")
            .expect("store attached");
        assert!(ckpt.last_ts > 0);
        // The reader's snapshot is still exact after the checkpoint.
        assert_eq!(a.inner().snapshot_read(pin.watermark()).unwrap(), r(7));
        drop(pin);
        let _ = std::fs::remove_dir_all(&dir);
    }
}
