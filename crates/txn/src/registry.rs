//! The recovery registry: named self-logging objects, and the replay loop
//! that rebuilds them from a recovered log.
//!
//! Self-logging closes the write half of the forget-to-log hole; the
//! registry closes the read half. Callers register each durable object
//! once (by the name it logs under) and recovery dispatches checkpoint
//! snapshots and WAL-tail redo payloads to the right object
//! automatically — there is no hand-written `match object.as_str()`
//! replay loop left to get wrong.

use hcc_core::runtime::{ReplayError, TxnHandle, TxnPhase};
use hcc_spec::TxnId;
use hcc_storage::{CommittedTxn, DurableObject, Recovered, SnapshotError, StorageError};
use std::collections::BTreeMap;
use std::sync::Arc;

/// Commit decisions recovered from a coordinator's log: `txn → ts`.
pub type Decisions = BTreeMap<u64, u64>;

/// Why recovery-into-a-registry failed. All variants are fatal: the log
/// and the registered objects disagree, and guessing would fabricate or
/// drop acknowledged effects.
#[derive(Debug)]
pub enum RecoveryError {
    /// Reading the durable state failed.
    Storage(StorageError),
    /// The log references an object nobody registered.
    UnknownObject {
        /// The name the log knows and the registry does not.
        object: String,
    },
    /// A checkpoint snapshot could not be installed.
    Snapshot(SnapshotError),
    /// A redo payload failed to replay at its object.
    Replay {
        /// The object being replayed into.
        object: String,
        /// What went wrong.
        error: ReplayError,
    },
    /// A coordinator decision resolves an in-doubt transaction at a
    /// timestamp the restored checkpoint already claims to cover — the
    /// snapshot excludes the transaction (it never committed locally), so
    /// replaying it below the watermark would apply it out of timestamp
    /// order. The log and the checkpoint disagree; refusing is the only
    /// honest outcome.
    DecisionBelowCheckpoint {
        /// The in-doubt transaction.
        txn: u64,
        /// Its decided commit timestamp.
        ts: u64,
        /// The restored checkpoint's watermark.
        checkpoint_ts: u64,
    },
}

impl std::fmt::Display for RecoveryError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            RecoveryError::Storage(e) => write!(f, "recovery: {e}"),
            RecoveryError::UnknownObject { object } => {
                write!(f, "recovery: log references unregistered object {object:?}")
            }
            RecoveryError::Snapshot(e) => write!(f, "recovery: {e}"),
            RecoveryError::Replay { object, error } => {
                write!(f, "recovery at object {object:?}: {error}")
            }
            RecoveryError::DecisionBelowCheckpoint { txn, ts, checkpoint_ts } => {
                write!(
                    f,
                    "recovery: decided in-doubt txn {txn} at ts {ts} lies at or below the \
                     checkpoint watermark {checkpoint_ts}"
                )
            }
        }
    }
}

impl std::error::Error for RecoveryError {}

impl From<StorageError> for RecoveryError {
    fn from(e: StorageError) -> RecoveryError {
        RecoveryError::Storage(e)
    }
}

impl From<SnapshotError> for RecoveryError {
    fn from(e: SnapshotError) -> RecoveryError {
        RecoveryError::Snapshot(e)
    }
}

/// What a registry replay accomplished.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct RecoveryReport {
    /// The restored checkpoint's watermark (0 = no checkpoint).
    pub checkpoint_ts: u64,
    /// Committed tail transactions replayed.
    pub replayed: usize,
    /// Was a torn tail dropped from the final log segment?
    pub torn_tail: bool,
}

/// A set of named durable objects — everything the transaction manager
/// checkpoints and recovery replays into.
#[derive(Default)]
pub struct Registry {
    objects: BTreeMap<String, Arc<dyn DurableObject>>,
}

impl Registry {
    /// An empty registry.
    pub fn new() -> Registry {
        Registry::default()
    }

    /// Register a durable object under the name it logs as.
    ///
    /// # Panics
    /// Panics if the name is already registered — two objects logging
    /// under one name would merge their histories at recovery.
    pub fn register(&mut self, obj: Arc<dyn DurableObject>) -> &mut Registry {
        let name = obj.object_name().to_string();
        let prev = self.objects.insert(name.clone(), obj);
        assert!(prev.is_none(), "object {name:?} registered twice");
        self
    }

    /// The object registered under `name`.
    pub fn get(&self, name: &str) -> Option<&Arc<dyn DurableObject>> {
        self.objects.get(name)
    }

    /// Registered names, sorted.
    pub fn names(&self) -> impl Iterator<Item = &str> {
        self.objects.keys().map(String::as_str)
    }

    /// The registered objects as checkpointable `(name, snapshot)` pairs.
    pub fn snapshot_refs(&self) -> Vec<(&str, &dyn hcc_storage::Snapshot)> {
        self.objects.iter().map(|(n, o)| (n.as_str(), o.as_ref() as _)).collect()
    }

    fn object(&self, name: &str) -> Result<&Arc<dyn DurableObject>, RecoveryError> {
        self.get(name).ok_or_else(|| RecoveryError::UnknownObject { object: name.to_string() })
    }

    /// Install a recovered checkpoint's snapshots into the registered
    /// objects.
    pub fn restore_checkpoint(&self, ckpt: &hcc_storage::Checkpoint) -> Result<(), RecoveryError> {
        for (name, data) in &ckpt.objects {
            self.object(name)?.restore(data, ckpt.last_ts)?;
        }
        Ok(())
    }

    /// Replay one recovered transaction: each redo payload at its object
    /// (reproducing the logged response or failing), then the commit event
    /// at the recovered timestamp at every object it touched.
    pub fn replay_txn(
        &self,
        txn: u64,
        ts: u64,
        ops: &[(String, Vec<u8>)],
    ) -> Result<(), RecoveryError> {
        let t = TxnHandle::replay(TxnId(txn));
        for (object, bytes) in ops {
            self.object(object)?
                .replay_op(&t, bytes)
                .map_err(|error| RecoveryError::Replay { object: object.clone(), error })?;
        }
        t.set_phase(TxnPhase::Committed(ts));
        for p in t.participants() {
            p.commit_at(t.id(), ts);
        }
        Ok(())
    }

    /// Rebuild the registered objects from a [`Recovered`] log image:
    /// checkpoint snapshots first, then the committed tail in timestamp
    /// order. In-doubt transactions are ignored (single-site semantics);
    /// distributed sites resolve them with
    /// [`Registry::restore_and_replay_resolved`].
    pub fn restore_and_replay(
        &self,
        recovered: &Recovered,
    ) -> Result<RecoveryReport, RecoveryError> {
        self.restore_and_replay_resolved(recovered, &Decisions::new())
    }

    /// [`Registry::restore_and_replay`] for a 2PC participant: in-doubt
    /// transactions (ops logged, no local completion record — the site
    /// crashed between its yes-vote and the phase-2 message) with a
    /// coordinator `decision` replay as committed at their decided
    /// timestamp, merged in timestamp order with the locally decided
    /// tail; undecided ones stay dropped (no decision record means
    /// abort). A decision at or below the restored checkpoint watermark
    /// is refused as [`RecoveryError::DecisionBelowCheckpoint`].
    pub fn restore_and_replay_resolved(
        &self,
        recovered: &Recovered,
        decisions: &Decisions,
    ) -> Result<RecoveryReport, RecoveryError> {
        let mut report = RecoveryReport { torn_tail: recovered.torn_tail, ..Default::default() };
        if let Some(ckpt) = &recovered.checkpoint {
            self.restore_checkpoint(ckpt)?;
            report.checkpoint_ts = ckpt.last_ts;
        }
        for c in resolve_committed(recovered, decisions)? {
            self.replay_txn(c.txn, c.ts, c.ops)?;
            report.replayed += 1;
        }
        Ok(report)
    }
}

/// One resolved transaction of a recovered image, borrowing its
/// operations from the [`Recovered`] log image.
#[derive(Clone, Copy)]
pub struct ResolvedTxn<'a> {
    /// Commit timestamp (the *decided* timestamp for a resolved in-doubt
    /// transaction).
    pub ts: u64,
    /// Transaction id.
    pub txn: u64,
    /// Logged operations in execution order.
    pub ops: &'a [(String, Vec<u8>)],
}

/// The validity half of the 2PC resolution rule, shared by both
/// `resolve_committed` variants: every *decided* in-doubt transaction
/// must land strictly above the checkpoint watermark (the snapshot
/// excludes it, so replaying below the watermark would apply it out of
/// timestamp order). Returns the watermark.
fn validate_decisions(recovered: &Recovered, decisions: &Decisions) -> Result<u64, RecoveryError> {
    let checkpoint_ts = recovered.checkpoint.as_ref().map_or(0, |c| c.last_ts);
    for in_doubt in &recovered.in_doubt {
        if let Some(&ts) = decisions.get(&in_doubt.txn) {
            if ts <= checkpoint_ts {
                return Err(RecoveryError::DecisionBelowCheckpoint {
                    txn: in_doubt.txn,
                    ts,
                    checkpoint_ts,
                });
            }
        }
    }
    Ok(checkpoint_ts)
}

/// Merge a [`Recovered`] image's committed tail with its *decided*
/// in-doubt transactions into one replay-ordered list — the single
/// authority on the 2PC resolution rule, shared by
/// [`Registry::restore_and_replay_resolved`] and `hcc-db`'s lazy
/// materialization. In-doubt transactions with a coordinator decision
/// replay as committed at the decided timestamp; undecided ones are
/// dropped (no decision record means abort); a decision at or below the
/// checkpoint watermark is refused as
/// [`RecoveryError::DecisionBelowCheckpoint`]. The entries borrow from
/// `recovered` — no op payload is copied.
pub fn resolve_committed<'a>(
    recovered: &'a Recovered,
    decisions: &Decisions,
) -> Result<Vec<ResolvedTxn<'a>>, RecoveryError> {
    validate_decisions(recovered, decisions)?;
    let mut committed: Vec<ResolvedTxn<'a>> = recovered
        .committed
        .iter()
        .map(|c| ResolvedTxn { ts: c.ts, txn: c.txn, ops: &c.ops })
        .collect();
    for in_doubt in &recovered.in_doubt {
        if let Some(&ts) = decisions.get(&in_doubt.txn) {
            committed.push(ResolvedTxn { ts, txn: in_doubt.txn, ops: &in_doubt.ops });
        }
    }
    committed.sort_by_key(|c| (c.ts, c.txn));
    Ok(committed)
}

/// [`resolve_committed`] draining the image by value: the committed and
/// decided-in-doubt payloads are *moved* out of `recovered` (whose
/// checkpoint and flags are left untouched), not copied — for callers
/// like `hcc-db`'s open path that own the image and keep the resolved
/// tail. Same rule, same order, same refusal.
pub fn resolve_committed_owned(
    recovered: &mut Recovered,
    decisions: &Decisions,
) -> Result<Vec<CommittedTxn>, RecoveryError> {
    validate_decisions(recovered, decisions)?;
    let mut committed = std::mem::take(&mut recovered.committed);
    for in_doubt in std::mem::take(&mut recovered.in_doubt) {
        if let Some(&ts) = decisions.get(&in_doubt.txn) {
            committed.push(CommittedTxn { ts, txn: in_doubt.txn, ops: in_doubt.ops });
        }
    }
    committed.sort_by_key(|c| (c.ts, c.txn));
    Ok(committed)
}

/// Replay one recovered transaction's operations **at a single object**
/// — the per-object half of [`Registry::replay_txn`], used by `hcc-db`'s
/// name-by-name materialization (which recovers each object as its
/// typed handle is first opened, so a multi-object transaction replays
/// at each of its objects separately, under the same protocol): every
/// payload replays pinned to its logged response, then the commit event
/// is delivered at the recovered timestamp.
pub fn replay_object_ops(
    obj: &dyn DurableObject,
    txn: u64,
    ts: u64,
    ops: &[Vec<u8>],
) -> Result<(), RecoveryError> {
    let t = TxnHandle::replay(TxnId(txn));
    for bytes in ops {
        obj.replay_op(&t, bytes).map_err(|error| RecoveryError::Replay {
            object: obj.object_name().to_string(),
            error,
        })?;
    }
    t.set_phase(TxnPhase::Committed(ts));
    for p in t.participants() {
        p.commit_at(t.id(), ts);
    }
    Ok(())
}
