//! The original line-JSON write-ahead log, kept as a compatibility shim.
//!
//! The durable path now lives in `hcc-storage` (segmented CRC-framed WAL,
//! checkpoints, compaction, group commit) and is wired into
//! [`crate::manager::TxnManager::with_storage`]. This module remains for
//! callers of the original API and as the simplest possible illustration
//! of the paper's recovery story: every executed operation is logged
//! before commit, commit records carry the timestamp, and recovery replays
//! the operations of committed transactions in timestamp order — which is
//! exactly the serialization order hybrid atomicity guarantees, so replay
//! rebuilds the same committed state. Unlike the segmented log it is
//! O(history) to replay and never compacts; prefer `hcc-storage` for
//! anything long-running.

use serde::{Deserialize, Serialize};
use std::fs::{File, OpenOptions};
use std::io::{BufRead, BufReader, BufWriter, Write};
use std::path::{Path, PathBuf};
use std::sync::Mutex;

/// One log record. Operations are stored as JSON values so the log is
/// type-agnostic; each data type serializes its operations as it sees fit.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub enum WalRecord {
    /// A transaction began.
    Begin {
        /// Transaction id.
        txn: u64,
    },
    /// A transaction executed an operation at an object.
    Op {
        /// Transaction id.
        txn: u64,
        /// Object name.
        object: String,
        /// Serialized operation.
        op: serde_json::Value,
    },
    /// The transaction committed with this timestamp.
    Commit {
        /// Transaction id.
        txn: u64,
        /// Commit timestamp.
        ts: u64,
    },
    /// The transaction aborted.
    Abort {
        /// Transaction id.
        txn: u64,
    },
}

/// An append-only, line-oriented JSON log.
pub struct Wal {
    path: PathBuf,
    writer: Mutex<BufWriter<File>>,
}

impl Wal {
    /// Open (appending) or create the log at `path`.
    pub fn open(path: impl AsRef<Path>) -> std::io::Result<Wal> {
        let path = path.as_ref().to_path_buf();
        let file = OpenOptions::new().create(true).append(true).open(&path)?;
        Ok(Wal { path, writer: Mutex::new(BufWriter::new(file)) })
    }

    /// The log's path.
    pub fn path(&self) -> &Path {
        &self.path
    }

    fn write(&self, rec: &WalRecord, sync: bool) -> std::io::Result<()> {
        let mut w = self.writer.lock().unwrap();
        serde_json::to_writer(&mut *w, rec)?;
        w.write_all(b"\n")?;
        if sync {
            w.flush()?;
            w.get_ref().sync_data()?;
        }
        Ok(())
    }

    /// Append one record. Operation records are buffered; completion
    /// records (`Commit` / `Abort`) are forced to disk before returning —
    /// the log would otherwise be silently volatile for callers that never
    /// use [`Wal::append_sync`], acknowledging commits a crash could lose.
    pub fn append(&self, rec: &WalRecord) -> std::io::Result<()> {
        let completion = matches!(rec, WalRecord::Commit { .. } | WalRecord::Abort { .. });
        self.write(rec, completion)
    }

    /// Append and force to the OS (the "write-ahead" discipline:
    /// completion is durable before it is acknowledged). For completion
    /// records this is now what [`Wal::append`] does anyway — one fsync,
    /// not two.
    pub fn append_sync(&self, rec: &WalRecord) -> std::io::Result<()> {
        self.write(rec, true)
    }

    /// Read every complete record from a log file. A torn trailing line
    /// (crash mid-write) is ignored.
    pub fn replay(path: impl AsRef<Path>) -> std::io::Result<Vec<WalRecord>> {
        let file = match File::open(path) {
            Ok(f) => f,
            Err(e) if e.kind() == std::io::ErrorKind::NotFound => return Ok(Vec::new()),
            Err(e) => return Err(e),
        };
        let mut out = Vec::new();
        for line in BufReader::new(file).lines() {
            let line = line?;
            match serde_json::from_str::<WalRecord>(&line) {
                Ok(rec) => out.push(rec),
                Err(_) => break, // torn tail: stop at the first bad line
            }
        }
        Ok(out)
    }
}

/// The operations of committed transactions, grouped per transaction and
/// sorted by commit timestamp — replaying them in this order rebuilds the
/// committed state of every object.
/// `(timestamp, txn, ops)` triples in replay order, as returned by
/// [`committed_ops`].
pub type CommittedOps = Vec<(u64, u64, Vec<(String, serde_json::Value)>)>;

pub fn committed_ops(records: &[WalRecord]) -> CommittedOps {
    use std::collections::{BTreeMap, HashMap};
    let mut ops: HashMap<u64, Vec<(String, serde_json::Value)>> = HashMap::new();
    let mut committed: BTreeMap<u64, u64> = BTreeMap::new(); // ts -> txn
    for rec in records {
        match rec {
            WalRecord::Op { txn, object, op } => {
                ops.entry(*txn).or_default().push((object.clone(), op.clone()));
            }
            WalRecord::Commit { txn, ts } => {
                committed.insert(*ts, *txn);
            }
            _ => {}
        }
    }
    committed.into_iter().map(|(ts, txn)| (ts, txn, ops.remove(&txn).unwrap_or_default())).collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tmp(name: &str) -> PathBuf {
        let mut p = std::env::temp_dir();
        p.push(format!("hcc-wal-{}-{}", std::process::id(), name));
        let _ = std::fs::remove_file(&p);
        p
    }

    fn op(v: i64) -> serde_json::Value {
        serde_json::json!({ "credit": v })
    }

    #[test]
    fn roundtrip() {
        let path = tmp("roundtrip");
        let wal = Wal::open(&path).unwrap();
        wal.append(&WalRecord::Begin { txn: 1 }).unwrap();
        wal.append(&WalRecord::Op { txn: 1, object: "a".into(), op: op(5) }).unwrap();
        wal.append_sync(&WalRecord::Commit { txn: 1, ts: 7 }).unwrap();
        drop(wal);
        let recs = Wal::replay(&path).unwrap();
        assert_eq!(recs.len(), 3);
        assert_eq!(recs[2], WalRecord::Commit { txn: 1, ts: 7 });
    }

    #[test]
    fn committed_ops_orders_by_timestamp_and_drops_losers() {
        let recs = vec![
            WalRecord::Begin { txn: 1 },
            WalRecord::Begin { txn: 2 },
            WalRecord::Begin { txn: 3 },
            WalRecord::Op { txn: 1, object: "a".into(), op: op(1) },
            WalRecord::Op { txn: 2, object: "a".into(), op: op(2) },
            WalRecord::Op { txn: 3, object: "a".into(), op: op(3) },
            WalRecord::Commit { txn: 2, ts: 1 },
            WalRecord::Abort { txn: 3 },
            WalRecord::Commit { txn: 1, ts: 2 },
        ];
        let c = committed_ops(&recs);
        assert_eq!(c.len(), 2);
        assert_eq!((c[0].0, c[0].1), (1, 2), "txn 2 first (ts 1)");
        assert_eq!((c[1].0, c[1].1), (2, 1));
        // Aborted txn 3 and uncommitted ops are gone.
        assert!(c.iter().all(|(_, txn, _)| *txn != 3));
    }

    #[test]
    fn torn_tail_is_ignored() {
        let path = tmp("torn");
        {
            let wal = Wal::open(&path).unwrap();
            wal.append_sync(&WalRecord::Commit { txn: 1, ts: 1 }).unwrap();
        }
        // Simulate a crash mid-append.
        {
            use std::io::Write;
            let mut f = OpenOptions::new().append(true).open(&path).unwrap();
            f.write_all(b"{\"Commit\":{\"txn\":2,").unwrap();
        }
        let recs = Wal::replay(&path).unwrap();
        assert_eq!(recs, vec![WalRecord::Commit { txn: 1, ts: 1 }]);
    }

    #[test]
    fn replay_of_missing_file_is_empty() {
        assert!(Wal::replay(tmp("missing")).unwrap().is_empty());
    }

    #[test]
    fn reopen_appends() {
        let path = tmp("reopen");
        {
            let wal = Wal::open(&path).unwrap();
            wal.append_sync(&WalRecord::Begin { txn: 1 }).unwrap();
        }
        {
            let wal = Wal::open(&path).unwrap();
            wal.append_sync(&WalRecord::Commit { txn: 1, ts: 3 }).unwrap();
        }
        assert_eq!(Wal::replay(&path).unwrap().len(), 2);
    }
}
