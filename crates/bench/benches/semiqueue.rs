//! E10: producer/consumer over a FIFO queue vs a Semiqueue (both hybrid).
//!
//! Nondeterminism buys concurrency: Semiqueue removers take different
//! items instead of conflicting (Table IV), while FIFO dequeuers of the
//! same head conflict (Table II), so the semiqueue pipeline scales better
//! with consumers.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use hcc_workload::queue::{producer_consumer, semiqueue_producer_consumer};
use hcc_workload::Scheme;
use std::time::Duration;

fn bench_semiqueue(c: &mut Criterion) {
    let mut g = c.benchmark_group("E10_semiqueue_vs_queue");
    g.sample_size(10)
        .measurement_time(Duration::from_secs(1))
        .warm_up_time(Duration::from_millis(300));
    for consumers in [1usize, 2, 4] {
        g.bench_with_input(BenchmarkId::new("fifo-queue", consumers), &consumers, |b, &c| {
            b.iter(|| producer_consumer(Scheme::Hybrid, 2, c, 25))
        });
        g.bench_with_input(BenchmarkId::new("semiqueue", consumers), &consumers, |b, &c| {
            b.iter(|| semiqueue_producer_consumer(Scheme::Hybrid, 2, c, 25))
        });
    }
    g.finish();
}

criterion_group!(benches, bench_semiqueue);
criterion_main!(benches);
