//! T1–T6: regenerate each paper table from the serial specification
//! (benchmarked: the cost of the bounded derivation itself).

use criterion::{criterion_group, criterion_main, Criterion};
use hcc_bench::derive_table_iii;
use hcc_relations::tables::AdtConfig;
use std::time::Duration;

fn bench_tables(c: &mut Criterion) {
    let mut g = c.benchmark_group("paper_tables");
    g.sample_size(10)
        .measurement_time(Duration::from_millis(900))
        .warm_up_time(Duration::from_millis(300));
    g.bench_function("T1_file_invalidated_by", |b| {
        b.iter(|| AdtConfig::file().derive_invalidated_by("T1"))
    });
    g.bench_function("T2_queue_invalidated_by", |b| {
        b.iter(|| AdtConfig::queue().derive_invalidated_by("T2"))
    });
    g.bench_function("T3_queue_minimal_relations", |b| b.iter(derive_table_iii));
    g.bench_function("T4_semiqueue_invalidated_by", |b| {
        b.iter(|| AdtConfig::semiqueue().derive_invalidated_by("T4"))
    });
    g.bench_function("T5_account_invalidated_by", |b| {
        b.iter(|| AdtConfig::account().derive_invalidated_by("T5"))
    });
    g.bench_function("T6_account_failure_to_commute", |b| {
        b.iter(|| AdtConfig::account().derive_failure_to_commute("T6"))
    });
    g.finish();
}

criterion_group!(benches, bench_tables);
criterion_main!(benches);
