//! E8: account operation mixes per scheme and overdraft rate.
//!
//! Table V admits Credit∥Post, Credit∥Debit-Ok and Post∥Debit-Ok, all of
//! which Table VI (commutativity) refuses; RW-2PL serializes everything.
//! Overdraft attempts are the expensive case under hybrid locking, so the
//! hybrid advantage shrinks as the overdraft rate grows — that crossover
//! is the paper's "significant cost if attempted overdrafts were
//! infrequent" remark, inverted.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use hcc_workload::bank::{account_mix, Mix};
use hcc_workload::Scheme;
use std::time::Duration;

fn bench_account(c: &mut Criterion) {
    let mut g = c.benchmark_group("E8_account_mix");
    g.sample_size(10)
        .measurement_time(Duration::from_secs(1))
        .warm_up_time(Duration::from_millis(300));
    for od in [0u32, 50] {
        for scheme in Scheme::ALL {
            g.bench_with_input(
                BenchmarkId::new(scheme.name(), format!("od{od}")),
                &od,
                |b, &od| b.iter(|| account_mix(scheme, 4, 20, 4, Mix::with_overdraft(od))),
            );
        }
    }
    g.finish();
}

criterion_group!(benches, bench_account);
criterion_main!(benches);
