//! WAL commit throughput: per-commit fsync vs. group commit.
//!
//! Eight writer threads each append-and-commit records as fast as they
//! can. Under the classical discipline every commit pays its own
//! `sync_data`; under group commit one leader fsyncs per batch of
//! concurrent committers, so throughput scales with the batch size the
//! fsync latency naturally accumulates. `Buffered` and `None` levels are
//! included as upper bounds.
//!
//! Run with `cargo bench --bench wal_throughput`. The summary block at the
//! end (commits/s and the group-commit speedup) is what `BENCH.md`
//! records; the acceptance bar is ≥ 5× at 8 threads.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use hcc_storage::{Durability, SegmentedWal, WalOptions};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Instant;

fn bench_dir(tag: &str) -> std::path::PathBuf {
    static N: AtomicU64 = AtomicU64::new(0);
    let mut p = std::env::temp_dir();
    p.push(format!(
        "hcc-walbench-{}-{}-{}",
        std::process::id(),
        tag,
        N.fetch_add(1, Ordering::Relaxed)
    ));
    let _ = std::fs::remove_dir_all(&p);
    p
}

/// Commit `per_thread` records from each of `threads` writers; returns
/// commits per second.
fn run_commits(durability: Durability, group_commit: bool, threads: u64, per_thread: u64) -> f64 {
    let dir = bench_dir("run");
    let wal = Arc::new(
        SegmentedWal::open(
            &dir,
            WalOptions { segment_max_bytes: 64 << 20, durability, group_commit, stripes: 1 },
        )
        .expect("open wal"),
    );
    let start = Instant::now();
    let mut joins = Vec::new();
    for t in 0..threads {
        let wal = wal.clone();
        joins.push(std::thread::spawn(move || {
            for i in 0..per_thread {
                let txn = t * per_thread + i + 1;
                wal.append_op(wal.reserve(), txn, 1, br#"{"op":"credit","v":1}"#).unwrap();
                wal.commit_txn(txn, txn).unwrap();
            }
        }));
    }
    for j in joins {
        j.join().unwrap();
    }
    let elapsed = start.elapsed();
    drop(wal);
    let _ = std::fs::remove_dir_all(&dir);
    (threads * per_thread) as f64 / elapsed.as_secs_f64()
}

fn bench_wal(c: &mut Criterion) {
    let threads = 8u64;
    let mut g = c.benchmark_group("wal_throughput");
    g.sample_size(10)
        .measurement_time(std::time::Duration::from_secs(1))
        .warm_up_time(std::time::Duration::from_millis(200));
    let modes: [(&str, Durability, bool, u64); 4] = [
        ("fsync_per_commit", Durability::Fsync, false, 40),
        ("group_commit", Durability::Fsync, true, 150),
        ("buffered", Durability::Buffered, false, 400),
        ("none", Durability::None, false, 400),
    ];
    for (name, durability, group, per_thread) in modes {
        g.bench_with_input(
            BenchmarkId::new(name, format!("{threads}thr")),
            &per_thread,
            |b, &per_thread| {
                b.iter(|| run_commits(durability, group, threads, per_thread));
            },
        );
    }
    g.finish();

    // The headline numbers: one solid measurement per mode, plus the ratio
    // the acceptance criterion cares about.
    println!("\n== wal_throughput summary ({threads} writer threads) ==");
    let base = run_commits(Durability::Fsync, false, threads, 150);
    println!("  fsync per commit   : {base:>10.0} commits/s");
    let group = run_commits(Durability::Fsync, true, threads, 1200);
    println!(
        "  group commit       : {group:>10.0} commits/s   ({:.1}x per-commit fsync)",
        group / base
    );
    let buffered = run_commits(Durability::Buffered, false, threads, 4000);
    println!("  buffered (no fsync): {buffered:>10.0} commits/s");
    let none = run_commits(Durability::None, false, threads, 4000);
    println!("  in-process buffer  : {none:>10.0} commits/s");
}

criterion_group!(benches, bench_wal);
criterion_main!(benches);
