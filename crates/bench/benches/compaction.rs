//! E11: Section-6 compaction — cost of views with and without horizon
//! folding, and the end-to-end committed stream probe.

use criterion::{criterion_group, criterion_main, Criterion};
use hcc_core::machine::LockMachine;
use hcc_core::FnConflict;
use hcc_spec::specs::QueueSpec;
use hcc_spec::{ObjectId, Timestamp, TxnId};
use hcc_workload::compaction::account_stream;
use std::sync::Arc;
use std::time::Duration;

/// Build a formal queue machine with `n` committed single-enqueue
/// transactions, optionally auto-compacting.
fn committed_stream(n: u64, compact: bool) -> LockMachine {
    let conflict = FnConflict::new("queue-hybrid", |q, p| match (q.inv.op, p.inv.op) {
        ("deq", "enq") => q.res != p.inv.args[0],
        ("deq", "deq") => q.res == p.res,
        _ => false,
    });
    let mut m = LockMachine::new(ObjectId(0), Arc::new(QueueSpec), Arc::new(conflict));
    m.set_auto_compact(compact);
    for i in 1..=n {
        m.execute(TxnId(i), QueueSpec::enq(i as i64)).unwrap();
        m.commit(TxnId(i), Timestamp(i)).unwrap();
    }
    m
}

fn bench_compaction(c: &mut Criterion) {
    let mut g = c.benchmark_group("E11_compaction");
    g.sample_size(10)
        .measurement_time(Duration::from_secs(1))
        .warm_up_time(Duration::from_millis(300));

    // View assembly cost after 200 committed transactions: the compacted
    // machine answers from the folded version, the uncompacted one replays
    // every intentions list.
    g.bench_function("view_with_compaction", |b| {
        let mut m = committed_stream(200, true);
        let mut i = 1000u64;
        b.iter(|| {
            i += 1;
            m.execute(TxnId(i), QueueSpec::deq()).unwrap();
            m.abort(TxnId(i)).unwrap();
        })
    });
    g.bench_function("view_without_compaction", |b| {
        let mut m = committed_stream(200, false);
        let mut i = 1000u64;
        b.iter(|| {
            i += 1;
            m.execute(TxnId(i), QueueSpec::deq()).unwrap();
            m.abort(TxnId(i)).unwrap();
        })
    });
    // End-to-end probe on the production runtime.
    g.bench_function("account_stream_200", |b| b.iter(|| account_stream(200)));
    g.finish();
}

criterion_group!(benches, bench_compaction);
criterion_main!(benches);
