//! E9: blind-write register workloads — the generalized Thomas Write Rule.
//!
//! Under hybrid locking (Table I) writes never conflict, so a pure-write
//! workload scales freely; commutativity conflicts on distinct-value
//! writes; RW-2PL serializes writers and excludes readers.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use hcc_workload::register::register_workload;
use hcc_workload::Scheme;
use std::time::Duration;

fn bench_file(c: &mut Criterion) {
    let mut g = c.benchmark_group("E9_register_writes");
    g.sample_size(10)
        .measurement_time(Duration::from_secs(1))
        .warm_up_time(Duration::from_millis(300));
    for write_pct in [100u32, 50] {
        for scheme in Scheme::ALL {
            g.bench_with_input(
                BenchmarkId::new(scheme.name(), format!("w{write_pct}")),
                &write_pct,
                |b, &wr| b.iter(|| register_workload(scheme, 4, 50, wr)),
            );
        }
    }
    g.finish();
}

criterion_group!(benches, bench_file);
criterion_main!(benches);
