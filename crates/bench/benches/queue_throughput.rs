//! E7: concurrent enqueues on one FIFO queue, per scheme.
//!
//! The paper's headline: hybrid locking admits concurrent enqueues
//! (Table II has no Enq/Enq conflicts), commutativity (Table III) and
//! RW-2PL serialize them. Expect hybrid ≥ commutativity ≥ rw-2pl
//! committed-transaction throughput, with the gap growing with threads.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use hcc_workload::queue::enqueue_only;
use hcc_workload::Scheme;
use std::time::Duration;

fn bench_queue(c: &mut Criterion) {
    let mut g = c.benchmark_group("E7_queue_enqueue");
    g.sample_size(10)
        .measurement_time(Duration::from_secs(1))
        .warm_up_time(Duration::from_millis(300));
    for threads in [2usize, 4] {
        for scheme in Scheme::ALL {
            g.bench_with_input(
                BenchmarkId::new(scheme.name(), threads),
                &threads,
                |b, &threads| b.iter(|| enqueue_only(scheme, threads, 20, 4)),
            );
        }
    }
    g.finish();
}

criterion_group!(benches, bench_queue);
criterion_main!(benches);
