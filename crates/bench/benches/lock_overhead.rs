//! Ablation: per-operation cost of the runtime under each scheme, without
//! contention (single transaction stream). Measures the pure overhead of
//! the response-aware conflict checks and intent bookkeeping.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use hcc_spec::Rational;
use hcc_txn::TxnManager;
use hcc_workload::queue::bench_options;
use hcc_workload::scheme::{make_account, make_queue};
use hcc_workload::Scheme;
use std::sync::Arc;
use std::time::Duration;

fn bench_overhead(c: &mut Criterion) {
    let mut g = c.benchmark_group("lock_overhead");
    g.sample_size(20)
        .measurement_time(Duration::from_secs(1))
        .warm_up_time(Duration::from_millis(300));
    for scheme in Scheme::ALL {
        g.bench_with_input(
            BenchmarkId::new("account_txn", scheme.name()),
            &scheme,
            |b, &scheme| {
                let mgr = TxnManager::new();
                let acct = Arc::new(make_account(scheme, "a", bench_options(&mgr)));
                // Seed funds.
                let t0 = mgr.begin();
                acct.credit(&t0, Rational::from_int(1_000_000)).unwrap();
                mgr.commit(t0).unwrap();
                b.iter(|| {
                    let t = mgr.begin();
                    acct.credit(&t, Rational::from_int(5)).unwrap();
                    acct.debit(&t, Rational::from_int(3)).unwrap();
                    mgr.commit(t).unwrap();
                });
            },
        );
        g.bench_with_input(BenchmarkId::new("queue_txn", scheme.name()), &scheme, |b, &scheme| {
            let mgr = TxnManager::new();
            let q = Arc::new(make_queue(scheme, "q", bench_options(&mgr)));
            let mut i = 0i64;
            b.iter(|| {
                i += 1;
                let t = mgr.begin();
                q.enq(&t, i).unwrap();
                mgr.commit(t.clone()).unwrap();
                let t2 = mgr.begin();
                q.deq(&t2).unwrap();
                mgr.commit(t2).unwrap();
            });
            // Keep the queue from growing without bound between
            // iterations (paranoia; enq/deq pairs already balance).
            let t = mgr.begin();
            let _ = q.inner();
            mgr.abort(t);
        });
    }
    g.finish();
}

criterion_group!(benches, bench_overhead);
criterion_main!(benches);
