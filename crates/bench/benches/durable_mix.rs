//! End-to-end durable `account_mix`: manager + self-logging objects +
//! striped WAL, swept over Fsync/Buffered × stripes ∈ {1, 4, 8} at
//! 1/4/8 worker threads. This is the whole-system cost of durability —
//! redo serialization, ticket reservation under the object lock, striped
//! appends, per-stripe group commit — where `wal_throughput` measured
//! the log alone.
//!
//! The summary block at the end is what `BENCH.md` records: commits/s
//! per cell, the stripes=1 → stripes=8 ratio per durability level at 8
//! threads, and the fuzzy-checkpoint stall (commit-gate hold + longest
//! commit gap while a mid-run checkpoint was in flight) against the
//! group-commit interval.
//!
//! Run with `cargo bench -p hcc-bench --bench durable_mix`.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use hcc_core::runtime::Durability;
use hcc_workload::durable::{
    durable_account_mix, read_heavy_mix, DurableMixOptions, DurableMixReport, MixApi,
    ReadHeavyOptions,
};
use std::sync::atomic::{AtomicU64, Ordering};

fn bench_dir(tag: &str) -> std::path::PathBuf {
    static N: AtomicU64 = AtomicU64::new(0);
    let mut p = std::env::temp_dir();
    p.push(format!(
        "hcc-durmix-{}-{}-{}",
        std::process::id(),
        tag,
        N.fetch_add(1, Ordering::Relaxed)
    ));
    let _ = std::fs::remove_dir_all(&p);
    p
}

fn run(
    durability: Durability,
    group_commit: bool,
    stripes: usize,
    threads: usize,
    per: usize,
) -> DurableMixReport {
    let dir = bench_dir("run");
    let report = durable_account_mix(
        &dir,
        DurableMixOptions {
            threads,
            txns_per_thread: per,
            durability,
            stripes,
            group_commit,
            checkpoint_mid_run: false,
            ..Default::default()
        },
    );
    let _ = std::fs::remove_dir_all(&dir);
    report
}

fn durability_name(d: Durability) -> &'static str {
    match d {
        Durability::None => "none",
        Durability::Buffered => "buffered",
        Durability::Fsync => "fsync",
    }
}

fn bench_durable_mix(c: &mut Criterion) {
    let mut g = c.benchmark_group("durable_mix");
    g.sample_size(10)
        .measurement_time(std::time::Duration::from_secs(1))
        .warm_up_time(std::time::Duration::from_millis(200));
    for durability in [Durability::Fsync, Durability::Buffered] {
        for stripes in [1usize, 4, 8] {
            for threads in [1usize, 4, 8] {
                let per = if durability == Durability::Fsync { 40 } else { 200 };
                g.bench_with_input(
                    BenchmarkId::new(
                        format!("{}_s{stripes}", durability_name(durability)),
                        format!("{threads}thr"),
                    ),
                    &threads,
                    |b, &threads| {
                        b.iter(|| run(durability, true, stripes, threads, per));
                    },
                );
            }
        }
    }
    g.finish();

    // The headline numbers: one solid measurement per cell, plus the
    // ratios the acceptance criteria care about. The classical rows
    // (`group_commit = false`, the stripe lock held across each commit's
    // fsync) isolate exactly the serialization striping decomposes;
    // group commit attacks the same wall by batching instead, and on a
    // single-core container the two levers overlap almost completely —
    // see BENCH.md for the analysis.
    println!("\n== durable_mix summary (commits/s; 16 thread-affine accounts, 4 ops/txn) ==");
    println!("{:<18} {:>8} {:>10} {:>10} {:>10}", "mode", "threads", "s=1", "s=4", "s=8");
    let modes: [(&str, Durability, bool, usize); 3] = [
        ("fsync/classical", Durability::Fsync, false, 200),
        ("fsync/group", Durability::Fsync, true, 800),
        ("buffered/group", Durability::Buffered, true, 3000),
    ];
    for (name, durability, group, per) in modes {
        for threads in [1usize, 4, 8] {
            let mut rates = Vec::new();
            for stripes in [1usize, 4, 8] {
                let r = run(durability, group, stripes, threads, per / threads.max(1));
                rates.push(r.commits_per_sec);
            }
            println!(
                "{:<18} {:>8} {:>10.0} {:>10.0} {:>10.0}{}",
                name,
                threads,
                rates[0],
                rates[1],
                rates[2],
                if threads == 8 {
                    format!("   (s8/s1: {:.2}x)", rates[2] / rates[0])
                } else {
                    String::new()
                }
            );
        }
    }

    // Facade overhead: the identical workload (same accounts, same op
    // stream, same storage options) driven once through raw
    // `TxnManager::begin`/`commit` and once through `Db::transact`
    // (typed handles, closure scopes, unified errors, retry
    // classification on every commit). Best of 3 per cell; the target
    // in BENCH.md is "within noise".
    println!("\n== Db facade overhead (commits/s, raw TxnManager vs Db::transact) ==");
    let api_modes: [(&str, Durability, usize); 2] =
        [("fsync/group", Durability::Fsync, 800), ("buffered/group", Durability::Buffered, 3000)];
    for (name, durability, per) in api_modes {
        for threads in [1usize, 8] {
            let best = |api: MixApi| -> f64 {
                (0..3)
                    .map(|_| {
                        let dir = bench_dir("api");
                        let r = durable_account_mix(
                            &dir,
                            DurableMixOptions {
                                threads,
                                txns_per_thread: per / threads.max(1),
                                durability,
                                stripes: 1,
                                api,
                                ..Default::default()
                            },
                        );
                        let _ = std::fs::remove_dir_all(&dir);
                        r.commits_per_sec
                    })
                    .fold(0.0, f64::max)
            };
            let raw = best(MixApi::Raw);
            let facade = best(MixApi::Facade);
            println!(
                "  {name:<16} {threads} thr: raw {raw:>9.0}  db {facade:>9.0}  (db/raw: {:.3}x)",
                facade / raw
            );
        }
    }

    // Wait-free snapshot reads: a zipfian 95/5 read/write mix at Fsync
    // vs Buffered. Writes pay the durability; reads ride the pinned
    // stable watermark and never enter the WAL or the lock manager, so
    // read throughput should be within noise across the two durability
    // levels — the decoupling claim in BENCH.md. The pure-read lock
    // delta is asserted zero on every run, not just eyeballed.
    println!("\n== read-heavy 95/5 zipfian mix (8 threads, 64 accounts, s=1.0 skew) ==");
    for durability in [Durability::Fsync, Durability::Buffered] {
        let best = (0..3)
            .map(|_| {
                let dir = bench_dir("readheavy");
                let r = read_heavy_mix(
                    &dir,
                    ReadHeavyOptions {
                        threads: 8,
                        ops_per_thread: if durability == Durability::Fsync { 200 } else { 600 },
                        pure_reads_per_thread: 500,
                        durability,
                        ..Default::default()
                    },
                );
                let _ = std::fs::remove_dir_all(&dir);
                assert_eq!(r.pure_read_lock_delta, 0, "pure-read phase moved a lock counter");
                r
            })
            .fold(None::<hcc_workload::durable::ReadHeavyReport>, |best, r| match best {
                Some(b) if b.pure_reads_per_sec >= r.pure_reads_per_sec => Some(b),
                _ => Some(r),
            })
            .unwrap();
        println!(
            "  {:<9} mixed {:>9.0} ops/s ({} reads / {} writes); pure reads {:>9.0}/s; lock delta 0",
            durability_name(durability),
            best.ops_per_sec,
            best.reads,
            best.writes_committed,
            best.pure_reads_per_sec,
        );
    }

    // Fuzzy-checkpoint stall: one 8-thread Fsync run per stripe count
    // with a checkpoint issued mid-workload. The gate hold is the entire
    // window in which commits are blocked; compare with the group-commit
    // interval (one fsync, ~hundreds of microseconds here).
    println!("\n== fuzzy checkpoint stall (8 threads, fsync, mid-run checkpoint) ==");
    for stripes in [1usize, 8] {
        let dir = bench_dir("ckpt");
        let r = durable_account_mix(
            &dir,
            DurableMixOptions {
                threads: 8,
                txns_per_thread: 100,
                durability: Durability::Fsync,
                stripes,
                checkpoint_mid_run: true,
                ..Default::default()
            },
        );
        let _ = std::fs::remove_dir_all(&dir);
        println!(
            "  stripes={stripes}: gate held {:>8.1} us; longest commit gap during ckpt {:>8.1} us",
            r.checkpoint_gate_nanos as f64 / 1000.0,
            r.checkpoint_max_commit_gap_nanos as f64 / 1000.0,
        );
    }
}

criterion_group!(benches, bench_durable_mix);
criterion_main!(benches);
