//! Regenerate Tables I–VI of the paper from the serial specifications and
//! print them side by side with the ground truth.
//!
//! ```text
//! cargo run -p hcc-bench --release --bin paper_tables
//! ```

use hcc_bench::{derive_all_tables, paper_tables};
use hcc_relations::minimal::minimal_dependency_relations;
use hcc_relations::tables::AdtConfig;

fn main() {
    println!("Herlihy & Weihl, Hybrid Concurrency Control for Abstract Data Types");
    println!("Tables I-VI, derived mechanically from the serial specifications\n");

    for (derived, expected) in derive_all_tables().iter().zip(paper_tables()) {
        let matches = derived.cells == expected.cells;
        println!("{}", derived.render());
        println!(
            "  => {}\n",
            if matches { "matches the paper" } else { "MISMATCH against the paper!" }
        );
    }

    println!("Minimal dependency relations of the FIFO queue (Section 4.2):");
    let cfg = AdtConfig::queue();
    let rels =
        minimal_dependency_relations(cfg.adt.as_ref(), &cfg.alphabet, &cfg.classify, cfg.bounds);
    println!("  found {} distinct minimal relations:", rels.len());
    for (i, atoms) in rels.iter().enumerate() {
        println!("  #{}: {:?}", i + 1, atoms.iter().collect::<Vec<_>>());
    }
    println!("\n  (the paper exhibits exactly these two: Tables II and III)");
}
