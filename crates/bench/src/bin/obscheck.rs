//! CI schema check for `HCC_METRICS=json` dumps.
//!
//! Reads a process's combined output from stdin, extracts every
//! `{"hcc_metrics":…}` line, and validates the dump contract:
//!
//! - the line is well-formed JSON with a single top-level `hcc_metrics`
//!   object;
//! - every metric value is an integer (counters/gauges) or a histogram
//!   object with integer `count`/`sum`/`p50`/`p99` and `[bound, count]`
//!   bucket pairs — never a float, so never a NaN;
//! - histogram bucket counts sum back to `count`;
//! - at least one dump in the stream carries the core transaction
//!   counters (`txn.begun`/`txn.committed`/`txn.aborted`);
//! - read-path invariants: any dump carrying `txn.read_only.begun`
//!   must also carry `txn.read_only.completed`, with
//!   `completed ≤ begun`; and in the *final* dump of the stream every
//!   begun read has completed and the `horizon.pins` gauge is back to
//!   zero — a process that exits with a pinned fold horizon leaked a
//!   reader;
//! - network invariants: any dump carrying `net.sessions.opened` must
//!   also carry `net.sessions.closed`, with `closed ≤ opened` (a
//!   session closes at most once); and in the *final* dump the
//!   `net.queue.depth` gauge is back to zero — a server that exits
//!   with queued work broke the drain's promise to answer everything
//!   it admitted;
//! - replication invariants: `repl.follower.lag` is never negative (a
//!   "follower ahead of its primary" means the watermark/ticket pair
//!   was sampled out of order), `repl.acked.ticket ≤
//!   repl.shipped.ticket` whenever both are present, and the *final*
//!   dump carrying follower gauges shows lag 0 — a converged follower
//!   is the only acceptable exit state for the replication demos.
//!
//! Exits nonzero with a diagnostic on the first violation, so the
//! recovery-matrix CI jobs fail if an instrumentation change breaks the
//! machine-readable dump. Usage: `some-test-run 2>&1 | obscheck`.

use serde_json::Value;
use std::io::Read;
use std::process::exit;

fn fail(msg: &str) -> ! {
    eprintln!("obscheck: FAIL: {msg}");
    exit(1)
}

fn as_u64(v: &Value, ctx: &str) -> u64 {
    match v.as_u64() {
        Some(n) => n,
        None => fail(&format!("{ctx}: expected a non-negative integer, got {v}")),
    }
}

fn check_histogram(name: &str, h: &serde_json::Map) {
    for key in ["count", "sum", "p50", "p99", "buckets"] {
        if !h.contains_key(key) {
            fail(&format!("{name}: histogram missing key {key:?}"));
        }
    }
    let count = as_u64(&h["count"], name);
    as_u64(&h["sum"], name);
    as_u64(&h["p50"], name);
    as_u64(&h["p99"], name);
    let buckets = match h["buckets"].as_array() {
        Some(b) => b,
        None => fail(&format!("{name}: buckets is not an array")),
    };
    let mut total = 0u64;
    for b in buckets {
        let pair = match b.as_array() {
            Some(p) if p.len() == 2 => p,
            _ => fail(&format!("{name}: bucket entry is not a [bound, count] pair: {b}")),
        };
        as_u64(&pair[0], name);
        total += as_u64(&pair[1], name);
    }
    if total != count {
        fail(&format!("{name}: bucket counts sum to {total} but count={count}"));
    }
}

fn check_line(line: &str) -> bool {
    let parsed: Value = match serde_json::from_str(line) {
        Ok(v) => v,
        Err(e) => fail(&format!("invalid JSON: {e}\n  line: {line}")),
    };
    let top = match parsed.as_object() {
        Some(o) if o.len() == 1 && o.contains_key("hcc_metrics") => o,
        _ => fail("top level must be exactly {\"hcc_metrics\": {…}}"),
    };
    let metrics = match top["hcc_metrics"].as_object() {
        Some(m) => m,
        None => fail("hcc_metrics is not an object"),
    };
    for (name, v) in metrics {
        match v {
            Value::Number(n) if n.as_i64().is_some() || n.as_u64().is_some() => {}
            Value::Number(_) => fail(&format!("{name}: float value {v} in dump")),
            Value::Object(h) => check_histogram(name, h),
            other => fail(&format!("{name}: unexpected value kind {other}")),
        }
    }
    if let Some(begun) = metrics.get("txn.read_only.begun") {
        let begun = as_u64(begun, "txn.read_only.begun");
        let completed = match metrics.get("txn.read_only.completed") {
            Some(c) => as_u64(c, "txn.read_only.completed"),
            None => fail("txn.read_only.begun present without txn.read_only.completed"),
        };
        if completed > begun {
            fail(&format!("txn.read_only.completed={completed} exceeds begun={begun}"));
        }
    }
    if let Some(lag) = metrics.get("repl.follower.lag") {
        match lag.as_i64() {
            Some(n) if n >= 0 => {}
            Some(n) => fail(&format!(
                "repl.follower.lag={n}: a follower ahead of the primary's shipped position \
                 means the sample pair was read out of order"
            )),
            None => fail("repl.follower.lag is not an integer"),
        }
    }
    if let (Some(acked), Some(shipped)) =
        (metrics.get("repl.acked.ticket"), metrics.get("repl.shipped.ticket"))
    {
        let acked = as_u64(acked, "repl.acked.ticket");
        let shipped = as_u64(shipped, "repl.shipped.ticket");
        if acked > shipped {
            fail(&format!(
                "repl.acked.ticket={acked} exceeds shipped={shipped}: a follower acked \
                 frames the primary never sent"
            ));
        }
    }
    if let Some(opened) = metrics.get("net.sessions.opened") {
        let opened = as_u64(opened, "net.sessions.opened");
        let closed = match metrics.get("net.sessions.closed") {
            Some(c) => as_u64(c, "net.sessions.closed"),
            None => fail("net.sessions.opened present without net.sessions.closed"),
        };
        if closed > opened {
            fail(&format!("net.sessions.closed={closed} exceeds opened={opened}"));
        }
    }
    ["txn.begun", "txn.committed", "txn.aborted"].iter().all(|k| metrics.contains_key(*k))
}

/// The last dump of a stream is the process's exit state: every reader
/// that began must have completed, and no horizon pin may survive —
/// a leak here means a `ReadTx` escaped its scope without dropping.
fn check_final(line: &str) {
    let parsed: Value = serde_json::from_str(line).expect("already validated by check_line");
    let metrics = parsed["hcc_metrics"].as_object().expect("already validated");
    let begun = match metrics.get("txn.read_only.begun") {
        Some(b) => as_u64(b, "txn.read_only.begun"),
        None => return, // pre-read-path dump shape: nothing to hold to
    };
    let completed = as_u64(&metrics["txn.read_only.completed"], "txn.read_only.completed");
    if completed != begun {
        fail(&format!(
            "final dump: {} read transaction(s) begun but only {} completed",
            begun, completed
        ));
    }
    if let Some(pins) = metrics.get("horizon.pins") {
        match pins.as_i64() {
            Some(0) => {}
            Some(n) => fail(&format!("final dump: horizon.pins={n}, a reader leaked its pin")),
            None => fail("horizon.pins is not an integer"),
        }
    }
}

/// Dumps fire at `Db` drop, so any dump carrying `net.queue.depth` is a
/// server's end-of-life state: a drained server must show an empty
/// queue. Applied to the *last* network dump of the stream (a stream
/// may interleave server and verifier processes).
fn check_final_net(line: &str) {
    let parsed: Value = serde_json::from_str(line).expect("already validated by check_line");
    let metrics = parsed["hcc_metrics"].as_object().expect("already validated");
    match metrics["net.queue.depth"].as_i64() {
        Some(0) => {}
        Some(n) => fail(&format!(
            "final network dump: net.queue.depth={n}, the drain left admitted work unanswered"
        )),
        None => fail("net.queue.depth is not an integer"),
    }
}

/// The last dump carrying follower gauges is the follower's exit state:
/// a demo or harness shuts its follower down only after convergence, so
/// a nonzero final lag means replication stalled short of the primary.
fn check_final_repl(line: &str) {
    let parsed: Value = serde_json::from_str(line).expect("already validated by check_line");
    let metrics = parsed["hcc_metrics"].as_object().expect("already validated");
    match metrics["repl.follower.lag"].as_i64() {
        Some(0) => {}
        Some(n) => fail(&format!(
            "final replication dump: repl.follower.lag={n}, the follower exited unconverged"
        )),
        None => fail("repl.follower.lag is not an integer"),
    }
}

fn main() {
    let mut input = String::new();
    std::io::stdin().read_to_string(&mut input).unwrap_or_else(|e| {
        fail(&format!("cannot read stdin: {e}"));
    });
    let mut lines = 0u64;
    let mut with_txn_core = 0u64;
    let mut last_dump = None;
    let mut last_net_dump = None;
    let mut last_repl_dump = None;
    for line in input.lines() {
        let line = line.trim();
        if !line.starts_with("{\"hcc_metrics\"") {
            continue;
        }
        lines += 1;
        if check_line(line) {
            with_txn_core += 1;
        }
        if line.contains("\"net.queue.depth\"") {
            last_net_dump = Some(line);
        }
        if line.contains("\"repl.follower.lag\"") {
            last_repl_dump = Some(line);
        }
        last_dump = Some(line);
    }
    if lines == 0 {
        fail("no hcc_metrics line found in input (was HCC_METRICS=json set?)");
    }
    if with_txn_core == 0 {
        fail("no dump carried txn.begun/txn.committed/txn.aborted");
    }
    if let Some(last) = last_dump {
        check_final(last);
    }
    if let Some(last) = last_net_dump {
        check_final_net(last);
    }
    if let Some(last) = last_repl_dump {
        check_final_repl(last);
    }
    println!("obscheck: OK ({lines} dump(s), {with_txn_core} with core txn counters)");
}
