//! CI schema check for `HCC_METRICS=json` dumps.
//!
//! Reads a process's combined output from stdin, extracts every
//! `{"hcc_metrics":…}` line, and validates the dump contract:
//!
//! - the line is well-formed JSON with a single top-level `hcc_metrics`
//!   object;
//! - every metric value is an integer (counters/gauges) or a histogram
//!   object with integer `count`/`sum`/`p50`/`p99` and `[bound, count]`
//!   bucket pairs — never a float, so never a NaN;
//! - histogram bucket counts sum back to `count`;
//! - at least one dump in the stream carries the core transaction
//!   counters (`txn.begun`/`txn.committed`/`txn.aborted`).
//!
//! Exits nonzero with a diagnostic on the first violation, so the
//! recovery-matrix CI jobs fail if an instrumentation change breaks the
//! machine-readable dump. Usage: `some-test-run 2>&1 | obscheck`.

use serde_json::Value;
use std::io::Read;
use std::process::exit;

fn fail(msg: &str) -> ! {
    eprintln!("obscheck: FAIL: {msg}");
    exit(1)
}

fn as_u64(v: &Value, ctx: &str) -> u64 {
    match v.as_u64() {
        Some(n) => n,
        None => fail(&format!("{ctx}: expected a non-negative integer, got {v}")),
    }
}

fn check_histogram(name: &str, h: &serde_json::Map) {
    for key in ["count", "sum", "p50", "p99", "buckets"] {
        if !h.contains_key(key) {
            fail(&format!("{name}: histogram missing key {key:?}"));
        }
    }
    let count = as_u64(&h["count"], name);
    as_u64(&h["sum"], name);
    as_u64(&h["p50"], name);
    as_u64(&h["p99"], name);
    let buckets = match h["buckets"].as_array() {
        Some(b) => b,
        None => fail(&format!("{name}: buckets is not an array")),
    };
    let mut total = 0u64;
    for b in buckets {
        let pair = match b.as_array() {
            Some(p) if p.len() == 2 => p,
            _ => fail(&format!("{name}: bucket entry is not a [bound, count] pair: {b}")),
        };
        as_u64(&pair[0], name);
        total += as_u64(&pair[1], name);
    }
    if total != count {
        fail(&format!("{name}: bucket counts sum to {total} but count={count}"));
    }
}

fn check_line(line: &str) -> bool {
    let parsed: Value = match serde_json::from_str(line) {
        Ok(v) => v,
        Err(e) => fail(&format!("invalid JSON: {e}\n  line: {line}")),
    };
    let top = match parsed.as_object() {
        Some(o) if o.len() == 1 && o.contains_key("hcc_metrics") => o,
        _ => fail("top level must be exactly {\"hcc_metrics\": {…}}"),
    };
    let metrics = match top["hcc_metrics"].as_object() {
        Some(m) => m,
        None => fail("hcc_metrics is not an object"),
    };
    for (name, v) in metrics {
        match v {
            Value::Number(n) if n.as_i64().is_some() || n.as_u64().is_some() => {}
            Value::Number(_) => fail(&format!("{name}: float value {v} in dump")),
            Value::Object(h) => check_histogram(name, h),
            other => fail(&format!("{name}: unexpected value kind {other}")),
        }
    }
    ["txn.begun", "txn.committed", "txn.aborted"].iter().all(|k| metrics.contains_key(*k))
}

fn main() {
    let mut input = String::new();
    std::io::stdin().read_to_string(&mut input).unwrap_or_else(|e| {
        fail(&format!("cannot read stdin: {e}"));
    });
    let mut lines = 0u64;
    let mut with_txn_core = 0u64;
    for line in input.lines() {
        let line = line.trim();
        if !line.starts_with("{\"hcc_metrics\"") {
            continue;
        }
        lines += 1;
        if check_line(line) {
            with_txn_core += 1;
        }
    }
    if lines == 0 {
        fail("no hcc_metrics line found in input (was HCC_METRICS=json set?)");
    }
    if with_txn_core == 0 {
        fail("no dump carried txn.begun/txn.committed/txn.aborted");
    }
    println!("obscheck: OK ({lines} dump(s), {with_txn_core} with core txn counters)");
}
