//! Quick interactive sweep of the durable mix (the full grid lives in
//! `benches/durable_mix.rs`); kept as a binary for fast iteration:
//! `cargo run --release -p hcc-bench --bin mixprobe [reps]`.
//! Reports the best of `reps` runs per cell (default 3) — the
//! container's disk latency drifts, and max-of filters the drift out.
fn main() {
    use hcc_core::runtime::Durability;
    use hcc_workload::durable::{durable_account_mix, DurableMixOptions};
    let reps: usize = std::env::args().nth(1).and_then(|a| a.parse().ok()).unwrap_or(3);
    let tmp = std::env::temp_dir();
    for (d, group, name) in [
        (Durability::Fsync, false, "fsync/classical"),
        (Durability::Fsync, true, "fsync/group"),
        (Durability::Buffered, true, "buffered"),
    ] {
        let mut rates = Vec::new();
        for stripes in [1usize, 4, 8] {
            let mut best = 0f64;
            for r in 0..reps {
                let dir = tmp.join(format!(
                    "probe-{}-{stripes}-{r}-{}",
                    name.replace('/', "-"),
                    std::process::id()
                ));
                let _ = std::fs::remove_dir_all(&dir);
                let per = if group || d == Durability::Buffered { 100 } else { 25 };
                let rep = durable_account_mix(
                    &dir,
                    DurableMixOptions {
                        threads: 8,
                        txns_per_thread: per,
                        durability: d,
                        stripes,
                        group_commit: group,
                        checkpoint_mid_run: false,
                        ..Default::default()
                    },
                );
                best = best.max(rep.commits_per_sec);
                let _ = std::fs::remove_dir_all(&dir);
            }
            println!("{name:16} s={stripes}: {best:8.0} commits/s (best of {reps})");
            rates.push(best);
        }
        println!("{name:16} s8/s1 ratio: {:.2}x", rates[2] / rates[0]);
    }

    // Derivation cost at construction: the bounded invalidated-by search
    // each type pays on *first* construction (cached per type name
    // afterwards), plus the cost of a warm cache hit.
    {
        use hcc_relations::derive::{cached_conflict_atoms, conflict_atoms, DeriveSpec};
        use hcc_relations::tables::AdtConfig;
        println!();
        for (name, cfg) in [
            ("File", AdtConfig::file as fn() -> AdtConfig),
            ("Queue", AdtConfig::queue),
            ("Semiqueue", AdtConfig::semiqueue),
            ("Account", AdtConfig::account),
            ("Counter", AdtConfig::counter),
            ("Set", AdtConfig::set),
            ("Directory", AdtConfig::directory),
        ] {
            let spec: DeriveSpec = cfg().into();
            let t0 = std::time::Instant::now();
            let atoms = conflict_atoms(&spec);
            let cold = t0.elapsed();
            let key = format!("probe-{name}");
            cached_conflict_atoms(&key, &spec);
            let t1 = std::time::Instant::now();
            for _ in 0..1000 {
                cached_conflict_atoms(&key, &spec);
            }
            let warm = t1.elapsed() / 1000;
            println!(
                "derive {name:10} {:9.2} ms cold ({} atoms), {:6} ns per cached lookup",
                cold.as_secs_f64() * 1e3,
                atoms.len(),
                warm.as_nanos()
            );
        }
    }

    // Declarative-surface overhead: the same Counter+Set workload through
    // the hand-written twins vs the generic SpecObject path (derived
    // class-table locks, view materialization by replay).
    {
        use hcc_workload::durable::{defined_adt_mix, MixAdts};
        println!();
        for (d, name, per) in
            [(Durability::Fsync, "fsync/group", 100), (Durability::Buffered, "buffered", 400)]
        {
            for threads in [1usize, 8] {
                let best_for = |flavor: MixAdts| {
                    let mut best = 0f64;
                    for r in 0..reps {
                        let dir = tmp.join(format!(
                            "probe-adt-{}-{threads}-{flavor:?}-{r}-{}",
                            name.replace('/', "-"),
                            std::process::id()
                        ));
                        let _ = std::fs::remove_dir_all(&dir);
                        let rep = defined_adt_mix(
                            &dir,
                            DurableMixOptions {
                                threads,
                                txns_per_thread: per,
                                durability: d,
                                stripes: 1,
                                ..Default::default()
                            },
                            flavor,
                        );
                        best = best.max(rep.commits_per_sec);
                        let _ = std::fs::remove_dir_all(&dir);
                    }
                    best
                };
                let hand = best_for(MixAdts::HandWritten);
                let defined = best_for(MixAdts::Defined);
                println!(
                    "{name:16} {threads}thr adts: hand {hand:8.0}  defined {defined:8.0}  \
                     (defined/hand {:.3}x)",
                    defined / hand
                );
            }
        }
    }

    // Facade overhead: the same workload through raw begin/commit vs
    // `Db::transact` (BENCH.md target: within noise).
    use hcc_workload::durable::MixApi;
    println!();
    for (d, name, per) in
        [(Durability::Fsync, "fsync/group", 100), (Durability::Buffered, "buffered", 400)]
    {
        for threads in [1usize, 8] {
            let best_for = |api: MixApi| {
                let mut best = 0f64;
                for r in 0..reps {
                    let dir = tmp.join(format!(
                        "probe-api-{}-{threads}-{api:?}-{r}-{}",
                        name.replace('/', "-"),
                        std::process::id()
                    ));
                    let _ = std::fs::remove_dir_all(&dir);
                    let rep = durable_account_mix(
                        &dir,
                        DurableMixOptions {
                            threads,
                            txns_per_thread: per,
                            durability: d,
                            stripes: 1,
                            api,
                            ..Default::default()
                        },
                    );
                    best = best.max(rep.commits_per_sec);
                    let _ = std::fs::remove_dir_all(&dir);
                }
                best
            };
            let raw = best_for(MixApi::Raw);
            let facade = best_for(MixApi::Facade);
            println!(
                "{name:16} {threads}thr api: raw {raw:8.0}  db {facade:8.0}  (db/raw {:.3}x)",
                facade / raw
            );
        }
    }

    // Static-checking cost: what `adtcheck` pays per registered type at
    // the CI depth (3) and the quicker smoke depth (2) — the soundness
    // search dominates; deadlock-potential is timed separately. These
    // numbers size the CI job's 60 s budget in BENCH.md.
    {
        use hcc_check::{check_soundness, deadlock_potential, registry, Depth};
        println!();
        let mut total = std::time::Duration::ZERO;
        for reg in registry() {
            let mut cells = Vec::new();
            for depth in [2usize, 3] {
                let t0 = std::time::Instant::now();
                let rep = check_soundness(&reg.input, Depth::new(depth));
                let dt = t0.elapsed();
                assert!(rep.sound(), "{}: bundled table must stay sound", reg.input.name);
                if depth == 3 {
                    total += dt;
                }
                cells.push(format!(
                    "d{depth} {:7} scheds {:7.1} ms",
                    rep.schedules,
                    dt.as_secs_f64() * 1e3
                ));
            }
            let t1 = std::time::Instant::now();
            let cycles = deadlock_potential(&reg.input, 3).len();
            cells.push(format!(
                "waits {:5.1} ms ({cycles} cycles)",
                t1.elapsed().as_secs_f64() * 1e3
            ));
            println!("adtcheck {:11} {}", reg.input.name, cells.join("  "));
        }
        println!("adtcheck total soundness @ depth 3: {:.1} ms", total.as_secs_f64() * 1e3);
    }

    // Observability primitives: the always-on metric hot paths. A grant
    // is one cached `Counter::inc`; a WAL append adds one inc plus (per
    // batch) a `Histogram::observe` — these ns/op numbers bound the
    // instrumentation's share of a commit for BENCH.md's ≤2% budget.
    // The buffered s=8 cell above is the before/after comparison point.
    {
        use hcc_obs::Registry;
        use std::sync::Arc;
        println!();
        let reg = Registry::new();
        let c = reg.counter("probe.counter");
        let h = reg.histogram("probe.hist");
        let n = 4_000_000u64;
        let t0 = std::time::Instant::now();
        for _ in 0..n {
            c.inc();
        }
        let inc_ns = t0.elapsed().as_nanos() as f64 / n as f64;
        let t1 = std::time::Instant::now();
        for i in 0..n {
            h.observe(i);
        }
        let obs_ns = t1.elapsed().as_nanos() as f64 / n as f64;
        // Contended: 8 threads on one shared counter (the sharding's job).
        let t2 = std::time::Instant::now();
        std::thread::scope(|s| {
            for _ in 0..8 {
                let c: Arc<_> = c.clone();
                s.spawn(move || {
                    for _ in 0..n / 8 {
                        c.inc();
                    }
                });
            }
        });
        let contended_ns = t2.elapsed().as_nanos() as f64 / n as f64;
        let snaps = 1_000u32;
        let t3 = std::time::Instant::now();
        for _ in 0..snaps {
            std::hint::black_box(reg.snapshot());
        }
        let snap_us = t3.elapsed().as_micros() as f64 / f64::from(snaps);
        println!(
            "obs: counter.inc {inc_ns:.1} ns, histogram.observe {obs_ns:.1} ns, \
             counter.inc@8thr {contended_ns:.1} ns/op, snapshot {snap_us:.1} us"
        );
    }
}
