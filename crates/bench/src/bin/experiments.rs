//! Run the claim experiments E7–E13 and print result tables (the source of
//! the numbers recorded in `EXPERIMENTS.md`).
//!
//! ```text
//! cargo run -p hcc-bench --release --bin experiments
//! ```

use hcc_workload::bank::{account_mix, transfers, Mix};
use hcc_workload::compaction::account_stream;
use hcc_workload::queue::{enqueue_only, producer_consumer, semiqueue_producer_consumer};
use hcc_workload::register::register_workload;
use hcc_workload::{Metrics, Scheme};

fn section(title: &str) {
    println!("\n=== {title} ===");
    println!("{}", Metrics::header());
}

fn main() {
    let quick = std::env::args().any(|a| a == "--quick");
    let scale = if quick { 1 } else { 4 };

    section("E7: concurrent enqueues on one FIFO queue (threads sweep)");
    for threads in [1, 2, 4, 8] {
        for scheme in Scheme::ALL {
            let m = enqueue_only(scheme, threads, 100 * scale, 8);
            println!("{}", m.row());
        }
    }

    section("E8: account operation mix (overdraft-rate sweep)");
    for od in [0, 10, 50] {
        for scheme in Scheme::ALL {
            let m = account_mix(scheme, 4, 100 * scale, 4, Mix::with_overdraft(od));
            let mut m = m;
            m.scenario = format!("account-od{od}");
            println!("{}", m.row());
        }
    }

    section("E9: register blind-write workload (write-ratio sweep)");
    for wr in [100, 50] {
        for scheme in Scheme::ALL {
            let m = register_workload(scheme, 4, 200 * scale, wr);
            println!("{}", m.row());
        }
    }

    section("E10: producer/consumer — FIFO queue vs Semiqueue (hybrid)");
    for consumers in [1, 2, 4] {
        let mut m = producer_consumer(Scheme::Hybrid, 2, consumers, 50 * scale);
        m.scenario = format!("queue-pc-c{consumers}");
        println!("{}", m.row());
        let mut m = semiqueue_producer_consumer(Scheme::Hybrid, 2, consumers, 50 * scale);
        m.scenario = format!("semiq-pc-c{consumers}");
        println!("{}", m.row());
    }

    println!("\n=== E11: Section-6 compaction (retained committed intents) ===");
    let r = account_stream(200 * scale);
    println!(
        "quiescent stream: peak retained = {} (state stays O(1) as the horizon advances)",
        r.max_retained_quiescent
    );
    println!(
        "with an old active transaction pinning the horizon: peak retained = {}",
        r.max_retained_pinned
    );
    println!("after the pinning transaction commits: retained = {}", r.samples.last().unwrap().1);

    section("E13: multi-account transfers (deadlock detection, money conservation)");
    for scheme in Scheme::ALL {
        let r = transfers(scheme, 8, 4, 50 * scale);
        println!("{}", r.metrics.row());
        println!(
            "    money conserved: {} (expected {}), deadlock victims: {}",
            r.total_balance, r.expected_balance, r.deadlock_victims
        );
        assert_eq!(r.total_balance, r.expected_balance, "conservation violated!");
    }

    println!("\n(E12 — the Theorem 11/16/17 checks — runs in the test suite: `cargo test`)");
}
