//! # hcc-bench — the benchmark harness
//!
//! Regenerates every artifact of the paper's presentation and quantifies
//! each concurrency claim (see `EXPERIMENTS.md` at the workspace root for
//! the per-experiment index):
//!
//! * `cargo run -p hcc-bench --bin paper_tables` — derives and prints
//!   Tables I–VI from the serial specifications, including the enumeration
//!   of the queue's two minimal dependency relations.
//! * `cargo run -p hcc-bench --release --bin experiments` — runs the
//!   throughput/conflict experiments E7–E13 and prints result tables.
//! * `cargo bench` — Criterion benches: one per paper table (derivation
//!   cost) and one per claim experiment (throughput under each scheme).

use hcc_relations::tables::{self, AdtConfig, RelationTable};

/// Derive all six paper tables, in order.
pub fn derive_all_tables() -> Vec<RelationTable> {
    vec![
        AdtConfig::file().derive_invalidated_by("Table I: Minimal Dependency Relation for File"),
        AdtConfig::queue()
            .derive_invalidated_by("Table II: First Minimal Dependency Relation for Queue"),
        derive_table_iii(),
        AdtConfig::semiqueue()
            .derive_invalidated_by("Table IV: Minimal Dependency Relation for Semiqueue"),
        AdtConfig::account()
            .derive_invalidated_by("Table V: Minimal Dependency Relation for Account"),
        AdtConfig::account()
            .derive_failure_to_commute("Table VI: \"Failure to Commute\" Relation for Account"),
    ]
}

/// Table III is found by enumerating the queue's minimal dependency
/// relations and selecting the one that is not the invalidated-by relation.
pub fn derive_table_iii() -> RelationTable {
    let cfg = AdtConfig::queue();
    let minimal = hcc_relations::minimal::minimal_dependency_relations(
        cfg.adt.as_ref(),
        &cfg.alphabet,
        &cfg.classify,
        cfg.bounds,
    );
    let table_ii = tables::paper_table_ii();
    for atoms in minimal {
        let rel = hcc_relations::minimal::atoms_to_instance_relation(
            &cfg.alphabet,
            &cfg.classify,
            &atoms,
        );
        let t = RelationTable::from_instance_relation(
            "Table III: Second Minimal Dependency Relation for Queue",
            &cfg.alphabet,
            &cfg.classify,
            &cfg.classes,
            &rel,
        );
        if t.cells != table_ii.cells {
            return t;
        }
    }
    panic!("queue's second minimal dependency relation not found");
}

/// The expected (ground-truth) tables, in the same order.
pub fn paper_tables() -> Vec<RelationTable> {
    vec![
        tables::paper_table_i(),
        tables::paper_table_ii(),
        tables::paper_table_iii(),
        tables::paper_table_iv(),
        tables::paper_table_v(),
        tables::paper_table_vi(),
    ]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn every_derived_table_matches_the_paper() {
        for (derived, expected) in derive_all_tables().iter().zip(paper_tables()) {
            assert_eq!(derived.classes, expected.classes, "{}", expected.title);
            assert_eq!(derived.cells, expected.cells, "{}\n{}", expected.title, derived.render());
        }
    }
}
