//! Conflict relations for the formal LOCK machine.
//!
//! The machine only assumes the conflict relation is *symmetric*
//! (Section 5.1); correctness additionally requires it to be a dependency
//! relation (Theorems 11/16/17). The implementations here are values, so
//! the machine can be instantiated with the derived hybrid relation, the
//! failure-to-commute relation, a read/write classification, or a
//! deliberately-wrong relation (for the Theorem-17 counterexample tests).

use hcc_relations::relation::{key_value, pair_cond, Atom, OpClass};
use hcc_spec::Operation;
use std::collections::BTreeSet;
use std::sync::Arc;

/// A symmetric lock-conflict relation over operations.
pub trait ConflictRelation: Send + Sync {
    /// Do operations `a` and `b` conflict (may not be held concurrently by
    /// distinct active transactions)?
    fn conflicts(&self, a: &Operation, b: &Operation) -> bool;

    /// A short scheme name for diagnostics and experiment output.
    fn name(&self) -> &str {
        "conflict"
    }
}

/// A conflict relation given by a closure. The closure must be symmetric;
/// [`FnConflict::new`] enforces symmetry by evaluating both argument
/// orders.
pub struct FnConflict {
    name: &'static str,
    f: ConflictFn,
}

/// The boxed symmetric conflict test wrapped by [`FnConflict`].
type ConflictFn = Box<dyn Fn(&Operation, &Operation) -> bool + Send + Sync>;

impl FnConflict {
    /// Wrap `f`, symmetrizing it (`a` conflicts `b` iff `f(a,b) ∨ f(b,a)`).
    pub fn new(
        name: &'static str,
        f: impl Fn(&Operation, &Operation) -> bool + Send + Sync + 'static,
    ) -> FnConflict {
        FnConflict { name, f: Box::new(f) }
    }
}

impl ConflictRelation for FnConflict {
    fn conflicts(&self, a: &Operation, b: &Operation) -> bool {
        (self.f)(a, b) || (self.f)(b, a)
    }
    fn name(&self) -> &str {
        self.name
    }
}

/// A conflict relation lifted from a *derived* class-level relation: the
/// symmetric closure of a set of [`Atom`]s (class pairs under key
/// conditions), as produced by `hcc-relations`.
///
/// Because atoms speak about operation classes and key (in)equality rather
/// than concrete instances, the lifted relation applies to the full value
/// domain, not just the small domain used during derivation.
pub struct DerivedConflict {
    name: String,
    classify: fn(&Operation) -> OpClass,
    atoms: BTreeSet<Atom>,
}

impl DerivedConflict {
    /// Lift `atoms` (a dependency relation) into a conflict relation via
    /// symmetric closure.
    pub fn new(
        name: impl Into<String>,
        classify: fn(&Operation) -> OpClass,
        atoms: BTreeSet<Atom>,
    ) -> DerivedConflict {
        DerivedConflict { name: name.into(), classify, atoms }
    }

    fn related(&self, q: &Operation, p: &Operation) -> bool {
        let atom = Atom { row: (self.classify)(q), col: (self.classify)(p), cond: pair_cond(q, p) };
        self.atoms.contains(&atom)
    }
}

impl ConflictRelation for DerivedConflict {
    fn conflicts(&self, a: &Operation, b: &Operation) -> bool {
        self.related(a, b) || self.related(b, a)
    }
    fn name(&self) -> &str {
        &self.name
    }
}

/// An untyped strict read/write conflict relation: every operation is
/// classified as a read or a write; writes conflict with everything.
///
/// This is the classical two-phase locking baseline the paper's typed
/// schemes improve upon.
pub struct ReadWriteConflict {
    is_read: fn(&Operation) -> bool,
}

impl ReadWriteConflict {
    /// Classify operations with `is_read`; everything else is a write.
    pub fn new(is_read: fn(&Operation) -> bool) -> ReadWriteConflict {
        ReadWriteConflict { is_read }
    }
}

impl ConflictRelation for ReadWriteConflict {
    fn conflicts(&self, a: &Operation, b: &Operation) -> bool {
        !((self.is_read)(a) && (self.is_read)(b))
    }
    fn name(&self) -> &str {
        "rw-2pl"
    }
}

/// Conflict relation that relates nothing — **not** a dependency relation
/// for any interesting type; used to construct the Theorem-17
/// counterexample.
pub struct NoConflict;

impl ConflictRelation for NoConflict {
    fn conflicts(&self, _: &Operation, _: &Operation) -> bool {
        false
    }
    fn name(&self) -> &str {
        "none"
    }
}

/// Shared handle to a conflict relation.
pub type SharedConflict = Arc<dyn ConflictRelation>;

/// Check symmetry of a conflict relation over a finite alphabet (used by
/// tests; the machine requires symmetry).
pub fn is_symmetric_over(rel: &dyn ConflictRelation, alphabet: &[Operation]) -> bool {
    alphabet.iter().all(|a| alphabet.iter().all(|b| rel.conflicts(a, b) == rel.conflicts(b, a)))
}

/// Helper re-export: the key value used by condition-based atoms.
pub fn op_key(op: &Operation) -> Option<hcc_spec::Value> {
    key_value(op)
}

#[cfg(test)]
mod tests {
    use super::*;
    use hcc_relations::relation::Cond;
    use hcc_spec::specs::QueueSpec;
    use hcc_spec::Value;

    fn enq(v: i64) -> Operation {
        Operation::new(QueueSpec::enq(v), Value::Unit)
    }
    fn deq(v: i64) -> Operation {
        Operation::new(QueueSpec::deq(), v)
    }

    fn classify(op: &Operation) -> OpClass {
        OpClass::new(if op.inv.op == "enq" { "Enq" } else { "Deq" })
    }

    /// The Table-II conflict relation (symmetric closure of the queue's
    /// invalidated-by relation).
    fn table_ii() -> DerivedConflict {
        let atoms: BTreeSet<Atom> = [
            Atom { row: OpClass::new("Deq"), col: OpClass::new("Enq"), cond: Cond::KeyNeq },
            Atom { row: OpClass::new("Deq"), col: OpClass::new("Deq"), cond: Cond::KeyEq },
        ]
        .into();
        DerivedConflict::new("queue-hybrid", classify, atoms)
    }

    #[test]
    fn derived_conflict_is_symmetric_closure() {
        let c = table_ii();
        assert!(c.conflicts(&deq(1), &enq(2)));
        assert!(c.conflicts(&enq(2), &deq(1)), "symmetric closure");
        assert!(c.conflicts(&deq(1), &deq(1)));
        assert!(!c.conflicts(&deq(1), &deq(2)));
        assert!(!c.conflicts(&enq(1), &enq(2)), "concurrent enqueues allowed");
        assert!(!c.conflicts(&deq(1), &enq(1)), "deq of own-valued enq allowed");
    }

    #[test]
    fn derived_conflict_generalizes_beyond_derivation_domain() {
        // Derived over {1, 2}; applies to values 400/700.
        let c = table_ii();
        assert!(c.conflicts(&deq(400), &enq(700)));
        assert!(!c.conflicts(&enq(400), &enq(700)));
    }

    #[test]
    fn fn_conflict_symmetrizes() {
        let c = FnConflict::new("asym", |a, b| a.inv.op == "deq" && b.inv.op == "enq");
        assert!(c.conflicts(&deq(1), &enq(1)));
        assert!(c.conflicts(&enq(1), &deq(1)));
        assert!(!c.conflicts(&enq(1), &enq(1)));
    }

    #[test]
    fn rw_conflict_serializes_writers() {
        let c = ReadWriteConflict::new(|op| op.inv.op == "read");
        assert!(c.conflicts(&enq(1), &enq(2)));
        assert!(!c.conflicts(
            &Operation::new(hcc_spec::Inv::nullary("read"), 1),
            &Operation::new(hcc_spec::Inv::nullary("read"), 2)
        ));
    }

    #[test]
    fn symmetry_checker() {
        let alpha = QueueSpec::alphabet(&[Value::Int(1), Value::Int(2)]);
        assert!(is_symmetric_over(&table_ii(), &alpha));
        assert!(is_symmetric_over(&NoConflict, &alpha));
    }
}
