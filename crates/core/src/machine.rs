//! The LOCK state machine (Section 5.1) with Section-6 compaction.
//!
//! State components follow the paper exactly:
//!
//! * `s.pending` — pending invocation per transaction;
//! * `s.intentions` — each active transaction's intentions list (the locks
//!   are implicit in it);
//! * `s.committed` — commit timestamps; committed intentions are kept in
//!   timestamp order and folded into a compact `base` frontier when the
//!   horizon passes them;
//! * `s.aborted` — aborted transactions;
//! * `s.clock` / `s.bound` — the Section-6 auxiliary components: the latest
//!   observed commit timestamp, and a lower bound on each active
//!   transaction's eventual commit timestamp.
//!
//! A response event can occur only if the operation is legal in the
//! transaction's *view* (committed state + own intentions) and conflicts
//! with no operation of another active transaction; this is the whole
//! algorithm.

use crate::conflict::SharedConflict;
use hcc_spec::adt::SharedAdt;
use hcc_spec::{Event, Frontier, History, Inv, ObjectId, Operation, Timestamp, TxnId, Value};
use std::collections::{BTreeMap, HashMap, HashSet};

/// Outcome of attempting a response event.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum RespondOutcome {
    /// The response event occurred with this value; the operation was
    /// appended to the transaction's intentions list.
    Responded(Value),
    /// Every legal response conflicts with an operation of some other
    /// active transaction; the invocation stays pending and should be
    /// retried after one of them completes.
    Blocked {
        /// Active transactions holding conflicting locks.
        conflicts_with: Vec<TxnId>,
    },
    /// The operation is not (yet) defined in the transaction's view — a
    /// *partial* operation such as `Deq` on an empty queue. The invocation
    /// stays pending.
    Undefined,
}

/// A violated precondition or well-formedness constraint.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum MachineError {
    /// The transaction already has a pending invocation.
    InvocationWhilePending(TxnId),
    /// No invocation is pending for the transaction.
    NoPendingInvocation(TxnId),
    /// The transaction has already committed or aborted.
    TxnCompleted(TxnId),
    /// Commit attempted while an invocation is pending.
    CommitWhilePending(TxnId),
    /// Commit attempted after an abort (or vice versa).
    CommitAbortConflict(TxnId),
    /// A different transaction already committed with this timestamp.
    TimestampReused(Timestamp, TxnId),
    /// The transaction previously committed with a different timestamp.
    TimestampMismatch(TxnId),
    /// The timestamp is not later than the transaction's recorded lower
    /// bound — committing with it would contradict `precedes ⊆ TS`.
    TimestampTooEarly {
        /// Offending transaction.
        txn: TxnId,
        /// Exclusive lower bound on admissible timestamps.
        bound: Timestamp,
    },
}

impl std::fmt::Display for MachineError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            MachineError::InvocationWhilePending(t) => {
                write!(f, "transaction {t:?} already has a pending invocation")
            }
            MachineError::NoPendingInvocation(t) => {
                write!(f, "no invocation is pending for transaction {t:?}")
            }
            MachineError::TxnCompleted(t) => {
                write!(f, "transaction {t:?} has already committed or aborted")
            }
            MachineError::CommitWhilePending(t) => {
                write!(f, "commit of {t:?} attempted while an invocation is pending")
            }
            MachineError::CommitAbortConflict(t) => {
                write!(f, "commit and abort both attempted for transaction {t:?}")
            }
            MachineError::TimestampReused(ts, t) => {
                write!(f, "timestamp {ts:?} was already committed by transaction {t:?}")
            }
            MachineError::TimestampMismatch(t) => {
                write!(f, "transaction {t:?} previously committed with a different timestamp")
            }
            MachineError::TimestampTooEarly { txn, bound } => {
                write!(
                    f,
                    "timestamp for {txn:?} is not above its lower bound {bound:?} \
                     (precedes ⊆ TS would be violated)"
                )
            }
        }
    }
}

impl std::error::Error for MachineError {}

/// The formal LOCK machine for one object.
pub struct LockMachine {
    obj: ObjectId,
    adt: SharedAdt,
    conflict: SharedConflict,
    pending: HashMap<TxnId, Inv>,
    intentions: HashMap<TxnId, Vec<Operation>>,
    committed: HashMap<TxnId, Timestamp>,
    committed_intents: BTreeMap<Timestamp, (TxnId, Vec<Operation>)>,
    aborted: HashSet<TxnId>,
    /// Compacted common prefix, as a specification frontier.
    base: Frontier,
    /// Number of operations folded into `base` (metrics / Theorem 24).
    base_ops: usize,
    clock: Option<Timestamp>,
    bounds: HashMap<TxnId, Timestamp>,
    auto_compact: bool,
    history: History,
}

impl LockMachine {
    /// A machine for object `obj` with serial specification `adt` and the
    /// given symmetric conflict relation.
    pub fn new(obj: ObjectId, adt: SharedAdt, conflict: SharedConflict) -> LockMachine {
        let base = Frontier::initial(adt.as_ref());
        LockMachine {
            obj,
            adt,
            conflict,
            pending: HashMap::new(),
            intentions: HashMap::new(),
            committed: HashMap::new(),
            committed_intents: BTreeMap::new(),
            aborted: HashSet::new(),
            base,
            base_ops: 0,
            clock: None,
            bounds: HashMap::new(),
            auto_compact: false,
            history: History::new(),
        }
    }

    /// Enable/disable automatic compaction after completion events
    /// (the appendix calls `forget()` from `commit` and `abort`).
    pub fn set_auto_compact(&mut self, on: bool) -> &mut Self {
        self.auto_compact = on;
        self
    }

    /// The object this machine implements.
    pub fn object(&self) -> ObjectId {
        self.obj
    }

    /// The recorded event history (for the verifier).
    pub fn history(&self) -> &History {
        &self.history
    }

    fn is_completed(&self, txn: TxnId) -> bool {
        self.committed.contains_key(&txn) || self.aborted.contains(&txn)
    }

    /// `⟨inv, X, Q⟩`: record a pending invocation.
    pub fn invoke(&mut self, txn: TxnId, inv: Inv) -> Result<(), MachineError> {
        if self.pending.contains_key(&txn) {
            return Err(MachineError::InvocationWhilePending(txn));
        }
        if self.is_completed(txn) {
            return Err(MachineError::TxnCompleted(txn));
        }
        self.history.push(Event::Invoke { obj: self.obj, txn, inv: inv.clone() });
        self.pending.insert(txn, inv);
        Ok(())
    }

    /// The transaction's view (Section 5.1): committed intentions in
    /// timestamp order followed by its own intentions list, *after* the
    /// compacted base.
    fn view_frontier(&self, txn: TxnId) -> Frontier {
        let mut f = self.base.clone();
        for (_, ops) in self.committed_intents.values() {
            f = f.advance_seq(self.adt.as_ref(), ops);
        }
        if let Some(own) = self.intentions.get(&txn) {
            f = f.advance_seq(self.adt.as_ref(), own);
        }
        f
    }

    /// The operations of the transaction's view after the compacted base
    /// (diagnostics and tests).
    pub fn view_ops(&self, txn: TxnId) -> Vec<Operation> {
        let mut out = Vec::new();
        for (_, ops) in self.committed_intents.values() {
            out.extend(ops.iter().cloned());
        }
        if let Some(own) = self.intentions.get(&txn) {
            out.extend(own.iter().cloned());
        }
        out
    }

    /// Attempt the response event for `txn`'s pending invocation.
    ///
    /// Candidate responses are drawn from the serial specification applied
    /// to the view; a candidate can be returned only if the resulting
    /// operation conflicts with no operation executed by another active
    /// transaction. On success the pending invocation is consumed; when
    /// blocked or undefined it stays pending (the paper: "the response is
    /// discarded, and the invocation is later retried").
    pub fn try_respond(&mut self, txn: TxnId) -> Result<RespondOutcome, MachineError> {
        let inv = self.pending.get(&txn).cloned().ok_or(MachineError::NoPendingInvocation(txn))?;
        if self.is_completed(txn) {
            return Err(MachineError::TxnCompleted(txn));
        }
        let frontier = self.view_frontier(txn);
        let candidates = frontier.responses(self.adt.as_ref(), &inv);
        if candidates.is_empty() {
            return Ok(RespondOutcome::Undefined);
        }
        let mut blockers: Vec<TxnId> = Vec::new();
        for res in candidates {
            let op = Operation { inv: inv.clone(), res };
            let mut conflicting = self.conflicting_txns(txn, &op);
            if conflicting.is_empty() {
                // Response event occurs.
                let res = op.res.clone();
                self.pending.remove(&txn);
                self.history.push(Event::Respond { obj: self.obj, txn, res: res.clone() });
                self.intentions.entry(txn).or_default().push(op);
                // Section 6: bound(Q) := clock.
                if let Some(c) = self.clock {
                    self.bounds.insert(txn, c);
                }
                return Ok(RespondOutcome::Responded(res));
            }
            blockers.append(&mut conflicting);
        }
        blockers.sort();
        blockers.dedup();
        Ok(RespondOutcome::Blocked { conflicts_with: blockers })
    }

    /// Transactions (other than `txn`, active) holding operations that
    /// conflict with `op`.
    fn conflicting_txns(&self, txn: TxnId, op: &Operation) -> Vec<TxnId> {
        let mut out = Vec::new();
        for (&p, ops) in &self.intentions {
            if p == txn || self.is_completed(p) {
                continue;
            }
            if ops.iter().any(|q| self.conflict.conflicts(q, op)) {
                out.push(p);
            }
        }
        out
    }

    /// Convenience: invoke and retry-respond in one call, for tests and the
    /// oracle driver. Returns the outcome of the single response attempt.
    pub fn execute(&mut self, txn: TxnId, inv: Inv) -> Result<RespondOutcome, MachineError> {
        self.invoke(txn, inv)?;
        self.try_respond(txn)
    }

    /// Drop a pending invocation (a client giving up on a blocked retry).
    /// The recorded invocation event is removed too: a later retry is a
    /// fresh invocation.
    pub fn cancel_pending(&mut self, txn: TxnId) {
        if self.pending.remove(&txn).is_some() {
            self.history.cancel_pending_invocation(txn);
        }
    }

    /// `⟨commit(t), X, Q⟩`.
    pub fn commit(&mut self, txn: TxnId, ts: Timestamp) -> Result<(), MachineError> {
        if self.aborted.contains(&txn) {
            return Err(MachineError::CommitAbortConflict(txn));
        }
        if self.pending.contains_key(&txn) {
            return Err(MachineError::CommitWhilePending(txn));
        }
        if let Some(&prev) = self.committed.get(&txn) {
            if prev != ts {
                return Err(MachineError::TimestampMismatch(txn));
            }
            self.history.push(Event::Commit { obj: self.obj, txn, ts });
            return Ok(()); // repeated commit, same timestamp: allowed
        }
        if let Some(&b) = self.bounds.get(&txn) {
            if ts <= b {
                return Err(MachineError::TimestampTooEarly { txn, bound: b });
            }
        }
        if let Some((other, _)) = self.committed_intents.get(&ts).map(|(t, o)| (*t, o)) {
            if other != txn {
                return Err(MachineError::TimestampReused(ts, other));
            }
        }
        self.history.push(Event::Commit { obj: self.obj, txn, ts });
        let ops = self.intentions.remove(&txn).unwrap_or_default();
        self.committed.insert(txn, ts);
        self.committed_intents.insert(ts, (txn, ops));
        self.clock = Some(self.clock.map_or(ts, |c| c.max(ts)));
        self.bounds.remove(&txn);
        if self.auto_compact {
            self.compact();
        }
        Ok(())
    }

    /// `⟨abort, X, Q⟩`: release locks and discard the intentions list.
    pub fn abort(&mut self, txn: TxnId) -> Result<(), MachineError> {
        if self.committed.contains_key(&txn) {
            return Err(MachineError::CommitAbortConflict(txn));
        }
        self.history.push(Event::Abort { obj: self.obj, txn });
        self.aborted.insert(txn);
        self.pending.remove(&txn);
        self.intentions.remove(&txn);
        self.bounds.remove(&txn);
        if self.auto_compact {
            self.compact();
        }
        Ok(())
    }

    /// The horizon time (Definition 20): a lower bound on the commit
    /// timestamp any active transaction can still choose. `None` encodes
    /// `-∞` (nothing committed).
    pub fn horizon(&self) -> Option<Timestamp> {
        let max_committed = self.committed_intents.keys().next_back().copied()?;
        Some(match self.bounds.values().min() {
            Some(&min_bound) => min_bound.min(max_committed),
            None => max_committed,
        })
    }

    /// Fold committed intentions with timestamps strictly before the
    /// horizon into the compacted base (the appendix's `forget()`).
    ///
    /// Views are unaffected: the folded prefix is a prefix of every view
    /// that will henceforth be assembled (Theorem 24 guarantees the common
    /// prefix only grows).
    pub fn compact(&mut self) {
        let Some(h) = self.horizon() else { return };
        let to_fold: Vec<Timestamp> =
            self.committed_intents.range(..h).map(|(&ts, _)| ts).collect();
        for ts in to_fold {
            let (_, ops) = self.committed_intents.remove(&ts).unwrap();
            self.base = self.base.advance_seq(self.adt.as_ref(), &ops);
            self.base_ops += ops.len();
            debug_assert!(!self.base.is_empty(), "folding committed ops cannot be illegal");
        }
    }

    /// Number of operations folded into the compacted base so far.
    pub fn compacted_ops(&self) -> usize {
        self.base_ops
    }

    /// Number of committed-but-unforgotten transactions (representation
    /// size driver for Section 6 experiments).
    pub fn retained_committed(&self) -> usize {
        self.committed_intents.len()
    }

    /// Number of active (uncommitted, unaborted) transactions with a
    /// non-empty intentions list.
    pub fn active_txns(&self) -> usize {
        self.intentions.keys().filter(|t| !self.is_completed(**t)).count()
    }

    /// The latest observed commit timestamp (`s.clock`), if any.
    pub fn clock(&self) -> Option<Timestamp> {
        self.clock
    }

    /// The recorded lower bound for an active transaction (`s.bound`).
    pub fn bound(&self, txn: TxnId) -> Option<Timestamp> {
        self.bounds.get(&txn).copied()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::conflict::{FnConflict, NoConflict};
    use hcc_spec::specs::QueueSpec;
    use std::sync::Arc;

    fn queue_machine() -> LockMachine {
        // Table II conflicts: deq↔enq of different items, deq↔deq of same.
        let conflict = FnConflict::new("queue-hybrid", |q, p| match (q.inv.op, p.inv.op) {
            ("deq", "enq") => q.res != p.inv.args[0],
            ("deq", "deq") => q.res == p.res,
            _ => false,
        });
        LockMachine::new(ObjectId(0), Arc::new(QueueSpec), Arc::new(conflict))
    }

    fn ts(n: u64) -> Timestamp {
        Timestamp(n)
    }
    fn t(n: u64) -> TxnId {
        TxnId(n)
    }

    #[test]
    fn concurrent_enqueues_are_admitted() {
        // The headline example: P and Q enqueue concurrently even though
        // enqueues do not commute.
        let mut m = queue_machine();
        assert_eq!(
            m.execute(t(1), QueueSpec::enq(1)).unwrap(),
            RespondOutcome::Responded(Value::Unit)
        );
        assert_eq!(
            m.execute(t(2), QueueSpec::enq(2)).unwrap(),
            RespondOutcome::Responded(Value::Unit)
        );
        m.commit(t(2), ts(1)).unwrap();
        m.commit(t(1), ts(2)).unwrap();
        // A reader dequeues in commit-timestamp order: 2 then 1.
        assert_eq!(
            m.execute(t(3), QueueSpec::deq()).unwrap(),
            RespondOutcome::Responded(Value::Int(2))
        );
        assert_eq!(
            m.execute(t(3), QueueSpec::deq()).unwrap(),
            RespondOutcome::Responded(Value::Int(1))
        );
        m.commit(t(3), ts(5)).unwrap();
        m.history().well_formed().unwrap();
    }

    #[test]
    fn deq_blocks_on_concurrent_enqueue_of_other_item() {
        let mut m = queue_machine();
        m.execute(t(1), QueueSpec::enq(7)).unwrap();
        m.commit(t(1), ts(1)).unwrap();
        // P enqueues 9 but has not committed.
        m.execute(t(2), QueueSpec::enq(9)).unwrap();
        // R wants to dequeue; the committed front is 7, and deq→7
        // conflicts with the uncommitted enq(9).
        let out = m.execute(t(3), QueueSpec::deq()).unwrap();
        assert_eq!(out, RespondOutcome::Blocked { conflicts_with: vec![t(2)] });
        // After P commits, the retry succeeds.
        m.commit(t(2), ts(2)).unwrap();
        assert_eq!(m.try_respond(t(3)).unwrap(), RespondOutcome::Responded(Value::Int(7)));
    }

    #[test]
    fn deq_on_empty_queue_is_undefined() {
        let mut m = queue_machine();
        assert_eq!(m.execute(t(1), QueueSpec::deq()).unwrap(), RespondOutcome::Undefined);
        // Invocation stays pending; enq+commit by another txn unblocks it.
        m.execute(t(2), QueueSpec::enq(4)).unwrap();
        m.commit(t(2), ts(1)).unwrap();
        assert_eq!(m.try_respond(t(1)).unwrap(), RespondOutcome::Responded(Value::Int(4)));
    }

    #[test]
    fn transactions_see_their_own_intentions() {
        let mut m = queue_machine();
        m.execute(t(1), QueueSpec::enq(3)).unwrap();
        assert_eq!(
            m.execute(t(1), QueueSpec::deq()).unwrap(),
            RespondOutcome::Responded(Value::Int(3))
        );
    }

    #[test]
    fn aborted_transaction_releases_locks() {
        let mut m = queue_machine();
        m.execute(t(1), QueueSpec::enq(7)).unwrap();
        m.commit(t(1), ts(1)).unwrap();
        m.execute(t(2), QueueSpec::enq(9)).unwrap();
        assert!(matches!(
            m.execute(t(3), QueueSpec::deq()).unwrap(),
            RespondOutcome::Blocked { .. }
        ));
        m.abort(t(2)).unwrap();
        assert_eq!(m.try_respond(t(3)).unwrap(), RespondOutcome::Responded(Value::Int(7)));
        // The aborted enqueue leaves no trace.
        m.commit(t(3), ts(2)).unwrap();
        assert_eq!(m.execute(t(4), QueueSpec::deq()).unwrap(), RespondOutcome::Undefined);
    }

    #[test]
    fn commit_preconditions() {
        let mut m = queue_machine();
        m.invoke(t(1), QueueSpec::enq(1)).unwrap();
        assert_eq!(m.commit(t(1), ts(1)), Err(MachineError::CommitWhilePending(t(1))));
        m.try_respond(t(1)).unwrap();
        // t2 executes before t1 commits, so it has no bound yet.
        m.execute(t(2), QueueSpec::enq(2)).unwrap();
        m.commit(t(1), ts(1)).unwrap();
        // Repeat commit with the same timestamp is fine; different is not.
        m.commit(t(1), ts(1)).unwrap();
        assert_eq!(m.commit(t(1), ts(2)), Err(MachineError::TimestampMismatch(t(1))));
        // Another transaction cannot reuse the timestamp.
        assert_eq!(m.commit(t(2), ts(1)), Err(MachineError::TimestampReused(ts(1), t(1))));
        // Abort after commit is rejected.
        assert_eq!(m.abort(t(1)), Err(MachineError::CommitAbortConflict(t(1))));
    }

    #[test]
    fn timestamp_must_exceed_bound() {
        let mut m = queue_machine();
        m.execute(t(1), QueueSpec::enq(1)).unwrap();
        m.commit(t(1), ts(10)).unwrap();
        // t2 executes after t1 committed: bound(t2) = 10.
        m.execute(t(2), QueueSpec::enq(2)).unwrap();
        assert_eq!(m.bound(t(2)), Some(ts(10)));
        assert_eq!(
            m.commit(t(2), ts(10)),
            Err(MachineError::TimestampTooEarly { txn: t(2), bound: ts(10) })
        );
        m.commit(t(2), ts(11)).unwrap();
    }

    #[test]
    fn double_invocation_rejected() {
        let mut m = queue_machine();
        m.invoke(t(1), QueueSpec::enq(1)).unwrap();
        assert_eq!(
            m.invoke(t(1), QueueSpec::enq(2)),
            Err(MachineError::InvocationWhilePending(t(1)))
        );
        assert_eq!(m.try_respond(t(2)), Err(MachineError::NoPendingInvocation(t(2))));
    }

    #[test]
    fn completed_transactions_cannot_operate() {
        let mut m = queue_machine();
        m.execute(t(1), QueueSpec::enq(1)).unwrap();
        m.commit(t(1), ts(1)).unwrap();
        assert_eq!(m.invoke(t(1), QueueSpec::enq(2)), Err(MachineError::TxnCompleted(t(1))));
        m.abort(t(2)).unwrap();
        assert_eq!(m.invoke(t(2), QueueSpec::enq(2)), Err(MachineError::TxnCompleted(t(2))));
    }

    #[test]
    fn horizon_and_compaction() {
        let mut m = queue_machine();
        assert_eq!(m.horizon(), None);
        m.execute(t(1), QueueSpec::enq(1)).unwrap();
        m.commit(t(1), ts(5)).unwrap();
        // No active transactions: horizon = max committed = 5; ts 5 itself
        // is retained (strictly-before fold).
        assert_eq!(m.horizon(), Some(ts(5)));
        m.compact();
        assert_eq!(m.retained_committed(), 1);
        m.execute(t(2), QueueSpec::enq(2)).unwrap();
        m.commit(t(2), ts(6)).unwrap();
        m.compact();
        // ts 5 < horizon 6: folded.
        assert_eq!(m.retained_committed(), 1);
        assert_eq!(m.compacted_ops(), 1);
        // An active transaction with bound 6 pins the horizon at 6.
        m.execute(t(3), QueueSpec::enq(3)).unwrap();
        assert_eq!(m.bound(t(3)), Some(ts(6)));
        m.execute(t(4), QueueSpec::enq(4)).unwrap();
        m.commit(t(4), ts(9)).unwrap();
        assert_eq!(m.horizon(), Some(ts(6)));
        m.compact();
        assert_eq!(m.retained_committed(), 2, "ts 6 and 9 retained while t3 is active");
    }

    #[test]
    fn compaction_preserves_views() {
        let mut with = queue_machine();
        with.set_auto_compact(true);
        let mut without = queue_machine();
        for i in 1..=6u64 {
            for m in [&mut with, &mut without] {
                m.execute(t(i), QueueSpec::enq(i as i64)).unwrap();
                m.commit(t(i), ts(i)).unwrap();
            }
        }
        assert!(with.retained_committed() < without.retained_committed());
        // Both machines answer a fresh reader identically.
        for m in [&mut with, &mut without] {
            assert_eq!(
                m.execute(t(100), QueueSpec::deq()).unwrap(),
                RespondOutcome::Responded(Value::Int(1))
            );
        }
    }

    #[test]
    fn histories_are_well_formed_and_ts_serializable() {
        let mut m = queue_machine();
        m.execute(t(1), QueueSpec::enq(1)).unwrap();
        m.execute(t(2), QueueSpec::enq(2)).unwrap();
        m.commit(t(2), ts(1)).unwrap();
        m.commit(t(1), ts(2)).unwrap();
        m.execute(t(3), QueueSpec::deq()).unwrap();
        m.commit(t(3), ts(3)).unwrap();
        let h = m.history();
        h.well_formed().unwrap();
        // Hybrid atomicity: committed transactions serializable in ts order.
        let order = h.permanent().ts_order();
        let ops = h.permanent().serial_ops_at(&order, ObjectId(0));
        assert!(hcc_spec::legal(&QueueSpec, &ops));
    }

    /// Theorem 17 in miniature: with a conflict relation that is *not* a
    /// dependency relation, LOCK accepts a history that is not
    /// serializable in timestamp order.
    #[test]
    fn non_dependency_conflict_breaks_hybrid_atomicity() {
        let mut m = LockMachine::new(ObjectId(0), Arc::new(QueueSpec), Arc::new(NoConflict));
        // P enqueues 1 and commits.
        m.execute(t(1), QueueSpec::enq(1)).unwrap();
        m.commit(t(1), ts(1)).unwrap();
        // Q enqueues 2; R dequeues 1 concurrently (no conflicts!).
        m.execute(t(2), QueueSpec::enq(2)).unwrap();
        m.execute(t(3), QueueSpec::deq()).unwrap();
        // Q commits *before* R in timestamp order.
        m.commit(t(2), ts(2)).unwrap();
        m.commit(t(3), ts(3)).unwrap();
        let h = m.history();
        h.well_formed().unwrap();
        let order = h.permanent().ts_order();
        let ops = h.permanent().serial_ops_at(&order, ObjectId(0));
        // enq(1); enq(2); deq→1 ... wait: serialized as P, Q, R gives
        // enq(1), enq(2), deq→1 which IS legal. The broken interleaving is
        // R dequeuing 1 while Q's enq(2) commits first with a smaller
        // timestamp — i.e. Q at ts 2, R read state without Q's item yet R
        // serialized after Q. deq must then return... still 1. So instead:
        // the classic failure needs R to deq twice or P/Q to race. Check
        // the stronger property directly: this history IS ts-serializable,
        // so build the real counterexample below.
        assert!(hcc_spec::legal(&QueueSpec, &ops));

        // Real counterexample (the Theorem-17 proof scenario with h = Λ,
        // p = Q's enq(2), k = R's enq(1)·deq→1): R dequeues its own
        // enqueued item while Q's enqueue runs concurrently without
        // conflicting; Q then commits with the smaller timestamp, so the
        // timestamp serialization enq(2)·enq(1)·deq→1 is illegal.
        let mut m = LockMachine::new(ObjectId(0), Arc::new(QueueSpec), Arc::new(NoConflict));
        m.execute(t(2), QueueSpec::enq(2)).unwrap(); // Q: p
        m.execute(t(3), QueueSpec::enq(1)).unwrap(); // R: k begins
        m.execute(t(3), QueueSpec::deq()).unwrap(); // R: deq → its own 1
        m.commit(t(2), ts(1)).unwrap(); // Q commits first
        m.commit(t(3), ts(2)).unwrap();
        let h = m.history();
        h.well_formed().unwrap();
        let order = h.permanent().ts_order();
        assert_eq!(order, vec![t(2), t(3)]);
        let ops = h.permanent().serial_ops_at(&order, ObjectId(0));
        assert!(
            !hcc_spec::legal(&QueueSpec, &ops),
            "LOCK with a non-dependency conflict relation accepted a non-hybrid-atomic history"
        );
    }

    #[test]
    fn cancel_pending_discards_invocation() {
        let mut m = queue_machine();
        assert_eq!(m.execute(t(1), QueueSpec::deq()).unwrap(), RespondOutcome::Undefined);
        m.cancel_pending(t(1));
        assert_eq!(m.try_respond(t(1)), Err(MachineError::NoPendingInvocation(t(1))));
        // With no pending invocation the transaction may commit.
        m.commit(t(1), ts(1)).unwrap();
    }

    #[test]
    fn clock_tracks_max_commit_timestamp() {
        let mut m = queue_machine();
        assert_eq!(m.clock(), None);
        m.execute(t(1), QueueSpec::enq(1)).unwrap();
        m.commit(t(1), ts(7)).unwrap();
        assert_eq!(m.clock(), Some(ts(7)));
        m.execute(t(2), QueueSpec::enq(2)).unwrap();
        m.commit(t(2), ts(9)).unwrap();
        assert_eq!(m.clock(), Some(ts(9)));
    }
}
