//! # hcc-core — the LOCK algorithm and the hybrid-atomic object runtime
//!
//! Two implementations of the paper's algorithm with one semantics:
//!
//! * [`machine::LockMachine`] is the literal Section-5.1 state machine:
//!   per-transaction intentions lists, views assembled by concatenating
//!   committed intentions in timestamp order, response events gated on
//!   view-legality and conflict-freedom, plus the Section-6 bookkeeping
//!   (`clock`, `bound`, `horizon`) and common-prefix compaction. It is the
//!   *oracle*: slow, obviously-correct, fully instrumented (it records its
//!   own history for the `hcc-verify` checkers).
//!
//! * [`runtime::TxObject`] is the appendix-style production object: a
//!   compact version, per-transaction intent summaries, a lock table keyed
//!   by executed operations, `when`-style blocking on conflicts, and
//!   horizon-based forgetting of committed transactions. Typed data types
//!   plug in through [`runtime::RuntimeAdt`]; concurrency-control schemes
//!   (hybrid, commutativity, read/write) plug in through
//!   [`runtime::LockSpec`].
//!
//! Conflict relations for the formal machine are values implementing
//! [`conflict::ConflictRelation`]; [`conflict::DerivedConflict`] lifts a
//! relation derived by `hcc-relations` (a set of class-level atoms) into a
//! conflict test that generalizes beyond the derivation domain.

pub mod conflict;
pub mod machine;
pub mod runtime;

pub use conflict::{ConflictRelation, DerivedConflict, FnConflict};
pub use machine::{LockMachine, MachineError, RespondOutcome};
pub use runtime::{
    AdtDef, BlockPolicy, ConflictSpec, ExecError, LockSpec, RuntimeAdt, RuntimeOptions, SpecAdt,
    SpecLock, TxObject, TxParticipant, TxnHandle, TxnPhase, WaitObserver,
};
