//! The multi-object horizon-pin registry behind wait-free snapshot
//! reads.
//!
//! PR 3's fuzzy checkpoints pin compaction *per object*
//! ([`super::TxObject::pin_horizon`]): one slot, one watermark, released
//! by an explicit `unpin_horizon`. Read-only transactions need the same
//! guarantee — no commit at or below my watermark may be folded into a
//! base version while I am reading — but across **every** object the
//! read might touch, with a lifetime tied to the reader rather than to a
//! checkpoint protocol. [`HorizonPins`] generalizes the slot into a
//! registry: any number of concurrent pins, each an RAII [`PinGuard`]
//! that unpins on drop (including panic unwind, so a crashed reader can
//! never wedge compaction), and a single cached *floor* — the minimum
//! pinned watermark — that [`super::TxObject::forget`] consults before
//! folding committed intents.
//!
//! The registry is deliberately cheap on the read side: taking a pin is
//! one short mutex acquisition (the pin table), and the hot query
//! (`floor()`, asked by every fold) is a single relaxed atomic load of
//! the cached minimum. Neither path touches any transactional lock.

use hcc_obs::Gauge;
use std::collections::BTreeMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};

/// No pin active: folds are bounded only by per-object state.
const NO_FLOOR: u64 = u64::MAX;

#[derive(Default)]
struct PinTable {
    /// Next pin id; ids are never reused within a registry's lifetime.
    next_id: u64,
    /// Active pins: id → pinned watermark.
    pins: BTreeMap<u64, u64>,
}

impl PinTable {
    fn min_watermark(&self) -> u64 {
        self.pins.values().min().copied().unwrap_or(NO_FLOOR)
    }
}

/// A registry of active snapshot-read pins shared by every object of one
/// runtime (wired through `RuntimeOptions::horizon`).
///
/// Invariant: while a pin at watermark `w` is alive, no object whose
/// options carry this registry folds a committed intent with timestamp
/// `> w` into its base version — so `committed_snapshot_at(w)` stays
/// exact for the pin's whole lifetime.
#[derive(Default)]
pub struct HorizonPins {
    inner: Mutex<PinTable>,
    /// Cached `min` over active pin watermarks; [`NO_FLOOR`] when no pin
    /// is active. Recomputed under the mutex on every pin/unpin, read
    /// lock-free by every fold.
    floor: AtomicU64,
    /// Live-pin gauge (`horizon.pins`), when the registry is observed.
    gauge: Option<Arc<Gauge>>,
}

impl HorizonPins {
    /// A fresh, unobserved registry (the default for standalone objects).
    pub fn new() -> HorizonPins {
        HorizonPins { floor: AtomicU64::new(NO_FLOOR), ..HorizonPins::default() }
    }

    /// A registry reporting its live pin count through `gauge`.
    pub fn observed(gauge: Arc<Gauge>) -> HorizonPins {
        HorizonPins {
            inner: Mutex::new(PinTable::default()),
            floor: AtomicU64::new(NO_FLOOR),
            gauge: Some(gauge),
        }
    }

    /// Pin the horizon at `watermark`. Until the returned guard drops,
    /// every object sharing this registry keeps commits with timestamps
    /// `> watermark` un-folded, so snapshots at `watermark` stay exact.
    pub fn pin(self: &Arc<Self>, watermark: u64) -> PinGuard {
        let id = {
            let mut t = self.inner.lock().unwrap();
            let id = t.next_id;
            t.next_id += 1;
            t.pins.insert(id, watermark);
            self.floor.store(t.min_watermark(), Ordering::Release);
            id
        };
        if let Some(g) = &self.gauge {
            g.adjust(1);
        }
        PinGuard { pins: self.clone(), id, watermark }
    }

    /// The minimum active pin watermark, or `u64::MAX` when nothing is
    /// pinned. Folds must not remove commits with timestamps strictly
    /// above this. Lock-free.
    pub fn floor(&self) -> u64 {
        self.floor.load(Ordering::Acquire)
    }

    /// Number of live pins (test/diagnostic visibility).
    pub fn active(&self) -> usize {
        self.inner.lock().unwrap().pins.len()
    }

    fn unpin(&self, id: u64) {
        let removed = {
            let mut t = self.inner.lock().unwrap();
            let removed = t.pins.remove(&id).is_some();
            self.floor.store(t.min_watermark(), Ordering::Release);
            removed
        };
        if removed {
            if let Some(g) = &self.gauge {
                g.adjust(-1);
            }
        }
    }
}

/// RAII handle for one horizon pin: dropping it (normally or during a
/// panic unwind) releases the pin, so a leaked pin that blocks compaction
/// forever is unrepresentable. Folding catches up lazily — the next
/// commit/abort at each object re-runs `forget` under the raised floor.
pub struct PinGuard {
    pins: Arc<HorizonPins>,
    id: u64,
    watermark: u64,
}

impl PinGuard {
    /// The watermark this guard holds pinned.
    pub fn watermark(&self) -> u64 {
        self.watermark
    }
}

impl Drop for PinGuard {
    fn drop(&mut self) {
        self.pins.unpin(self.id);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn floor_is_min_of_active_pins_and_clears_on_drop() {
        let pins = Arc::new(HorizonPins::new());
        assert_eq!(pins.floor(), u64::MAX);
        let a = pins.pin(10);
        let b = pins.pin(7);
        let c = pins.pin(12);
        assert_eq!(pins.floor(), 7);
        assert_eq!(pins.active(), 3);
        drop(b);
        assert_eq!(pins.floor(), 10);
        drop(a);
        assert_eq!(pins.floor(), 12);
        assert_eq!(c.watermark(), 12);
        drop(c);
        assert_eq!(pins.floor(), u64::MAX);
        assert_eq!(pins.active(), 0);
    }

    #[test]
    fn panic_unwind_releases_the_pin() {
        let pins = Arc::new(HorizonPins::new());
        let p2 = pins.clone();
        let r = std::panic::catch_unwind(move || {
            let _guard = p2.pin(5);
            panic!("reader died mid-snapshot");
        });
        assert!(r.is_err());
        assert_eq!(pins.floor(), u64::MAX, "unwind dropped the guard");
        assert_eq!(pins.active(), 0);
    }

    #[test]
    fn gauge_tracks_live_pins() {
        let gauge = Arc::new(Gauge::new());
        let pins = Arc::new(HorizonPins::observed(gauge.clone()));
        let a = pins.pin(1);
        let b = pins.pin(2);
        assert_eq!(gauge.get(), 2);
        drop(a);
        assert_eq!(gauge.get(), 1);
        drop(b);
        assert_eq!(gauge.get(), 0);
    }
}
