//! The generic hybrid-atomic object: versions, intents, implicit locks,
//! `when`-style blocking, and horizon-based forgetting.

use super::adt::{ClassifiedOp, LockSpec, RedoDecodeError, RuntimeAdt};
use super::handle::{TxnHandle, TxnPhase};
use super::options::RuntimeOptions;
use hcc_obs::Counter;
use hcc_spec::TxnId;
use parking_lot::{Condvar, Mutex, RwLock};
use std::collections::{BTreeMap, HashMap};
use std::mem::{discriminant, Discriminant};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Instant;

/// The reserved transaction id [`TxObject::pin_horizon`] parks its bound
/// under. Real transaction ids are allocated from 1 upward and the
/// snapshot bootstrap id is `u64::MAX - 1`; this cannot collide with
/// either.
const HORIZON_PIN: TxnId = TxnId(u64::MAX - 2);

/// Why a blocking execution gave up.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum ExecError {
    /// The transaction was selected as a deadlock victim; the caller must
    /// abort it.
    Doomed,
    /// The block policy's timeout elapsed.
    Timeout,
    /// The transaction is not active (already committed or aborted).
    NotActive,
}

impl std::fmt::Display for ExecError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ExecError::Doomed => {
                write!(f, "execution refused: transaction was doomed as a deadlock victim")
            }
            ExecError::Timeout => {
                write!(f, "execution refused: lock-wait timeout elapsed while blocked")
            }
            ExecError::NotActive => {
                write!(
                    f,
                    "execution refused: transaction is not active (already committed or aborted)"
                )
            }
        }
    }
}

impl std::error::Error for ExecError {}

/// Why replaying a logged operation onto an object failed. Any of these
/// during recovery means the log and the object disagree — corruption or a
/// replay-order bug — and recovery must stop rather than guess.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum ReplayError {
    /// The redo payload could not be decoded.
    Decode(RedoDecodeError),
    /// The replayed execution was refused (conflict/timeout against replay
    /// state — should be impossible in a quiesced recovery).
    Exec(ExecError),
    /// The operation executed, but no candidate reproduced the logged
    /// response.
    Diverged {
        /// The logged response (debug form).
        expected: String,
    },
}

impl std::fmt::Display for ReplayError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ReplayError::Decode(e) => write!(f, "replay: {e}"),
            ReplayError::Exec(e) => write!(f, "replay execution refused: {e}"),
            ReplayError::Diverged { expected } => {
                write!(f, "replay diverged: no candidate reproduced logged response {expected}")
            }
        }
    }
}

impl std::error::Error for ReplayError {}

/// Refusal from [`TxObject::install_version`]: the object is not fresh
/// — it already holds committed history or active transactions.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct NotFresh;

impl std::fmt::Display for NotFresh {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "cannot install a recovered version: the object already has history")
    }
}

impl std::error::Error for NotFresh {}

/// Refusal from [`TxObject::snapshot_read`]: a commit with timestamp
/// above the requested watermark has already been folded into the
/// compacted version, so the watermark image can no longer be
/// reconstructed here. Readers that pinned the horizon *before* picking
/// their watermark only hit this in the benign race where a fold
/// completed between watermark selection and the pin landing — the read
/// layer treats it as transient and retries at a fresh watermark.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct SnapshotStale {
    /// The highest commit timestamp folded into the base version.
    pub folded: u64,
    /// The watermark the reader asked for.
    pub watermark: u64,
}

impl std::fmt::Display for SnapshotStale {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "snapshot at timestamp {} is stale: commits up to {} are already \
             compacted into the base version",
            self.watermark, self.folded
        )
    }
}

impl std::error::Error for SnapshotStale {}

/// Outcome of a single non-blocking execution attempt.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum TryExecOutcome<R> {
    /// Lock granted; operation executed with this response.
    Executed(R),
    /// Refused: conflicting operations held by these active transactions.
    Conflict(Vec<TxnId>),
    /// The operation is not defined in the current view (partial op).
    Undefined,
}

/// Commit/abort interface used by the transaction manager for fan-out; a
/// type-erased view of [`TxObject`].
pub trait TxParticipant: Send + Sync {
    /// The object's name.
    fn object_name(&self) -> &str;
    /// Phase-1 vote: can this transaction still commit here?
    fn prepare(&self, txn: &TxnHandle) -> bool;
    /// Phase 2: the transaction committed with timestamp `ts`.
    fn commit_at(&self, txn: TxnId, ts: u64);
    /// The transaction aborted; discard its intent and release its locks.
    fn abort_txn(&self, txn: TxnId);
}

/// Aggregate contention statistics for one object.
#[derive(Clone, Copy, Debug, Default)]
pub struct ObjectStats {
    /// Operations executed (locks granted).
    pub executed: u64,
    /// Lock requests refused at least once.
    pub conflicts: u64,
    /// Total condvar waits.
    pub waits: u64,
    /// Committed transactions folded into the version by `forget()`.
    pub forgotten: u64,
}

/// One executed operation held by an active transaction, with the lock
/// scheme's memoized classification (when the scheme classifies through
/// a spec mapping — see [`LockSpec::prepare`]). Computing the token once
/// at execution time keeps `spec_op` + class lookup off the conflict-test
/// hot path, where it used to run per held op per candidate per attempt.
struct ExecOp<A: RuntimeAdt> {
    op: (A::Inv, A::Res),
    token: Option<ClassifiedOp>,
}

struct TxnRec<A: RuntimeAdt> {
    intent: A::Intent,
    ops: Vec<ExecOp<A>>,
}

impl<A: RuntimeAdt> Default for TxnRec<A> {
    fn default() -> Self {
        TxnRec { intent: A::Intent::default(), ops: Vec::new() }
    }
}

struct ObjState<A: RuntimeAdt> {
    /// Compacted committed state (`s.version` / the appendix's `bal`).
    version: A::Version,
    /// Committed but unforgotten transactions, in timestamp order (the
    /// appendix's `committed` id-heap plus `intentions`).
    committed: BTreeMap<u64, TxnRec<A>>,
    /// Active transactions' intents and executed operations (the intent
    /// table; the lock table is implicit in `ops`).
    active: HashMap<TxnId, TxnRec<A>>,
    /// Latest observed commit timestamp (0 = none; real timestamps are
    /// positive).
    clock: u64,
    /// Lower bounds for active transactions (the bound table).
    bounds: HashMap<TxnId, u64>,
    /// Highest commit timestamp ever folded into `version` (0 = none):
    /// the compaction watermark below which per-timestamp images are
    /// gone. [`TxObject::snapshot_read`] refuses watermarks below this
    /// instead of serving the folded state as if it were the older image.
    folded: u64,
}

/// A thread-safe transactional object running one data type under one
/// concurrency-control scheme.
pub struct TxObject<A: RuntimeAdt> {
    name: String,
    adt: A,
    locks: Arc<dyn LockSpec<A>>,
    opts: RuntimeOptions,
    inner: Mutex<ObjState<A>>,
    cv: Condvar,
    executed: AtomicU64,
    conflicts: AtomicU64,
    waits: AtomicU64,
    forgotten: AtomicU64,
    /// Pre-resolved grant counters by executed-operation variant, so the
    /// hot grant path is a map read instead of a per-op label allocation.
    /// Types whose conflict class depends on a payload *value* (not just
    /// the variant) label all of a variant's grants under the first-seen
    /// class; refusal/wait counters (cold path) always label exactly.
    grant_cache: RwLock<HashMap<OpVariant<A>, Arc<Counter>>>,
}

/// An executed operation's variant pair — the grant-counter cache key.
type OpVariant<A> = (Discriminant<<A as RuntimeAdt>::Inv>, Discriminant<<A as RuntimeAdt>::Res>);

/// The `(requested, held)` executed-operation pair behind a refusal.
type ConflictPair<A> = (
    (<A as RuntimeAdt>::Inv, <A as RuntimeAdt>::Res),
    (<A as RuntimeAdt>::Inv, <A as RuntimeAdt>::Res),
);

impl<A: RuntimeAdt> TxObject<A> {
    /// Create an object with the given data type, lock scheme and options.
    pub fn new(
        name: impl Into<String>,
        adt: A,
        locks: Arc<dyn LockSpec<A>>,
        opts: RuntimeOptions,
    ) -> Arc<TxObject<A>> {
        let version = adt.initial();
        Arc::new(TxObject {
            name: name.into(),
            adt,
            locks,
            opts,
            inner: Mutex::new(ObjState {
                version,
                committed: BTreeMap::new(),
                active: HashMap::new(),
                clock: 0,
                bounds: HashMap::new(),
                folded: 0,
            }),
            cv: Condvar::new(),
            executed: AtomicU64::new(0),
            conflicts: AtomicU64::new(0),
            waits: AtomicU64::new(0),
            forgotten: AtomicU64::new(0),
            grant_cache: RwLock::new(HashMap::new()),
        })
    }

    /// The object's name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// The data type this object runs.
    pub fn adt(&self) -> &A {
        &self.adt
    }

    /// The lock scheme's name (for experiment output).
    pub fn scheme(&self) -> &'static str {
        self.locks.name()
    }

    /// One non-blocking execution attempt (the body of the appendix's
    /// `when` condition plus its critical section).
    pub fn try_execute(
        self: &Arc<Self>,
        txn: &Arc<TxnHandle>,
        inv: &A::Inv,
    ) -> Result<TryExecOutcome<A::Res>, ExecError> {
        self.try_execute_inner(txn, inv, &mut None)
    }

    /// [`TxObject::try_execute`] plus a wait-counter hint: on a refusal,
    /// `wait_hint` is filled with the pair-keyed wait counter so the
    /// blocking loop in [`TxObject::execute`] can count each wait slice
    /// without re-deriving the conflict-class labels.
    fn try_execute_inner(
        self: &Arc<Self>,
        txn: &Arc<TxnHandle>,
        inv: &A::Inv,
        wait_hint: &mut Option<Arc<Counter>>,
    ) -> Result<TryExecOutcome<A::Res>, ExecError> {
        if txn.is_doomed() {
            return Err(ExecError::Doomed);
        }
        if txn.phase() != TxnPhase::Active {
            return Err(ExecError::NotActive);
        }
        let mut conflict_ops = None;
        let mut st = self.inner.lock();
        let outcome = self.attempt(&mut st, txn.id(), inv, &mut conflict_ops);
        if let TryExecOutcome::Executed(res) = &outcome {
            let clock = st.clock;
            st.bounds.insert(txn.id(), clock);
            txn.observe_clock(clock);
            // Self-logging, two-phase: serializing the redo payload is an
            // intrinsic effect of executing, not a caller obligation. The
            // order slot (ticket) is *reserved* while the object lock is
            // still held — so the ticket order of this object's ops can
            // never diverge from their execution order, and recovery
            // replays in ticket order — but the append itself is
            // *published* after the lock drops, so a log stripe's
            // rotation fsync can no longer stall every transaction
            // queued on a hot object. Replay handles re-install history
            // that is already durable, so they skip the sink entirely.
            let mut pending = None;
            if !txn.is_replay() {
                if let Some(sink) = &self.opts.redo {
                    if let Some(bytes) = self.adt.redo(inv, res) {
                        pending = Some((sink.reserve(txn.id(), &self.name), bytes));
                    }
                }
            }
            drop(st);
            if let Some((ticket, bytes)) = pending {
                let sink = self.opts.redo.as_ref().expect("reserved from this sink");
                sink.publish(ticket, txn.id(), &self.name, &bytes);
            }
            txn.register(self.clone() as Arc<dyn TxParticipant>);
            self.executed.fetch_add(1, Ordering::Relaxed);
            // Replay executions (redo replay, checkpoint-restore bootstrap)
            // re-install history the lock manager already admitted in a
            // previous incarnation; counting them again would make a
            // restored store's grant totals drift from the live run's.
            if !txn.is_replay() {
                self.grant_counter(inv, res).inc();
                if let Some(tr) = &self.opts.trace {
                    tr.record(txn.id().0, &self.name, "grant", self.class_label(inv, res));
                }
            }
        } else {
            drop(st);
            if let TryExecOutcome::Conflict(_) = &outcome {
                self.conflicts.fetch_add(1, Ordering::Relaxed);
                // The refusal is already a slow path (the caller is about
                // to block), so exact pair labels — the live view of the
                // paper's conflict tables — are affordable here.
                let pair = match &conflict_ops {
                    Some((requested, held)) => format!(
                        "{}|{}",
                        self.class_label(&requested.0, &requested.1),
                        self.class_label(&held.0, &held.1)
                    ),
                    None => "unknown|unknown".to_string(),
                };
                let ty = self.adt.type_name();
                self.opts.metrics.counter(&format!("lock.refusals.{ty}.{pair}")).inc();
                *wait_hint = Some(self.opts.metrics.counter(&format!("lock.waits.{ty}.{pair}")));
                if let Some(tr) = &self.opts.trace {
                    tr.record(txn.id().0, &self.name, "refuse", pair);
                }
            }
        }
        Ok(outcome)
    }

    /// The executed operation's conflict-class label: the scheme's own
    /// class name when it has one (the paper tables' row/column names),
    /// else the invocation's `Debug` head.
    fn class_label(&self, inv: &A::Inv, res: &A::Res) -> String {
        let op = (inv.clone(), res.clone());
        self.locks.class_of(&op).unwrap_or_else(|| {
            let dbg = format!("{:?}", op.0);
            let end = dbg
                .find(|c: char| !(c.is_alphanumeric() || c == '_' || c == '-'))
                .unwrap_or(dbg.len());
            dbg[..end].to_string()
        })
    }

    /// The grant counter for this executed operation's variant (see the
    /// `grant_cache` field for the caching contract).
    fn grant_counter(&self, inv: &A::Inv, res: &A::Res) -> Arc<Counter> {
        let key = (discriminant(inv), discriminant(res));
        if let Some(c) = self.grant_cache.read().get(&key) {
            return c.clone();
        }
        let name = format!("lock.grants.{}.{}", self.adt.type_name(), self.class_label(inv, res));
        let counter = self.opts.metrics.counter(&name);
        self.grant_cache.write().entry(key).or_insert(counter).clone()
    }

    /// Replay one executed operation with its logged response: like a
    /// normal execution, but only a candidate whose response equals
    /// `expected` is eligible — nondeterministic operations (a semiqueue
    /// `rem`) are pinned to the choice the original execution made, and a
    /// deterministic operation whose outcome changed (a logged successful
    /// debit that would now overdraft) is reported as divergence instead
    /// of silently rewriting history.
    pub fn replay_executed(
        self: &Arc<Self>,
        txn: &Arc<TxnHandle>,
        inv: A::Inv,
        expected: A::Res,
    ) -> Result<(), ReplayError> {
        if txn.phase() != TxnPhase::Active {
            return Err(ReplayError::Exec(ExecError::NotActive));
        }
        let mut st = self.inner.lock();
        let committed_refs: Vec<&A::Intent> = st.committed.values().map(|r| &r.intent).collect();
        let own = st.active.get(&txn.id()).map(|r| r.intent.clone()).unwrap_or_default();
        let candidates = self.adt.candidates(&st.version, &committed_refs, &own, &inv);
        drop(committed_refs);
        let Some((res, intent)) = candidates.into_iter().find(|(res, _)| *res == expected) else {
            return Err(ReplayError::Diverged { expected: format!("{expected:?}") });
        };
        // Recovery replays into quiesced objects: lock conflicts cannot
        // arise (the only active transactions are replay transactions,
        // which committed without conflicting in the original history), so
        // the operation is installed directly.
        let rec = st.active.entry(txn.id()).or_default();
        rec.intent = intent;
        let op = (inv, res);
        let token = self.locks.prepare(&op);
        rec.ops.push(ExecOp { op, token });
        let clock = st.clock;
        st.bounds.insert(txn.id(), clock);
        txn.observe_clock(clock);
        drop(st);
        txn.register(self.clone() as Arc<dyn TxParticipant>);
        self.executed.fetch_add(1, Ordering::Relaxed);
        Ok(())
    }

    /// Decode a redo payload (produced by the type's
    /// [`RuntimeAdt::redo`]) and replay it via
    /// [`TxObject::replay_executed`].
    pub fn replay_redo(
        self: &Arc<Self>,
        txn: &Arc<TxnHandle>,
        bytes: &[u8],
    ) -> Result<(), ReplayError> {
        let (inv, expected) = self.adt.decode_redo(bytes).map_err(ReplayError::Decode)?;
        self.replay_executed(txn, inv, expected)
    }

    /// Execute with blocking: retries on completion notifications until the
    /// lock is granted, the policy times out, or the transaction is doomed.
    pub fn execute(
        self: &Arc<Self>,
        txn: &Arc<TxnHandle>,
        inv: A::Inv,
    ) -> Result<A::Res, ExecError> {
        let start = Instant::now();
        let mut blocked = false;
        let mut wait_counter: Option<Arc<Counter>> = None;
        loop {
            let mut wait_hint = None;
            match self.try_execute_inner(txn, &inv, &mut wait_hint)? {
                TryExecOutcome::Executed(res) => {
                    if blocked {
                        self.opts.observer.on_unblock(txn.id());
                    }
                    return Ok(res);
                }
                TryExecOutcome::Conflict(holders) => {
                    if wait_hint.is_some() {
                        wait_counter = wait_hint;
                    }
                    self.opts.observer.on_block(txn.id(), &holders);
                    blocked = true;
                }
                TryExecOutcome::Undefined => {
                    // Partial operation: wait for the state to change.
                    self.opts.observer.on_block(txn.id(), &[]);
                    blocked = true;
                }
            }
            // Wait for a completion notification (bounded slice so doomed
            // victims and timeouts are noticed promptly).
            if let Some(t) = self.opts.block.timeout {
                if start.elapsed() >= t {
                    self.opts.observer.on_unblock(txn.id());
                    return Err(ExecError::Timeout);
                }
            }
            self.waits.fetch_add(1, Ordering::Relaxed);
            let slice_counter = wait_counter.get_or_insert_with(|| {
                // Undefined blocks have no conflict pair; label them so.
                self.opts.metrics.counter(&format!("lock.waits.{}.undefined", self.adt.type_name()))
            });
            slice_counter.inc();
            if let Some(tr) = &self.opts.trace {
                tr.record(txn.id().0, &self.name, "wait", String::new());
            }
            let mut st = self.inner.lock();
            self.cv.wait_for(&mut st, self.opts.block.wait_slice);
            drop(st);
            if txn.is_doomed() {
                self.opts.observer.on_unblock(txn.id());
                return Err(ExecError::Doomed);
            }
        }
    }

    fn attempt(
        &self,
        st: &mut ObjState<A>,
        txn: TxnId,
        inv: &A::Inv,
        conflict_ops: &mut Option<ConflictPair<A>>,
    ) -> TryExecOutcome<A::Res> {
        // Assemble the view: version + committed intents (ts order) + own.
        let committed_refs: Vec<&A::Intent> = st.committed.values().map(|r| &r.intent).collect();
        let own = st.active.get(&txn).map(|r| r.intent.clone()).unwrap_or_default();
        let candidates = self.adt.candidates(&st.version, &committed_refs, &own, inv);
        drop(committed_refs);
        if candidates.is_empty() {
            return TryExecOutcome::Undefined;
        }
        let mut blockers: Vec<TxnId> = Vec::new();
        for (res, intent) in candidates {
            let op = (inv.clone(), res);
            // Classify the requested op once per candidate; every held
            // op already carries its token from its own execution.
            let token = self.locks.prepare(&op);
            let mut holders: Vec<TxnId> = Vec::new();
            for (&p, rec) in st.active.iter() {
                if p == txn {
                    continue;
                }
                if let Some(q) = rec.ops.iter().find(|q| {
                    self.locks.conflicts_prepared(&q.op, q.token.as_ref(), &op, token.as_ref())
                }) {
                    // Remember the first refusing pair: it labels the
                    // refusal/wait counters with the class pair that
                    // actually blocked the caller.
                    if conflict_ops.is_none() {
                        *conflict_ops = Some((op.clone(), q.op.clone()));
                    }
                    holders.push(p);
                }
            }
            if holders.is_empty() {
                let rec = st.active.entry(txn).or_default();
                rec.intent = intent;
                let res = op.1.clone();
                rec.ops.push(ExecOp { op, token });
                return TryExecOutcome::Executed(res);
            }
            blockers.append(&mut holders);
        }
        blockers.sort();
        blockers.dedup();
        TryExecOutcome::Conflict(blockers)
    }

    /// The horizon time (Definition 20) and folding of committed intents
    /// (the appendix's `forget()`).
    ///
    /// The horizon is bounded by three forces: the oldest active
    /// transaction's lower bound (the bound table), the per-object
    /// checkpoint pin ([`TxObject::pin_horizon`], an entry in the same
    /// table), and the shared snapshot-read floor
    /// (`RuntimeOptions::horizon`): a live read pin at watermark `w`
    /// keeps every commit with `ts > w` unfolded at every object sharing
    /// the registry, so `committed_snapshot_at(w)` stays exact for the
    /// pin's lifetime. (`floor() = u64::MAX` when nothing is pinned, so
    /// the read path costs one relaxed atomic load here.)
    fn forget(&self, st: &mut ObjState<A>) {
        let Some(&max_committed) = st.committed.keys().next_back() else { return };
        let global = self.opts.horizon.floor().min(max_committed);
        let horizon = st.bounds.values().min().map_or(global, |&b| b.min(global));
        let fold: Vec<u64> = st.committed.range(..horizon).map(|(&ts, _)| ts).collect();
        for ts in fold {
            let rec = st.committed.remove(&ts).unwrap();
            self.adt.apply(&mut st.version, &rec.intent);
            st.folded = st.folded.max(ts);
            self.forgotten.fetch_add(1, Ordering::Relaxed);
        }
    }

    /// Number of committed-but-unforgotten transactions (Section-6
    /// experiments).
    pub fn retained_committed(&self) -> usize {
        self.inner.lock().committed.len()
    }

    /// Number of active transactions holding locks here.
    pub fn active_txns(&self) -> usize {
        self.inner.lock().active.len()
    }

    /// A snapshot of the compacted version (testing).
    pub fn version_snapshot(&self) -> A::Version {
        self.inner.lock().version.clone()
    }

    /// A snapshot of the state a brand-new read-only observer would see:
    /// version with all committed intents applied.
    pub fn committed_snapshot(&self) -> A::Version {
        self.committed_snapshot_at(u64::MAX)
    }

    /// The committed state **as of commit timestamp `watermark`**: the
    /// compacted version plus every committed-but-unforgotten intent with
    /// `ts ≤ watermark`. Exact only while commits above the watermark are
    /// prevented from folding into the version — either because the
    /// caller quiesced commits, or because it holds a
    /// [`TxObject::pin_horizon`] at the watermark (the fuzzy-checkpoint
    /// protocol).
    pub fn committed_snapshot_at(&self, watermark: u64) -> A::Version {
        let st = self.inner.lock();
        let mut v = st.version.clone();
        for (_, rec) in st.committed.range(..=watermark) {
            self.adt.apply(&mut v, &rec.intent);
        }
        v
    }

    /// The committed state as of `watermark`, **checked**: refused with
    /// [`SnapshotStale`] when a commit above the watermark has already
    /// been folded into the base version (so the watermark image is
    /// unrecoverable here), instead of silently returning the folded
    /// state as [`TxObject::committed_snapshot_at`] would.
    ///
    /// This is the read-only transaction path's accessor. It takes the
    /// object's internal mutex — a short latch over in-memory state, the
    /// same one every accessor uses — but no *transactional* lock: no
    /// conflict test runs, no lock-table entry is written, no writer is
    /// ever blocked by it or blocks on it. The staleness check is sound
    /// under that latch: any in-progress fold completed before we
    /// acquired it, so `folded` reflects every fold that could race the
    /// caller's pin.
    pub fn snapshot_read(&self, watermark: u64) -> Result<A::Version, SnapshotStale> {
        let st = self.inner.lock();
        if st.folded > watermark {
            return Err(SnapshotStale { folded: st.folded, watermark });
        }
        let mut v = st.version.clone();
        for (_, rec) in st.committed.range(..=watermark) {
            self.adt.apply(&mut v, &rec.intent);
        }
        Ok(v)
    }

    /// Forbid `forget()` from folding commits with `ts > watermark` into
    /// the compacted version until [`TxObject::unpin_horizon`] — the
    /// object-side half of a fuzzy checkpoint. Implemented as an entry in
    /// the bound table under a reserved transaction id, so the horizon
    /// computation (Definition 20) needs no new machinery: the pin is
    /// just one more active lower bound.
    pub fn pin_horizon(&self, watermark: u64) {
        let mut st = self.inner.lock();
        st.bounds.insert(HORIZON_PIN, watermark);
    }

    /// Release the pin installed by [`TxObject::pin_horizon`] and fold
    /// whatever it was holding back.
    pub fn unpin_horizon(&self) {
        let mut st = self.inner.lock();
        st.bounds.remove(&HORIZON_PIN);
        self.forget(&mut st);
        drop(st);
        self.cv.notify_all();
    }

    /// Install a recovered base version into this **fresh** object as
    /// the committed state at timestamp `ts` — the generic
    /// checkpoint-restore path: where a hand-written wrapper replays
    /// synthetic bootstrap operations (a credit of the whole balance, an
    /// enqueue per item), a declaratively defined type installs its
    /// decoded state directly. The object's clock advances to `ts`, so
    /// tail replay (at strictly greater timestamps) observes a
    /// well-formed history, exactly as after a bootstrap commit.
    ///
    /// Refused with [`NotFresh`] when the object already has history or
    /// active transactions — installing over existing state would
    /// silently drop or double effects. (An attach of a used object is
    /// the reachable case; the error flows back as a failed
    /// materialization, not a crash.)
    pub fn install_version(&self, version: A::Version, ts: u64) -> Result<(), NotFresh> {
        let mut st = self.inner.lock();
        if st.clock != 0 || !st.committed.is_empty() || !st.active.is_empty() {
            return Err(NotFresh);
        }
        st.version = version;
        st.clock = ts;
        // The installed image *is* a fold of everything at or below `ts`:
        // snapshot reads below the restore point must be refused, not
        // served the checkpoint image as if it were an older state.
        st.folded = ts;
        Ok(())
    }

    /// Contention statistics.
    pub fn stats(&self) -> ObjectStats {
        ObjectStats {
            executed: self.executed.load(Ordering::Relaxed),
            conflicts: self.conflicts.load(Ordering::Relaxed),
            waits: self.waits.load(Ordering::Relaxed),
            forgotten: self.forgotten.load(Ordering::Relaxed),
        }
    }
}

impl<A: RuntimeAdt> TxParticipant for TxObject<A> {
    fn object_name(&self) -> &str {
        &self.name
    }

    fn prepare(&self, txn: &TxnHandle) -> bool {
        !txn.is_doomed() && txn.phase() == TxnPhase::Active
    }

    fn commit_at(&self, txn: TxnId, ts: u64) {
        let mut st = self.inner.lock();
        st.clock = st.clock.max(ts);
        if let Some(rec) = st.active.remove(&txn) {
            st.committed.insert(ts, rec);
        }
        st.bounds.remove(&txn);
        self.forget(&mut st);
        drop(st);
        self.cv.notify_all();
    }

    fn abort_txn(&self, txn: TxnId) {
        let mut st = self.inner.lock();
        st.active.remove(&txn);
        st.bounds.remove(&txn);
        self.forget(&mut st);
        drop(st);
        self.cv.notify_all();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::time::Duration;

    /// A register (File) runtime type for in-crate tests: version = value,
    /// intent = Option<last written value>.
    struct Register;

    #[derive(Clone, Debug, PartialEq)]
    enum RegInv {
        Read,
        Write(i64),
    }

    impl RuntimeAdt for Register {
        type Version = i64;
        type Intent = Option<i64>;
        type Inv = RegInv;
        type Res = i64;

        fn initial(&self) -> i64 {
            0
        }

        fn candidates(
            &self,
            version: &i64,
            committed: &[&Option<i64>],
            own: &Option<i64>,
            inv: &RegInv,
        ) -> Vec<(i64, Option<i64>)> {
            match inv {
                RegInv::Write(v) => vec![(0, Some(*v))],
                RegInv::Read => {
                    let mut cur = *version;
                    for v in committed.iter().copied().flatten() {
                        cur = *v;
                    }
                    if let Some(v) = own {
                        cur = *v;
                    }
                    vec![(cur, *own)]
                }
            }
        }

        fn apply(&self, version: &mut i64, intent: &Option<i64>) {
            if let Some(v) = intent {
                *version = *v;
            }
        }

        fn redo(&self, inv: &RegInv, _res: &i64) -> Option<Vec<u8>> {
            match inv {
                RegInv::Write(v) => Some(v.to_le_bytes().to_vec()),
                RegInv::Read => None,
            }
        }

        fn decode_redo(&self, bytes: &[u8]) -> Result<(RegInv, i64), RedoDecodeError> {
            let arr: [u8; 8] = bytes
                .try_into()
                .map_err(|_| RedoDecodeError::new("register redo payload is 8 bytes"))?;
            Ok((RegInv::Write(i64::from_le_bytes(arr)), 0))
        }

        fn type_name(&self) -> &'static str {
            "Register"
        }
    }

    /// Table-I conflicts: a read conflicts with a write of a different
    /// value (generalized Thomas Write Rule: writes never conflict).
    struct RegisterHybrid;

    impl LockSpec<Register> for RegisterHybrid {
        fn conflicts(&self, a: &(RegInv, i64), b: &(RegInv, i64)) -> bool {
            match (&a.0, &b.0) {
                (RegInv::Read, RegInv::Write(w)) => a.1 != *w,
                (RegInv::Write(w), RegInv::Read) => b.1 != *w,
                _ => false,
            }
        }
        fn name(&self) -> &'static str {
            "hybrid"
        }
    }

    fn obj() -> Arc<TxObject<Register>> {
        TxObject::new("reg", Register, Arc::new(RegisterHybrid), RuntimeOptions::default())
    }

    fn h(n: u64) -> Arc<TxnHandle> {
        TxnHandle::new(TxnId(n))
    }

    #[test]
    fn blind_writes_run_concurrently_thomas_write_rule() {
        let o = obj();
        let (t1, t2) = (h(1), h(2));
        o.execute(&t1, RegInv::Write(10)).unwrap();
        o.execute(&t2, RegInv::Write(20)).unwrap(); // no conflict!
                                                    // t2 commits later => later value wins regardless of execution
                                                    // order.
        o.commit_at(t1.id(), 5);
        o.commit_at(t2.id(), 3);
        assert_eq!(o.committed_snapshot(), 10, "ts 5 overwrote ts 3");
    }

    #[test]
    fn read_blocks_on_concurrent_conflicting_write() {
        let o = TxObject::new(
            "reg",
            Register,
            Arc::new(RegisterHybrid),
            RuntimeOptions::with_timeout(Some(Duration::from_millis(30))),
        );
        let (t1, t2) = (h(1), h(2));
        o.execute(&t1, RegInv::Write(10)).unwrap();
        // Reader sees committed state 0; conflicts with t1's write(10).
        assert_eq!(o.execute(&t2, RegInv::Read), Err(ExecError::Timeout));
    }

    #[test]
    fn read_does_not_conflict_with_same_valued_write() {
        let o = obj();
        let (t1, t2) = (h(1), h(2));
        o.execute(&t1, RegInv::Write(0)).unwrap(); // writes the initial value
        assert_eq!(o.execute(&t2, RegInv::Read).unwrap(), 0);
    }

    #[test]
    fn own_writes_are_visible() {
        let o = obj();
        let t1 = h(1);
        o.execute(&t1, RegInv::Write(42)).unwrap();
        assert_eq!(o.execute(&t1, RegInv::Read).unwrap(), 42);
    }

    #[test]
    fn abort_discards_intent_and_unblocks() {
        let o = obj();
        let (t1, t2) = (h(1), h(2));
        o.execute(&t1, RegInv::Write(10)).unwrap();
        let o2 = o.clone();
        let t2c = t2.clone();
        let j = std::thread::spawn(move || o2.execute(&t2c, RegInv::Read).unwrap());
        std::thread::sleep(Duration::from_millis(10));
        o.abort_txn(t1.id());
        assert_eq!(j.join().unwrap(), 0, "reader sees pre-abort state");
        assert_eq!(o.active_txns(), 1);
    }

    #[test]
    fn blocked_writer_wakes_on_commit() {
        let o = obj();
        let (t1, t2) = (h(1), h(2));
        assert_eq!(o.execute(&t1, RegInv::Read).unwrap(), 0);
        // A write of a different value conflicts with the read lock.
        let o2 = o.clone();
        let t2c = t2.clone();
        let j = std::thread::spawn(move || o2.execute(&t2c, RegInv::Write(7)).unwrap());
        std::thread::sleep(Duration::from_millis(10));
        o.commit_at(t1.id(), 1);
        j.join().unwrap();
        o.commit_at(t2.id(), 2);
        assert_eq!(o.committed_snapshot(), 7);
    }

    #[test]
    fn doomed_transaction_errors_out() {
        let o = obj();
        let (t1, t2) = (h(1), h(2));
        o.execute(&t1, RegInv::Write(10)).unwrap();
        let o2 = o.clone();
        let t2c = t2.clone();
        let j = std::thread::spawn(move || o2.execute(&t2c, RegInv::Read));
        std::thread::sleep(Duration::from_millis(10));
        t2.doom();
        assert_eq!(j.join().unwrap(), Err(ExecError::Doomed));
    }

    #[test]
    fn forget_folds_committed_intents() {
        let o = obj();
        for i in 1..=5u64 {
            let t = h(i);
            o.execute(&t, RegInv::Write(i as i64)).unwrap();
            o.commit_at(t.id(), i);
        }
        // No active txns: horizon = max committed (5); ts 1..4 folded.
        assert_eq!(o.retained_committed(), 1);
        assert_eq!(o.stats().forgotten, 4);
        assert_eq!(o.committed_snapshot(), 5);
    }

    #[test]
    fn active_bound_pins_the_horizon() {
        let o = obj();
        let t1 = h(1);
        o.execute(&t1, RegInv::Write(1)).unwrap();
        o.commit_at(t1.id(), 1);
        // t2 executes now: bound = 1.
        let t2 = h(2);
        o.execute(&t2, RegInv::Write(2)).unwrap();
        for i in 3..=6u64 {
            let t = h(i);
            o.execute(&t, RegInv::Write(i as i64)).unwrap();
            o.commit_at(t.id(), i);
        }
        // Horizon = min(bound(t2)=1, max=6) = 1: nothing foldable except
        // timestamps < 1.
        assert_eq!(o.retained_committed(), 5);
        o.commit_at(t2.id(), 7);
        // Now everything below 7 folds.
        assert_eq!(o.retained_committed(), 1);
    }

    #[test]
    fn participant_interface() {
        let o = obj();
        let t1 = h(1);
        assert!(o.prepare(&t1));
        t1.doom();
        assert!(!o.prepare(&t1));
        let t2 = h(2);
        t2.set_phase(TxnPhase::Aborted);
        assert!(!o.prepare(&t2));
        assert_eq!(o.object_name(), "reg");
    }

    #[test]
    fn stats_count_conflicts() {
        let o = TxObject::new(
            "reg",
            Register,
            Arc::new(RegisterHybrid),
            RuntimeOptions::with_timeout(Some(Duration::from_millis(20))),
        );
        let (t1, t2) = (h(1), h(2));
        o.execute(&t1, RegInv::Write(10)).unwrap();
        let _ = o.execute(&t2, RegInv::Read);
        let s = o.stats();
        assert_eq!(s.executed, 1);
        assert!(s.conflicts >= 1);
        assert!(s.waits >= 1);
    }

    #[test]
    fn try_execute_reports_holders() {
        let o = obj();
        let (t1, t2) = (h(1), h(2));
        o.execute(&t1, RegInv::Write(10)).unwrap();
        match o.try_execute(&t2, &RegInv::Read).unwrap() {
            TryExecOutcome::Conflict(holders) => assert_eq!(holders, vec![TxnId(1)]),
            other => panic!("expected conflict, got {other:?}"),
        }
    }

    /// The fuzzy-checkpoint contract: with a horizon pin at `w`, commits
    /// above `w` keep flowing but can neither fold into the version nor
    /// leak into `committed_snapshot_at(w)`.
    #[test]
    fn horizon_pin_keeps_snapshot_at_watermark_exact() {
        let o = obj();
        for i in 1..=3u64 {
            let t = h(i);
            o.execute(&t, RegInv::Write(i as i64)).unwrap();
            o.commit_at(t.id(), i);
        }
        o.pin_horizon(3);
        // Commits above the watermark land while the pin is held.
        for i in 4..=6u64 {
            let t = h(i);
            o.execute(&t, RegInv::Write(i as i64 * 10)).unwrap();
            o.commit_at(t.id(), i);
        }
        assert_eq!(o.committed_snapshot_at(3), 3, "watermark image excludes later commits");
        assert_eq!(o.committed_snapshot(), 60, "live frontier sees everything");
        assert!(
            o.retained_committed() >= 3,
            "pinned commits stay unfolded: {}",
            o.retained_committed()
        );
        o.unpin_horizon();
        // The pin released: folding catches up.
        assert_eq!(o.retained_committed(), 1);
        assert_eq!(o.committed_snapshot(), 60);
    }

    /// Tickets are reserved under the object lock in execution order even
    /// though publishing happens outside it.
    #[test]
    fn redo_tickets_are_reserved_in_execution_order() {
        use super::super::options::{RedoSink, RedoTicket};
        use std::sync::Mutex as StdMutex;

        #[derive(Default)]
        struct ProbeSink {
            next: AtomicU64,
            published: StdMutex<Vec<(u64, TxnId)>>,
        }
        impl RedoSink for ProbeSink {
            fn reserve(&self, _txn: TxnId, _object: &str) -> RedoTicket {
                RedoTicket(self.next.fetch_add(1, Ordering::Relaxed) + 1)
            }
            fn publish(&self, ticket: RedoTicket, txn: TxnId, _object: &str, _op: &[u8]) {
                self.published.lock().unwrap().push((ticket.0, txn));
            }
        }

        let sink = Arc::new(ProbeSink::default());
        let o = TxObject::new(
            "reg",
            Register,
            Arc::new(RegisterHybrid),
            RuntimeOptions::default().with_redo(sink.clone()),
        );
        for i in 1..=5u64 {
            let t = h(i);
            o.execute(&t, RegInv::Write(i as i64)).unwrap();
            o.commit_at(t.id(), i);
        }
        let published = sink.published.lock().unwrap();
        let tickets: Vec<u64> = published.iter().map(|(t, _)| *t).collect();
        assert_eq!(tickets, vec![1, 2, 3, 4, 5], "execution order == ticket order");
        // Replay handles bypass the sink entirely.
        drop(published);
        let replay = TxnHandle::replay(TxnId(99));
        o.execute(&replay, RegInv::Write(7)).unwrap();
        assert_eq!(sink.published.lock().unwrap().len(), 5, "replay did not log");
    }

    /// The shared-registry pin is the read path's fuzzy-checkpoint
    /// analogue: while a `PinGuard` at `w` lives, commits above `w` stay
    /// unfolded at every object carrying the registry, `snapshot_read(w)`
    /// stays exact, and dropping the guard lets the next commit's
    /// `forget` fold everything — after which `snapshot_read(w)` refuses
    /// with a typed [`SnapshotStale`] instead of serving the folded
    /// state.
    #[test]
    fn shared_pin_bounds_folding_until_guard_drops() {
        let pins = Arc::new(super::super::HorizonPins::new());
        let o = TxObject::new(
            "reg",
            Register,
            Arc::new(RegisterHybrid),
            RuntimeOptions::default().with_horizon(pins.clone()),
        );
        for i in 1..=3u64 {
            let t = h(i);
            o.execute(&t, RegInv::Write(i as i64)).unwrap();
            o.commit_at(t.id(), i);
        }
        let guard = pins.pin(3);
        for i in 4..=6u64 {
            let t = h(i);
            o.execute(&t, RegInv::Write(i as i64 * 10)).unwrap();
            o.commit_at(t.id(), i);
        }
        assert_eq!(o.snapshot_read(3), Ok(3), "pinned watermark image is exact");
        assert_eq!(o.committed_snapshot(), 60, "live frontier sees everything");
        assert!(o.retained_committed() >= 3, "pinned commits stay unfolded");
        drop(guard);
        // Folding is lazy: the next completion at the object catches up.
        let t = h(7);
        o.execute(&t, RegInv::Write(70)).unwrap();
        o.commit_at(t.id(), 7);
        assert_eq!(o.retained_committed(), 1);
        let err = o.snapshot_read(3).unwrap_err();
        assert!(err.folded > 3, "staleness names the fold watermark: {err:?}");
        assert_eq!(err.watermark, 3);
    }

    /// A restored checkpoint image is a fold of everything at or below
    /// the restore timestamp: snapshot reads below it are refused.
    #[test]
    fn snapshot_read_refuses_watermarks_below_an_installed_version() {
        let o = obj();
        o.install_version(42, 10).unwrap();
        assert_eq!(o.snapshot_read(9), Err(SnapshotStale { folded: 10, watermark: 9 }));
        assert_eq!(o.snapshot_read(10), Ok(42));
    }

    #[test]
    fn registration_is_idempotent() {
        let o = obj();
        let t1 = h(1);
        o.execute(&t1, RegInv::Write(1)).unwrap();
        o.execute(&t1, RegInv::Write(2)).unwrap();
        assert_eq!(t1.participants().len(), 1);
    }
}
