//! Traits connecting typed data types and concurrency-control schemes to
//! the generic object runtime.

/// A redo payload could not be decoded back into an executed operation.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct RedoDecodeError(pub String);

impl RedoDecodeError {
    /// Construct an error.
    pub fn new(msg: impl Into<String>) -> RedoDecodeError {
        RedoDecodeError(msg.into())
    }
}

impl std::fmt::Display for RedoDecodeError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "redo decode error: {}", self.0)
    }
}

impl std::error::Error for RedoDecodeError {}

/// A production implementation of a data type: a compact committed version
/// plus per-transaction intent summaries.
///
/// This is the appendix's pattern: an `Account`'s version is a balance, and
/// a transaction's intent is the affine transformation `b ↦ mul·b + add`
/// summarizing its credits, posts and debits. A FIFO queue's version is a
/// deque and an intent is the transaction's operation list.
pub trait RuntimeAdt: Send + Sync + 'static {
    /// The compacted committed state (the appendix's `bal`, a queue's
    /// deque, ...).
    type Version: Clone + Send + Sync;
    /// A transaction's intention summary; `Default` is the empty intent.
    type Intent: Clone + Default + Send + Sync;
    /// Invocations (typed, unlike the formal layer's dynamic `Inv`).
    type Inv: Clone + Send + Sync + std::fmt::Debug;
    /// Responses.
    type Res: Clone + PartialEq + Send + Sync + std::fmt::Debug;

    /// The initial version.
    fn initial(&self) -> Self::Version;

    /// Evaluate `inv` against the transaction's *view*: the compacted
    /// version, the committed-but-unforgotten intents in timestamp order,
    /// and the transaction's own intent.
    ///
    /// Returns the specification's candidate `(response, updated-intent)`
    /// pairs in preference order — several for nondeterministic operations
    /// (the runtime grants the first whose lock is available), empty when
    /// the operation is not defined in this view (partial operations
    /// block).
    fn candidates(
        &self,
        version: &Self::Version,
        committed: &[&Self::Intent],
        own: &Self::Intent,
        inv: &Self::Inv,
    ) -> Vec<(Self::Res, Self::Intent)>;

    /// Fold a committed intent into the version (the appendix's
    /// `bal = i.mul * bal + i.add` inside `forget()`).
    fn apply(&self, version: &mut Self::Version, intent: &Self::Intent);

    /// Serialize an executed operation `(inv, res)` as an opaque redo
    /// payload, or `None` for operations with no durable effect worth
    /// replaying (pure reads).
    ///
    /// This is the intrinsic half of the write-ahead discipline: when an
    /// object's options carry a redo sink, every mutating execution routes
    /// this payload into the transaction manager's durable log
    /// automatically — callers never log by hand, so forgetting to log is
    /// not expressible. The method is deliberately *required* (no default
    /// body): every data type must decide what its redo record is, or
    /// state explicitly that it has none.
    fn redo(&self, inv: &Self::Inv, res: &Self::Res) -> Option<Vec<u8>>;

    /// Decode a payload produced by [`RuntimeAdt::redo`] back into the
    /// executed operation `(invocation, expected response)` for recovery
    /// replay. Types whose `redo` always returns `None` should return an
    /// error.
    fn decode_redo(&self, bytes: &[u8]) -> Result<(Self::Inv, Self::Res), RedoDecodeError>;

    /// The type's name for diagnostics.
    fn type_name(&self) -> &'static str;
}

/// An executed operation pre-classified for conflict testing: its
/// mapping onto the formal layer (`hcc-spec`'s dynamic [`Operation`])
/// and the conflict class that mapping lands in.
///
/// Schemes that classify through a spec mapping ([`super::SpecLock`])
/// compute this **once per executed operation** via
/// [`LockSpec::prepare`]; the runtime stores it beside the op and feeds
/// it back into every later [`LockSpec::conflicts_prepared`] test, so
/// the per-op `spec_op` + classification work leaves the lock-test hot
/// path. Hand-written schemes that pattern-match invocations directly
/// return `None` from `prepare` and never see this type.
///
/// [`Operation`]: hcc_spec::Operation
#[derive(Clone, Debug)]
pub struct ClassifiedOp {
    /// The executed operation lifted into the dynamic spec layer.
    pub op: hcc_spec::Operation,
    /// The conflict class the lifted operation belongs to.
    pub class: hcc_relations::relation::OpClass,
}

/// A lock-conflict test over executed operations `(invocation, response)`.
///
/// The same [`RuntimeAdt`] can run under different schemes: the hybrid
/// dependency-based relation (this paper), Weihl's commutativity-based
/// relation, or classical read/write locking — only this trait changes.
pub trait LockSpec<A: RuntimeAdt + ?Sized>: Send + Sync {
    /// Do two executed operations of *different* active transactions
    /// conflict? Must be symmetric.
    fn conflicts(&self, a: &(A::Inv, A::Res), b: &(A::Inv, A::Res)) -> bool;

    /// Pre-classify `op` for memoized conflict testing. The runtime
    /// calls this once when an operation is executed (and once per
    /// *candidate* during a grant attempt), stores the result beside the
    /// op, and passes both operations' tokens to
    /// [`LockSpec::conflicts_prepared`]. The default (`None`) keeps
    /// schemes that don't classify through a spec mapping on the plain
    /// [`LockSpec::conflicts`] path.
    fn prepare(&self, op: &(A::Inv, A::Res)) -> Option<ClassifiedOp> {
        let _ = op;
        None
    }

    /// [`LockSpec::conflicts`] with the memoized classifications in
    /// hand. Implementations that override [`LockSpec::prepare`] should
    /// use the tokens instead of re-deriving them; the default ignores
    /// the tokens and defers to `conflicts`. Must agree with
    /// `conflicts` whenever both tokens came from `prepare` on the same
    /// operations — the derived-vs-hand differential tests exercise the
    /// un-memoized entry point directly.
    fn conflicts_prepared(
        &self,
        a: &(A::Inv, A::Res),
        ap: Option<&ClassifiedOp>,
        b: &(A::Inv, A::Res),
        bp: Option<&ClassifiedOp>,
    ) -> bool {
        let _ = (ap, bp);
        self.conflicts(a, b)
    }

    /// Scheme name (`"hybrid"`, `"commutativity"`, `"rw-2pl"`) for
    /// experiment output.
    fn name(&self) -> &'static str;

    /// The conflict class the executed operation `op` belongs to, when
    /// this scheme names its classes — the row/column labels of the
    /// paper's conflict tables (`"Debit-Ok"`, `"Deq-Ok"`, …). Lock
    /// metrics key grant/refusal counters by these names so a live
    /// system's counters line up with the tables in the paper. `None`
    /// (the default) makes the runtime fall back to a label derived from
    /// the invocation's `Debug` form.
    fn class_of(&self, op: &(A::Inv, A::Res)) -> Option<String> {
        let _ = op;
        None
    }
}
