//! Traits connecting typed data types and concurrency-control schemes to
//! the generic object runtime.

/// A production implementation of a data type: a compact committed version
/// plus per-transaction intent summaries.
///
/// This is the appendix's pattern: an `Account`'s version is a balance, and
/// a transaction's intent is the affine transformation `b ↦ mul·b + add`
/// summarizing its credits, posts and debits. A FIFO queue's version is a
/// deque and an intent is the transaction's operation list.
pub trait RuntimeAdt: Send + Sync + 'static {
    /// The compacted committed state (the appendix's `bal`, a queue's
    /// deque, ...).
    type Version: Clone + Send + Sync;
    /// A transaction's intention summary; `Default` is the empty intent.
    type Intent: Clone + Default + Send + Sync;
    /// Invocations (typed, unlike the formal layer's dynamic `Inv`).
    type Inv: Clone + Send + Sync + std::fmt::Debug;
    /// Responses.
    type Res: Clone + PartialEq + Send + Sync + std::fmt::Debug;

    /// The initial version.
    fn initial(&self) -> Self::Version;

    /// Evaluate `inv` against the transaction's *view*: the compacted
    /// version, the committed-but-unforgotten intents in timestamp order,
    /// and the transaction's own intent.
    ///
    /// Returns the specification's candidate `(response, updated-intent)`
    /// pairs in preference order — several for nondeterministic operations
    /// (the runtime grants the first whose lock is available), empty when
    /// the operation is not defined in this view (partial operations
    /// block).
    fn candidates(
        &self,
        version: &Self::Version,
        committed: &[&Self::Intent],
        own: &Self::Intent,
        inv: &Self::Inv,
    ) -> Vec<(Self::Res, Self::Intent)>;

    /// Fold a committed intent into the version (the appendix's
    /// `bal = i.mul * bal + i.add` inside `forget()`).
    fn apply(&self, version: &mut Self::Version, intent: &Self::Intent);

    /// The type's name for diagnostics.
    fn type_name(&self) -> &'static str;
}

/// A lock-conflict test over executed operations `(invocation, response)`.
///
/// The same [`RuntimeAdt`] can run under different schemes: the hybrid
/// dependency-based relation (this paper), Weihl's commutativity-based
/// relation, or classical read/write locking — only this trait changes.
pub trait LockSpec<A: RuntimeAdt + ?Sized>: Send + Sync {
    /// Do two executed operations of *different* active transactions
    /// conflict? Must be symmetric.
    fn conflicts(&self, a: &(A::Inv, A::Res), b: &(A::Inv, A::Res)) -> bool;

    /// Scheme name (`"hybrid"`, `"commutativity"`, `"rw-2pl"`) for
    /// experiment output.
    fn name(&self) -> &'static str;
}
