//! Transaction handles shared between the transaction manager and objects.

use super::object::TxParticipant;
use hcc_spec::TxnId;
use parking_lot::Mutex;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;

/// The lifecycle phase of a transaction.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum TxnPhase {
    /// Running; may invoke operations.
    Active,
    /// Committed with the given timestamp.
    Committed(u64),
    /// Aborted.
    Aborted,
}

/// Shared per-transaction state: identity, phase, the Avalon `trans-id`
/// style lower bound on the eventual commit timestamp, the doom flag set by
/// the deadlock detector, and the set of objects touched (for commit/abort
/// fan-out).
pub struct TxnHandle {
    id: TxnId,
    phase: Mutex<TxnPhase>,
    doomed: AtomicBool,
    /// Maximum object clock observed by any of this transaction's
    /// operations; the commit timestamp must exceed it (`precedes ⊆ TS`).
    bound: AtomicU64,
    touched: Mutex<Vec<Arc<dyn TxParticipant>>>,
    /// True for replay/bootstrap transactions: their executions re-install
    /// already-durable history, so self-logging objects must not record
    /// them again.
    replay: bool,
}

impl TxnHandle {
    /// A fresh active handle.
    pub fn new(id: TxnId) -> Arc<TxnHandle> {
        Self::build(id, false)
    }

    /// A handle for *replaying* already-durable history (recovery replay,
    /// checkpoint bootstrap): identical to [`TxnHandle::new`] except that
    /// self-logging objects skip the redo sink for its executions —
    /// re-logging records that are already in the log would duplicate them.
    pub fn replay(id: TxnId) -> Arc<TxnHandle> {
        Self::build(id, true)
    }

    fn build(id: TxnId, replay: bool) -> Arc<TxnHandle> {
        Arc::new(TxnHandle {
            id,
            phase: Mutex::new(TxnPhase::Active),
            doomed: AtomicBool::new(false),
            bound: AtomicU64::new(0),
            touched: Mutex::new(Vec::new()),
            replay,
        })
    }

    /// Is this a replay/bootstrap handle (its executions bypass the redo
    /// sink)?
    pub fn is_replay(&self) -> bool {
        self.replay
    }

    /// The transaction's identifier.
    pub fn id(&self) -> TxnId {
        self.id
    }

    /// Current phase.
    pub fn phase(&self) -> TxnPhase {
        *self.phase.lock()
    }

    /// Transition to a new phase (manager use).
    pub fn set_phase(&self, p: TxnPhase) {
        *self.phase.lock() = p;
    }

    /// True once the deadlock detector selected this transaction as a
    /// victim; its next blocking operation returns
    /// [`super::ExecError::Doomed`] and the manager must abort it.
    pub fn is_doomed(&self) -> bool {
        self.doomed.load(Ordering::Acquire)
    }

    /// Mark as deadlock victim.
    pub fn doom(&self) {
        self.doomed.store(true, Ordering::Release);
    }

    /// Raise the commit-timestamp lower bound to an observed object clock.
    pub fn observe_clock(&self, clock: u64) {
        self.bound.fetch_max(clock, Ordering::AcqRel);
    }

    /// The current lower bound (0 = none observed).
    pub fn bound(&self) -> u64 {
        self.bound.load(Ordering::Acquire)
    }

    /// Record that the transaction executed at `obj` (idempotent).
    pub fn register(&self, obj: Arc<dyn TxParticipant>) {
        let mut t = self.touched.lock();
        if !t.iter().any(|o| Arc::ptr_eq(o, &obj)) {
            t.push(obj);
        }
    }

    /// Objects touched so far (commit/abort fan-out set).
    pub fn participants(&self) -> Vec<Arc<dyn TxParticipant>> {
        self.touched.lock().clone()
    }
}

impl std::fmt::Debug for TxnHandle {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("TxnHandle")
            .field("id", &self.id)
            .field("phase", &self.phase())
            .field("doomed", &self.is_doomed())
            .field("bound", &self.bound())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lifecycle_and_bound() {
        let h = TxnHandle::new(TxnId(1));
        assert_eq!(h.phase(), TxnPhase::Active);
        assert_eq!(h.bound(), 0);
        h.observe_clock(5);
        h.observe_clock(3);
        assert_eq!(h.bound(), 5, "bound is monotone");
        h.set_phase(TxnPhase::Committed(9));
        assert_eq!(h.phase(), TxnPhase::Committed(9));
    }

    #[test]
    fn doom_flag() {
        let h = TxnHandle::new(TxnId(2));
        assert!(!h.is_doomed());
        h.doom();
        assert!(h.is_doomed());
    }
}
