//! The Avalon-style threaded object runtime (paper appendix, generalized).
//!
//! The appendix implements `Account` with four data structures — a lock
//! table, an intent table, a bound table and a heap of committed-but-
//! unforgotten transactions — plus a `when` guarded-command that blocks the
//! caller until its lock request is grantable. [`TxObject`] packages those
//! pieces generically:
//!
//! * a typed data type plugs in through [`RuntimeAdt`] (compact version +
//!   per-transaction intent summaries + candidate evaluation);
//! * a concurrency-control scheme plugs in through [`LockSpec`] (hybrid,
//!   commutativity-based, or read/write conflict tests over executed
//!   operations);
//! * transactions are driven through shared [`TxnHandle`]s, which track the
//!   commit-timestamp lower bound (`s.bound`), the set of touched objects,
//!   and a doom flag set by deadlock victims;
//! * blocking follows [`BlockPolicy`], with optional [`WaitObserver`]
//!   callbacks feeding a waits-for-graph deadlock detector (`hcc-txn`).

mod adt;
mod handle;
mod horizon;
mod object;
mod options;
mod spec_adt;

pub use adt::{ClassifiedOp, LockSpec, RedoDecodeError, RuntimeAdt};
pub use handle::{TxnHandle, TxnPhase};
pub use horizon::{HorizonPins, PinGuard};
pub use object::{
    ExecError, NotFresh, ObjectStats, ReplayError, SnapshotStale, TryExecOutcome, TxObject,
    TxParticipant,
};
pub use options::{
    BlockPolicy, Durability, NullObserver, RedoSink, RedoTicket, RuntimeOptions, WaitObserver,
};
pub use spec_adt::{AdtDef, ConflictSpec, ConflictTable, SpecAdt, SpecLock};
