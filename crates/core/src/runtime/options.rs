//! Blocking policy and contention observation hooks.

use hcc_obs::{FlightRecorder, Registry};
use hcc_spec::TxnId;
use std::sync::Arc;
use std::time::Duration;

/// How an object blocks when a lock request is refused.
///
/// The appendix's `when` statement "releases the lock and the condition is
/// retried after an arbitrary duration"; we retry on completion
/// notifications, re-checking in slices so doomed deadlock victims wake
/// promptly.
#[derive(Clone, Copy, Debug)]
pub struct BlockPolicy {
    /// Upper bound on one condvar wait before re-checking the doom flag.
    pub wait_slice: Duration,
    /// Give up (and let the caller abort/retry the transaction) after this
    /// long; `None` waits forever. A timeout is one of the paper's two
    /// deadlock remedies.
    pub timeout: Option<Duration>,
}

impl Default for BlockPolicy {
    fn default() -> Self {
        BlockPolicy { wait_slice: Duration::from_millis(1), timeout: Some(Duration::from_secs(2)) }
    }
}

/// Callbacks observing lock contention; the waits-for-graph deadlock
/// detector in `hcc-txn` implements this.
pub trait WaitObserver: Send + Sync {
    /// `waiter` is about to block on operations held by `holders`.
    fn on_block(&self, waiter: TxnId, holders: &[TxnId]);
    /// `waiter` stopped waiting (granted, timed out, or doomed).
    fn on_unblock(&self, waiter: TxnId);
}

/// An observer that ignores everything.
pub struct NullObserver;

impl WaitObserver for NullObserver {
    fn on_block(&self, _: TxnId, _: &[TxnId]) {}
    fn on_unblock(&self, _: TxnId) {}
}

/// A global order ticket for one executed operation's redo record,
/// handed out by [`RedoSink::reserve`] and redeemed by
/// [`RedoSink::publish`].
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord)]
pub struct RedoTicket(pub u64);

/// Receives serialized redo payloads as an *intrinsic effect* of executing
/// mutating operations — the transaction manager implements this over its
/// durable store.
///
/// The API is **two-phase**. An object whose [`RuntimeOptions`] carry a
/// sink calls [`RedoSink::reserve`] from inside every successful mutating
/// execution *while still holding its own lock* — reserving the
/// operation's slot in the global log order, a cheap non-blocking counter
/// bump — and then calls [`RedoSink::publish`] with the serialized
/// payload *after releasing the lock*. The split is what keeps a log
/// stripe's rotation fsync from ever stalling a hot object: the ordering
/// obligation (per-object log order equals execution order) is
/// discharged by the ticket, not by appending under the lock, and
/// recovery replays in ticket order.
///
/// Replay transactions are excepted, and there is no caller-side logging
/// step to forget — the forget-to-log failure mode stays
/// unrepresentable. Implementations must not panic on I/O problems; they
/// buffer the failure (keyed by ticket, preserving order) and surface it
/// at commit time, where refusing the commit is still possible.
pub trait RedoSink: Send + Sync {
    /// Reserve the global order slot for one about-to-be-recorded
    /// operation of `txn` at the named object. Called under the object's
    /// lock: must be cheap and must never block on I/O.
    fn reserve(&self, txn: TxnId, object: &str) -> RedoTicket;

    /// Record the operation reserved as `ticket`. Called outside the
    /// object's lock; may block (group commit, rotation) and must absorb
    /// I/O failures for commit-time handling.
    fn publish(&self, ticket: RedoTicket, txn: TxnId, object: &str, op: &[u8]);

    /// One-shot convenience: reserve and immediately publish. Correct
    /// whenever the caller's execution order is already serialized some
    /// other way (single-threaded drivers, site mailboxes).
    fn record_op(&self, txn: TxnId, object: &str, op: &[u8]) {
        let ticket = self.reserve(txn, object);
        self.publish(ticket, txn, object, op);
    }
}

/// How far a completion record must travel before a commit is
/// acknowledged. The authoritative setting lives on `hcc-storage`'s
/// `StorageOptions`; `TxnManager::object_options` mirrors the store's
/// level into the options it hands out, so code holding only a
/// `RuntimeOptions` can see what durability its commits actually get.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub enum Durability {
    /// Records stay in the process's own buffer until an opportunistic
    /// flush (rotation, checkpoint, close). Fastest; a process crash loses
    /// the unflushed tail.
    None,
    /// Every commit pushes the log to the OS page cache (`write`), but no
    /// fsync: survives a process crash, not a power failure.
    Buffered,
    /// Every commit is fsynced (`sync_data`) before it is acknowledged —
    /// batched across concurrent committers by group commit.
    #[default]
    Fsync,
}

/// Construction-time options for a [`super::TxObject`].
#[derive(Clone)]
pub struct RuntimeOptions {
    /// Blocking behaviour.
    pub block: BlockPolicy,
    /// Contention observer (deadlock detection hook).
    pub observer: Arc<dyn WaitObserver>,
    /// Durability required of completion records when a durable log is
    /// attached (ignored when running purely in memory).
    pub durability: Durability,
    /// Where executed operations' redo payloads are recorded. `None` runs
    /// the object purely in memory; `Some` makes every mutating operation
    /// self-logging (`TxnManager::object_options` wires the manager in
    /// when it has a durable store).
    pub redo: Option<Arc<dyn RedoSink>>,
    /// Where the object's lock-table counters land (grants, refusals,
    /// waits, keyed by ADT type and conflict-class pair). Every object
    /// gets one — standalone objects default to a private registry;
    /// `TxnManager::object_options` shares the manager's so `db.stats()`
    /// sees everything.
    pub metrics: Arc<Registry>,
    /// The per-txn flight recorder (`HCC_TRACE=N`), when tracing is on.
    pub trace: Option<Arc<FlightRecorder>>,
    /// The shared horizon-pin registry bounding what `forget` may fold:
    /// while a snapshot read holds a pin at watermark `w`, no commit
    /// with timestamp `> w` is folded into any object's base version.
    /// Standalone objects default to a private (never-pinned) registry;
    /// `TxnManager::object_options` shares the manager's so read-only
    /// transactions pin every object at once.
    pub horizon: Arc<super::HorizonPins>,
}

impl Default for RuntimeOptions {
    fn default() -> Self {
        RuntimeOptions {
            block: BlockPolicy::default(),
            observer: Arc::new(NullObserver),
            durability: Durability::default(),
            redo: None,
            metrics: Arc::new(Registry::new()),
            trace: None,
            horizon: Arc::new(super::HorizonPins::new()),
        }
    }
}

impl RuntimeOptions {
    /// Options with a custom observer.
    pub fn with_observer(observer: Arc<dyn WaitObserver>) -> RuntimeOptions {
        RuntimeOptions { observer, ..RuntimeOptions::default() }
    }

    /// Options with a custom timeout.
    pub fn with_timeout(timeout: Option<Duration>) -> RuntimeOptions {
        RuntimeOptions {
            block: BlockPolicy { timeout, ..BlockPolicy::default() },
            ..RuntimeOptions::default()
        }
    }

    /// The same options with a different durability requirement.
    pub fn with_durability(mut self, durability: Durability) -> RuntimeOptions {
        self.durability = durability;
        self
    }

    /// The same options with mutating operations self-logging through
    /// `sink`.
    pub fn with_redo(mut self, sink: Arc<dyn RedoSink>) -> RuntimeOptions {
        self.redo = Some(sink);
        self
    }

    /// The same options recording lock-table counters into `metrics`.
    pub fn with_metrics(mut self, metrics: Arc<Registry>) -> RuntimeOptions {
        self.metrics = metrics;
        self
    }

    /// The same options tracing into `recorder`.
    pub fn with_trace(mut self, recorder: Option<Arc<FlightRecorder>>) -> RuntimeOptions {
        self.trace = recorder;
        self
    }

    /// The same options sharing the horizon-pin registry `pins`.
    pub fn with_horizon(mut self, pins: Arc<super::HorizonPins>) -> RuntimeOptions {
        self.horizon = pins;
        self
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_are_sane() {
        let p = BlockPolicy::default();
        assert!(p.wait_slice < Duration::from_millis(50));
        assert!(p.timeout.unwrap() >= Duration::from_millis(100));
    }

    #[test]
    fn builders() {
        let o = RuntimeOptions::with_timeout(None);
        assert!(o.block.timeout.is_none());
        let o = RuntimeOptions::with_observer(Arc::new(NullObserver));
        o.observer.on_block(TxnId(1), &[TxnId(2)]);
        o.observer.on_unblock(TxnId(1));
    }
}
